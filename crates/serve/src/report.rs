//! Deterministic latency/throughput report over a set of completions.
//!
//! Percentiles are **exact nearest-rank** over the full sample (no
//! histogram buckets), and every latency is in virtual ticks — two runs
//! of the same seeded workload render byte-identical reports, which is
//! what `scripts/verify.sh` asserts.

use std::fmt::Write as _;

use speedllm_llama::generate::safe_rate;

use crate::engine::{Completion, ServeStats};

/// Exact nearest-rank percentile of an ascending-sorted sample;
/// 0 for an empty sample.
#[must_use]
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let p = p.clamp(0.0, 100.0);
    // Nearest-rank: smallest rank r (1-based) with r >= p/100 * n.
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.max(1) - 1]
}

/// [`percentile`] over float samples: the exact same nearest-rank rule,
/// for consumers whose metrics are wall-clock seconds rather than tick
/// counts (the bench harness). 0 for an empty sample; NaN-free as long
/// as the input is.
#[must_use]
pub fn percentile_f64(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.max(1) - 1]
}

/// p50/p95/p99 of one latency distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Percentiles {
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl Percentiles {
    /// Exact nearest-rank p50/p95/p99 of `sample` (unsorted input is
    /// fine). Degenerate inputs are well-defined, never NaN or panic:
    /// an empty sample yields all-zero percentiles, a single sample
    /// repeats that value at every percentile.
    #[must_use]
    pub fn of(mut sample: Vec<u64>) -> Self {
        sample.sort_unstable();
        Self {
            p50: percentile(&sample, 50.0),
            p95: percentile(&sample, 95.0),
            p99: percentile(&sample, 99.0),
        }
    }

    /// True when every percentile is zero (e.g. the empty sample).
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.p50 == 0 && self.p95 == 0 && self.p99 == 0
    }
}

/// Aggregated serve-bench results.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Completions analyzed.
    pub requests: usize,
    /// Total generated tokens.
    pub tokens: u64,
    /// Virtual time from first arrival to last completion.
    pub makespan: u64,
    /// Aggregate decode throughput, tokens per kilotick.
    pub tokens_per_kilotick: f64,
    /// Time to first token (arrival → first sample), ticks.
    pub ttft: Percentiles,
    /// Per-output-token latency (first sample → finish, over tokens-1…
    /// computed as milli-ticks per token), for requests with ≥ 2 tokens.
    pub tpot_millis: Percentiles,
    /// Inter-token latency: the tick gap between consecutive sampled
    /// tokens, pooled across all requests with ≥ 2 tokens. Unlike
    /// `tpot_millis` (a per-request average) this exposes the tail a
    /// single preemption stall puts on one gap.
    pub itl_ticks: Percentiles,
    /// End-to-end latency (arrival → finish), ticks.
    pub e2e: Percentiles,
    /// Scheduler counters of the run.
    pub stats: ServeStats,
    /// Slot reuses over the run.
    pub slot_reuses: u64,
}

impl ServeReport {
    /// Builds the report from a finished run.
    #[must_use]
    pub fn from_run(completions: &[Completion], stats: ServeStats, slot_reuses: u64) -> Self {
        let tokens: u64 = completions.iter().map(|c| c.tokens.len() as u64).sum();
        let first_arrival = completions.iter().map(|c| c.arrival).min().unwrap_or(0);
        let last_finish = completions.iter().map(|c| c.finished_at).max().unwrap_or(0);
        let makespan = last_finish.saturating_sub(first_arrival);
        let ttft = Percentiles::of(completions.iter().filter_map(Completion::ttft).collect());
        let tpot = Percentiles::of(
            completions
                .iter()
                .filter(|c| c.tokens.len() >= 2)
                .map(|c| {
                    let span = c.finished_at - c.first_token_at.expect("has tokens");
                    // Milli-ticks per inter-token gap, integer-exact.
                    span * 1000 / (c.tokens.len() as u64 - 1)
                })
                .collect(),
        );
        let itl = Percentiles::of(
            completions
                .iter()
                .flat_map(|c| c.token_ticks.windows(2).map(|w| w[1] - w[0]))
                .collect(),
        );
        let e2e = Percentiles::of(completions.iter().map(Completion::e2e).collect());
        Self {
            requests: completions.len(),
            tokens,
            makespan,
            tokens_per_kilotick: safe_rate(tokens as f64, makespan as f64) * 1000.0,
            ttft,
            tpot_millis: tpot,
            itl_ticks: itl,
            e2e,
            stats,
            slot_reuses,
        }
    }

    /// Renders the deterministic text report.
    #[must_use]
    pub fn render(&self, backend: &str) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "serve-bench report ({backend} backend)");
        let _ = writeln!(s, "  requests completed   {}", self.requests);
        let _ = writeln!(s, "  tokens generated     {}", self.tokens);
        let _ = writeln!(s, "  makespan             {} ticks", self.makespan);
        let _ = writeln!(
            s,
            "  throughput           {:.3} tok/ktick",
            self.tokens_per_kilotick
        );
        let _ = writeln!(
            s,
            "  ttft p50/p95/p99     {} / {} / {} ticks",
            self.ttft.p50, self.ttft.p95, self.ttft.p99
        );
        let _ = writeln!(
            s,
            "  tpot p50/p95/p99     {} / {} / {} mticks/tok",
            self.tpot_millis.p50, self.tpot_millis.p95, self.tpot_millis.p99
        );
        let _ = writeln!(
            s,
            "  itl  p50/p95/p99     {} / {} / {} ticks",
            self.itl_ticks.p50, self.itl_ticks.p95, self.itl_ticks.p99
        );
        let _ = writeln!(
            s,
            "  e2e  p50/p95/p99     {} / {} / {} ticks",
            self.e2e.p50, self.e2e.p95, self.e2e.p99
        );
        let _ = writeln!(
            s,
            "  decode batches       {} (max batch {})",
            self.stats.decode_batches, self.stats.max_batch_observed
        );
        let _ = writeln!(s, "  prefill chunks       {}", self.stats.prefill_chunks);
        let _ = writeln!(s, "  slot reuses          {}", self.slot_reuses);
        let _ = writeln!(
            s,
            "  max active           {}",
            self.stats.max_active_observed
        );
        let _ = writeln!(s, "  rejected             {}", self.stats.rejected);
        let _ = writeln!(s, "  preemptions          {}", self.stats.preemptions);
        let _ = writeln!(s, "  prefix-hit tokens    {}", self.stats.prefix_hit_tokens);
        let _ = writeln!(
            s,
            "  cache-evicted blocks {}",
            self.stats.cache_evicted_blocks
        );
        let _ = writeln!(
            s,
            "  peak blocks in use   {}",
            self.stats.peak_blocks_in_use
        );
        // Speculative-decoding rows appear only when speculation ran, so
        // non-speculative reports stay byte-identical across versions.
        if self.stats.spec_rounds > 0 {
            let _ = writeln!(s, "  spec rounds          {}", self.stats.spec_rounds);
            let _ = writeln!(
                s,
                "  spec acceptance      {}/{} drafted ({:.3})",
                self.stats.spec_accepted,
                self.stats.spec_drafted,
                safe_rate(
                    self.stats.spec_accepted as f64,
                    self.stats.spec_drafted as f64
                )
            );
            let _ = writeln!(
                s,
                "  spec tokens/round    {:.3}",
                safe_rate(self.tokens as f64, self.stats.spec_rounds as f64)
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 95.0), 95);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 100.0), 100);
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 99.0), 7);
    }

    fn completion(id: u64, tokens: usize, arrival: u64, first: u64, finish: u64) -> Completion {
        // Token sample ticks spread evenly from first token to finish.
        let token_ticks: Vec<u64> = match tokens {
            0 => Vec::new(),
            1 => vec![first],
            n => (0..n as u64)
                .map(|i| first + (finish - first) * i / (n as u64 - 1))
                .collect(),
        };
        Completion {
            id,
            tokens: vec![9; tokens],
            arrival,
            admitted_at: arrival,
            first_token_at: (tokens > 0).then_some(first),
            finished_at: finish,
            slot_index: 0,
            admission_seq: id,
            token_ticks,
        }
    }

    #[test]
    fn report_aggregates_and_renders_deterministically() {
        let completions = vec![
            completion(0, 4, 0, 10, 40),
            completion(1, 2, 5, 12, 30),
            completion(2, 0, 8, 0, 20),
        ];
        let r = ServeReport::from_run(&completions, ServeStats::default(), 3);
        assert_eq!(r.requests, 3);
        assert_eq!(r.tokens, 6);
        assert_eq!(r.makespan, 40);
        assert!((r.tokens_per_kilotick - 150.0).abs() < 1e-9);
        // TTFT sample: {10, 7} (zero-token request excluded).
        assert_eq!(r.ttft.p50, 7);
        assert_eq!(r.ttft.p99, 10);
        // TPOT: req0 = (40-10)*1000/3 = 10000; req1 = (30-12)*1000/1.
        assert_eq!(r.tpot_millis.p50, 10000);
        assert_eq!(r.tpot_millis.p99, 18000);
        // ITL pools per-token gaps: req0 {10,10,10}, req1 {18}.
        assert_eq!(r.itl_ticks.p50, 10);
        assert_eq!(r.itl_ticks.p99, 18);
        let a = r.render("cpu");
        let b = r.render("cpu");
        assert_eq!(a, b);
        assert!(a.contains("requests completed   3"));
        assert!(a.contains("150.000 tok/ktick"));
    }

    #[test]
    fn percentile_f64_matches_integer_nearest_rank() {
        let ints: Vec<u64> = vec![3, 7, 11, 19, 23];
        let floats: Vec<f64> = ints.iter().map(|&v| v as f64).collect();
        for p in [0.0, 12.5, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(percentile(&ints, p) as f64, percentile_f64(&floats, p));
        }
        assert_eq!(percentile_f64(&[], 50.0), 0.0);
        assert_eq!(percentile_f64(&[1.5], 99.0), 1.5);
    }

    #[test]
    fn spec_rows_render_only_when_speculation_ran() {
        let completions = vec![completion(0, 4, 0, 10, 40)];
        let plain = ServeReport::from_run(&completions, ServeStats::default(), 1);
        assert!(!plain.render("cpu").contains("spec"));
        let stats = ServeStats {
            spec_rounds: 2,
            spec_drafted: 6,
            spec_accepted: 3,
            ..ServeStats::default()
        };
        let spec = ServeReport::from_run(&completions, stats, 1).render("cpu");
        assert!(spec.contains("spec rounds          2"));
        assert!(spec.contains("spec acceptance      3/6 drafted (0.500)"));
        assert!(spec.contains("spec tokens/round    2.000"));
    }

    #[test]
    fn empty_run_renders_zeros_without_nan() {
        let r = ServeReport::from_run(&[], ServeStats::default(), 0);
        assert_eq!(r.tokens_per_kilotick, 0.0);
        assert!(r
            .render("cpu")
            .contains("throughput           0.000 tok/ktick"));
    }

    #[test]
    fn percentiles_of_degenerate_samples_are_well_defined() {
        // Empty: all zeros, no panic, no NaN anywhere downstream.
        let p = Percentiles::of(vec![]);
        assert_eq!((p.p50, p.p95, p.p99), (0, 0, 0));
        assert!(p.is_zero());
        // Single sample: every percentile is that value.
        let p = Percentiles::of(vec![42]);
        assert_eq!((p.p50, p.p95, p.p99), (42, 42, 42));
        assert!(!p.is_zero());
        // Unsorted input is sorted internally.
        let p = Percentiles::of(vec![30, 10, 20]);
        assert_eq!(p.p50, 20);
        assert_eq!(p.p99, 30);
    }

    #[test]
    fn zero_and_single_sample_reports_render_without_nan() {
        // A run with exactly one zero-token completion exercises every
        // empty-sample branch (no TTFT, no TPOT, no ITL) at once.
        let r = ServeReport::from_run(&[completion(0, 0, 0, 0, 5)], ServeStats::default(), 1);
        assert!(r.ttft.is_zero());
        assert!(r.tpot_millis.is_zero());
        assert!(r.itl_ticks.is_zero());
        assert_eq!(r.e2e.p50, 5);
        let text = r.render("cpu");
        assert!(!text.contains("NaN"));
        assert!(text.contains("itl  p50/p95/p99     0 / 0 / 0 ticks"));

        // One single-token completion: e2e defined, gaps still empty.
        let r = ServeReport::from_run(&[completion(1, 1, 0, 3, 4)], ServeStats::default(), 1);
        assert_eq!(r.ttft.p50, 3);
        assert!(r.itl_ticks.is_zero());
        assert!(!r.render("cpu").contains("NaN"));
    }
}
