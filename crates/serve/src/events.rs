//! Per-request lifecycle event log (DESIGN.md §15).
//!
//! Every request served by [`crate::engine::ServeEngine`] emits a stream
//! of typed [`Event`]s stamped with the **virtual-tick clock**, so the
//! log — like every serve report — is byte-reproducible for a given
//! seed. The log is pure observation: recording never touches sampler
//! state, KV contents, or the clock, which is what the trace-neutrality
//! suite asserts (token streams are bit-identical with recording on or
//! off).
//!
//! Three consumers:
//!
//! * **JSONL export/ingest** ([`EventLog::to_jsonl`] /
//!   [`parse_events_jsonl`]) — the `serve-bench --events-out` file, read
//!   back by `speedllm analyze`.
//! * **Phase breakdowns** ([`phase_breakdowns`]) — per-request
//!   queue-wait / prefill / decode / stall tick attribution that
//!   reconciles *exactly* with the engine's [`crate::engine::Completion`]
//!   timestamps: `queue + prefill + decode + stall == e2e`, and the
//!   `first_token` event tick equals the reported TTFT base.
//! * **Perfetto tracks** ([`events_to_chrome`]) — one named thread per
//!   request under [`tel::export::SERVE_PID`], rendering a whole serve
//!   run as a gantt of overlapping request lifetimes.

use speedllm_telemetry as tel;

use tel::export::ChromeTrace;
use tel::timeseries::TickSeries;

/// What happened to a request at one virtual tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Entered the bounded queue (tick = the request's arrival tick).
    Enqueued,
    /// Bounced off the full queue (admission backpressure).
    Rejected,
    /// First admission: left the queue and took a slot; `prefix_hit`
    /// prompt tokens were resolved against the radix cache.
    Admitted {
        /// Prompt tokens skipped thanks to radix prefix sharing.
        prefix_hit: u32,
    },
    /// Re-admission after a preemption (same `prefix_hit` meaning).
    Resumed {
        /// Context tokens skipped thanks to radix prefix sharing.
        prefix_hit: u32,
    },
    /// One prefill chunk of `tokens` rows was forwarded for this request.
    PrefillChunk {
        /// Token rows in the chunk.
        tokens: u32,
    },
    /// The first generated token was sampled.
    FirstToken,
    /// The request rode a decode pass that carried `batch` decode rows.
    DecodeTick {
        /// Decode rows in the pass.
        batch: u32,
    },
    /// Taken off the device under block pressure; its KV blocks were
    /// released.
    Preempted,
    /// `blocks` cold radix-cached blocks were reclaimed on this request's
    /// behalf (at admission or mid-decode block grants).
    EvictedCacheBlock {
        /// Blocks reclaimed from the prefix cache.
        blocks: u32,
    },
    /// The draft model proposed `tokens` speculative continuations for
    /// this request (speculative decoding only; DESIGN.md §16).
    DraftTick {
        /// Draft tokens proposed this round.
        tokens: u32,
    },
    /// The request rode a verify pass and `accepted` of its draft
    /// proposals matched what its own sampler chose.
    VerifyTick {
        /// Draft tokens accepted this round.
        accepted: u32,
    },
    /// Finished and released its slot with `tokens` generated.
    Completed {
        /// Generated tokens (EOS excluded).
        tokens: u32,
    },
}

impl EventKind {
    /// Stable wire name used in the JSONL export.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Enqueued => "enqueued",
            EventKind::Rejected => "rejected",
            EventKind::Admitted { .. } => "admitted",
            EventKind::Resumed { .. } => "resumed",
            EventKind::PrefillChunk { .. } => "prefill_chunk",
            EventKind::FirstToken => "first_token",
            EventKind::DecodeTick { .. } => "decode_tick",
            EventKind::Preempted => "preempted",
            EventKind::EvictedCacheBlock { .. } => "evicted_cache_block",
            EventKind::DraftTick { .. } => "draft_tick",
            EventKind::VerifyTick { .. } => "verify_tick",
            EventKind::Completed { .. } => "completed",
        }
    }
}

/// One lifecycle event: request `req` did `kind` at virtual tick `tick`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Virtual tick (the engine clock) the event was stamped at.
    pub tick: u64,
    /// The request's caller-chosen id.
    pub req: u64,
    /// What happened.
    pub kind: EventKind,
    /// Replica that emitted the event, when the log merges several
    /// engines (the cluster router stamps this; a single-engine log
    /// leaves it `None` and the wire format is byte-unchanged).
    pub replica: Option<u16>,
}

impl Event {
    /// Renders the event as one JSONL line (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"tick\":{},\"req\":{},\"ev\":\"{}\"",
            self.tick,
            self.req,
            self.kind.name()
        );
        match self.kind {
            EventKind::Admitted { prefix_hit } | EventKind::Resumed { prefix_hit } => {
                out.push_str(&format!(",\"prefix_hit\":{prefix_hit}"));
            }
            EventKind::PrefillChunk { tokens } => out.push_str(&format!(",\"tokens\":{tokens}")),
            EventKind::DecodeTick { batch } => out.push_str(&format!(",\"batch\":{batch}")),
            EventKind::DraftTick { tokens } => out.push_str(&format!(",\"tokens\":{tokens}")),
            EventKind::VerifyTick { accepted } => {
                out.push_str(&format!(",\"accepted\":{accepted}"))
            }
            EventKind::EvictedCacheBlock { blocks } => {
                out.push_str(&format!(",\"blocks\":{blocks}"))
            }
            EventKind::Completed { tokens } => out.push_str(&format!(",\"tokens\":{tokens}")),
            EventKind::Enqueued
            | EventKind::Rejected
            | EventKind::FirstToken
            | EventKind::Preempted => {}
        }
        if let Some(replica) = self.replica {
            out.push_str(&format!(",\"replica\":{replica}"));
        }
        out.push('}');
        out
    }
}

/// Bounded event buffer. Like the telemetry span buffer, it keeps the
/// **first** `capacity` events and counts the overflow — a truncated log
/// still starts at tick 0, which is what the analyze tool and the gantt
/// need most.
#[derive(Debug, Clone)]
pub struct EventLog {
    events: Vec<Event>,
    capacity: usize,
    dropped: u64,
}

/// Default event capacity: ~1M events ≈ 24 MB, enough for every bench
/// workload in the repo with headroom.
pub const EVENT_CAPACITY: usize = 1 << 20;

impl Default for EventLog {
    fn default() -> Self {
        Self::with_capacity(EVENT_CAPACITY)
    }
}

impl EventLog {
    /// An empty log with the default capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty log keeping at most `capacity` events.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            events: Vec::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Appends an event (dropped and counted once full).
    pub fn push(&mut self, ev: Event) {
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events, in emission (chronological) order.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped after the buffer filled.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the whole log as JSONL (one event per line).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }
}

/// Parses one event-JSONL document (the [`EventLog::to_jsonl`] format)
/// back into events. Tolerates blank lines; any malformed line is an
/// error naming its line number.
pub fn parse_events_jsonl(text: &str) -> Result<Vec<Event>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        out.push(
            parse_event_line(line).map_err(|e| format!("line {}: {e}: `{line}`", lineno + 1))?,
        );
    }
    Ok(out)
}

/// Parses one `{"tick":..,"req":..,"ev":"..",...}` object. The format is
/// flat (no nesting, values are integers or bare identifiers in quotes),
/// so a field scanner is sufficient — no general JSON parser needed.
fn parse_event_line(line: &str) -> Result<Event, String> {
    let body = line
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or("not a JSON object")?;
    let mut tick: Option<u64> = None;
    let mut req: Option<u64> = None;
    let mut ev: Option<String> = None;
    let mut replica: Option<u16> = None;
    let mut arg: Option<(String, u64)> = None;
    for field in body.split(',') {
        let (key, value) = field.split_once(':').ok_or("field without `:`")?;
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        match key {
            "tick" => tick = Some(value.parse().map_err(|_| "bad tick")?),
            "req" => req = Some(value.parse().map_err(|_| "bad req")?),
            "ev" => ev = Some(value.trim_matches('"').to_string()),
            "replica" => replica = Some(value.parse().map_err(|_| "bad replica")?),
            other => {
                let v: u64 = value.parse().map_err(|_| "bad integer argument")?;
                arg = Some((other.to_string(), v));
            }
        }
    }
    let tick = tick.ok_or("missing tick")?;
    let req = req.ok_or("missing req")?;
    let ev = ev.ok_or("missing ev")?;
    let arg_u32 = |want: &str| -> Result<u32, String> {
        match &arg {
            Some((k, v)) if k == want => Ok(*v as u32),
            _ => Err(format!("`{ev}` event missing `{want}` argument")),
        }
    };
    let kind = match ev.as_str() {
        "enqueued" => EventKind::Enqueued,
        "rejected" => EventKind::Rejected,
        "admitted" => EventKind::Admitted {
            prefix_hit: arg_u32("prefix_hit")?,
        },
        "resumed" => EventKind::Resumed {
            prefix_hit: arg_u32("prefix_hit")?,
        },
        "prefill_chunk" => EventKind::PrefillChunk {
            tokens: arg_u32("tokens")?,
        },
        "first_token" => EventKind::FirstToken,
        "decode_tick" => EventKind::DecodeTick {
            batch: arg_u32("batch")?,
        },
        "preempted" => EventKind::Preempted,
        "evicted_cache_block" => EventKind::EvictedCacheBlock {
            blocks: arg_u32("blocks")?,
        },
        "draft_tick" => EventKind::DraftTick {
            tokens: arg_u32("tokens")?,
        },
        "verify_tick" => EventKind::VerifyTick {
            accepted: arg_u32("accepted")?,
        },
        "completed" => EventKind::Completed {
            tokens: arg_u32("tokens")?,
        },
        other => return Err(format!("unknown event kind `{other}`")),
    };
    Ok(Event {
        tick,
        req,
        kind,
        replica,
    })
}

/// Per-request phase attribution derived from the event log. All values
/// in virtual ticks; the four phases partition the request's lifetime
/// exactly: `queue_wait + prefill + decode + stall == e2e()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestPhases {
    /// The request id.
    pub id: u64,
    /// Arrival (= `enqueued` event tick).
    pub arrival: u64,
    /// First admission tick.
    pub admitted: Option<u64>,
    /// First generated token's sampling tick.
    pub first_token: Option<u64>,
    /// Completion tick.
    pub finished: Option<u64>,
    /// Ticks spent queued before first admission.
    pub queue_wait: u64,
    /// Admission → first token, minus any stall in that span.
    pub prefill: u64,
    /// First token → completion, minus any stall in that span.
    pub decode: u64,
    /// Total ticks spent preempted (off the device).
    pub stall: u64,
    /// The preemption intervals `(preempted_at, resumed_at)`, in order.
    pub stalls: Vec<(u64, u64)>,
    /// Generated tokens reported by the `completed` event.
    pub tokens: u64,
    /// Times this request was preempted.
    pub preemptions: u32,
    /// Prompt/context tokens served from the radix prefix cache.
    pub prefix_hit_tokens: u64,
    /// True when the request only ever bounced off the full queue.
    pub rejected: bool,
}

impl RequestPhases {
    /// End-to-end latency (arrival → completion); 0 while incomplete.
    #[must_use]
    pub fn e2e(&self) -> u64 {
        self.finished.map_or(0, |f| f.saturating_sub(self.arrival))
    }

    /// Share of the lifetime spent preempted, in [0, 1].
    #[must_use]
    pub fn stall_share(&self) -> f64 {
        let e2e = self.e2e();
        if e2e == 0 {
            0.0
        } else {
            self.stall as f64 / e2e as f64
        }
    }

    /// Share of the lifetime spent queued, in [0, 1].
    #[must_use]
    pub fn queue_share(&self) -> f64 {
        let e2e = self.e2e();
        if e2e == 0 {
            0.0
        } else {
            self.queue_wait as f64 / e2e as f64
        }
    }
}

/// Derives one [`RequestPhases`] per request from an event stream (which
/// must be in emission order, as [`EventLog::events`] and the JSONL file
/// are). Returns breakdowns sorted by request id.
#[must_use]
pub fn phase_breakdowns(events: &[Event]) -> Vec<RequestPhases> {
    use std::collections::BTreeMap;

    struct Acc {
        phases: RequestPhases,
        /// Open preemption start, if currently off the device.
        preempted_at: Option<u64>,
        stall_pre_ft: u64,
        stall_post_ft: u64,
    }
    let mut accs: BTreeMap<u64, Acc> = BTreeMap::new();
    for ev in events {
        let a = accs.entry(ev.req).or_insert_with(|| Acc {
            phases: RequestPhases {
                id: ev.req,
                arrival: ev.tick,
                admitted: None,
                first_token: None,
                finished: None,
                queue_wait: 0,
                prefill: 0,
                decode: 0,
                stall: 0,
                stalls: Vec::new(),
                tokens: 0,
                preemptions: 0,
                prefix_hit_tokens: 0,
                rejected: true,
            },
            preempted_at: None,
            stall_pre_ft: 0,
            stall_post_ft: 0,
        });
        match ev.kind {
            EventKind::Enqueued => {
                a.phases.arrival = ev.tick;
                a.phases.rejected = false;
            }
            EventKind::Rejected => {}
            EventKind::Admitted { prefix_hit } => {
                a.phases.admitted = Some(ev.tick);
                a.phases.prefix_hit_tokens += u64::from(prefix_hit);
                a.phases.rejected = false;
            }
            EventKind::Resumed { prefix_hit } => {
                a.phases.prefix_hit_tokens += u64::from(prefix_hit);
                if let Some(start) = a.preempted_at.take() {
                    let dur = ev.tick.saturating_sub(start);
                    a.phases.stalls.push((start, ev.tick));
                    if a.phases.first_token.is_some() {
                        a.stall_post_ft += dur;
                    } else {
                        a.stall_pre_ft += dur;
                    }
                }
            }
            EventKind::FirstToken => {
                if a.phases.first_token.is_none() {
                    a.phases.first_token = Some(ev.tick);
                }
            }
            EventKind::Preempted => {
                a.phases.preemptions += 1;
                a.preempted_at = Some(ev.tick);
            }
            EventKind::Completed { tokens } => {
                a.phases.finished = Some(ev.tick);
                a.phases.tokens = u64::from(tokens);
            }
            EventKind::PrefillChunk { .. }
            | EventKind::DecodeTick { .. }
            | EventKind::DraftTick { .. }
            | EventKind::VerifyTick { .. }
            | EventKind::EvictedCacheBlock { .. } => {}
        }
    }
    let mut out: Vec<RequestPhases> = accs
        .into_values()
        .map(|mut a| {
            let p = &mut a.phases;
            if let (Some(adm), Some(fin)) = (p.admitted, p.finished) {
                // Saturating arithmetic: a single-engine log partitions
                // exactly, but a merged cluster log mixes per-replica
                // clocks (a failed-over request's events span two
                // replicas), where the attribution is best-effort.
                p.queue_wait = adm.saturating_sub(p.arrival);
                p.stall = a.stall_pre_ft + a.stall_post_ft;
                match p.first_token {
                    Some(ft) => {
                        p.prefill = ft.saturating_sub(adm).saturating_sub(a.stall_pre_ft);
                        p.decode = fin.saturating_sub(ft).saturating_sub(a.stall_post_ft);
                    }
                    None => {
                        // Zero-token completion: everything after the
                        // queue is prefill (nothing was ever decoded).
                        p.prefill = fin.saturating_sub(adm).saturating_sub(p.stall);
                        p.decode = 0;
                    }
                }
            }
            a.phases
        })
        .collect();
    out.sort_by_key(|p| p.id);
    out
}

/// Adds per-request lifecycle tracks to a Chrome trace under
/// [`tel::export::SERVE_PID`]: one named thread per request (in order of
/// first appearance) carrying `queue`/`prefill`/`decode` phase bars,
/// `stall` bars for preemption intervals, and instant markers for first
/// tokens, cache evictions, and rejections. Virtual ticks map 1:1 onto
/// trace microseconds.
pub fn events_to_chrome(events: &[Event], trace: &mut ChromeTrace) {
    use tel::export::SERVE_PID;
    if events.is_empty() {
        return;
    }
    trace.meta_process_name(SERVE_PID, "serve (virtual ticks)");
    let mut tids: Vec<u64> = Vec::new();
    for ev in events {
        if !tids.contains(&ev.req) {
            trace.meta_thread_name(SERVE_PID, tids.len() as u32, &format!("req {}", ev.req));
            tids.push(ev.req);
        }
    }
    let tid_of = |req: u64| tids.iter().position(|&r| r == req).expect("seen") as u32;
    for p in phase_breakdowns(events) {
        let tid = tid_of(p.id);
        let (Some(adm), Some(fin)) = (p.admitted, p.finished) else {
            continue;
        };
        let bar = |trace: &mut ChromeTrace, name: &str, from: u64, to: u64| {
            if to > from {
                trace.complete_ext(
                    SERVE_PID,
                    tid,
                    name,
                    from as f64,
                    (to - from) as f64,
                    &[("req", p.id as i64)],
                    &[("phase", name)],
                );
            }
        };
        bar(trace, "queue", p.arrival, adm);
        match p.first_token {
            Some(ft) => {
                bar(trace, "prefill", adm, ft);
                bar(trace, "decode", ft, fin);
                trace.instant(
                    SERVE_PID,
                    tid,
                    "first_token",
                    ft as f64,
                    &[("req", p.id as i64)],
                    &[],
                );
            }
            None => bar(trace, "prefill", adm, fin),
        }
        for &(from, to) in &p.stalls {
            // Stall bars overlay the phase bar they interrupt; Perfetto
            // nests them as child slices on the same track.
            bar(trace, "stall", from, to);
        }
    }
    for ev in events {
        match ev.kind {
            EventKind::EvictedCacheBlock { blocks } => trace.instant(
                SERVE_PID,
                tid_of(ev.req),
                "evicted_cache_block",
                ev.tick as f64,
                &[("blocks", i64::from(blocks))],
                &[],
            ),
            EventKind::Rejected => trace.instant(
                SERVE_PID,
                tid_of(ev.req),
                "rejected",
                ev.tick as f64,
                &[],
                &[],
            ),
            _ => {}
        }
    }
}

/// Column set of the per-tick scheduler sample
/// ([`ServeRecorder::ticks`]). `budget_util` is the share of the tick's
/// token budget actually carried (decode batch cap on the legacy
/// scheduler, token budget on the unified one).
pub const TICK_COLUMNS: &[&str] = &[
    "tick",
    "queue_depth",
    "active",
    "preempted",
    "decode_rows",
    "prefill_tokens",
    "tick_tokens",
    "budget_util",
    "blocks_in_use",
    "blocks_cached",
    "prefix_hit_tokens",
    "preemptions",
];

/// Default tick-sample ring capacity (rows kept = the most recent 64k
/// scheduler iterations).
pub const TICK_CAPACITY: usize = 1 << 16;

/// The serve-layer observability sink: the lifecycle [`EventLog`] plus
/// the per-tick [`TickSeries`]. Attach one to a
/// [`crate::engine::ServeEngine`] with `attach_recorder`; recording is
/// pure observation and leaves token streams and reports bit-identical.
#[derive(Debug, Clone)]
pub struct ServeRecorder {
    /// The request lifecycle log.
    pub events: EventLog,
    /// One scheduler-state sample per engine iteration.
    pub ticks: TickSeries,
}

impl Default for ServeRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeRecorder {
    /// A recorder with default capacities ([`EVENT_CAPACITY`],
    /// [`TICK_CAPACITY`]).
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(EVENT_CAPACITY, TICK_CAPACITY)
    }

    /// A recorder with explicit buffer bounds.
    #[must_use]
    pub fn with_capacity(event_cap: usize, tick_cap: usize) -> Self {
        Self {
            events: EventLog::with_capacity(event_cap),
            ticks: TickSeries::new(TICK_COLUMNS, tick_cap.max(1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(tick: u64, req: u64, kind: EventKind) -> Event {
        Event {
            tick,
            req,
            kind,
            replica: None,
        }
    }

    #[test]
    fn jsonl_round_trips_every_kind() {
        let mut log = EventLog::new();
        let all = [
            ev(0, 1, EventKind::Enqueued),
            ev(0, 2, EventKind::Rejected),
            ev(3, 1, EventKind::Admitted { prefix_hit: 8 }),
            ev(5, 1, EventKind::PrefillChunk { tokens: 4 }),
            ev(6, 1, EventKind::FirstToken),
            ev(7, 1, EventKind::DecodeTick { batch: 3 }),
            ev(8, 1, EventKind::Preempted),
            ev(9, 1, EventKind::EvictedCacheBlock { blocks: 2 }),
            ev(10, 1, EventKind::Resumed { prefix_hit: 0 }),
            ev(11, 1, EventKind::DraftTick { tokens: 4 }),
            ev(11, 1, EventKind::VerifyTick { accepted: 3 }),
            ev(12, 1, EventKind::Completed { tokens: 5 }),
        ];
        for e in all {
            log.push(e);
        }
        let jsonl = log.to_jsonl();
        assert_eq!(jsonl.lines().count(), all.len());
        let parsed = parse_events_jsonl(&jsonl).unwrap();
        assert_eq!(parsed, all, "JSONL export must parse back losslessly");
        // Known spot-check of the wire shape.
        assert!(jsonl.contains("{\"tick\":3,\"req\":1,\"ev\":\"admitted\",\"prefix_hit\":8}"));
    }

    #[test]
    fn replica_stamp_round_trips_and_is_absent_when_none() {
        let plain = ev(4, 2, EventKind::DecodeTick { batch: 3 });
        assert_eq!(
            plain.to_json(),
            "{\"tick\":4,\"req\":2,\"ev\":\"decode_tick\",\"batch\":3}"
        );
        let stamped = Event {
            replica: Some(5),
            ..plain
        };
        let line = stamped.to_json();
        assert_eq!(
            line,
            "{\"tick\":4,\"req\":2,\"ev\":\"decode_tick\",\"batch\":3,\"replica\":5}"
        );
        let parsed = parse_events_jsonl(&line).unwrap();
        assert_eq!(parsed, vec![stamped]);
        // Argument-free kinds carry the stamp too.
        let bare = Event {
            replica: Some(0),
            ..ev(1, 9, EventKind::FirstToken)
        };
        assert_eq!(
            bare.to_json(),
            "{\"tick\":1,\"req\":9,\"ev\":\"first_token\",\"replica\":0}"
        );
        assert_eq!(parse_events_jsonl(&bare.to_json()).unwrap(), vec![bare]);
    }

    #[test]
    fn parse_rejects_malformed_lines_with_line_numbers() {
        assert!(parse_events_jsonl("").unwrap().is_empty());
        let err = parse_events_jsonl("{\"tick\":1,\"req\":2,\"ev\":\"nope\"}").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        assert!(err.contains("unknown event kind"), "{err}");
        let err =
            parse_events_jsonl("{\"tick\":0,\"req\":0,\"ev\":\"enqueued\"}\nnot json").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = parse_events_jsonl("{\"req\":0,\"ev\":\"enqueued\"}").unwrap_err();
        assert!(err.contains("missing tick"), "{err}");
        let err = parse_events_jsonl("{\"tick\":1,\"req\":0,\"ev\":\"decode_tick\"}").unwrap_err();
        assert!(err.contains("missing `batch`"), "{err}");
    }

    #[test]
    fn capacity_drops_newest_and_counts() {
        let mut log = EventLog::with_capacity(2);
        log.push(ev(0, 0, EventKind::Enqueued));
        log.push(ev(1, 0, EventKind::Admitted { prefix_hit: 0 }));
        log.push(ev(2, 0, EventKind::FirstToken));
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 1);
        assert_eq!(log.events()[0].tick, 0, "log keeps the run's beginning");
    }

    #[test]
    fn phases_partition_e2e_exactly_including_stalls() {
        // req 1: queued 0→4, prefills to first token at 10, preempted
        // 14→20 mid-decode, finishes at 30.
        let events = [
            ev(0, 1, EventKind::Enqueued),
            ev(4, 1, EventKind::Admitted { prefix_hit: 4 }),
            ev(8, 1, EventKind::PrefillChunk { tokens: 4 }),
            ev(10, 1, EventKind::FirstToken),
            ev(12, 1, EventKind::DecodeTick { batch: 2 }),
            ev(14, 1, EventKind::Preempted),
            ev(20, 1, EventKind::Resumed { prefix_hit: 0 }),
            ev(30, 1, EventKind::Completed { tokens: 6 }),
        ];
        let ps = phase_breakdowns(&events);
        assert_eq!(ps.len(), 1);
        let p = &ps[0];
        assert_eq!(p.queue_wait, 4);
        assert_eq!(p.prefill, 6);
        assert_eq!(p.stall, 6);
        assert_eq!(p.decode, 14); // (30-10) - 6 stalled
        assert_eq!(p.e2e(), 30);
        assert_eq!(p.queue_wait + p.prefill + p.decode + p.stall, p.e2e());
        assert_eq!(p.stalls, vec![(14, 20)]);
        assert_eq!(p.preemptions, 1);
        assert_eq!(p.prefix_hit_tokens, 4);
        assert_eq!(p.tokens, 6);
        assert!((p.stall_share() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn preemption_before_first_token_lands_in_prefill_span() {
        let events = [
            ev(0, 7, EventKind::Enqueued),
            ev(2, 7, EventKind::Admitted { prefix_hit: 0 }),
            ev(5, 7, EventKind::Preempted),
            ev(9, 7, EventKind::Resumed { prefix_hit: 0 }),
            ev(12, 7, EventKind::FirstToken),
            ev(16, 7, EventKind::Completed { tokens: 2 }),
        ];
        let p = &phase_breakdowns(&events)[0];
        assert_eq!(p.queue_wait, 2);
        assert_eq!(p.stall, 4);
        assert_eq!(p.prefill, 6); // (12-2) - 4 stalled before first token
        assert_eq!(p.decode, 4);
        assert_eq!(p.queue_wait + p.prefill + p.decode + p.stall, p.e2e());
    }

    #[test]
    fn rejected_only_request_is_flagged() {
        let events = [ev(5, 9, EventKind::Rejected)];
        let p = &phase_breakdowns(&events)[0];
        assert!(p.rejected);
        assert_eq!(p.finished, None);
        assert_eq!(p.e2e(), 0);
    }

    #[test]
    fn chrome_tracks_are_named_per_request() {
        let events = [
            ev(0, 42, EventKind::Enqueued),
            ev(2, 42, EventKind::Admitted { prefix_hit: 0 }),
            ev(4, 42, EventKind::FirstToken),
            ev(3, 7, EventKind::Enqueued),
            ev(6, 7, EventKind::Rejected),
            ev(8, 42, EventKind::Completed { tokens: 3 }),
        ];
        let mut trace = ChromeTrace::new();
        events_to_chrome(&events, &mut trace);
        let json = trace.finish();
        assert!(json.contains("serve (virtual ticks)"));
        assert!(json.contains("\"name\":\"req 42\""));
        assert!(json.contains("\"name\":\"req 7\""));
        assert!(json.contains("\"name\":\"queue\""));
        assert!(json.contains("\"name\":\"prefill\""));
        assert!(json.contains("\"name\":\"decode\""));
        assert!(json.contains("\"name\":\"first_token\""));
        assert!(json.contains("\"name\":\"rejected\""));
        assert!(json.contains("\"phase\":\"queue\""));
        // Ticks map to whole microseconds.
        assert!(json.contains("\"ts\":2.000"));
    }
}
