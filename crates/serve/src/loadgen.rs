//! Seeded synthetic traffic for serve-bench.
//!
//! [`LoadGen`] materializes its whole request schedule at construction
//! from one [`Xoshiro256`] stream, so a (config, seed) pair names a
//! byte-reproducible workload. Interarrival gaps are uniform on
//! `[1, 2·mean]` — same mean as an exponential ("Poisson-ish") process
//! without `ln()`, whose libm rounding varies across platforms and would
//! break byte-identical reports.

use std::collections::VecDeque;

use speedllm_llama::rng::Xoshiro256;
use speedllm_llama::sampler::SamplerKind;
use speedllm_llama::tokenizer::TOKEN_BOS;

use crate::engine::{Request, TrafficSource};

/// How requests arrive.
#[derive(Debug, Clone, Copy)]
pub enum ArrivalMode {
    /// Open loop: arrivals follow the seeded schedule regardless of how
    /// the server keeps up (queueing shows up as TTFT).
    Open {
        /// Mean gap between arrivals, in virtual ticks (≥ 1).
        mean_interarrival: u64,
    },
    /// Closed loop: keep `concurrency` requests outstanding; a new request
    /// arrives the moment one finishes.
    Closed {
        /// Target number of outstanding requests (≥ 1).
        concurrency: usize,
    },
    /// Bursty open loop: requests arrive in groups of `burst_size` that
    /// share one arrival tick, with seeded gaps (uniform on
    /// `[1, 2·burst_gap]`, same discipline as [`ArrivalMode::Open`])
    /// between groups — the admission-spike workload of ROADMAP item 1.
    Bursty {
        /// Requests per burst (≥ 1).
        burst_size: usize,
        /// Mean gap between bursts, in virtual ticks (≥ 1).
        burst_gap: u64,
    },
}

/// Workload shape.
#[derive(Debug, Clone, Copy)]
pub struct LoadGenConfig {
    /// Total requests to generate.
    pub n_requests: usize,
    /// Arrival process.
    pub mode: ArrivalMode,
    /// Inclusive prompt-length range, BOS included (min ≥ 1).
    pub prompt_len: (usize, usize),
    /// Tokens (after BOS) shared by every prompt — a common system-prompt
    /// prefix for exercising radix prefix caching. 0 disables sharing and
    /// reproduces the pre-prefix schedules byte-for-byte. When non-zero,
    /// every prompt still ends in at least one unique token, so
    /// `shared_prefix_len + 2 <= prompt_len.0` is required.
    pub shared_prefix_len: usize,
    /// Inclusive new-token-budget range.
    pub max_new_tokens: (usize, usize),
    /// Sampling policy stamped on every request.
    pub sampler: SamplerKind,
    /// Stop-at-EOS policy stamped on every request.
    pub stop_at_eos: bool,
    /// Vocabulary size prompts draw from (> 3: ids 0..=2 are specials).
    pub vocab_size: usize,
    /// Context window; prompts are validated against it.
    pub seq_len: usize,
    /// Master seed: schedule, prompts, and per-request sampler seeds.
    pub seed: u64,
}

/// The deterministic traffic source.
pub struct LoadGen {
    mode: ArrivalMode,
    /// Requests not yet handed out, in arrival order.
    pending: VecDeque<Request>,
}

impl LoadGen {
    /// Materializes the full schedule for `cfg`.
    ///
    /// # Panics
    /// Panics on a degenerate config (empty ranges, prompts longer than
    /// the context window, vocabulary too small).
    #[must_use]
    pub fn new(cfg: &LoadGenConfig) -> Self {
        assert!(cfg.prompt_len.0 >= 1 && cfg.prompt_len.0 <= cfg.prompt_len.1);
        assert!(cfg.max_new_tokens.0 <= cfg.max_new_tokens.1);
        assert!(
            cfg.prompt_len.1 <= cfg.seq_len,
            "prompts of {} tokens cannot fit the context window {}",
            cfg.prompt_len.1,
            cfg.seq_len
        );
        assert!(cfg.vocab_size > 3, "vocabulary leaves no non-special ids");
        if let ArrivalMode::Open { mean_interarrival } = cfg.mode {
            assert!(mean_interarrival >= 1, "mean interarrival must be >= 1");
        }
        if let ArrivalMode::Closed { concurrency } = cfg.mode {
            assert!(concurrency >= 1, "closed loop needs concurrency >= 1");
        }
        if let ArrivalMode::Bursty {
            burst_size,
            burst_gap,
        } = cfg.mode
        {
            assert!(burst_size >= 1, "bursts need at least one request");
            assert!(burst_gap >= 1, "burst gap must be >= 1");
        }

        // The shared prefix draws from its own salted stream so that
        // `shared_prefix_len = 0` leaves the main stream — and therefore
        // every pre-existing (config, seed) schedule — untouched.
        let shared: Vec<u32> = if cfg.shared_prefix_len > 0 {
            assert!(
                cfg.shared_prefix_len + 2 <= cfg.prompt_len.0,
                "shared prefix of {} leaves no unique token in the shortest prompt ({})",
                cfg.shared_prefix_len,
                cfg.prompt_len.0
            );
            let mut prng = Xoshiro256::seed_from_u64(cfg.seed ^ 0x9e37_79b9_7f4a_7c15);
            (0..cfg.shared_prefix_len)
                .map(|_| 3 + prng.below(cfg.vocab_size as u64 - 3) as u32)
                .collect()
        } else {
            Vec::new()
        };

        let mut rng = Xoshiro256::seed_from_u64(cfg.seed);
        let in_range = |rng: &mut Xoshiro256, (lo, hi): (usize, usize)| -> usize {
            lo + rng.below((hi - lo + 1) as u64) as usize
        };
        let mut clock = 0u64;
        let mut pending = VecDeque::with_capacity(cfg.n_requests);
        for id in 0..cfg.n_requests as u64 {
            let plen = in_range(&mut rng, cfg.prompt_len);
            let mut prompt = Vec::with_capacity(plen);
            prompt.push(TOKEN_BOS);
            prompt.extend_from_slice(&shared);
            for _ in prompt.len()..plen {
                // Ordinary tokens only: 3..vocab (0=pad, 1=BOS, 2=EOS).
                prompt.push(3 + rng.below(cfg.vocab_size as u64 - 3) as u32);
            }
            let max_new_tokens = in_range(&mut rng, cfg.max_new_tokens);
            let seed = rng.next_u64();
            match cfg.mode {
                ArrivalMode::Open { mean_interarrival } => {
                    clock += 1 + rng.below(2 * mean_interarrival);
                }
                ArrivalMode::Bursty {
                    burst_size,
                    burst_gap,
                } => {
                    // One seeded gap per burst; every member of the burst
                    // lands on the same tick.
                    if id as usize % burst_size == 0 {
                        clock += 1 + rng.below(2 * burst_gap);
                    }
                }
                ArrivalMode::Closed { .. } => {}
            }
            pending.push_back(Request {
                id,
                prompt,
                max_new_tokens,
                stop_at_eos: cfg.stop_at_eos,
                sampler: cfg.sampler,
                seed,
                arrival: clock,
            });
        }
        Self {
            mode: cfg.mode,
            pending,
        }
    }

    /// Requests not yet handed out.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.pending.len()
    }
}

impl TrafficSource for LoadGen {
    fn poll(&mut self, now: u64, outstanding: usize, room: usize) -> Vec<Request> {
        let budget = match self.mode {
            ArrivalMode::Open { .. } | ArrivalMode::Bursty { .. } => room,
            ArrivalMode::Closed { concurrency } => {
                room.min(concurrency.saturating_sub(outstanding))
            }
        };
        let mut due = Vec::new();
        while due.len() < budget {
            match self.mode {
                ArrivalMode::Open { .. } | ArrivalMode::Bursty { .. } => {
                    if self.pending.front().map_or(true, |r| r.arrival > now) {
                        break;
                    }
                }
                ArrivalMode::Closed { .. } => {
                    if self.pending.is_empty() {
                        break;
                    }
                }
            }
            let mut req = self.pending.pop_front().expect("checked above");
            if matches!(self.mode, ArrivalMode::Closed { .. }) {
                req.arrival = now; // a closed-loop request arrives on demand
            }
            due.push(req);
        }
        due
    }

    fn next_arrival(&self, _outstanding: usize) -> Option<u64> {
        match self.mode {
            ArrivalMode::Open { .. } | ArrivalMode::Bursty { .. } => {
                self.pending.front().map(|r| r.arrival)
            }
            // Closed loop: the next request is due immediately whenever
            // the engine has room for it.
            ArrivalMode::Closed { .. } => (!self.pending.is_empty()).then_some(0),
        }
    }

    fn is_exhausted(&self) -> bool {
        self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(mode: ArrivalMode, seed: u64) -> LoadGenConfig {
        LoadGenConfig {
            n_requests: 8,
            mode,
            prompt_len: (2, 6),
            shared_prefix_len: 0,
            max_new_tokens: (1, 8),
            sampler: SamplerKind::Temperature(0.8),
            stop_at_eos: true,
            vocab_size: 64,
            seq_len: 32,
            seed,
        }
    }

    fn drain_all(gen: &mut LoadGen) -> Vec<Request> {
        let mut out = Vec::new();
        let mut now = 0;
        while !gen.is_exhausted() {
            now = gen.next_arrival(0).unwrap().max(now);
            out.extend(gen.poll(now, 0, usize::MAX));
        }
        out
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = drain_all(&mut LoadGen::new(&cfg(
            ArrivalMode::Open {
                mean_interarrival: 10,
            },
            7,
        )));
        let b = drain_all(&mut LoadGen::new(&cfg(
            ArrivalMode::Open {
                mean_interarrival: 10,
            },
            7,
        )));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.prompt, y.prompt);
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.max_new_tokens, y.max_new_tokens);
        }
        // And a different seed changes the workload.
        let c = drain_all(&mut LoadGen::new(&cfg(
            ArrivalMode::Open {
                mean_interarrival: 10,
            },
            8,
        )));
        assert!(a
            .iter()
            .zip(&c)
            .any(|(x, y)| x.prompt != y.prompt || x.arrival != y.arrival));
    }

    #[test]
    fn open_loop_respects_arrival_times_and_room() {
        let mut gen = LoadGen::new(&cfg(
            ArrivalMode::Open {
                mean_interarrival: 10,
            },
            3,
        ));
        // Nothing is due at tick 0 (first gap is >= 1).
        assert!(gen.poll(0, 0, 8).is_empty());
        let first = gen.next_arrival(0).unwrap();
        let due = gen.poll(first, 0, 1);
        assert_eq!(due.len(), 1, "room=1 must cap the hand-out");
        assert!(due[0].arrival <= first);
    }

    #[test]
    fn closed_loop_paces_by_outstanding() {
        let mut gen = LoadGen::new(&cfg(ArrivalMode::Closed { concurrency: 2 }, 3));
        let a = gen.poll(0, 0, 8);
        assert_eq!(a.len(), 2, "fill to concurrency");
        assert!(gen.poll(5, 2, 8).is_empty(), "at target, nothing arrives");
        let b = gen.poll(9, 1, 8);
        assert_eq!(b.len(), 1, "a completion opens one arrival");
        assert_eq!(b[0].arrival, 9, "closed-loop arrival is stamped on demand");
    }

    #[test]
    fn prompts_are_valid() {
        let reqs = drain_all(&mut LoadGen::new(&cfg(
            ArrivalMode::Open {
                mean_interarrival: 4,
            },
            11,
        )));
        assert_eq!(reqs.len(), 8);
        for r in &reqs {
            assert_eq!(r.prompt[0], TOKEN_BOS);
            assert!((2..=6).contains(&r.prompt.len()));
            assert!(r.prompt[1..].iter().all(|&t| (3..64).contains(&t)));
            assert!((1..=8).contains(&r.max_new_tokens));
        }
        // Arrivals are non-decreasing (FIFO schedule).
        assert!(reqs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    }

    #[test]
    fn bursty_same_seed_is_byte_identical() {
        let mode = ArrivalMode::Bursty {
            burst_size: 3,
            burst_gap: 20,
        };
        let a = drain_all(&mut LoadGen::new(&cfg(mode, 7)));
        let b = drain_all(&mut LoadGen::new(&cfg(mode, 7)));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.prompt, y.prompt);
            assert_eq!(x.arrival, y.arrival, "arrival trace must be seeded");
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.max_new_tokens, y.max_new_tokens);
        }
        let c = drain_all(&mut LoadGen::new(&cfg(mode, 8)));
        assert!(
            a.iter()
                .zip(&c)
                .any(|(x, y)| x.prompt != y.prompt || x.arrival != y.arrival),
            "different seeds must produce different traces"
        );
    }

    #[test]
    fn bursty_arrivals_cluster_into_bursts() {
        let mode = ArrivalMode::Bursty {
            burst_size: 4,
            burst_gap: 50,
        };
        let reqs = drain_all(&mut LoadGen::new(&cfg(mode, 11)));
        assert_eq!(reqs.len(), 8);
        // Members of one burst share an arrival tick; bursts are strictly
        // separated (gap >= 1).
        for chunk in reqs.chunks(4) {
            assert!(
                chunk.iter().all(|r| r.arrival == chunk[0].arrival),
                "burst members must share an arrival tick"
            );
        }
        assert!(
            reqs[4].arrival > reqs[0].arrival,
            "bursts must be separated in time"
        );
        // The spike is real: nothing is due at tick 0, everything of the
        // first burst is due together.
        let mut gen = LoadGen::new(&cfg(mode, 11));
        assert!(gen.poll(0, 0, 8).is_empty());
        let first = gen.next_arrival(0).unwrap();
        assert_eq!(gen.poll(first, 0, 8).len(), 4, "whole burst due at once");
    }

    #[test]
    fn shared_prefix_is_common_and_prompts_stay_unique() {
        let mut c = cfg(ArrivalMode::Closed { concurrency: 2 }, 5);
        c.prompt_len = (8, 12);
        c.shared_prefix_len = 6;
        let reqs = drain_all(&mut LoadGen::new(&c));
        assert_eq!(reqs.len(), 8);
        let prefix = &reqs[0].prompt[1..7];
        for r in &reqs {
            assert_eq!(r.prompt[0], TOKEN_BOS);
            assert_eq!(&r.prompt[1..7], prefix, "prefix must be shared");
            assert!(r.prompt.len() >= 8, "prefix plus at least one unique token");
            assert!(r.prompt[1..].iter().all(|&t| (3..64).contains(&t)));
        }
        // The tails still differ (same master seed, distinct draws).
        assert!(
            reqs.iter().any(|r| r.prompt[7..] != reqs[0].prompt[7..]),
            "tails should diverge across requests"
        );
        // Turning sharing off reproduces the unshared schedule exactly.
        let mut base = cfg(ArrivalMode::Closed { concurrency: 2 }, 5);
        base.prompt_len = (8, 12);
        let plain = drain_all(&mut LoadGen::new(&base));
        let again = drain_all(&mut LoadGen::new(&base.clone()));
        for (x, y) in plain.iter().zip(&again) {
            assert_eq!(x.prompt, y.prompt);
        }
    }
}
