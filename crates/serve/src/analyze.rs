//! Offline analysis of a serve-run event log (`speedllm analyze`).
//!
//! Ingests the lifecycle-event JSONL written by
//! `serve-bench --events-out` (see [`crate::events`]) and renders a
//! textual dashboard: a phase-breakdown table over all completed
//! requests, goodput, the top-N slowest requests with ASCII timelines,
//! and stall/queue anomaly flags. Everything is derived from virtual
//! ticks, so the rendered text is byte-identical across runs of the
//! same seed.

use std::fmt::Write as _;

use speedllm_llama::generate::safe_rate;

use crate::events::{phase_breakdowns, Event, RequestPhases};
use crate::report::Percentiles;

/// Knobs for [`render_analysis`].
#[derive(Debug, Clone, Copy)]
pub struct AnalyzeOptions {
    /// How many slowest requests to list with timelines.
    pub top: usize,
    /// Width of each request timeline bar, in characters.
    pub timeline_width: usize,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        Self {
            top: 5,
            timeline_width: 40,
        }
    }
}

/// A request's lifetime as chronological phase segments, rendered as a
/// fixed-width bar: `Q`ueue, `P`refill, `D`ecode, `S`tall. Character
/// `i` shows the phase active at tick `arrival + i·e2e/width`.
fn timeline(p: &RequestPhases, width: usize) -> String {
    let (Some(adm), Some(fin)) = (p.admitted, p.finished) else {
        return "-".repeat(width);
    };
    let e2e = p.e2e();
    if e2e == 0 || width == 0 {
        return "-".repeat(width);
    }
    // Build chronological (start, end, char) segments.
    let mut segs: Vec<(u64, u64, char)> = Vec::new();
    if adm > p.arrival {
        segs.push((p.arrival, adm, 'Q'));
    }
    // On-device spans between stalls, split at the first-token tick.
    let mut cursor = adm;
    let push_on_device = |segs: &mut Vec<(u64, u64, char)>, from: u64, to: u64| {
        if to <= from {
            return;
        }
        match p.first_token {
            Some(ft) if ft > from && ft < to => {
                segs.push((from, ft, 'P'));
                segs.push((ft, to, 'D'));
            }
            Some(ft) if ft <= from => segs.push((from, to, 'D')),
            _ => segs.push((from, to, 'P')),
        }
    };
    for &(s, e) in &p.stalls {
        push_on_device(&mut segs, cursor, s);
        segs.push((s, e, 'S'));
        cursor = e;
    }
    push_on_device(&mut segs, cursor, fin);
    let mut bar = String::with_capacity(width);
    for i in 0..width {
        let t = p.arrival + (i as u64 * e2e) / width as u64;
        let c = segs
            .iter()
            .find(|&&(s, e, _)| t >= s && t < e)
            .map_or('-', |&(_, _, c)| c);
        bar.push(c);
    }
    bar
}

/// One queue/prefill/decode/stall/e2e phase table over a set of
/// completed requests (the global table, and one per replica when the
/// log carries replica stamps).
fn phase_table(s: &mut String, completed: &[&RequestPhases]) {
    let _ = writeln!(
        s,
        "  {:<8} {:>10} {:>7} {:>8} {:>8} {:>8}",
        "phase", "total", "share", "p50", "p95", "p99"
    );
    let total_e2e: u64 = completed.iter().map(|p| p.e2e()).sum();
    let phase_row = |s: &mut String, name: &str, of: &dyn Fn(&RequestPhases) -> u64| {
        let total: u64 = completed.iter().map(|p| of(p)).sum();
        let pct = Percentiles::of(completed.iter().map(|p| of(p)).collect());
        let share = safe_rate(total as f64, total_e2e as f64) * 100.0;
        let _ = writeln!(
            s,
            "  {:<8} {:>10} {:>6.1}% {:>8} {:>8} {:>8}",
            name, total, share, pct.p50, pct.p95, pct.p99
        );
    };
    phase_row(s, "queue", &|p| p.queue_wait);
    phase_row(s, "prefill", &|p| p.prefill);
    phase_row(s, "decode", &|p| p.decode);
    phase_row(s, "stall", &|p| p.stall);
    phase_row(s, "e2e", &|p| p.e2e());
}

/// Renders the analysis dashboard for an event stream (must be in
/// emission order, as the JSONL file is).
#[must_use]
pub fn render_analysis(events: &[Event], opts: &AnalyzeOptions) -> String {
    let phases = phase_breakdowns(events);
    let completed: Vec<&RequestPhases> = phases.iter().filter(|p| p.finished.is_some()).collect();
    let rejected = phases.iter().filter(|p| p.rejected).count();
    let in_flight = phases.len() - completed.len() - rejected;

    let mut s = String::new();
    let _ = writeln!(
        s,
        "serve analysis — {} requests ({} completed, {} rejected, {} in-flight), {} events",
        phases.len(),
        completed.len(),
        rejected,
        in_flight,
        events.len()
    );
    s.push('\n');

    // ── Phase breakdown ────────────────────────────────────────────
    let _ = writeln!(s, "phase breakdown (completed requests, virtual ticks)");
    phase_table(&mut s, &completed);
    s.push('\n');

    // ── Per-replica breakdown (merged cluster logs only) ───────────
    let replicas: std::collections::BTreeSet<u16> =
        events.iter().filter_map(|e| e.replica).collect();
    if !replicas.is_empty() {
        let _ = writeln!(s, "phase breakdown by replica");
        for r in replicas {
            let local: Vec<Event> = events
                .iter()
                .filter(|e| e.replica == Some(r))
                .copied()
                .collect();
            let local_phases = phase_breakdowns(&local);
            let local_completed: Vec<&RequestPhases> = local_phases
                .iter()
                .filter(|p| p.finished.is_some())
                .collect();
            let _ = writeln!(
                s,
                "  replica {r} — {} events, {} requests completed",
                local.len(),
                local_completed.len()
            );
            phase_table(&mut s, &local_completed);
        }
        s.push('\n');
    }

    // ── Goodput ────────────────────────────────────────────────────
    let tokens: u64 = completed.iter().map(|p| p.tokens).sum();
    let first_arrival = completed.iter().map(|p| p.arrival).min().unwrap_or(0);
    let last_finish = completed
        .iter()
        .filter_map(|p| p.finished)
        .max()
        .unwrap_or(0);
    let makespan = last_finish.saturating_sub(first_arrival);
    let preemptions: u32 = completed.iter().map(|p| p.preemptions).sum();
    let prefix_hits: u64 = completed.iter().map(|p| p.prefix_hit_tokens).sum();
    let _ = writeln!(s, "goodput");
    let _ = writeln!(s, "  tokens generated     {tokens}");
    let _ = writeln!(s, "  makespan             {makespan} ticks");
    let _ = writeln!(
        s,
        "  goodput              {:.3} tok/ktick",
        safe_rate(tokens as f64, makespan as f64) * 1000.0
    );
    let _ = writeln!(s, "  preemptions          {preemptions}");
    let _ = writeln!(s, "  prefix-hit tokens    {prefix_hits}");
    s.push('\n');

    // ── Top-N slowest ──────────────────────────────────────────────
    let mut slowest: Vec<&&RequestPhases> = completed.iter().collect();
    // Ties broken by id so the listing is stable across runs.
    slowest.sort_by_key(|p| (std::cmp::Reverse(p.e2e()), p.id));
    slowest.truncate(opts.top);
    let _ = writeln!(
        s,
        "top {} slowest requests (Q queue · P prefill · D decode · S stall)",
        slowest.len()
    );
    for p in &slowest {
        let _ = writeln!(
            s,
            "  req {:<6} e2e {:>7}  q {:>6}  p {:>6}  d {:>6}  s {:>6}  |{}|",
            p.id,
            p.e2e(),
            p.queue_wait,
            p.prefill,
            p.decode,
            p.stall,
            timeline(p, opts.timeline_width)
        );
    }
    s.push('\n');

    // ── Anomalies ──────────────────────────────────────────────────
    let _ = writeln!(s, "anomalies");
    let mut any = false;
    for p in &completed {
        if p.stall_share() > 0.5 {
            let _ = writeln!(
                s,
                "  req {}: stalled {:.1}% of lifetime (> 50% preempted)",
                p.id,
                p.stall_share() * 100.0
            );
            any = true;
        }
        if p.queue_share() > 0.5 {
            let _ = writeln!(
                s,
                "  req {}: queued {:.1}% of lifetime (> 50% waiting)",
                p.id,
                p.queue_share() * 100.0
            );
            any = true;
        }
    }
    if rejected > 0 {
        let _ = writeln!(s, "  {rejected} request(s) rejected (queue backpressure)");
        any = true;
    }
    if in_flight > 0 {
        let _ = writeln!(s, "  {in_flight} request(s) incomplete at end of log");
        any = true;
    }
    if !any {
        let _ = writeln!(s, "  none");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventKind;

    fn ev(tick: u64, req: u64, kind: EventKind) -> Event {
        Event {
            tick,
            req,
            kind,
            replica: None,
        }
    }

    fn sample_events() -> Vec<Event> {
        vec![
            // req 1: queued 0→4, first token 10, stalled 14→20, done 30.
            ev(0, 1, EventKind::Enqueued),
            ev(4, 1, EventKind::Admitted { prefix_hit: 4 }),
            ev(10, 1, EventKind::FirstToken),
            ev(14, 1, EventKind::Preempted),
            ev(20, 1, EventKind::Resumed { prefix_hit: 0 }),
            ev(30, 1, EventKind::Completed { tokens: 6 }),
            // req 2: mostly stalled (> 50% → anomaly).
            ev(0, 2, EventKind::Enqueued),
            ev(1, 2, EventKind::Admitted { prefix_hit: 0 }),
            ev(2, 2, EventKind::FirstToken),
            ev(3, 2, EventKind::Preempted),
            ev(18, 2, EventKind::Resumed { prefix_hit: 0 }),
            ev(20, 2, EventKind::Completed { tokens: 2 }),
            // req 3: bounced off the queue.
            ev(5, 3, EventKind::Rejected),
        ]
    }

    #[test]
    fn dashboard_sections_render_and_are_deterministic() {
        let events = sample_events();
        let a = render_analysis(&events, &AnalyzeOptions::default());
        let b = render_analysis(&events, &AnalyzeOptions::default());
        assert_eq!(a, b, "analysis must be byte-stable");
        assert!(a.contains("3 requests (2 completed, 1 rejected, 0 in-flight)"));
        assert!(a.contains("phase breakdown"));
        // e2e share row is exactly 100% of itself.
        assert!(a.contains("e2e"));
        assert!(a.contains("100.0%"));
        assert!(a.contains("goodput"));
        assert!(a.contains("tokens generated     8"));
        assert!(a.contains("top 2 slowest requests"));
        assert!(a.contains("req 1"));
        // req 2 stalled 15/20 = 75% of its lifetime.
        assert!(a.contains("req 2: stalled 75.0% of lifetime"));
        assert!(a.contains("1 request(s) rejected"));
    }

    #[test]
    fn replica_stamped_logs_get_a_per_replica_phase_table() {
        // Unstamped logs must not grow the new section.
        let plain = render_analysis(&sample_events(), &AnalyzeOptions::default());
        assert!(!plain.contains("phase breakdown by replica"));

        // Stamp req 1 onto replica 0 and req 2 onto replica 3.
        let stamped: Vec<Event> = sample_events()
            .into_iter()
            .map(|e| Event {
                replica: match e.req {
                    1 => Some(0),
                    2 => Some(3),
                    _ => None,
                },
                ..e
            })
            .collect();
        let a = render_analysis(&stamped, &AnalyzeOptions::default());
        let b = render_analysis(&stamped, &AnalyzeOptions::default());
        assert_eq!(a, b, "replica grouping must stay byte-stable");
        assert!(a.contains("phase breakdown by replica"));
        assert!(a.contains("replica 0 — 6 events, 1 requests completed"));
        assert!(a.contains("replica 3 — 6 events, 1 requests completed"));
    }

    #[test]
    fn timeline_orders_phases_chronologically() {
        let events = sample_events();
        let phases = phase_breakdowns(&events);
        let p1 = phases.iter().find(|p| p.id == 1).unwrap();
        let bar = timeline(p1, 30);
        assert_eq!(bar.len(), 30);
        // Q then P then D, with an S stall strictly inside the D span.
        let first_q = bar.find('Q').unwrap();
        let first_p = bar.find('P').unwrap();
        let first_d = bar.find('D').unwrap();
        let first_s = bar.find('S').unwrap();
        assert!(first_q < first_p && first_p < first_d && first_d < first_s);
        assert!(
            bar.rfind('D').unwrap() > first_s,
            "decode resumes after stall"
        );
        assert!(!bar.contains('-'));
    }

    #[test]
    fn incomplete_and_empty_logs_do_not_panic() {
        let text = render_analysis(&[], &AnalyzeOptions::default());
        assert!(text.contains("0 requests"));
        assert!(text.contains("goodput              0.000 tok/ktick"));

        let events = [
            ev(0, 9, EventKind::Enqueued),
            ev(2, 9, EventKind::Admitted { prefix_hit: 0 }),
        ];
        let text = render_analysis(&events, &AnalyzeOptions::default());
        assert!(text.contains("1 in-flight"));
        assert!(text.contains("1 request(s) incomplete at end of log"));
    }
}
