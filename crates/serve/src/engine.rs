//! The continuous-batching scheduler.
//!
//! [`ServeEngine`] runs the serving loop over a fixed pool of KV-cache
//! slots: admit queued requests while slots are free, advance one prefill
//! chunk per admitted-but-cold request, then run **one batched decode
//! step** across every warm request, evicting finished sequences and
//! back-filling from the queue (DESIGN.md §11).
//!
//! When the backend serves **paged KV** (its [`Backend::block_config`]
//! returns `Some`), admission is additionally gated on the block budget
//! (DESIGN.md §12): a request is admitted only when its prompt's blocks
//! can be granted, common prompt prefixes are resolved against a radix
//! index so shared blocks are reused instead of recomputed, and when the
//! arena runs dry mid-decode the youngest sequence is **preempted** — its
//! blocks are released and it is re-queued for recompute. Because K/V
//! rows are a deterministic function of the token prefix and every
//! request carries its own seeded sampler, prefix sharing and preemption
//! are invisible in the token streams: every completion stays
//! byte-identical to the flat slot-pool engine.
//!
//! Time is a **virtual clock** in backend-defined ticks (token forwards on
//! the CPU backend, simulated device cycles on the accelerator), so every
//! latency in a [`Completion`] — and therefore the whole serve-bench
//! report — is bit-reproducible across machines and wall-clock noise.
//!
//! Two drivers are provided:
//!
//! * [`ServeEngine::run_with_source`] — single-threaded, pulls from a
//!   [`TrafficSource`]; the deterministic path serve-bench uses.
//! * [`ServeEngine::run_queue`] — pulls requests from an
//!   [`speedllm_llama::sync`] channel and pushes completions to another;
//!   the threaded serving front door (a bounded request channel gives
//!   admission backpressure). Token streams are still deterministic per
//!   request; arrival interleaving is whatever the threads produce.

use std::cmp::Ordering;
use std::collections::VecDeque;

use speedllm_telemetry as tel;

use speedllm_llama::forward::Transformer;
use speedllm_llama::kv_cache::{KvCache, KvCachePool, PooledSlot};
use speedllm_llama::sampler::{argmax, Sampler, SamplerKind};
use speedllm_llama::sync::{Receiver, RecvError, Sender, TryRecvError};
use speedllm_llama::tokenizer::{TOKEN_BOS, TOKEN_EOS};
use speedllm_pagedkv::{BlockAllocator, BlockId, RadixIndex};

use crate::backend::Backend;
use crate::events::{Event, EventKind, ServeRecorder};

/// Appends a lifecycle event when a recorder is attached. A free
/// function so call sites inside field-level borrows of the engine can
/// reach the recorder without re-borrowing `self`.
fn record(rec: &mut Option<ServeRecorder>, tick: u64, req: u64, kind: EventKind) {
    if let Some(r) = rec.as_mut() {
        r.events.push(Event {
            tick,
            req,
            kind,
            replica: None,
        });
    }
}

/// One generation request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Caller-chosen id, echoed in the [`Completion`].
    pub id: u64,
    /// Prompt token ids (BOS included), non-empty, at most `seq_len`.
    pub prompt: Vec<u32>,
    /// Budget of new tokens (further clamped by the context window).
    pub max_new_tokens: usize,
    /// Stop when EOS/BOS is sampled (the token is not emitted).
    pub stop_at_eos: bool,
    /// Sampling policy.
    pub sampler: SamplerKind,
    /// Seed of this request's private sampler — what makes its token
    /// stream independent of batch composition.
    pub seed: u64,
    /// Arrival tick (virtual time).
    pub arrival: u64,
}

/// A finished request with its token output and lifecycle timestamps
/// (all in virtual ticks).
#[derive(Debug, Clone)]
pub struct Completion {
    /// Echo of [`Request::id`].
    pub id: u64,
    /// Generated token ids (EOS excluded).
    pub tokens: Vec<u32>,
    /// Echo of [`Request::arrival`].
    pub arrival: u64,
    /// When the request left the queue and took a slot (first admission —
    /// a preempted request keeps its original timestamp).
    pub admitted_at: u64,
    /// When the first generated token was sampled (None for zero-token
    /// completions).
    pub first_token_at: Option<u64>,
    /// When the request finished and released its slot.
    pub finished_at: u64,
    /// Pool index of the slot that hosted the sequence (the last one, if
    /// the request was preempted and resumed).
    pub slot_index: usize,
    /// Admission order (0-based, strictly increasing with queue order).
    pub admission_seq: u64,
    /// Virtual tick each token was sampled at (`token_ticks[0]` equals
    /// `first_token_at`); consecutive differences are the inter-token
    /// latencies feeding `ServeReport::itl_ticks`.
    pub token_ticks: Vec<u64>,
}

impl Completion {
    /// Time to first token, from arrival.
    #[must_use]
    pub fn ttft(&self) -> Option<u64> {
        self.first_token_at.map(|t| t - self.arrival)
    }

    /// End-to-end latency, from arrival.
    #[must_use]
    pub fn e2e(&self) -> u64 {
        self.finished_at - self.arrival
    }
}

/// Unified mixed-batch scheduling (Sarathi-style, DESIGN.md §14): one
/// tick carries decode rows **and** prefill-chunk rows in a single
/// weight-streaming pass, under a per-tick token budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnifiedConfig {
    /// Token rows one tick may carry, decode + prefill combined
    /// (clamped to 1..=64, the on-chip staging limit).
    pub token_budget: usize,
    /// Share of the budget reserved for prefill rows when both decode
    /// candidates and cold sequences compete, in percent (clamped to
    /// 0..=100). At least one decode row always fits, and budget left
    /// over by either side flows to the other.
    pub prefill_pct: u32,
}

impl Default for UnifiedConfig {
    fn default() -> Self {
        Self {
            token_budget: 16,
            prefill_pct: 50,
        }
    }
}

/// Scheduler parameters.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// KV-cache slots — the hard concurrency limit. With a paged backend
    /// a slot is only a block table, so this is typically set to the
    /// block budget and admission is gated on blocks instead.
    pub slots: usize,
    /// Max sequences per batched decode step (clamped to 1..=64, the
    /// on-chip staging limit). Ignored by the unified scheduler, whose
    /// token budget is the batch cap.
    pub max_batch: usize,
    /// Prefill chunk length (clamped to 1..=64).
    pub prefill_chunk: usize,
    /// Bounded request-queue depth — admission backpressure.
    pub queue_cap: usize,
    /// `Some` switches the engine to the unified mixed prefill+decode
    /// scheduler; `None` keeps the phase-serialized PR 5 loop.
    pub unified: Option<UnifiedConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            slots: 4,
            max_batch: 8,
            prefill_chunk: 16,
            queue_cap: 64,
            unified: None,
        }
    }
}

/// Aggregate scheduler counters (monotone over the engine's life).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeStats {
    /// Scheduler iterations run.
    pub iterations: u64,
    /// Batched decode passes issued.
    pub decode_batches: u64,
    /// Largest decode batch observed.
    pub max_batch_observed: usize,
    /// Prefill chunks issued.
    pub prefill_chunks: u64,
    /// Requests admitted (first admissions; resumes not re-counted).
    pub admitted: u64,
    /// Requests completed.
    pub completed: u64,
    /// Submissions bounced off the full queue (backpressure).
    pub rejected: u64,
    /// Sequences preempted to reclaim KV blocks (paged backends only).
    pub preemptions: u64,
    /// Prompt tokens skipped at admission thanks to radix prefix hits.
    pub prefix_hit_tokens: u64,
    /// Cached blocks reclaimed from the radix index under pressure.
    pub cache_evicted_blocks: u64,
    /// High-water mark of allocated KV blocks (paged backends only).
    pub peak_blocks_in_use: u64,
    /// Largest number of concurrently admitted sequences observed.
    pub max_active_observed: usize,
    /// Unified mixed ticks executed (unified scheduler only). Not
    /// rendered in reports, so legacy report bytes are unchanged.
    pub mixed_ticks: u64,
    /// Ticks that carried decode rows and prefill rows together — the
    /// overlap the unified scheduler exists to create. Not rendered.
    pub overlap_ticks: u64,
    /// Most token rows one tick has carried. Not rendered.
    pub max_tick_tokens: usize,
    /// Decode rows pushed to a later tick by the token budget (the
    /// sampled token is kept, never re-sampled). Not rendered.
    pub deferred_decodes: u64,
    /// Speculative verify rounds run (one per sequence per verify pass).
    /// Rendered — with the two counters below — only when nonzero, so
    /// non-speculative report bytes are unchanged.
    pub spec_rounds: u64,
    /// Draft tokens proposed across all speculative rounds.
    pub spec_drafted: u64,
    /// Draft tokens accepted (the sampler chose the drafted token).
    pub spec_accepted: u64,
}

/// A stream of requests the synchronous driver pulls from. `poll` may be
/// called repeatedly with the same `now`; implementations hand out each
/// request exactly once.
pub trait TrafficSource {
    /// Requests due at or before `now`, at most `room` of them (the free
    /// space in the engine's bounded queue — backpressure holds the rest
    /// back). `outstanding` is queued + in-flight, for closed-loop pacing.
    fn poll(&mut self, now: u64, outstanding: usize, room: usize) -> Vec<Request>;

    /// Earliest tick at which `poll` could return something, for idle
    /// jumps; may be in the past. `None` when exhausted.
    fn next_arrival(&self, outstanding: usize) -> Option<u64>;

    /// True once every request has been handed out.
    fn is_exhausted(&self) -> bool;
}

/// An admitted, in-flight request.
struct Active<B: Backend> {
    req: Request,
    slot: PooledSlot<B::Slot>,
    sampler: Sampler,
    /// Context tokens prefilled so far (against `resume_context` when the
    /// request was preempted, else against the prompt).
    prefilled: usize,
    /// Logits after the last forward (valid once fully prefilled).
    logits: Vec<f32>,
    generated: Vec<u32>,
    /// Prompt + generated-so-far of a resumed request: what must be
    /// re-prefilled before decoding continues. `None` for first runs.
    resume_context: Option<Vec<u32>>,
    /// A sampled token that is already in `generated` but not yet
    /// forwarded into the KV cache; consumed without re-sampling. The
    /// unified scheduler parks budget-deferred tokens here, and the
    /// speculative scheduler parks the token each verify round scores
    /// first (the two modes are mutually exclusive).
    pending: Option<u32>,
    /// The draft model's private KV cache (speculative mode only; `None`
    /// until the sequence's first speculative round). Dropped on
    /// preemption — the draft resyncs from the token history for free.
    draft_kv: Option<KvCache>,
    /// One past the last position the budget/context allows.
    end_pos: usize,
    admitted_at: u64,
    first_token_at: Option<u64>,
    admission_seq: u64,
    /// Sampling tick of each generated token (parallel to `generated`).
    token_ticks: Vec<u64>,
}

impl<B: Backend> Active<B> {
    /// Tokens that must be in the KV context before decode can proceed.
    fn ctx_len(&self) -> usize {
        self.resume_context
            .as_ref()
            .map_or(self.req.prompt.len(), Vec::len)
    }
}

/// A preempted request waiting to re-enter: everything needed to resume
/// its exact token stream after its KV blocks were taken away.
struct Preempted {
    req: Request,
    /// The request's seeded sampler, carried across the preemption so the
    /// continuation samples exactly what an uninterrupted run would.
    sampler: Sampler,
    generated: Vec<u32>,
    /// Prompt + generated at preemption time: the context to re-prefill.
    resume_context: Vec<u32>,
    admitted_at: u64,
    first_token_at: Option<u64>,
    admission_seq: u64,
    /// Sampling tick of each generated token, carried across the stall.
    token_ticks: Vec<u64>,
}

/// Block-budget state of a paged backend: the allocator over the shared
/// arena plus the radix prefix index.
struct PagedKv {
    alloc: BlockAllocator,
    radix: RadixIndex,
}

/// Speculative-decoding state (DESIGN.md §16): the shared draft model
/// and the speculation depth. Enabled via
/// [`ServeEngine::enable_speculative`]; replaces the legacy decode phase.
struct SpecServe {
    /// The small proposer, shared across sequences (each sequence keeps
    /// its own [`Active::draft_kv`]).
    draft: Transformer,
    /// Draft tokens proposed per verify round (clamped per round by the
    /// remaining budget, context window, and granted blocks).
    k: usize,
}

/// Admission candidate: resumes take priority over fresh arrivals so
/// preemption cannot starve an old request.
enum Cand {
    Resumed(Preempted),
    Fresh(Request),
}

/// The continuous-batching engine. Generic over the [`Backend`]; all
/// scheduling state (queue, pool, block budget, virtual clock) lives here.
pub struct ServeEngine<B: Backend> {
    backend: B,
    cfg: ServeConfig,
    pool: KvCachePool<B::Slot>,
    queue: VecDeque<Request>,
    active: Vec<Active<B>>,
    /// Preempted requests, oldest admission first.
    preempted: VecDeque<Preempted>,
    paged: Option<PagedKv>,
    now: u64,
    admission_seq: u64,
    stats: ServeStats,
    seq_len: usize,
    /// Speculative-decoding state; `Some` switches the legacy scheduler's
    /// decode phase to draft-then-verify rounds.
    spec: Option<SpecServe>,
    /// Optional observability sink (lifecycle events + tick samples).
    /// Recording is pure observation: it never touches the clock,
    /// samplers, or KV state, so token streams and reports are
    /// bit-identical with or without it.
    recorder: Option<ServeRecorder>,
    /// Decode rows carried by the current scheduler iteration.
    tick_decode_rows: usize,
    /// Prefill token rows carried by the current scheduler iteration.
    tick_prefill_tokens: usize,
}

impl<B: Backend> ServeEngine<B> {
    /// Builds an engine with `cfg.slots` pre-allocated slots. A paged
    /// backend (one whose [`Backend::block_config`] is `Some`) switches
    /// admission to the block budget.
    ///
    /// # Panics
    /// Panics when a paged backend's arena is too small to ever host one
    /// full-context sequence (`n_blocks * block_size < seq_len`) — such
    /// an engine could deadlock.
    pub fn new(backend: B, cfg: ServeConfig) -> Self {
        let cfg = ServeConfig {
            slots: cfg.slots.max(1),
            max_batch: cfg.max_batch.clamp(1, 64),
            prefill_chunk: cfg.prefill_chunk.clamp(1, 64),
            queue_cap: cfg.queue_cap.max(1),
            unified: cfg.unified.map(|u| UnifiedConfig {
                token_budget: u.token_budget.clamp(1, 64),
                prefill_pct: u.prefill_pct.min(100),
            }),
        };
        let seq_len = backend.config().seq_len;
        let paged = backend.block_config().map(|bc| {
            assert!(
                bc.n_blocks >= seq_len.div_ceil(bc.block_size),
                "{} blocks of {} tokens cannot host one full context of {}",
                bc.n_blocks,
                bc.block_size,
                seq_len
            );
            PagedKv {
                alloc: BlockAllocator::new(bc),
                radix: RadixIndex::new(bc.block_size),
            }
        });
        let pool = KvCachePool::new(cfg.slots, || backend.new_slot());
        Self {
            backend,
            cfg,
            pool,
            queue: VecDeque::new(),
            active: Vec::new(),
            preempted: VecDeque::new(),
            paged,
            now: 0,
            admission_seq: 0,
            stats: ServeStats::default(),
            seq_len,
            spec: None,
            recorder: None,
            tick_decode_rows: 0,
            tick_prefill_tokens: 0,
        }
    }

    /// Attaches an observability recorder; subsequent requests emit
    /// lifecycle events and every [`ServeEngine::step`] appends one tick
    /// sample. Replaces any previous recorder.
    pub fn attach_recorder(&mut self, recorder: ServeRecorder) {
        self.recorder = Some(recorder);
    }

    /// The attached recorder, if any.
    #[must_use]
    pub fn recorder(&self) -> Option<&ServeRecorder> {
        self.recorder.as_ref()
    }

    /// Detaches and returns the recorder (e.g. to export after a run).
    pub fn take_recorder(&mut self) -> Option<ServeRecorder> {
        self.recorder.take()
    }

    /// Switches the legacy scheduler's decode phase to speculative
    /// draft-then-verify rounds (DESIGN.md §16): `draft` proposes up to
    /// `k` greedy continuations per sequence per round, one batched
    /// verify pass scores every row, and each request's own sampler
    /// accepts the longest agreeing prefix — token streams stay
    /// bit-identical to plain decode for any sampler.
    ///
    /// # Errors
    /// Rejects `k == 0` (nothing to speculate), `k > 63` (a run of
    /// `k + 1` rows would exceed the on-chip staging limit), a draft
    /// whose vocabulary differs from the target's (draft proposals would
    /// be meaningless token ids), a draft whose context window is
    /// shorter than the target's (it could not follow a full-length
    /// sequence), and engines configured with the unified scheduler
    /// (speculation replaces the legacy decode phase only).
    pub fn enable_speculative(&mut self, draft: Transformer, k: usize) -> Result<(), String> {
        if self.cfg.unified.is_some() {
            return Err(
                "speculative decoding replaces the legacy decode phase and cannot be \
                 combined with the unified scheduler"
                    .to_string(),
            );
        }
        if k == 0 {
            return Err("speculative depth k must be >= 1".to_string());
        }
        if k > 63 {
            return Err(format!(
                "speculative depth {k} exceeds the verify staging limit of 63 draft rows"
            ));
        }
        let target = self.backend.config();
        let d = draft.config();
        if d.vocab_size != target.vocab_size {
            return Err(format!(
                "draft vocabulary ({}) does not match the target's ({})",
                d.vocab_size, target.vocab_size
            ));
        }
        if d.seq_len < target.seq_len {
            return Err(format!(
                "draft context window ({}) is shorter than the target's ({})",
                d.seq_len, target.seq_len
            ));
        }
        self.spec = Some(SpecServe { draft, k });
        Ok(())
    }

    /// True when speculative decoding is enabled.
    #[must_use]
    pub fn speculative(&self) -> bool {
        self.spec.is_some()
    }

    /// The scheduler configuration (after clamping).
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The backend.
    #[must_use]
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Scheduler counters.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// Slot acquisitions that reused a previously released slot.
    #[must_use]
    pub fn slot_reuses(&self) -> u64 {
        self.pool.reuse_count()
    }

    /// True when every slot has been released back to the pool.
    #[must_use]
    pub fn all_slots_free(&self) -> bool {
        self.pool.all_free()
    }

    /// Queued + in-flight + preempted requests.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.queue.len() + self.active.len() + self.preempted.len()
    }

    /// True when there is nothing queued, in flight, or preempted.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.outstanding() == 0
    }

    /// KV blocks currently allocated (0 for flat backends).
    #[must_use]
    pub fn blocks_in_use(&self) -> usize {
        self.paged.as_ref().map_or(0, |p| p.alloc.in_use())
    }

    /// KV blocks retained by the radix prefix cache (0 for flat backends).
    #[must_use]
    pub fn blocks_cached(&self) -> usize {
        self.paged.as_ref().map_or(0, |p| p.radix.cached_blocks())
    }

    /// Structural check of the paged-KV bookkeeping: free-list/refcount
    /// conservation and radix-tree invariants. `Ok` for flat backends.
    pub fn check_paged_invariants(&self) -> Result<(), String> {
        match &self.paged {
            None => Ok(()),
            Some(p) => {
                p.alloc.check_invariants()?;
                p.radix.check_invariants(&p.alloc)
            }
        }
    }

    /// Longest prefix of `tokens` the radix prefix cache could serve at
    /// admission, in tokens. A pure probe (no refcounts taken, no LRU
    /// stamps touched) capped exactly like admission caps its lookup —
    /// at least one token is always left to prefill — so a cluster
    /// router can rank replicas by the hit each would actually credit.
    /// Always 0 on flat (non-paged) backends.
    #[must_use]
    pub fn prefix_hit_len(&self, tokens: &[u32]) -> usize {
        match &self.paged {
            None => 0,
            Some(p) => {
                let bs = p.radix.block_size();
                let cap = tokens.len().saturating_sub(1) / bs * bs;
                p.radix.longest_prefix_len(tokens).min(cap)
            }
        }
    }

    /// Drains every incomplete request — queued, in flight, and
    /// preempted — handing back the **original** [`Request`]s so a
    /// cluster router can re-route them after a replica failure. Slots
    /// and KV blocks are released with the same bookkeeping as
    /// preemption (radix-cached blocks survive, like a drain for
    /// maintenance); per-request progress is discarded, which is safe
    /// because seeded samplers regenerate bit-identical streams from
    /// scratch on any replica. Returns admitted requests first in
    /// admission order, then the queue in FIFO order.
    pub fn take_incomplete(&mut self) -> Vec<Request> {
        let mut admitted: Vec<(u64, Request)> = Vec::new();
        for mut a in std::mem::take(&mut self.active) {
            if let Some(table) = B::slot_table_mut(a.slot.state_mut()) {
                let chain = table.take_blocks();
                let paged = self.paged.as_mut().expect("paged backend");
                let mut freed = Vec::new();
                for b in chain {
                    if paged.alloc.release(b) {
                        freed.push(b);
                    }
                }
                if !freed.is_empty() {
                    self.backend.on_blocks_freed(&freed);
                }
            }
            self.pool.release(a.slot);
            admitted.push((a.admission_seq, a.req));
        }
        for p in std::mem::take(&mut self.preempted) {
            admitted.push((p.admission_seq, p.req));
        }
        admitted.sort_by_key(|&(seq, _)| seq);
        let mut out: Vec<Request> = admitted.into_iter().map(|(_, r)| r).collect();
        out.extend(self.queue.drain(..));
        debug_assert!(self.is_idle() && self.all_slots_free());
        debug_assert!(self.check_paged_invariants().is_ok());
        out
    }

    /// Enqueues a request, or hands it back when the bounded queue is full
    /// (admission backpressure). Rejections are counted in
    /// [`ServeStats::rejected`].
    ///
    /// # Panics
    /// Panics on an empty prompt or one longer than the context window —
    /// such a request could never be served.
    pub fn submit(&mut self, req: Request) -> Result<(), Request> {
        assert!(!req.prompt.is_empty(), "empty prompt");
        assert!(
            req.prompt.len() <= self.seq_len,
            "prompt of {} tokens exceeds context window {}",
            req.prompt.len(),
            self.seq_len
        );
        if self.queue.len() >= self.cfg.queue_cap {
            self.stats.rejected += 1;
            if tel::enabled() {
                tel::metrics::counter_add("serve.rejected", 1);
            }
            record(&mut self.recorder, req.arrival, req.id, EventKind::Rejected);
            return Err(req);
        }
        record(&mut self.recorder, req.arrival, req.id, EventKind::Enqueued);
        self.queue.push_back(req);
        Ok(())
    }

    /// Runs one scheduler iteration: admit → prefill chunks → one batched
    /// decode step → evict. Returns the requests that finished.
    pub fn step(&mut self) -> Vec<Completion> {
        let _g = tel::span("serve", "step").arg("active", self.active.len() as i64);
        self.stats.iterations += 1;
        self.tick_decode_rows = 0;
        self.tick_prefill_tokens = 0;
        self.admit();
        self.stats.max_active_observed = self.stats.max_active_observed.max(self.active.len());
        self.note_block_peak();
        let finished = match self.cfg.unified {
            Some(u) => self.unified_tick(u),
            None => {
                self.prefill_phase();
                if self.spec.is_some() {
                    self.spec_decode_phase()
                } else {
                    self.decode_phase()
                }
            }
        };
        self.note_block_peak();
        let done = self.evict(finished);
        let tick_tokens = self.tick_decode_rows + self.tick_prefill_tokens;
        if tel::enabled() {
            tel::metrics::gauge_set("serve.queue_depth", self.queue.len() as f64);
            tel::metrics::gauge_set("serve.active", self.active.len() as f64);
            // Emitted for both schedulers so legacy/unified ablations
            // compare like-for-like (the unified path used to be the
            // only one setting this).
            tel::metrics::gauge_set("serve.tick_tokens", tick_tokens as f64);
            if self.paged.is_some() {
                tel::metrics::gauge_set("serve.blocks_in_use", self.blocks_in_use() as f64);
                tel::metrics::gauge_set("serve.blocks_cached", self.blocks_cached() as f64);
                let frag = self.kv_fragmentation();
                tel::metrics::gauge_set("serve.kv_fragmentation", frag);
            }
        }
        if self.recorder.is_some() {
            // The per-tick token capacity: the unified token budget, or
            // the legacy decode batch cap.
            let budget = self
                .cfg
                .unified
                .map_or(self.cfg.max_batch, |u| u.token_budget);
            let row = [
                self.now as f64,
                self.queue.len() as f64,
                self.active.len() as f64,
                self.preempted.len() as f64,
                self.tick_decode_rows as f64,
                self.tick_prefill_tokens as f64,
                tick_tokens as f64,
                tick_tokens as f64 / budget.max(1) as f64,
                self.blocks_in_use() as f64,
                self.blocks_cached() as f64,
                self.stats.prefix_hit_tokens as f64,
                self.stats.preemptions as f64,
            ];
            if let Some(r) = self.recorder.as_mut() {
                r.ticks.push(&row);
            }
        }
        done
    }

    /// Records the block high-water mark.
    fn note_block_peak(&mut self) {
        if let Some(p) = &self.paged {
            self.stats.peak_blocks_in_use =
                self.stats.peak_blocks_in_use.max(p.alloc.in_use() as u64);
        }
    }

    /// Internal fragmentation of the granted blocks: 1 − used/capacity
    /// over all active block tables (0.0 when nothing is active).
    fn kv_fragmentation(&mut self) -> f64 {
        if self.paged.is_none() {
            return 0.0;
        }
        let (mut used, mut cap) = (0usize, 0usize);
        for a in &mut self.active {
            if let Some(t) = B::slot_table_mut(a.slot.state_mut()) {
                used += t.len();
                cap += t.capacity_tokens();
            }
        }
        if cap == 0 {
            0.0
        } else {
            1.0 - used as f64 / cap as f64
        }
    }

    /// Moves queued requests into free slots, FIFO. Paged backends gate
    /// on the block budget too.
    fn admit(&mut self) {
        if self.paged.is_some() {
            self.admit_paged();
            return;
        }
        while self.pool.available() > 0 {
            let Some(req) = self.queue.pop_front() else {
                break;
            };
            let reuses_before = self.pool.reuse_count();
            let slot = self.pool.acquire().expect("availability checked");
            if tel::enabled() {
                tel::metrics::counter_add(
                    "serve.slot_reuse",
                    self.pool.reuse_count() - reuses_before,
                );
            }
            let end_pos = (req.prompt.len() + req.max_new_tokens).min(self.seq_len);
            let sampler = Sampler::new(req.sampler, req.seed);
            record(
                &mut self.recorder,
                self.now,
                req.id,
                EventKind::Admitted { prefix_hit: 0 },
            );
            self.active.push(Active {
                end_pos,
                sampler,
                slot,
                prefilled: 0,
                logits: Vec::new(),
                generated: Vec::new(),
                resume_context: None,
                pending: None,
                draft_kv: None,
                admitted_at: self.now,
                first_token_at: None,
                admission_seq: self.admission_seq,
                token_ticks: Vec::new(),
                req,
            });
            self.admission_seq += 1;
            self.stats.admitted += 1;
        }
    }

    /// Block-budget admission: resolve the context against the radix
    /// prefix index, retain the hit blocks, allocate the rest (evicting
    /// cold cache entries if needed), and credit the matched prefix so
    /// prefill skips straight to the divergence point. Resumed requests
    /// go first, then the FIFO queue; admission stops at the first
    /// candidate whose blocks cannot be granted.
    fn admit_paged(&mut self) {
        while self.pool.available() > 0 {
            let cand = match self.preempted.pop_front() {
                Some(p) => Cand::Resumed(p),
                None => match self.queue.pop_front() {
                    Some(r) => Cand::Fresh(r),
                    None => break,
                },
            };
            let ctx: &[u32] = match &cand {
                Cand::Resumed(p) => &p.resume_context,
                Cand::Fresh(r) => &r.prompt,
            };
            let paged = self.paged.as_mut().expect("paged admission");
            let bs = paged.alloc.block_size();
            let total_blocks = ctx.len().div_ceil(bs);
            // Cap the usable prefix one token short of the context, so at
            // least one token is actually prefilled and yields logits.
            let cap = (ctx.len() - 1) / bs * bs;
            let hit = paged.radix.lookup(ctx, cap);
            for &b in &hit {
                paged.alloc.retain(b);
            }
            let new_needed = total_blocks - hit.len();
            let mut evicted: Vec<BlockId> = Vec::new();
            if paged.alloc.free_blocks() < new_needed {
                let short = new_needed - paged.alloc.free_blocks();
                evicted = paged.radix.evict(short, &mut paged.alloc);
            }
            let enough = paged.alloc.free_blocks() >= new_needed;
            if !enough {
                // Undo the prefix retains; the tree still holds them.
                for &b in &hit {
                    let freed = paged.alloc.release(b);
                    debug_assert!(!freed, "prefix-hit block freed by unretain");
                }
            }
            self.stats.cache_evicted_blocks += evicted.len() as u64;
            if !evicted.is_empty() {
                let needy = match &cand {
                    Cand::Resumed(p) => p.req.id,
                    Cand::Fresh(r) => r.id,
                };
                record(
                    &mut self.recorder,
                    self.now,
                    needy,
                    EventKind::EvictedCacheBlock {
                        blocks: evicted.len() as u32,
                    },
                );
                self.backend.on_blocks_freed(&evicted);
            }
            let matched = hit.len() * bs;
            if !enough {
                match cand {
                    Cand::Resumed(p) => self.preempted.push_front(p),
                    Cand::Fresh(r) => self.queue.push_front(r),
                }
                break;
            }
            let reuses_before = self.pool.reuse_count();
            let mut slot = self.pool.acquire().expect("availability checked");
            if tel::enabled() {
                tel::metrics::counter_add(
                    "serve.slot_reuse",
                    self.pool.reuse_count() - reuses_before,
                );
            }
            {
                let paged = self.paged.as_mut().expect("paged admission");
                let table = B::slot_table_mut(slot.state_mut())
                    .expect("paged backend must expose block tables");
                debug_assert!(table.is_empty(), "pooled paged slot came back unstripped");
                for &b in &hit {
                    table.push_block(b);
                }
                for _ in 0..new_needed {
                    table.push_block(paged.alloc.alloc().expect("free blocks were checked"));
                }
                table.set_len(matched);
            }
            self.stats.prefix_hit_tokens += matched as u64;
            if tel::enabled() && matched > 0 {
                tel::metrics::counter_add("serve.prefix_hit_tokens", matched as u64);
            }
            match cand {
                Cand::Fresh(req) => {
                    let end_pos = (req.prompt.len() + req.max_new_tokens).min(self.seq_len);
                    let sampler = Sampler::new(req.sampler, req.seed);
                    record(
                        &mut self.recorder,
                        self.now,
                        req.id,
                        EventKind::Admitted {
                            prefix_hit: matched as u32,
                        },
                    );
                    self.active.push(Active {
                        end_pos,
                        sampler,
                        slot,
                        prefilled: matched,
                        logits: Vec::new(),
                        generated: Vec::new(),
                        resume_context: None,
                        pending: None,
                        draft_kv: None,
                        admitted_at: self.now,
                        first_token_at: None,
                        admission_seq: self.admission_seq,
                        token_ticks: Vec::new(),
                        req,
                    });
                    self.admission_seq += 1;
                    self.stats.admitted += 1;
                }
                Cand::Resumed(p) => {
                    let end_pos = (p.req.prompt.len() + p.req.max_new_tokens).min(self.seq_len);
                    record(
                        &mut self.recorder,
                        self.now,
                        p.req.id,
                        EventKind::Resumed {
                            prefix_hit: matched as u32,
                        },
                    );
                    self.active.push(Active {
                        end_pos,
                        sampler: p.sampler,
                        slot,
                        prefilled: matched,
                        logits: Vec::new(),
                        generated: p.generated,
                        resume_context: Some(p.resume_context),
                        pending: None,
                        draft_kv: None,
                        admitted_at: p.admitted_at,
                        first_token_at: p.first_token_at,
                        admission_seq: p.admission_seq,
                        token_ticks: p.token_ticks,
                        req: p.req,
                    });
                }
            }
        }
    }

    /// Advances every cold request by one prefill chunk. When a paged
    /// request finishes its prefill, its full prompt blocks are inserted
    /// into the radix index so later requests can share them.
    fn prefill_phase(&mut self) {
        let chunk_len = self.cfg.prefill_chunk;
        for a in &mut self.active {
            let ctx_len = a.ctx_len();
            if a.prefilled >= ctx_len {
                continue;
            }
            let end = (a.prefilled + chunk_len).min(ctx_len);
            let chunk_owner: &[u32] = a.resume_context.as_deref().unwrap_or(&a.req.prompt);
            let chunk = &chunk_owner[a.prefilled..end];
            let _g = tel::span("serve", "prefill_chunk")
                .arg("req", a.req.id as i64)
                .arg("tokens", chunk.len() as i64);
            let chunk_tokens = chunk.len();
            let (logits, cost) = self.backend.prefill(a.slot.state_mut(), chunk, a.prefilled);
            self.now += cost;
            a.prefilled = end;
            self.stats.prefill_chunks += 1;
            self.tick_prefill_tokens += chunk_tokens;
            record(
                &mut self.recorder,
                self.now,
                a.req.id,
                EventKind::PrefillChunk {
                    tokens: chunk_tokens as u32,
                },
            );
            if a.prefilled < ctx_len {
                continue;
            }
            a.logits = logits;
            if let Some(paged) = &mut self.paged {
                let bs = paged.alloc.block_size();
                let full = a.req.prompt.len() / bs;
                if full > 0 {
                    let table = B::slot_table_mut(a.slot.state_mut()).expect("paged backend");
                    paged.radix.insert(
                        &a.req.prompt[..full * bs],
                        &table.blocks()[..full],
                        &mut paged.alloc,
                    );
                }
            }
        }
    }

    /// Grants one more block to every warm sequence about to outgrow its
    /// table. When the arena is dry: evict a cold radix entry; failing
    /// that, preempt the **youngest** sequence and retry. Termination is
    /// guaranteed because each preemption shrinks the active set and one
    /// sequence always fits the arena (checked at construction).
    fn ensure_decode_capacity(&mut self) {
        if self.paged.is_none() {
            return;
        }
        let mut i = 0;
        while i < self.active.len() {
            let needs = {
                let a = &mut self.active[i];
                let warm = a.prefilled >= a.ctx_len();
                let pos_next = a.req.prompt.len() + a.generated.len();
                // Only a sequence that will run the batched forward this
                // step can need a block (pos_next + 1 < end_pos; an EOS
                // sample may still skip it — the spare block is freed at
                // eviction).
                warm && pos_next + 1 < a.end_pos && {
                    let table = B::slot_table_mut(a.slot.state_mut()).expect("paged backend");
                    pos_next >= table.capacity_tokens()
                }
            };
            if !needs {
                i += 1;
                continue;
            }
            let (granted, evicted) = {
                let paged = self.paged.as_mut().expect("checked");
                match paged.alloc.alloc() {
                    Some(b) => (Some(b), Vec::new()),
                    None => {
                        let evicted = paged.radix.evict(1, &mut paged.alloc);
                        (paged.alloc.alloc(), evicted)
                    }
                }
            };
            self.stats.cache_evicted_blocks += evicted.len() as u64;
            if !evicted.is_empty() {
                let needy = self.active[i].req.id;
                record(
                    &mut self.recorder,
                    self.now,
                    needy,
                    EventKind::EvictedCacheBlock {
                        blocks: evicted.len() as u32,
                    },
                );
                self.backend.on_blocks_freed(&evicted);
            }
            match granted {
                Some(b) => {
                    B::slot_table_mut(self.active[i].slot.state_mut())
                        .expect("paged backend")
                        .push_block(b);
                    i += 1;
                }
                None => {
                    let victim = self
                        .active
                        .iter()
                        .enumerate()
                        .max_by_key(|(_, a)| a.admission_seq)
                        .map(|(j, _)| j)
                        .expect("active is non-empty");
                    self.preempt(victim);
                    match victim.cmp(&i) {
                        // The needy sequence preempted itself; the next
                        // sequence now sits at index i.
                        Ordering::Equal => {}
                        // Indices shifted down; retry the same sequence.
                        Ordering::Less => i -= 1,
                        // Retry the same sequence at the same index.
                        Ordering::Greater => {}
                    }
                }
            }
        }
    }

    /// Takes sequence `j` off the device: release its blocks (shared ones
    /// stay alive in the radix tree), free its slot, and park it —
    /// sampler, generated tokens and timestamps intact — for re-admission
    /// in original admission order.
    fn preempt(&mut self, j: usize) {
        let mut a = self.active.remove(j);
        let chain = B::slot_table_mut(a.slot.state_mut())
            .expect("paged backend")
            .take_blocks();
        let paged = self.paged.as_mut().expect("preempt is paged-only");
        let mut freed = Vec::new();
        for b in chain {
            if paged.alloc.release(b) {
                freed.push(b);
            }
        }
        if !freed.is_empty() {
            self.backend.on_blocks_freed(&freed);
        }
        self.pool.release(a.slot);
        self.stats.preemptions += 1;
        if tel::enabled() {
            tel::metrics::counter_add("serve.preemptions", 1);
        }
        record(&mut self.recorder, self.now, a.req.id, EventKind::Preempted);
        let mut resume_context = a.req.prompt.clone();
        resume_context.extend_from_slice(&a.generated);
        let p = Preempted {
            req: a.req,
            sampler: a.sampler,
            generated: a.generated,
            resume_context,
            admitted_at: a.admitted_at,
            first_token_at: a.first_token_at,
            admission_seq: a.admission_seq,
            token_ticks: a.token_ticks,
        };
        let pos = self
            .preempted
            .partition_point(|q| q.admission_seq < p.admission_seq);
        self.preempted.insert(pos, p);
    }

    /// Samples one token per warm request (mirroring the single-tenant
    /// loop: sample → EOS check → emit), then runs the batched forward for
    /// every request that still needs logits. Returns the indices of
    /// requests that finished this iteration.
    fn decode_phase(&mut self) -> Vec<usize> {
        self.ensure_decode_capacity();
        let mut finished: Vec<usize> = Vec::new();
        let mut members: Vec<usize> = Vec::new();
        let mut tokens: Vec<u32> = Vec::new();
        for (i, a) in self.active.iter_mut().enumerate() {
            if a.prefilled < a.ctx_len() {
                continue; // still cold
            }
            let pos_next = a.req.prompt.len() + a.generated.len();
            if pos_next >= a.end_pos {
                finished.push(i); // zero budget (e.g. max_new_tokens = 0)
                continue;
            }
            let next = a.sampler.sample(&a.logits);
            if a.req.stop_at_eos && (next == TOKEN_EOS || next == TOKEN_BOS) {
                finished.push(i);
                continue;
            }
            a.generated.push(next);
            a.token_ticks.push(self.now);
            if a.first_token_at.is_none() {
                a.first_token_at = Some(self.now);
                record(
                    &mut self.recorder,
                    self.now,
                    a.req.id,
                    EventKind::FirstToken,
                );
            }
            if pos_next + 1 >= a.end_pos {
                // Budget exhausted by this token; the single-tenant loop
                // would still run one last forward, but its logits are
                // never sampled — skipping it cannot change the output.
                finished.push(i);
                continue;
            }
            members.push(i);
            tokens.push(next);
        }

        // Batched forward, in groups of at most `max_batch`. Field-level
        // borrows: `slots` borrows `self.active`, the call borrows
        // `self.backend` — disjoint.
        let mut start = 0;
        while start < members.len() {
            let end = (start + self.cfg.max_batch).min(members.len());
            let idxs = &members[start..end];
            let toks = &tokens[start..end];
            let mut slots: Vec<&mut B::Slot> = Vec::with_capacity(idxs.len());
            {
                let mut want = idxs.iter().peekable();
                for (i, a) in self.active.iter_mut().enumerate() {
                    if want.peek() == Some(&&i) {
                        want.next();
                        slots.push(a.slot.state_mut());
                    }
                }
            }
            let _g = tel::span("serve", "decode_batch").arg("batch", idxs.len() as i64);
            let (logits, cost) = self.backend.decode(&mut slots, toks);
            drop(slots);
            self.now += cost;
            self.stats.decode_batches += 1;
            self.stats.max_batch_observed = self.stats.max_batch_observed.max(idxs.len());
            if tel::enabled() {
                tel::metrics::gauge_set("serve.batch_size", idxs.len() as f64);
            }
            self.tick_decode_rows += idxs.len();
            if self.recorder.is_some() {
                for &i in idxs {
                    let rid = self.active[i].req.id;
                    record(
                        &mut self.recorder,
                        self.now,
                        rid,
                        EventKind::DecodeTick {
                            batch: idxs.len() as u32,
                        },
                    );
                }
            }
            for (&i, l) in idxs.iter().zip(logits) {
                self.active[i].logits = l;
            }
            start = end;
        }
        finished
    }

    /// Speculative variant of [`ServeEngine::ensure_decode_capacity`]: a
    /// verify round writes up to `k + 1` KV rows per sequence, so each
    /// warm sequence is granted blocks up to its desired run length.
    /// Blocks past the one mandatory row (the pending token) are
    /// best-effort — the proposal later clamps to whatever was granted —
    /// while the mandatory row falls back to preempting the youngest
    /// sequence, exactly like plain decode.
    fn spec_ensure_capacity(&mut self) {
        if self.paged.is_none() {
            return;
        }
        let k = self.spec.as_ref().expect("speculative mode").k;
        let mut i = 0;
        while i < self.active.len() {
            let (floor, want) = {
                let a = &self.active[i];
                let hist = a.req.prompt.len() + a.generated.len();
                if a.prefilled < a.ctx_len() {
                    (0, 0) // cold: no decode rows this tick
                } else if a.pending.is_some() {
                    // The pending token sits at position hist - 1,
                    // emitted but not yet written to the KV cache.
                    let n = hist - 1;
                    let budget = a.end_pos - hist;
                    let j = k.min(budget.saturating_sub(1)).min(self.seq_len - 1 - n);
                    (n + 1, n + 1 + j)
                } else if hist + 1 < a.end_pos {
                    // Will sample a fresh token this tick and verify it.
                    let n = hist;
                    let budget = a.end_pos - (hist + 1);
                    let j = k.min(budget.saturating_sub(1)).min(self.seq_len - 1 - n);
                    (n + 1, n + 1 + j)
                } else {
                    (0, 0) // finishes in the sampling pass, no forward
                }
            };
            let cap = B::slot_table_mut(self.active[i].slot.state_mut())
                .expect("paged backend")
                .capacity_tokens();
            if cap >= want {
                i += 1;
                continue;
            }
            let (granted, evicted) = {
                let paged = self.paged.as_mut().expect("checked");
                match paged.alloc.alloc() {
                    Some(b) => (Some(b), Vec::new()),
                    None => {
                        let evicted = paged.radix.evict(1, &mut paged.alloc);
                        (paged.alloc.alloc(), evicted)
                    }
                }
            };
            self.stats.cache_evicted_blocks += evicted.len() as u64;
            if !evicted.is_empty() {
                let needy = self.active[i].req.id;
                record(
                    &mut self.recorder,
                    self.now,
                    needy,
                    EventKind::EvictedCacheBlock {
                        blocks: evicted.len() as u32,
                    },
                );
                self.backend.on_blocks_freed(&evicted);
            }
            match granted {
                Some(b) => {
                    // Re-check the same sequence: it may need more blocks.
                    B::slot_table_mut(self.active[i].slot.state_mut())
                        .expect("paged backend")
                        .push_block(b);
                }
                None if cap >= floor => {
                    // The mandatory row fits; the round clamps its
                    // proposal to the granted capacity.
                    i += 1;
                }
                None => {
                    let victim = self
                        .active
                        .iter()
                        .enumerate()
                        .max_by_key(|(_, a)| a.admission_seq)
                        .map(|(j, _)| j)
                        .expect("active is non-empty");
                    self.preempt(victim);
                    match victim.cmp(&i) {
                        Ordering::Equal => {}
                        Ordering::Less => i -= 1,
                        Ordering::Greater => {}
                    }
                }
            }
        }
    }

    /// Rolls the target slot of `active[i]` back to `keep` context
    /// tokens, releasing popped paged blocks through the allocator
    /// (shared blocks survive — only the refcount drops) and reporting
    /// actual frees to the backend so the rows are poisoned.
    fn rollback_slot(&mut self, i: usize, keep: usize) {
        let popped = B::truncate_slot(self.active[i].slot.state_mut(), keep);
        if popped.is_empty() {
            return;
        }
        let paged = self
            .paged
            .as_mut()
            .expect("blocks only pop from paged slots");
        let mut freed = Vec::new();
        for b in popped {
            if paged.alloc.release(b) {
                freed.push(b);
            }
        }
        if !freed.is_empty() {
            self.backend.on_blocks_freed(&freed);
        }
    }

    /// Replays one sequence's sampler over the verified logits rows,
    /// accepting the longest prefix on which the sampler agrees with the
    /// draft, then rolls rejected rows back out of the target slot and
    /// the draft cache. Returns true when the sequence finished.
    fn spec_accept(&mut self, i: usize, run: &[u32], rows: &[f32], vocab: usize) -> bool {
        debug_assert_eq!(rows.len(), run.len() * vocab, "one logits row per token");
        let n = {
            let a = &self.active[i];
            a.req.prompt.len() + a.generated.len() - 1
        };
        self.active[i].pending = None;
        let mut accepted = 0u32;
        let mut fin = false;
        // Context tokens to keep after the round; everything the verify
        // pass wrote past this point is rolled back.
        let mut keep = n + run.len();
        let mut draft_keep: Option<usize> = None;
        for (j, window) in rows.chunks_exact(vocab).enumerate() {
            let a = &mut self.active[i];
            let y = a.sampler.sample(window);
            if a.req.stop_at_eos && (y == TOKEN_EOS || y == TOKEN_BOS) {
                fin = true;
                keep = n + j + 1;
                break;
            }
            a.generated.push(y);
            a.token_ticks.push(self.now);
            let matched = j + 1 < run.len() && y == run[j + 1];
            if matched {
                accepted += 1;
            }
            if a.req.prompt.len() + a.generated.len() >= a.end_pos {
                fin = true;
                // A matched final token's KV row was verified; keep it.
                keep = n + j + 1 + usize::from(matched);
                break;
            }
            if !matched {
                // Mismatch — or the bonus token after a full match (the
                // last row never has a drafted successor). Either way
                // `y` is emitted but unverified: park it for next round.
                a.pending = Some(y);
                keep = n + j + 1;
                draft_keep = Some(keep);
                break;
            }
        }
        self.stats.spec_rounds += 1;
        self.stats.spec_accepted += u64::from(accepted);
        let rid = self.active[i].req.id;
        record(
            &mut self.recorder,
            self.now,
            rid,
            EventKind::VerifyTick { accepted },
        );
        if keep < n + run.len() {
            self.rollback_slot(i, keep);
        }
        if let (Some(dk), Some(dkv)) = (draft_keep, self.active[i].draft_kv.as_mut()) {
            dkv.truncate(dk);
        }
        fin
    }

    /// Speculative decode phase (DESIGN.md §16). Per warm sequence and
    /// per tick: park one freshly sampled token exactly as
    /// [`ServeEngine::decode_phase`] would emit it, have the draft model
    /// greedily propose up to `k` continuations (host work — zero
    /// virtual ticks), then score the pending token plus the proposals
    /// for **all** sequences in batched verify passes and accept per
    /// sequence via [`ServeEngine::spec_accept`]. Because every emitted
    /// token is chosen by the request's own sampler over logits that are
    /// bit-identical to sequential decode, token streams match plain
    /// decode for any sampler; speculation only changes how many target
    /// weight streams those tokens cost.
    fn spec_decode_phase(&mut self) -> Vec<usize> {
        self.spec_ensure_capacity();
        let mut finished: Vec<usize> = Vec::new();

        // Sampling pass: one fresh token per warm sequence without a
        // parked pending token, mirroring decode_phase exactly.
        for (i, a) in self.active.iter_mut().enumerate() {
            if a.prefilled < a.ctx_len() || a.pending.is_some() {
                continue;
            }
            let pos_next = a.req.prompt.len() + a.generated.len();
            if pos_next >= a.end_pos {
                finished.push(i); // zero budget (e.g. max_new_tokens = 0)
                continue;
            }
            let next = a.sampler.sample(&a.logits);
            if a.req.stop_at_eos && (next == TOKEN_EOS || next == TOKEN_BOS) {
                finished.push(i);
                continue;
            }
            a.generated.push(next);
            a.token_ticks.push(self.now);
            if a.first_token_at.is_none() {
                a.first_token_at = Some(self.now);
                record(
                    &mut self.recorder,
                    self.now,
                    a.req.id,
                    EventKind::FirstToken,
                );
            }
            if pos_next + 1 >= a.end_pos {
                // Budget exhausted by this token; nothing left to verify.
                finished.push(i);
                continue;
            }
            a.pending = Some(next);
        }

        // Draft pass: propose up to k greedy continuations of each
        // pending token. Draft forwards are host-side work on a model
        // orders of magnitude smaller than the target, so they cost
        // zero virtual ticks; only verify passes advance the clock.
        let mut members: Vec<usize> = Vec::new();
        let mut runs: Vec<Vec<u32>> = Vec::new();
        let spec = self.spec.as_mut().expect("speculative mode");
        for (i, a) in self.active.iter_mut().enumerate() {
            let Some(x) = a.pending else { continue };
            let hist_len = a.req.prompt.len() + a.generated.len();
            let n = hist_len - 1; // target context before the pending token
            let budget = a.end_pos - hist_len; // >= 1: pending implies budget
            let mut j_max = spec
                .k
                .min(budget.saturating_sub(1))
                .min(self.seq_len - 1 - n);
            if let Some(table) = B::slot_table_mut(a.slot.state_mut()) {
                j_max = j_max.min(table.capacity_tokens().saturating_sub(n + 1));
            }
            let prompt_len = a.req.prompt.len();
            let (req, generated, draft_kv) = (&a.req, &a.generated, &mut a.draft_kv);
            let tok = |p: usize| {
                if p < prompt_len {
                    req.prompt[p]
                } else {
                    generated[p - prompt_len]
                }
            };
            let dkv = draft_kv.get_or_insert_with(|| KvCache::new(spec.draft.config()));
            // Sync the draft cache to the n-token context: roll back a
            // longer cache (stale speculation), or replay the history a
            // fresh/preempted sequence is missing.
            if dkv.len() > n {
                dkv.truncate(n);
            } else {
                for p in dkv.len()..n {
                    spec.draft.forward_with_kv(dkv, tok(p), p);
                }
            }
            let mut run = Vec::with_capacity(j_max + 1);
            run.push(x);
            let mut cur = x;
            for j in 0..j_max {
                let logits = spec.draft.forward_with_kv(dkv, cur, n + j);
                cur = argmax(logits);
                run.push(cur);
            }
            self.stats.spec_drafted += j_max as u64;
            record(
                &mut self.recorder,
                self.now,
                a.req.id,
                EventKind::DraftTick {
                    tokens: j_max as u32,
                },
            );
            members.push(i);
            runs.push(run);
        }

        // Verify pass(es): score every run's rows in as few batched
        // weight streams as the staging limit allows, then accept.
        let vocab = self.backend.config().vocab_size;
        let mut start = 0;
        while start < members.len() {
            let mut end = start;
            let mut rows = 0usize;
            while end < members.len()
                && end - start < self.cfg.max_batch
                && rows + runs[end].len() <= 64
            {
                rows += runs[end].len();
                end += 1;
            }
            debug_assert!(end > start, "one run cannot exceed the staging limit");
            let idxs = &members[start..end];
            let run_refs: Vec<&[u32]> = runs[start..end].iter().map(Vec::as_slice).collect();
            let mut slots: Vec<&mut B::Slot> = Vec::with_capacity(idxs.len());
            {
                let mut want = idxs.iter().peekable();
                for (i, a) in self.active.iter_mut().enumerate() {
                    if want.peek() == Some(&&i) {
                        want.next();
                        slots.push(a.slot.state_mut());
                    }
                }
            }
            let _g = tel::span("serve", "verify_batch")
                .arg("batch", idxs.len() as i64)
                .arg("rows", rows as i64);
            let (logits, cost) = self.backend.verify(&mut slots, &run_refs);
            drop(slots);
            self.now += cost;
            self.stats.decode_batches += 1;
            self.stats.max_batch_observed = self.stats.max_batch_observed.max(idxs.len());
            if tel::enabled() {
                tel::metrics::gauge_set("serve.batch_size", idxs.len() as f64);
            }
            self.tick_decode_rows += rows;
            for (g, &i) in idxs.iter().enumerate() {
                if self.spec_accept(i, &runs[start + g], &logits[g], vocab) {
                    finished.push(i);
                }
            }
            start = end;
        }
        // Eviction removes back-to-front and needs ascending indices;
        // sampling-pass and verify-pass finishes interleave.
        finished.sort_unstable();
        finished
    }

    /// One unified mixed tick (DESIGN.md §14): sample every warm request
    /// exactly as [`ServeEngine::decode_phase`] does, split the token
    /// budget between the resulting decode rows and prefill chunks for
    /// cold requests, and run **one** mixed weight-streaming pass over
    /// all of it. Decode rows the budget excludes are parked in
    /// [`Active::pending`] — the sampled token is kept, never
    /// re-sampled, so token streams stay bit-identical to the
    /// phase-serialized loop. Returns the indices of requests that
    /// finished this iteration.
    fn unified_tick(&mut self, ucfg: UnifiedConfig) -> Vec<usize> {
        self.ensure_decode_capacity();
        let budget = ucfg.token_budget;
        let mut finished: Vec<usize> = Vec::new();
        // Decode candidates, in active order: a parked token from a
        // previous tick, or one freshly sampled (mirroring the
        // single-tenant loop: sample → EOS check → emit).
        let mut decode_cands: Vec<(usize, u32)> = Vec::new();
        for (i, a) in self.active.iter_mut().enumerate() {
            if a.prefilled < a.ctx_len() {
                continue; // cold: competes for prefill budget below
            }
            if let Some(tok) = a.pending.take() {
                // Budget/EOS checks already ran when this was sampled.
                decode_cands.push((i, tok));
                continue;
            }
            let pos_next = a.req.prompt.len() + a.generated.len();
            if pos_next >= a.end_pos {
                finished.push(i); // zero budget (e.g. max_new_tokens = 0)
                continue;
            }
            let next = a.sampler.sample(&a.logits);
            if a.req.stop_at_eos && (next == TOKEN_EOS || next == TOKEN_BOS) {
                finished.push(i);
                continue;
            }
            a.generated.push(next);
            a.token_ticks.push(self.now);
            if a.first_token_at.is_none() {
                a.first_token_at = Some(self.now);
                record(
                    &mut self.recorder,
                    self.now,
                    a.req.id,
                    EventKind::FirstToken,
                );
            }
            if pos_next + 1 >= a.end_pos {
                // Budget exhausted by this token; the final forward's
                // logits would never be sampled — skip it.
                finished.push(i);
                continue;
            }
            decode_cands.push((i, next));
        }
        let cold: Vec<usize> = self
            .active
            .iter()
            .enumerate()
            .filter(|(_, a)| a.prefilled < a.ctx_len())
            .map(|(i, _)| i)
            .collect();

        // Budget split: with both classes present, `prefill_pct` of the
        // budget is reserved for prefill rows — capped at budget − 1 so
        // at least one decode row always advances (no decode starvation).
        // Either side's unused share flows to the other.
        let reserve = if cold.is_empty() {
            0
        } else if decode_cands.is_empty() {
            budget
        } else {
            (budget * ucfg.prefill_pct as usize / 100).min(budget - 1)
        };
        let n_decode_now = decode_cands.len().min(budget - reserve);

        // Assemble the tick: (active index, run tokens, is_prefill).
        let mut runs: Vec<(usize, Vec<u32>, bool)> = Vec::new();
        let mut used = 0usize;
        for &(i, tok) in &decode_cands[..n_decode_now] {
            runs.push((i, vec![tok], false));
            used += 1;
        }
        let chunk_len = self.cfg.prefill_chunk;
        for &i in &cold {
            if used >= budget {
                break;
            }
            let a = &self.active[i];
            let ctx_len = a.ctx_len();
            let len = (ctx_len - a.prefilled).min(chunk_len).min(budget - used);
            let owner: &[u32] = a.resume_context.as_deref().unwrap_or(&a.req.prompt);
            runs.push((i, owner[a.prefilled..a.prefilled + len].to_vec(), true));
            used += len;
        }
        // Leftover prefill budget returns to the deferred decodes.
        let mut taken = n_decode_now;
        while used < budget && taken < decode_cands.len() {
            let (i, tok) = decode_cands[taken];
            runs.push((i, vec![tok], false));
            used += 1;
            taken += 1;
        }
        for &(i, tok) in &decode_cands[taken..] {
            self.active[i].pending = Some(tok);
            self.stats.deferred_decodes += 1;
        }
        if runs.is_empty() {
            return finished;
        }
        // One run per sequence, gathered in active-index order.
        runs.sort_by_key(|r| r.0);
        let n_decode_rows = runs.iter().filter(|r| !r.2).count();
        let n_prefill_runs = runs.len() - n_decode_rows;

        let idxs: Vec<usize> = runs.iter().map(|r| r.0).collect();
        let run_refs: Vec<&[u32]> = runs.iter().map(|r| r.1.as_slice()).collect();
        let mut slots: Vec<&mut B::Slot> = Vec::with_capacity(idxs.len());
        {
            let mut want = idxs.iter().peekable();
            for (i, a) in self.active.iter_mut().enumerate() {
                if want.peek() == Some(&&i) {
                    want.next();
                    slots.push(a.slot.state_mut());
                }
            }
        }
        let _g = tel::span("serve", "unified_tick")
            .arg("rows", used as i64)
            .arg("decode", n_decode_rows as i64)
            .arg("prefill_runs", n_prefill_runs as i64);
        let (logits, cost) = self.backend.forward_mixed(&mut slots, &run_refs);
        drop(slots);
        self.now += cost;
        self.stats.mixed_ticks += 1;
        self.stats.max_tick_tokens = self.stats.max_tick_tokens.max(used);
        if n_decode_rows > 0 && n_prefill_runs > 0 {
            self.stats.overlap_ticks += 1;
        }
        if n_decode_rows > 0 {
            self.stats.decode_batches += 1;
            self.stats.max_batch_observed = self.stats.max_batch_observed.max(n_decode_rows);
        }
        self.stats.prefill_chunks += n_prefill_runs as u64;
        if tel::enabled() {
            tel::metrics::gauge_set("serve.batch_size", n_decode_rows as f64);
        }
        self.tick_decode_rows += n_decode_rows;
        self.tick_prefill_tokens += used - n_decode_rows;
        if self.recorder.is_some() {
            for (i, run, is_prefill) in &runs {
                let rid = self.active[*i].req.id;
                let kind = if *is_prefill {
                    EventKind::PrefillChunk {
                        tokens: run.len() as u32,
                    }
                } else {
                    EventKind::DecodeTick {
                        batch: n_decode_rows as u32,
                    }
                };
                record(&mut self.recorder, self.now, rid, kind);
            }
        }

        // Scatter results back. Only observable logits are kept: the
        // last row of a finished prefill, and every decode row.
        for ((i, run, is_prefill), l) in runs.into_iter().zip(logits) {
            let a = &mut self.active[i];
            if !is_prefill {
                a.logits = l;
                continue;
            }
            a.prefilled += run.len();
            if a.prefilled < a.ctx_len() {
                continue; // mid-prefill logits are never sampled
            }
            a.logits = l;
            if let Some(paged) = &mut self.paged {
                let bs = paged.alloc.block_size();
                let full = a.req.prompt.len() / bs;
                if full > 0 {
                    let table = B::slot_table_mut(a.slot.state_mut()).expect("paged backend");
                    paged.radix.insert(
                        &a.req.prompt[..full * bs],
                        &table.blocks()[..full],
                        &mut paged.alloc,
                    );
                }
            }
        }
        finished
    }

    /// Releases finished requests' slots (and, on paged backends, their
    /// non-shared blocks) and builds their completions, in admission
    /// order.
    fn evict(&mut self, finished: Vec<usize>) -> Vec<Completion> {
        let mut done = Vec::with_capacity(finished.len());
        for &i in finished.iter().rev() {
            let mut a = self.active.remove(i);
            if self.paged.is_some() {
                let chain = B::slot_table_mut(a.slot.state_mut())
                    .expect("paged backend")
                    .take_blocks();
                let paged = self.paged.as_mut().expect("checked");
                let mut freed = Vec::new();
                for b in chain {
                    if paged.alloc.release(b) {
                        freed.push(b);
                    }
                }
                if !freed.is_empty() {
                    self.backend.on_blocks_freed(&freed);
                }
            }
            let completion = Completion {
                id: a.req.id,
                arrival: a.req.arrival,
                admitted_at: a.admitted_at,
                first_token_at: a.first_token_at,
                finished_at: self.now,
                slot_index: a.slot.index(),
                admission_seq: a.admission_seq,
                tokens: a.generated,
                token_ticks: a.token_ticks,
            };
            self.pool.release(a.slot);
            record(
                &mut self.recorder,
                self.now,
                completion.id,
                EventKind::Completed {
                    tokens: completion.tokens.len() as u32,
                },
            );
            if tel::enabled() {
                tel::metrics::counter_add("serve.tokens_generated", completion.tokens.len() as u64);
                if let Some(ttft) = completion.ttft() {
                    tel::metrics::observe("serve.ttft_ticks", ttft);
                }
                tel::metrics::observe("serve.e2e_ticks", completion.e2e());
                for w in completion.token_ticks.windows(2) {
                    tel::metrics::observe("serve.itl_ticks", w[1] - w[0]);
                }
            }
            self.stats.completed += 1;
            done.push(completion);
        }
        #[cfg(debug_assertions)]
        if self.active.is_empty() {
            if let Err(e) = self.check_paged_invariants() {
                panic!("paged-KV invariants violated at idle: {e}");
            }
        }
        done.reverse();
        done
    }

    /// Drives the engine to completion over a [`TrafficSource`],
    /// synchronously and deterministically. Returns every completion in
    /// finish order.
    pub fn run_with_source(&mut self, source: &mut dyn TrafficSource) -> Vec<Completion> {
        let mut completions = Vec::new();
        loop {
            let room = self.cfg.queue_cap.saturating_sub(self.queue.len());
            if room > 0 {
                for req in source.poll(self.now, self.outstanding(), room) {
                    self.submit(req).expect("room was checked");
                }
            }
            if self.is_idle() {
                if source.is_exhausted() {
                    break;
                }
                // Jump the virtual clock to the next arrival; the +1 is a
                // progress guarantee against a source whose next_arrival
                // never becomes due.
                match source.next_arrival(0) {
                    Some(t) if t > self.now => self.now = t,
                    Some(_) => self.now += 1,
                    None => break,
                }
                continue;
            }
            completions.extend(self.step());
        }
        completions
    }

    /// Serves from a request channel until it disconnects and drains,
    /// pushing completions as they finish. A bounded `rx` channel is the
    /// admission backpressure. Returns the number of requests served.
    /// Stops early (with queued work dropped) only if the completion
    /// receiver disappears.
    pub fn run_queue(&mut self, rx: &Receiver<Request>, tx: &Sender<Completion>) -> u64 {
        let mut served = 0u64;
        let mut disconnected = false;
        loop {
            // Opportunistically drain arrivals without blocking.
            while self.queue.len() < self.cfg.queue_cap {
                match rx.try_recv() {
                    Ok(req) => {
                        self.submit(req).expect("queue depth checked");
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        disconnected = true;
                        break;
                    }
                }
            }
            if self.is_idle() {
                if disconnected {
                    return served;
                }
                // Nothing to do: block until the next request (or EOF).
                match rx.recv() {
                    Ok(req) => {
                        self.submit(req).expect("queue was empty");
                    }
                    Err(RecvError) => return served,
                }
                continue;
            }
            for c in self.step() {
                served += 1;
                if tx.send(c).is_err() {
                    return served; // nobody is listening
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::CpuBackend;
    use speedllm_llama::config::ModelConfig;
    use speedllm_llama::forward::Transformer;
    use speedllm_llama::generate::{generate, GenerateOptions};
    use speedllm_llama::tokenizer::Tokenizer;
    use speedllm_llama::weights::TransformerWeights;
    use speedllm_pagedkv::BlockConfig;

    fn cpu_engine(slots: usize) -> ServeEngine<CpuBackend> {
        let model = Transformer::new(TransformerWeights::synthetic(ModelConfig::test_tiny(), 42));
        ServeEngine::new(
            CpuBackend::new(model),
            ServeConfig {
                slots,
                max_batch: 8,
                prefill_chunk: 4,
                queue_cap: 16,
                unified: None,
            },
        )
    }

    fn cpu_paged_engine(
        slots: usize,
        block_size: usize,
        n_blocks: usize,
    ) -> ServeEngine<CpuBackend> {
        let model = Transformer::new(TransformerWeights::synthetic(ModelConfig::test_tiny(), 42));
        ServeEngine::new(
            CpuBackend::new_paged(
                model,
                BlockConfig {
                    block_size,
                    n_blocks,
                },
            ),
            ServeConfig {
                slots,
                max_batch: 8,
                prefill_chunk: 4,
                queue_cap: 16,
                unified: None,
            },
        )
    }

    fn req(id: u64, prompt: Vec<u32>, max_new: usize, seed: u64) -> Request {
        Request {
            id,
            prompt,
            max_new_tokens: max_new,
            stop_at_eos: true,
            sampler: SamplerKind::Temperature(0.8),
            seed,
            arrival: 0,
        }
    }

    fn drain(engine: &mut ServeEngine<CpuBackend>) -> Vec<Completion> {
        let mut out = Vec::new();
        while !engine.is_idle() {
            out.extend(engine.step());
        }
        out
    }

    fn cpu_unified_engine(slots: usize, budget: usize, pct: u32) -> ServeEngine<CpuBackend> {
        let model = Transformer::new(TransformerWeights::synthetic(ModelConfig::test_tiny(), 42));
        ServeEngine::new(
            CpuBackend::new(model),
            ServeConfig {
                slots,
                max_batch: 8,
                prefill_chunk: 4,
                queue_cap: 16,
                unified: Some(UnifiedConfig {
                    token_budget: budget,
                    prefill_pct: pct,
                }),
            },
        )
    }

    #[test]
    fn unified_streams_match_legacy_engine() {
        // Across tight and ample budgets and prefill ratios, the unified
        // scheduler must emit exactly the token streams of the
        // phase-serialized engine (which itself matches the single-tenant
        // oracle).
        for (budget, pct) in [(1, 0), (2, 50), (4, 25), (8, 75), (64, 100)] {
            let mut legacy = cpu_engine(3);
            let mut unified = cpu_unified_engine(3, budget, pct);
            for i in 0..6u64 {
                let r = req(i, vec![1, 3 + i as u32, 9, 2 + i as u32], 8, 50 + i);
                legacy.submit(r.clone()).unwrap();
                unified.submit(r).unwrap();
            }
            let mut a = drain(&mut legacy);
            let mut b = drain(&mut unified);
            a.sort_by_key(|c| c.id);
            b.sort_by_key(|c| c.id);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(
                    x.tokens, y.tokens,
                    "unified (budget {budget}, pct {pct}) changed request {}",
                    x.id
                );
            }
            assert!(unified.stats().mixed_ticks > 0);
            assert!(unified.all_slots_free());
        }
    }

    #[test]
    fn unified_tick_overlaps_prefill_with_decode() {
        // Two early requests decode while a later one prefills: the tick
        // must carry both classes at once (the ISSUE 6 acceptance
        // telemetry), visible as overlap_ticks > 0 and a tick wider than
        // the decode batch alone.
        let mut unified = cpu_unified_engine(3, 16, 50);
        for i in 0..2u64 {
            let mut r = req(i, vec![1, 4 + i as u32], 12, 30 + i);
            r.stop_at_eos = false;
            unified.submit(r).unwrap();
        }
        // Warm the first two: admit + prefill + first decode ticks.
        unified.step();
        unified.step();
        // A long-prompt request arrives while the others are decoding.
        let mut late = req(9, vec![1, 7, 8, 9, 10, 11, 12, 13], 4, 99);
        late.stop_at_eos = false;
        unified.submit(late).unwrap();
        let _ = drain(&mut unified);
        let stats = unified.stats();
        assert!(
            stats.overlap_ticks > 0,
            "a tick must have carried prefill and decode rows together"
        );
        assert!(
            stats.max_tick_tokens > 2,
            "the mixed tick must be wider than the 2-row decode batch, got {}",
            stats.max_tick_tokens
        );
    }

    #[test]
    fn unified_budget_one_serializes_but_never_drops() {
        // token_budget = 1 forces every tick to carry exactly one row.
        // Decode always wins the split, so requests serialize — streams
        // must still match the legacy engine exactly.
        let mut legacy = cpu_engine(2);
        let mut unified = cpu_unified_engine(2, 1, 50);
        for i in 0..3u64 {
            let mut r = req(i, vec![1, 5 + i as u32, 3], 6, 80 + i);
            r.stop_at_eos = false;
            legacy.submit(r.clone()).unwrap();
            unified.submit(r).unwrap();
        }
        let mut a = drain(&mut legacy);
        let mut b = drain(&mut unified);
        a.sort_by_key(|c| c.id);
        b.sort_by_key(|c| c.id);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tokens, y.tokens, "budget=1 changed request {}", x.id);
            assert_eq!(x.tokens.len(), 6);
        }
        assert_eq!(unified.stats().max_tick_tokens, 1);
    }

    #[test]
    fn unified_tight_budget_defers_decode_rows_without_resampling() {
        // Three warm decoders through a 2-row budget: one decode row per
        // tick must be parked in `pending` and resumed later. Streams
        // must be unchanged — the parked token is never re-sampled.
        let mut legacy = cpu_engine(3);
        let mut unified = cpu_unified_engine(3, 2, 50);
        for i in 0..3u64 {
            let mut r = req(i, vec![1, 5 + i as u32], 6, 80 + i);
            r.stop_at_eos = false;
            legacy.submit(r.clone()).unwrap();
            unified.submit(r).unwrap();
        }
        let mut a = drain(&mut legacy);
        let mut b = drain(&mut unified);
        a.sort_by_key(|c| c.id);
        b.sort_by_key(|c| c.id);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tokens, y.tokens, "deferral changed request {}", x.id);
            assert_eq!(x.tokens.len(), 6);
        }
        let stats = unified.stats();
        assert!(
            stats.deferred_decodes > 0,
            "three decoders through a 2-row budget must defer"
        );
        assert!(stats.max_tick_tokens <= 2);
    }

    #[test]
    fn batched_tokens_match_sequential_generate() {
        let mut engine = cpu_engine(2);
        let tok = Tokenizer::synthetic(64, 42);
        let prompts = ["once upon", "hello there", "abc"];
        for (i, p) in prompts.iter().enumerate() {
            let prompt = tok.encode(p, true, false);
            engine
                .submit(req(i as u64, prompt, 10, 100 + i as u64))
                .unwrap();
        }
        let mut completions = drain(&mut engine);
        completions.sort_by_key(|c| c.id);
        assert_eq!(completions.len(), 3);

        for (i, p) in prompts.iter().enumerate() {
            let mut oracle =
                Transformer::new(TransformerWeights::synthetic(ModelConfig::test_tiny(), 42));
            let mut sampler = Sampler::new(SamplerKind::Temperature(0.8), 100 + i as u64);
            let want = generate(
                &mut oracle,
                &tok,
                &mut sampler,
                p,
                GenerateOptions {
                    max_new_tokens: 10,
                    stop_at_eos: true,
                },
            );
            assert_eq!(
                completions[i].tokens, want.generated_tokens,
                "request {i} diverged from sequential oracle"
            );
        }
    }

    #[test]
    fn zero_budget_request_completes_with_no_tokens() {
        let mut engine = cpu_engine(1);
        engine.submit(req(0, vec![1, 5], 0, 9)).unwrap();
        let done = drain(&mut engine);
        assert_eq!(done.len(), 1);
        assert!(done[0].tokens.is_empty());
        assert!(done[0].first_token_at.is_none());
        assert!(engine.all_slots_free());
    }

    #[test]
    fn admission_is_fifo_and_slots_bound_concurrency() {
        let mut engine = cpu_engine(2);
        for i in 0..6 {
            engine
                .submit(req(i, vec![1, (i + 3) as u32], 4, i))
                .unwrap();
        }
        let done = drain(&mut engine);
        assert_eq!(done.len(), 6);
        // Admission order must follow submission order.
        let mut by_id: Vec<_> = done.clone();
        by_id.sort_by_key(|c| c.id);
        for (i, c) in by_id.iter().enumerate() {
            assert_eq!(c.admission_seq, i as u64, "FIFO admission violated");
        }
        // Two slots only: slot indices stay within the pool.
        assert!(done.iter().all(|c| c.slot_index < 2));
        assert!(engine.all_slots_free());
        assert!(
            engine.slot_reuses() >= 4,
            "6 requests through 2 slots must reuse"
        );
    }

    #[test]
    fn backpressure_rejects_when_queue_full_and_counts_it() {
        let model = Transformer::new(TransformerWeights::synthetic(ModelConfig::test_tiny(), 42));
        let mut engine = ServeEngine::new(
            CpuBackend::new(model),
            ServeConfig {
                slots: 1,
                max_batch: 4,
                prefill_chunk: 4,
                queue_cap: 2,
                unified: None,
            },
        );
        assert!(engine.submit(req(0, vec![1, 3], 2, 0)).is_ok());
        assert!(engine.submit(req(1, vec![1, 3], 2, 1)).is_ok());
        assert_eq!(engine.stats().rejected, 0);
        let back = engine.submit(req(2, vec![1, 3], 2, 2));
        assert_eq!(back.unwrap_err().id, 2, "queue_cap=2 must reject the third");
        assert_eq!(engine.stats().rejected, 1, "rejection must be counted");
        let back = engine.submit(req(3, vec![1, 3], 2, 3));
        assert_eq!(back.unwrap_err().id, 3);
        assert_eq!(engine.stats().rejected, 2);
        // Rejections do not disturb the accepted work.
        let done = drain(&mut engine);
        assert_eq!(done.len(), 2);
        assert_eq!(engine.stats().rejected, 2);
    }

    #[test]
    fn virtual_clock_advances_and_timestamps_are_ordered() {
        let mut engine = cpu_engine(2);
        engine.submit(req(0, vec![1, 4, 9, 22, 7], 6, 3)).unwrap();
        let done = drain(&mut engine);
        let c = &done[0];
        assert!(engine.now() > 0);
        assert!(c.admitted_at >= c.arrival);
        let ft = c.first_token_at.expect("tokens were generated");
        assert!(ft >= c.admitted_at);
        assert!(c.finished_at >= ft);
        // TTFT covers at least the prompt's prefill cost (5 CPU ticks).
        assert!(c.ttft().unwrap() >= 5);
    }

    #[test]
    fn paged_engine_matches_flat_engine() {
        let mut flat = cpu_engine(2);
        let mut paged = cpu_paged_engine(2, 4, 16);
        for i in 0..5u64 {
            let r = req(i, vec![1, 3 + i as u32, 7, 9 + i as u32], 6, 40 + i);
            flat.submit(r.clone()).unwrap();
            paged.submit(r).unwrap();
        }
        let mut a = drain(&mut flat);
        let mut b = drain(&mut paged);
        a.sort_by_key(|c| c.id);
        b.sort_by_key(|c| c.id);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tokens, y.tokens, "paged KV changed request {}", x.id);
        }
        paged.check_paged_invariants().unwrap();
        assert!(paged.all_slots_free());
        assert!(paged.stats().peak_blocks_in_use > 0);
    }

    #[test]
    fn tight_block_budget_preempts_and_streams_survive() {
        // 9 blocks of 4 tokens: one full context (32) needs 8, so two
        // long sequences must fight for blocks and the youngest gets
        // preempted. Streams must still match the flat engine.
        let mut flat = cpu_engine(2);
        let mut paged = cpu_paged_engine(2, 4, 9);
        for i in 0..3u64 {
            let mut r = req(i, vec![1, 5 + i as u32], 20, 70 + i);
            r.stop_at_eos = false; // force long generations
            flat.submit(r.clone()).unwrap();
            paged.submit(r).unwrap();
        }
        let mut a = drain(&mut flat);
        let mut b = drain(&mut paged);
        a.sort_by_key(|c| c.id);
        b.sort_by_key(|c| c.id);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tokens, y.tokens, "preemption changed request {}", x.id);
            assert_eq!(x.tokens.len(), 20, "budget must be exhausted");
        }
        assert!(
            paged.stats().preemptions > 0,
            "tight budget must force preemption"
        );
        paged.check_paged_invariants().unwrap();
        assert!(paged.all_slots_free());
    }

    #[test]
    fn shared_prefix_hits_the_radix_cache() {
        let shared = vec![1u32, 11, 12, 13, 14, 15, 16, 17]; // two full blocks
        let mut paged = cpu_paged_engine(2, 4, 16);
        let mut flat = cpu_engine(2);
        for i in 0..3u64 {
            let mut prompt = shared.clone();
            prompt.push(30 + i as u32);
            let r = req(i, prompt, 5, 90 + i);
            flat.submit(r.clone()).unwrap();
            paged.submit(r).unwrap();
        }
        let mut a = drain(&mut flat);
        let mut b = drain(&mut paged);
        a.sort_by_key(|c| c.id);
        b.sort_by_key(|c| c.id);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tokens, y.tokens, "prefix reuse changed request {}", x.id);
        }
        assert!(
            paged.stats().prefix_hit_tokens >= 8,
            "later requests must reuse the shared prefix, got {}",
            paged.stats().prefix_hit_tokens
        );
        paged.check_paged_invariants().unwrap();
        // The prefix stays cached for future traffic.
        assert!(paged.blocks_cached() >= 2);
    }

    fn draft_model(seed: u64) -> Transformer {
        Transformer::new(TransformerWeights::synthetic(
            ModelConfig::draft_for(&ModelConfig::test_tiny()),
            seed,
        ))
    }

    #[test]
    fn speculative_streams_match_plain_decode() {
        // Across depths, KV shapes, and samplers (greedy accepts nearly
        // everything, temperature nearly nothing), the speculative
        // scheduler must emit exactly the plain engine's streams.
        for k in [1, 2, 4] {
            for paged in [false, true] {
                let (mut plain, mut spec) = if paged {
                    (cpu_paged_engine(2, 4, 16), cpu_paged_engine(2, 4, 16))
                } else {
                    (cpu_engine(2), cpu_engine(2))
                };
                spec.enable_speculative(draft_model(9), k).unwrap();
                for i in 0..5u64 {
                    let mut r = req(i, vec![1, 3 + i as u32, 7, 9 + i as u32], 8, 40 + i);
                    if i % 2 == 0 {
                        r.sampler = SamplerKind::Argmax;
                    }
                    plain.submit(r.clone()).unwrap();
                    spec.submit(r).unwrap();
                }
                let mut a = drain(&mut plain);
                let mut b = drain(&mut spec);
                a.sort_by_key(|c| c.id);
                b.sort_by_key(|c| c.id);
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(
                        x.tokens, y.tokens,
                        "speculation (k {k}, paged {paged}) changed request {}",
                        x.id
                    );
                }
                let s = spec.stats();
                assert!(s.spec_rounds > 0, "verify rounds must have run");
                assert!(s.spec_drafted > 0, "draft must have proposed tokens");
                assert!(
                    s.spec_accepted > 0,
                    "greedy requests must accept draft tokens (k {k}, paged {paged})"
                );
                spec.check_paged_invariants().unwrap();
                assert!(spec.all_slots_free());
            }
        }
    }

    #[test]
    fn speculative_survives_tight_block_budget() {
        // Same block-starved setup as the preemption test: speculative
        // rollback and preemption must compose without corrupting the
        // free list or the token streams.
        let mut plain = cpu_engine(2);
        let mut spec = cpu_paged_engine(2, 4, 9);
        spec.enable_speculative(draft_model(9), 3).unwrap();
        for i in 0..3u64 {
            let mut r = req(i, vec![1, 5 + i as u32], 20, 70 + i);
            r.stop_at_eos = false;
            r.sampler = SamplerKind::Argmax;
            plain.submit(r.clone()).unwrap();
            spec.submit(r).unwrap();
        }
        let mut a = drain(&mut plain);
        let mut b = drain(&mut spec);
        a.sort_by_key(|c| c.id);
        b.sort_by_key(|c| c.id);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tokens, y.tokens, "speculation changed request {}", x.id);
            assert_eq!(x.tokens.len(), 20, "budget must be exhausted");
        }
        spec.check_paged_invariants().unwrap();
        assert!(spec.all_slots_free());
    }

    #[test]
    fn speculative_greedy_spends_fewer_verify_passes_than_tokens() {
        // With a greedy sampler and a strongly agreeing draft, each
        // verify round should emit more than one token on average.
        let mut spec = cpu_engine(1);
        spec.enable_speculative(draft_model(9), 4).unwrap();
        let mut r = req(0, vec![1, 4, 7], 16, 3);
        r.sampler = SamplerKind::Argmax;
        r.stop_at_eos = false;
        spec.submit(r).unwrap();
        let done = drain(&mut spec);
        assert_eq!(done[0].tokens.len(), 16);
        let s = spec.stats();
        assert!(
            s.spec_rounds < 16,
            "16 tokens should take fewer than 16 verify rounds, took {}",
            s.spec_rounds
        );
        assert!(s.spec_accepted as f64 / s.spec_drafted as f64 > 0.5);
    }

    #[test]
    fn enable_speculative_rejects_bad_configs() {
        let err = cpu_engine(1)
            .enable_speculative(draft_model(9), 0)
            .unwrap_err();
        assert!(err.contains("k must be >= 1"), "{err}");
        let err = cpu_engine(1)
            .enable_speculative(draft_model(9), 64)
            .unwrap_err();
        assert!(err.contains("staging limit"), "{err}");
        // Vocabulary mismatch: stories260K speaks 512 tokens, the tiny
        // target 64.
        let wrong_vocab =
            Transformer::new(TransformerWeights::synthetic(ModelConfig::stories260k(), 9));
        let err = cpu_engine(1)
            .enable_speculative(wrong_vocab, 4)
            .unwrap_err();
        assert!(err.contains("vocabulary"), "{err}");
        // Context window too short to follow the target.
        let mut short = ModelConfig::test_tiny();
        short.seq_len /= 2;
        let short_draft = Transformer::new(TransformerWeights::synthetic(short, 9));
        let err = cpu_engine(1)
            .enable_speculative(short_draft, 4)
            .unwrap_err();
        assert!(err.contains("context window"), "{err}");
        let err = cpu_unified_engine(1, 8, 50)
            .enable_speculative(draft_model(9), 4)
            .unwrap_err();
        assert!(err.contains("unified"), "{err}");
    }

    #[test]
    fn run_queue_serves_over_channels() {
        let (req_tx, req_rx) = speedllm_llama::sync::bounded::<Request>(4);
        let (done_tx, done_rx) = speedllm_llama::sync::unbounded::<Completion>();
        let tok = Tokenizer::synthetic(64, 42);
        let prompt = tok.encode("hi", true, false);
        let n = 5u64;
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut engine = cpu_engine(2);
                let served = engine.run_queue(&req_rx, &done_tx);
                assert_eq!(served, n);
                drop(done_tx);
            });
            for i in 0..n {
                req_tx.send(req(i, prompt.clone(), 4, i)).unwrap();
            }
            drop(req_tx);
        });
        let mut got: Vec<Completion> = done_rx.iter().collect();
        got.sort_by_key(|c| c.id);
        assert_eq!(got.len(), n as usize);
        // Token streams are batch-composition-independent, so the threaded
        // path must agree with a fresh synchronous run.
        let mut sync_engine = cpu_engine(2);
        for i in 0..n {
            sync_engine.submit(req(i, prompt.clone(), 4, i)).unwrap();
        }
        let mut want = drain(&mut sync_engine);
        want.sort_by_key(|c| c.id);
        for (a, b) in got.iter().zip(&want) {
            assert_eq!(a.tokens, b.tokens);
        }
    }
}
