//! The continuous-batching scheduler.
//!
//! [`ServeEngine`] runs the serving loop over a fixed pool of KV-cache
//! slots: admit queued requests while slots are free, advance one prefill
//! chunk per admitted-but-cold request, then run **one batched decode
//! step** across every warm request, evicting finished sequences and
//! back-filling from the queue (DESIGN.md §11).
//!
//! Time is a **virtual clock** in backend-defined ticks (token forwards on
//! the CPU backend, simulated device cycles on the accelerator), so every
//! latency in a [`Completion`] — and therefore the whole serve-bench
//! report — is bit-reproducible across machines and wall-clock noise.
//!
//! Two drivers are provided:
//!
//! * [`ServeEngine::run_with_source`] — single-threaded, pulls from a
//!   [`TrafficSource`]; the deterministic path serve-bench uses.
//! * [`ServeEngine::run_queue`] — pulls requests from an
//!   [`speedllm_llama::sync`] channel and pushes completions to another;
//!   the threaded serving front door (a bounded request channel gives
//!   admission backpressure). Token streams are still deterministic per
//!   request; arrival interleaving is whatever the threads produce.

use std::collections::VecDeque;

use speedllm_telemetry as tel;

use speedllm_llama::kv_cache::{KvCachePool, PooledSlot};
use speedllm_llama::sampler::{Sampler, SamplerKind};
use speedllm_llama::sync::{Receiver, RecvError, Sender, TryRecvError};
use speedllm_llama::tokenizer::{TOKEN_BOS, TOKEN_EOS};

use crate::backend::Backend;

/// One generation request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Caller-chosen id, echoed in the [`Completion`].
    pub id: u64,
    /// Prompt token ids (BOS included), non-empty, at most `seq_len`.
    pub prompt: Vec<u32>,
    /// Budget of new tokens (further clamped by the context window).
    pub max_new_tokens: usize,
    /// Stop when EOS/BOS is sampled (the token is not emitted).
    pub stop_at_eos: bool,
    /// Sampling policy.
    pub sampler: SamplerKind,
    /// Seed of this request's private sampler — what makes its token
    /// stream independent of batch composition.
    pub seed: u64,
    /// Arrival tick (virtual time).
    pub arrival: u64,
}

/// A finished request with its token output and lifecycle timestamps
/// (all in virtual ticks).
#[derive(Debug, Clone)]
pub struct Completion {
    /// Echo of [`Request::id`].
    pub id: u64,
    /// Generated token ids (EOS excluded).
    pub tokens: Vec<u32>,
    /// Echo of [`Request::arrival`].
    pub arrival: u64,
    /// When the request left the queue and took a slot.
    pub admitted_at: u64,
    /// When the first generated token was sampled (None for zero-token
    /// completions).
    pub first_token_at: Option<u64>,
    /// When the request finished and released its slot.
    pub finished_at: u64,
    /// Pool index of the slot that hosted the sequence.
    pub slot_index: usize,
    /// Admission order (0-based, strictly increasing with queue order).
    pub admission_seq: u64,
}

impl Completion {
    /// Time to first token, from arrival.
    #[must_use]
    pub fn ttft(&self) -> Option<u64> {
        self.first_token_at.map(|t| t - self.arrival)
    }

    /// End-to-end latency, from arrival.
    #[must_use]
    pub fn e2e(&self) -> u64 {
        self.finished_at - self.arrival
    }
}

/// Scheduler parameters.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// KV-cache slots — the hard concurrency limit.
    pub slots: usize,
    /// Max sequences per batched decode step (clamped to 1..=64, the
    /// on-chip staging limit).
    pub max_batch: usize,
    /// Prefill chunk length (clamped to 1..=64).
    pub prefill_chunk: usize,
    /// Bounded request-queue depth — admission backpressure.
    pub queue_cap: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            slots: 4,
            max_batch: 8,
            prefill_chunk: 16,
            queue_cap: 64,
        }
    }
}

/// Aggregate scheduler counters (monotone over the engine's life).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeStats {
    /// Scheduler iterations run.
    pub iterations: u64,
    /// Batched decode passes issued.
    pub decode_batches: u64,
    /// Largest decode batch observed.
    pub max_batch_observed: usize,
    /// Prefill chunks issued.
    pub prefill_chunks: u64,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests completed.
    pub completed: u64,
}

/// A stream of requests the synchronous driver pulls from. `poll` may be
/// called repeatedly with the same `now`; implementations hand out each
/// request exactly once.
pub trait TrafficSource {
    /// Requests due at or before `now`, at most `room` of them (the free
    /// space in the engine's bounded queue — backpressure holds the rest
    /// back). `outstanding` is queued + in-flight, for closed-loop pacing.
    fn poll(&mut self, now: u64, outstanding: usize, room: usize) -> Vec<Request>;

    /// Earliest tick at which `poll` could return something, for idle
    /// jumps; may be in the past. `None` when exhausted.
    fn next_arrival(&self, outstanding: usize) -> Option<u64>;

    /// True once every request has been handed out.
    fn is_exhausted(&self) -> bool;
}

/// An admitted, in-flight request.
struct Active<B: Backend> {
    req: Request,
    slot: PooledSlot<B::Slot>,
    sampler: Sampler,
    /// Prompt tokens prefilled so far.
    prefilled: usize,
    /// Logits after the last forward (valid once fully prefilled).
    logits: Vec<f32>,
    generated: Vec<u32>,
    /// One past the last position the budget/context allows.
    end_pos: usize,
    admitted_at: u64,
    first_token_at: Option<u64>,
    admission_seq: u64,
}

/// The continuous-batching engine. Generic over the [`Backend`]; all
/// scheduling state (queue, pool, virtual clock) lives here.
pub struct ServeEngine<B: Backend> {
    backend: B,
    cfg: ServeConfig,
    pool: KvCachePool<B::Slot>,
    queue: VecDeque<Request>,
    active: Vec<Active<B>>,
    now: u64,
    admission_seq: u64,
    stats: ServeStats,
    seq_len: usize,
}

impl<B: Backend> ServeEngine<B> {
    /// Builds an engine with `cfg.slots` pre-allocated slots.
    pub fn new(backend: B, cfg: ServeConfig) -> Self {
        let cfg = ServeConfig {
            slots: cfg.slots.max(1),
            max_batch: cfg.max_batch.clamp(1, 64),
            prefill_chunk: cfg.prefill_chunk.clamp(1, 64),
            queue_cap: cfg.queue_cap.max(1),
        };
        let seq_len = backend.config().seq_len;
        let pool = KvCachePool::new(cfg.slots, || backend.new_slot());
        Self {
            backend,
            cfg,
            pool,
            queue: VecDeque::new(),
            active: Vec::new(),
            now: 0,
            admission_seq: 0,
            stats: ServeStats::default(),
            seq_len,
        }
    }

    /// The scheduler configuration (after clamping).
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The backend.
    #[must_use]
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Scheduler counters.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// Slot acquisitions that reused a previously released slot.
    #[must_use]
    pub fn slot_reuses(&self) -> u64 {
        self.pool.reuse_count()
    }

    /// True when every slot has been released back to the pool.
    #[must_use]
    pub fn all_slots_free(&self) -> bool {
        self.pool.all_free()
    }

    /// Queued + in-flight requests.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.queue.len() + self.active.len()
    }

    /// True when there is nothing queued or in flight.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.outstanding() == 0
    }

    /// Enqueues a request, or hands it back when the bounded queue is full
    /// (admission backpressure).
    ///
    /// # Panics
    /// Panics on an empty prompt or one longer than the context window —
    /// such a request could never be served.
    pub fn submit(&mut self, req: Request) -> Result<(), Request> {
        assert!(!req.prompt.is_empty(), "empty prompt");
        assert!(
            req.prompt.len() <= self.seq_len,
            "prompt of {} tokens exceeds context window {}",
            req.prompt.len(),
            self.seq_len
        );
        if self.queue.len() >= self.cfg.queue_cap {
            return Err(req);
        }
        self.queue.push_back(req);
        Ok(())
    }

    /// Runs one scheduler iteration: admit → prefill chunks → one batched
    /// decode step → evict. Returns the requests that finished.
    pub fn step(&mut self) -> Vec<Completion> {
        let _g = tel::span("serve", "step").arg("active", self.active.len() as i64);
        self.stats.iterations += 1;
        self.admit();
        self.prefill_phase();
        let finished = self.decode_phase();
        let done = self.evict(finished);
        if tel::enabled() {
            tel::metrics::gauge_set("serve.queue_depth", self.queue.len() as f64);
            tel::metrics::gauge_set("serve.active", self.active.len() as f64);
        }
        done
    }

    /// Moves queued requests into free slots, FIFO.
    fn admit(&mut self) {
        while self.pool.available() > 0 {
            let Some(req) = self.queue.pop_front() else {
                break;
            };
            let reuses_before = self.pool.reuse_count();
            let slot = self.pool.acquire().expect("availability checked");
            if tel::enabled() {
                tel::metrics::counter_add(
                    "serve.slot_reuse",
                    self.pool.reuse_count() - reuses_before,
                );
            }
            let end_pos = (req.prompt.len() + req.max_new_tokens).min(self.seq_len);
            let sampler = Sampler::new(req.sampler, req.seed);
            self.active.push(Active {
                end_pos,
                sampler,
                slot,
                prefilled: 0,
                logits: Vec::new(),
                generated: Vec::new(),
                admitted_at: self.now,
                first_token_at: None,
                admission_seq: self.admission_seq,
                req,
            });
            self.admission_seq += 1;
            self.stats.admitted += 1;
        }
    }

    /// Advances every cold request by one prefill chunk.
    fn prefill_phase(&mut self) {
        let chunk_len = self.cfg.prefill_chunk;
        for a in &mut self.active {
            if a.prefilled >= a.req.prompt.len() {
                continue;
            }
            let end = (a.prefilled + chunk_len).min(a.req.prompt.len());
            let chunk = &a.req.prompt[a.prefilled..end];
            let _g = tel::span("serve", "prefill_chunk")
                .arg("req", a.req.id as i64)
                .arg("tokens", chunk.len() as i64);
            let (logits, cost) = self.backend.prefill(a.slot.state_mut(), chunk, a.prefilled);
            self.now += cost;
            a.prefilled = end;
            if a.prefilled == a.req.prompt.len() {
                a.logits = logits;
            }
            self.stats.prefill_chunks += 1;
        }
    }

    /// Samples one token per warm request (mirroring the single-tenant
    /// loop: sample → EOS check → emit), then runs the batched forward for
    /// every request that still needs logits. Returns the indices of
    /// requests that finished this iteration.
    fn decode_phase(&mut self) -> Vec<usize> {
        let mut finished: Vec<usize> = Vec::new();
        let mut members: Vec<usize> = Vec::new();
        let mut tokens: Vec<u32> = Vec::new();
        for (i, a) in self.active.iter_mut().enumerate() {
            if a.prefilled < a.req.prompt.len() {
                continue; // still cold
            }
            let pos_next = a.req.prompt.len() + a.generated.len();
            if pos_next >= a.end_pos {
                finished.push(i); // zero budget (e.g. max_new_tokens = 0)
                continue;
            }
            let next = a.sampler.sample(&a.logits);
            if a.req.stop_at_eos && (next == TOKEN_EOS || next == TOKEN_BOS) {
                finished.push(i);
                continue;
            }
            a.generated.push(next);
            if a.first_token_at.is_none() {
                a.first_token_at = Some(self.now);
            }
            if pos_next + 1 >= a.end_pos {
                // Budget exhausted by this token; the single-tenant loop
                // would still run one last forward, but its logits are
                // never sampled — skipping it cannot change the output.
                finished.push(i);
                continue;
            }
            members.push(i);
            tokens.push(next);
        }

        // Batched forward, in groups of at most `max_batch`. Field-level
        // borrows: `slots` borrows `self.active`, the call borrows
        // `self.backend` — disjoint.
        let mut start = 0;
        while start < members.len() {
            let end = (start + self.cfg.max_batch).min(members.len());
            let idxs = &members[start..end];
            let toks = &tokens[start..end];
            let mut slots: Vec<&mut B::Slot> = Vec::with_capacity(idxs.len());
            {
                let mut want = idxs.iter().peekable();
                for (i, a) in self.active.iter_mut().enumerate() {
                    if want.peek() == Some(&&i) {
                        want.next();
                        slots.push(a.slot.state_mut());
                    }
                }
            }
            let _g = tel::span("serve", "decode_batch").arg("batch", idxs.len() as i64);
            let (logits, cost) = self.backend.decode(&mut slots, toks);
            drop(slots);
            self.now += cost;
            self.stats.decode_batches += 1;
            self.stats.max_batch_observed = self.stats.max_batch_observed.max(idxs.len());
            if tel::enabled() {
                tel::metrics::gauge_set("serve.batch_size", idxs.len() as f64);
            }
            for (&i, l) in idxs.iter().zip(logits) {
                self.active[i].logits = l;
            }
            start = end;
        }
        finished
    }

    /// Releases finished requests' slots and builds their completions, in
    /// admission order.
    fn evict(&mut self, finished: Vec<usize>) -> Vec<Completion> {
        let mut done = Vec::with_capacity(finished.len());
        for &i in finished.iter().rev() {
            let a = self.active.remove(i);
            let completion = Completion {
                id: a.req.id,
                arrival: a.req.arrival,
                admitted_at: a.admitted_at,
                first_token_at: a.first_token_at,
                finished_at: self.now,
                slot_index: a.slot.index(),
                admission_seq: a.admission_seq,
                tokens: a.generated,
            };
            self.pool.release(a.slot);
            if tel::enabled() {
                tel::metrics::counter_add("serve.tokens_generated", completion.tokens.len() as u64);
                if let Some(ttft) = completion.ttft() {
                    tel::metrics::observe("serve.ttft_ticks", ttft);
                }
                tel::metrics::observe("serve.e2e_ticks", completion.e2e());
            }
            self.stats.completed += 1;
            done.push(completion);
        }
        done.reverse();
        done
    }

    /// Drives the engine to completion over a [`TrafficSource`],
    /// synchronously and deterministically. Returns every completion in
    /// finish order.
    pub fn run_with_source(&mut self, source: &mut dyn TrafficSource) -> Vec<Completion> {
        let mut completions = Vec::new();
        loop {
            let room = self.cfg.queue_cap.saturating_sub(self.queue.len());
            if room > 0 {
                for req in source.poll(self.now, self.outstanding(), room) {
                    self.submit(req).expect("room was checked");
                }
            }
            if self.is_idle() {
                if source.is_exhausted() {
                    break;
                }
                // Jump the virtual clock to the next arrival; the +1 is a
                // progress guarantee against a source whose next_arrival
                // never becomes due.
                match source.next_arrival(0) {
                    Some(t) if t > self.now => self.now = t,
                    Some(_) => self.now += 1,
                    None => break,
                }
                continue;
            }
            completions.extend(self.step());
        }
        completions
    }

    /// Serves from a request channel until it disconnects and drains,
    /// pushing completions as they finish. A bounded `rx` channel is the
    /// admission backpressure. Returns the number of requests served.
    /// Stops early (with queued work dropped) only if the completion
    /// receiver disappears.
    pub fn run_queue(&mut self, rx: &Receiver<Request>, tx: &Sender<Completion>) -> u64 {
        let mut served = 0u64;
        let mut disconnected = false;
        loop {
            // Opportunistically drain arrivals without blocking.
            while self.queue.len() < self.cfg.queue_cap {
                match rx.try_recv() {
                    Ok(req) => {
                        self.submit(req).expect("queue depth checked");
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        disconnected = true;
                        break;
                    }
                }
            }
            if self.is_idle() {
                if disconnected {
                    return served;
                }
                // Nothing to do: block until the next request (or EOF).
                match rx.recv() {
                    Ok(req) => {
                        self.submit(req).expect("queue was empty");
                    }
                    Err(RecvError) => return served,
                }
                continue;
            }
            for c in self.step() {
                served += 1;
                if tx.send(c).is_err() {
                    return served; // nobody is listening
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::CpuBackend;
    use speedllm_llama::config::ModelConfig;
    use speedllm_llama::forward::Transformer;
    use speedllm_llama::generate::{generate, GenerateOptions};
    use speedllm_llama::tokenizer::Tokenizer;
    use speedllm_llama::weights::TransformerWeights;

    fn cpu_engine(slots: usize) -> ServeEngine<CpuBackend> {
        let model = Transformer::new(TransformerWeights::synthetic(ModelConfig::test_tiny(), 42));
        ServeEngine::new(
            CpuBackend::new(model),
            ServeConfig {
                slots,
                max_batch: 8,
                prefill_chunk: 4,
                queue_cap: 16,
            },
        )
    }

    fn req(id: u64, prompt: Vec<u32>, max_new: usize, seed: u64) -> Request {
        Request {
            id,
            prompt,
            max_new_tokens: max_new,
            stop_at_eos: true,
            sampler: SamplerKind::Temperature(0.8),
            seed,
            arrival: 0,
        }
    }

    fn drain(engine: &mut ServeEngine<CpuBackend>) -> Vec<Completion> {
        let mut out = Vec::new();
        while !engine.is_idle() {
            out.extend(engine.step());
        }
        out
    }

    #[test]
    fn batched_tokens_match_sequential_generate() {
        let mut engine = cpu_engine(2);
        let tok = Tokenizer::synthetic(64, 42);
        let prompts = ["once upon", "hello there", "abc"];
        for (i, p) in prompts.iter().enumerate() {
            let prompt = tok.encode(p, true, false);
            engine
                .submit(req(i as u64, prompt, 10, 100 + i as u64))
                .unwrap();
        }
        let mut completions = drain(&mut engine);
        completions.sort_by_key(|c| c.id);
        assert_eq!(completions.len(), 3);

        for (i, p) in prompts.iter().enumerate() {
            let mut oracle =
                Transformer::new(TransformerWeights::synthetic(ModelConfig::test_tiny(), 42));
            let mut sampler = Sampler::new(SamplerKind::Temperature(0.8), 100 + i as u64);
            let want = generate(
                &mut oracle,
                &tok,
                &mut sampler,
                p,
                GenerateOptions {
                    max_new_tokens: 10,
                    stop_at_eos: true,
                },
            );
            assert_eq!(
                completions[i].tokens, want.generated_tokens,
                "request {i} diverged from sequential oracle"
            );
        }
    }

    #[test]
    fn zero_budget_request_completes_with_no_tokens() {
        let mut engine = cpu_engine(1);
        engine.submit(req(0, vec![1, 5], 0, 9)).unwrap();
        let done = drain(&mut engine);
        assert_eq!(done.len(), 1);
        assert!(done[0].tokens.is_empty());
        assert!(done[0].first_token_at.is_none());
        assert!(engine.all_slots_free());
    }

    #[test]
    fn admission_is_fifo_and_slots_bound_concurrency() {
        let mut engine = cpu_engine(2);
        for i in 0..6 {
            engine
                .submit(req(i, vec![1, (i + 3) as u32], 4, i))
                .unwrap();
        }
        let done = drain(&mut engine);
        assert_eq!(done.len(), 6);
        // Admission order must follow submission order.
        let mut by_id: Vec<_> = done.clone();
        by_id.sort_by_key(|c| c.id);
        for (i, c) in by_id.iter().enumerate() {
            assert_eq!(c.admission_seq, i as u64, "FIFO admission violated");
        }
        // Two slots only: slot indices stay within the pool.
        assert!(done.iter().all(|c| c.slot_index < 2));
        assert!(engine.all_slots_free());
        assert!(
            engine.slot_reuses() >= 4,
            "6 requests through 2 slots must reuse"
        );
    }

    #[test]
    fn backpressure_rejects_when_queue_full() {
        let model = Transformer::new(TransformerWeights::synthetic(ModelConfig::test_tiny(), 42));
        let mut engine = ServeEngine::new(
            CpuBackend::new(model),
            ServeConfig {
                slots: 1,
                max_batch: 4,
                prefill_chunk: 4,
                queue_cap: 2,
            },
        );
        assert!(engine.submit(req(0, vec![1, 3], 2, 0)).is_ok());
        assert!(engine.submit(req(1, vec![1, 3], 2, 1)).is_ok());
        let back = engine.submit(req(2, vec![1, 3], 2, 2));
        assert_eq!(back.unwrap_err().id, 2, "queue_cap=2 must reject the third");
    }

    #[test]
    fn virtual_clock_advances_and_timestamps_are_ordered() {
        let mut engine = cpu_engine(2);
        engine.submit(req(0, vec![1, 4, 9, 22, 7], 6, 3)).unwrap();
        let done = drain(&mut engine);
        let c = &done[0];
        assert!(engine.now() > 0);
        assert!(c.admitted_at >= c.arrival);
        let ft = c.first_token_at.expect("tokens were generated");
        assert!(ft >= c.admitted_at);
        assert!(c.finished_at >= ft);
        // TTFT covers at least the prompt's prefill cost (5 CPU ticks).
        assert!(c.ttft().unwrap() >= 5);
    }

    #[test]
    fn run_queue_serves_over_channels() {
        let (req_tx, req_rx) = speedllm_llama::sync::bounded::<Request>(4);
        let (done_tx, done_rx) = speedllm_llama::sync::unbounded::<Completion>();
        let tok = Tokenizer::synthetic(64, 42);
        let prompt = tok.encode("hi", true, false);
        let n = 5u64;
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut engine = cpu_engine(2);
                let served = engine.run_queue(&req_rx, &done_tx);
                assert_eq!(served, n);
                drop(done_tx);
            });
            for i in 0..n {
                req_tx.send(req(i, prompt.clone(), 4, i)).unwrap();
            }
            drop(req_tx);
        });
        let mut got: Vec<Completion> = done_rx.iter().collect();
        got.sort_by_key(|c| c.id);
        assert_eq!(got.len(), n as usize);
        // Token streams are batch-composition-independent, so the threaded
        // path must agree with a fresh synchronous run.
        let mut sync_engine = cpu_engine(2);
        for i in 0..n {
            sync_engine.submit(req(i, prompt.clone(), 4, i)).unwrap();
        }
        let mut want = drain(&mut sync_engine);
        want.sort_by_key(|c| c.id);
        for (a, b) in got.iter().zip(&want) {
            assert_eq!(a.tokens, b.tokens);
        }
    }
}
