//! # speedllm-serve
//!
//! The serving layer above the SpeedLLM accelerator: a continuous-batching
//! engine that multiplexes many generation requests over one model and a
//! fixed pool of KV-cache slots (DESIGN.md §11).
//!
//! * [`engine::ServeEngine`] — the scheduler: admit → chunked prefill →
//!   one batched decode step per iteration → evict and back-fill. With a
//!   paged backend, admission is block-budget gated, common prompt
//!   prefixes are shared through a radix index, and block exhaustion
//!   preempts the youngest sequence (DESIGN.md §12).
//! * [`backend`] — the [`backend::Backend`] trait plus the CPU-reference
//!   and accelerator-simulation implementations, each in flat (slot-pool)
//!   and paged (block-table) flavors.
//! * [`loadgen`] — a seeded, deterministic synthetic traffic generator
//!   (open or closed loop).
//! * [`report`] — exact-percentile latency/throughput reporting in
//!   virtual ticks, byte-reproducible for a given seed.
//! * [`events`] — per-request lifecycle event log (virtual-tick stamped,
//!   JSONL + Perfetto export), per-tick scheduler samples, and exact
//!   phase breakdowns (DESIGN.md §15). Attach with
//!   [`engine::ServeEngine::attach_recorder`]; recording never perturbs
//!   token streams.
//! * [`analyze`] — the textual dashboard behind `speedllm analyze`:
//!   phase-breakdown table, goodput, top-N slowest requests, anomaly
//!   flags, all derived from the event JSONL.
//!
//! ## Quick example
//!
//! ```
//! use speedllm_llama::config::ModelConfig;
//! use speedllm_llama::forward::Transformer;
//! use speedllm_llama::sampler::SamplerKind;
//! use speedllm_llama::weights::TransformerWeights;
//! use speedllm_serve::backend::CpuBackend;
//! use speedllm_serve::engine::{ServeConfig, ServeEngine};
//! use speedllm_serve::loadgen::{ArrivalMode, LoadGen, LoadGenConfig};
//!
//! let cfg = ModelConfig::test_tiny();
//! let backend = CpuBackend::new(Transformer::new(TransformerWeights::synthetic(cfg, 42)));
//! let mut engine = ServeEngine::new(backend, ServeConfig::default());
//! let mut traffic = LoadGen::new(&LoadGenConfig {
//!     n_requests: 4,
//!     mode: ArrivalMode::Closed { concurrency: 2 },
//!     prompt_len: (2, 6),
//!     shared_prefix_len: 0,
//!     max_new_tokens: (1, 8),
//!     sampler: SamplerKind::Temperature(0.8),
//!     stop_at_eos: true,
//!     vocab_size: cfg.vocab_size,
//!     seq_len: cfg.seq_len,
//!     seed: 7,
//! });
//! let completions = engine.run_with_source(&mut traffic);
//! assert_eq!(completions.len(), 4);
//! ```

#![warn(missing_docs)]

pub mod analyze;
pub mod backend;
pub mod engine;
pub mod events;
pub mod loadgen;
pub mod report;

pub use analyze::{render_analysis, AnalyzeOptions};
pub use backend::{AccelBackend, Backend, CpuBackend, CpuSlot};
pub use engine::{
    Completion, Request, ServeConfig, ServeEngine, ServeStats, TrafficSource, UnifiedConfig,
};
pub use events::{
    events_to_chrome, parse_events_jsonl, phase_breakdowns, Event, EventKind, EventLog,
    RequestPhases, ServeRecorder,
};
pub use loadgen::{ArrivalMode, LoadGen, LoadGenConfig};
pub use report::{percentile, Percentiles, ServeReport};
