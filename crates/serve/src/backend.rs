//! The [`Backend`] trait: what the continuous-batching scheduler needs
//! from an inference substrate, and its two implementations.
//!
//! A backend owns the model and scratch state; per-sequence context lives
//! in the backend's slot type, which the scheduler checks in and out of a
//! [`speedllm_llama::kv_cache::KvCachePool`]. Both implementations run the
//! exact same per-sequence math as their single-tenant entry points
//! (`llama::generate` / `accel::runtime::Session`), which is what the
//! batched-vs-sequential equivalence suite asserts.
//!
//! Costs are reported in **virtual ticks** so serve-bench reports are
//! bit-reproducible across machines:
//!
//! * [`CpuBackend`] charges one tick per token forward — the CPU has no
//!   batching economy, so a batch of `n` costs `n` ticks.
//! * [`AccelBackend`] charges the simulated device cycles of the pass, so
//!   weight-stream amortization across a batch (the whole point of
//!   continuous batching on the accelerator) shows up in the report.

use speedllm_accel::engine::{Engine, SequenceState};
use speedllm_llama::config::ModelConfig;
use speedllm_llama::forward::Transformer;
use speedllm_llama::kv_cache::{KvCache, PoolSlot};

/// Inference substrate for the serving scheduler: per-sequence state is
/// externalized into `Slot` so one backend serves many interleaved
/// sequences.
pub trait Backend {
    /// Per-sequence context (KV cache and friends), poolable.
    type Slot: PoolSlot;

    /// The model architecture.
    fn config(&self) -> ModelConfig;

    /// Creates an empty slot sized for this model.
    fn new_slot(&self) -> Self::Slot;

    /// Runs one prefill chunk (1..=64 tokens) that contiguously extends
    /// `slot` starting at `start_pos`. Returns the logits after the last
    /// chunk token and the virtual-tick cost of the pass.
    fn prefill(
        &mut self,
        slot: &mut Self::Slot,
        tokens: &[u32],
        start_pos: usize,
    ) -> (Vec<f32>, u64);

    /// Runs one batched decode step: `tokens[i]` extends `slots[i]` at its
    /// current context length. Returns one logit vector per slot, in
    /// order, plus the virtual-tick cost of the whole pass.
    fn decode(&mut self, slots: &mut [&mut Self::Slot], tokens: &[u32]) -> (Vec<Vec<f32>>, u64);

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// CPU reference backend: one [`Transformer`] (weights + scratch) shared
/// across all sequences via [`Transformer::forward_with_cache`].
pub struct CpuBackend {
    model: Transformer,
}

impl CpuBackend {
    /// Wraps a transformer.
    #[must_use]
    pub fn new(model: Transformer) -> Self {
        Self { model }
    }

    /// The underlying model.
    #[must_use]
    pub fn model(&self) -> &Transformer {
        &self.model
    }
}

impl Backend for CpuBackend {
    type Slot = KvCache;

    fn config(&self) -> ModelConfig {
        *self.model.config()
    }

    fn new_slot(&self) -> Self::Slot {
        KvCache::new(self.model.config())
    }

    fn prefill(
        &mut self,
        slot: &mut Self::Slot,
        tokens: &[u32],
        start_pos: usize,
    ) -> (Vec<f32>, u64) {
        assert!(!tokens.is_empty(), "empty chunk");
        let mut logits = Vec::new();
        for (i, &tok) in tokens.iter().enumerate() {
            logits = self
                .model
                .forward_with_cache(slot, tok, start_pos + i)
                .to_vec();
        }
        (logits, tokens.len() as u64)
    }

    fn decode(&mut self, slots: &mut [&mut Self::Slot], tokens: &[u32]) -> (Vec<Vec<f32>>, u64) {
        assert_eq!(slots.len(), tokens.len(), "one token per sequence");
        let mut out = Vec::with_capacity(slots.len());
        for (slot, &tok) in slots.iter_mut().zip(tokens) {
            let pos = slot.len();
            out.push(self.model.forward_with_cache(slot, tok, pos).to_vec());
        }
        (out, slots.len() as u64)
    }

    fn name(&self) -> &'static str {
        "cpu"
    }
}

/// Accelerator-simulation backend: one [`Engine`] shared across sequences
/// via [`Engine::prefill_chunk_seq`] and [`Engine::decode_batch`]. Costs
/// are the simulated device cycles, so batching amortizes weight streams
/// exactly as the device would.
pub struct AccelBackend {
    engine: Engine,
}

impl AccelBackend {
    /// Wraps an engine.
    #[must_use]
    pub fn new(engine: Engine) -> Self {
        Self { engine }
    }

    /// The underlying engine.
    #[must_use]
    pub fn engine(&self) -> &Engine {
        &self.engine
    }
}

impl Backend for AccelBackend {
    type Slot = SequenceState;

    fn config(&self) -> ModelConfig {
        self.engine.graph().config
    }

    fn new_slot(&self) -> Self::Slot {
        self.engine.new_sequence()
    }

    fn prefill(
        &mut self,
        slot: &mut Self::Slot,
        tokens: &[u32],
        start_pos: usize,
    ) -> (Vec<f32>, u64) {
        let step = self.engine.prefill_chunk_seq(slot, tokens, start_pos);
        (step.logits, step.cycles.0)
    }

    fn decode(&mut self, slots: &mut [&mut Self::Slot], tokens: &[u32]) -> (Vec<Vec<f32>>, u64) {
        let (logits, step) = self.engine.decode_batch(slots, tokens);
        (logits, step.cycles.0)
    }

    fn name(&self) -> &'static str {
        "accel"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use speedllm_accel::opt::OptConfig;
    use speedllm_llama::weights::TransformerWeights;
    use std::sync::Arc;

    fn weights() -> TransformerWeights {
        TransformerWeights::synthetic(ModelConfig::test_tiny(), 42)
    }

    #[test]
    fn cpu_backend_matches_single_tenant_forward() {
        let mut backend = CpuBackend::new(Transformer::new(weights()));
        let mut oracle = Transformer::new(weights());
        let mut slot = backend.new_slot();
        let (chunk_logits, cost) = backend.prefill(&mut slot, &[1, 5, 9], 0);
        assert_eq!(cost, 3);
        let mut want = Vec::new();
        for (pos, &t) in [1u32, 5, 9].iter().enumerate() {
            want = oracle.forward(t, pos).to_vec();
        }
        assert_eq!(chunk_logits, want, "prefill diverged from single-tenant");

        let mut refs = [&mut slot];
        let (dec, cost) = backend.decode(&mut refs, &[7]);
        assert_eq!(cost, 1);
        assert_eq!(dec[0], oracle.forward(7, 3).to_vec());
    }

    #[test]
    fn accel_backend_matches_cpu_backend() {
        let mut cpu = CpuBackend::new(Transformer::new(weights()));
        let engine = Engine::new(Arc::new(weights()), OptConfig::full()).unwrap();
        let mut acc = AccelBackend::new(engine);
        let mut cs = cpu.new_slot();
        let mut as_ = acc.new_slot();
        let (lc, _) = cpu.prefill(&mut cs, &[3, 9, 14], 0);
        let (la, _) = acc.prefill(&mut as_, &[3, 9, 14], 0);
        let d = lc
            .iter()
            .zip(&la)
            .fold(0.0f32, |m, (a, b)| m.max((a - b).abs()));
        assert!(d < 1e-4, "backends diverged by {d}");
    }

    #[test]
    fn accel_decode_cost_is_sublinear_in_batch() {
        let engine = Engine::new(Arc::new(weights()), OptConfig::full()).unwrap();
        let mut acc = AccelBackend::new(engine);
        let mut one = acc.new_slot();
        let mut refs = [&mut one];
        let (_, c1) = acc.decode(&mut refs, &[5]);
        let mut slots: Vec<SequenceState> = (0..4).map(|_| acc.new_slot()).collect();
        let mut refs: Vec<&mut SequenceState> = slots.iter_mut().collect();
        let (_, c4) = acc.decode(&mut refs, &[5, 6, 7, 8]);
        assert!(c4 < 4 * c1, "batching must amortize: 1->{c1}, 4->{c4}");
    }
}
