//! The [`Backend`] trait: what the continuous-batching scheduler needs
//! from an inference substrate, and its two implementations.
//!
//! A backend owns the model and scratch state; per-sequence context lives
//! in the backend's slot type, which the scheduler checks in and out of a
//! [`speedllm_llama::kv_cache::KvCachePool`]. Both implementations run the
//! exact same per-sequence math as their single-tenant entry points
//! (`llama::generate` / `accel::runtime::Session`), which is what the
//! batched-vs-sequential equivalence suite asserts.
//!
//! A backend can serve KV context in one of two shapes:
//!
//! * **Flat slots** — each slot owns a contiguous `[seq_len, kv_dim]`
//!   cache (the PR 3 baseline).
//! * **Paged slots** — each slot holds a [`BlockTable`] into a shared
//!   [`PagedKvArena`]; blocks are granted by the scheduler, which is what
//!   enables prefix sharing and preemptive eviction (DESIGN.md §12).
//!   Backends built with `new_paged` report their [`BlockConfig`] via
//!   [`Backend::block_config`], and the scheduler drives block-table
//!   plumbing through [`Backend::slot_table_mut`].
//!
//! Costs are reported in **virtual ticks** so serve-bench reports are
//! bit-reproducible across machines:
//!
//! * [`CpuBackend`] charges one tick per token forward. Its decode step
//!   runs the batched weight-reuse GEMM path (one layer walk, one weight
//!   stream per matrix for the whole batch — DESIGN.md §13), but the tick
//!   cost stays `n` for a batch of `n` so reports from older seeds remain
//!   byte-identical; the batching economy is a *wall-clock* effect.
//! * [`AccelBackend`] charges the simulated device cycles of the pass, so
//!   weight-stream amortization across a batch (the whole point of
//!   continuous batching on the accelerator) shows up in the report.

use speedllm_accel::engine::{Engine, SequenceState};
use speedllm_llama::config::ModelConfig;
use speedllm_llama::forward::Transformer;
use speedllm_llama::kv_cache::{KvCache, PoolSlot};
use speedllm_pagedkv::{BlockConfig, BlockId, BlockTable, PagedKvArena};

/// Inference substrate for the serving scheduler: per-sequence state is
/// externalized into `Slot` so one backend serves many interleaved
/// sequences.
pub trait Backend {
    /// Per-sequence context (KV cache and friends), poolable.
    type Slot: PoolSlot;

    /// The model architecture.
    fn config(&self) -> ModelConfig;

    /// Creates an empty slot sized for this model.
    fn new_slot(&self) -> Self::Slot;

    /// Runs one prefill chunk (1..=64 tokens) that contiguously extends
    /// `slot` starting at `start_pos`. Returns the logits after the last
    /// chunk token and the virtual-tick cost of the pass.
    fn prefill(
        &mut self,
        slot: &mut Self::Slot,
        tokens: &[u32],
        start_pos: usize,
    ) -> (Vec<f32>, u64);

    /// Runs one batched decode step: `tokens[i]` extends `slots[i]` at its
    /// current context length. Returns one logit vector per slot, in
    /// order, plus the virtual-tick cost of the whole pass.
    fn decode(&mut self, slots: &mut [&mut Self::Slot], tokens: &[u32]) -> (Vec<Vec<f32>>, u64);

    /// Runs one **mixed** tick: `runs[i]` (one or more consecutive tokens
    /// — a decode step or a prefill chunk) extends `slots[i]` at its
    /// current context length, all in a single weight-streaming pass
    /// (Sarathi-style unified batching, DESIGN.md §14). Returns the
    /// logits after the last token of each run, in order, plus the
    /// virtual-tick cost of the whole pass. Must be bit-identical to
    /// running each run alone through [`Backend::prefill`] /
    /// [`Backend::decode`].
    fn forward_mixed(
        &mut self,
        slots: &mut [&mut Self::Slot],
        runs: &[&[u32]],
    ) -> (Vec<Vec<f32>>, u64);

    /// Runs one speculative **verify** tick: like
    /// [`Backend::forward_mixed`], every run shares a single
    /// weight-streaming pass, but the logits of **every** token row are
    /// returned — entry `i` is row-major `[runs[i].len() * vocab]`. The
    /// speculative decode phase scores each sequence's pending token plus
    /// its K draft proposals in one of these ticks.
    fn verify(&mut self, slots: &mut [&mut Self::Slot], runs: &[&[u32]]) -> (Vec<Vec<f32>>, u64);

    /// Rolls `slot` back to `len` context positions, discarding rejected
    /// speculative rows. Paged slots pop the whole blocks past the keep
    /// point and return them — the scheduler releases each through its
    /// allocator (CoW-aware) and reports actual frees via
    /// [`Backend::on_blocks_freed`]. Flat slots return an empty vec.
    fn truncate_slot(slot: &mut Self::Slot, len: usize) -> Vec<BlockId>;

    /// Block geometry when this backend serves paged KV, `None` for flat
    /// slots. The scheduler switches to block-budget admission iff this
    /// returns `Some`.
    fn block_config(&self) -> Option<BlockConfig> {
        None
    }

    /// The slot's block table, for paged backends. The scheduler grants
    /// and reclaims blocks through this; flat slots return `None`.
    fn slot_table_mut(slot: &mut Self::Slot) -> Option<&mut BlockTable> {
        let _ = slot;
        None
    }

    /// Hook invoked when the scheduler returns blocks to the free list —
    /// paged backends poison the freed rows in debug builds so stale
    /// reads through a dangling table are loud.
    fn on_blocks_freed(&mut self, blocks: &[BlockId]) {
        let _ = blocks;
    }

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// Per-sequence context of the [`CpuBackend`]: a flat private cache, or a
/// block table into the backend's shared paged arena.
pub enum CpuSlot {
    /// Contiguous per-sequence cache (slot-pool baseline).
    Flat(KvCache),
    /// Block-table view into the backend's [`PagedKvArena`].
    Paged(BlockTable),
}

impl PoolSlot for CpuSlot {
    fn reset_slot(&mut self) {
        match self {
            CpuSlot::Flat(kv) => kv.reset(),
            // The scheduler strips the block chain before release.
            CpuSlot::Paged(table) => table.reset(),
        }
    }

    fn slot_len(&self) -> usize {
        match self {
            CpuSlot::Flat(kv) => kv.len(),
            CpuSlot::Paged(table) => table.len(),
        }
    }

    fn poison_slot(&mut self) {
        // Paged storage is poisoned block-by-block as blocks are freed
        // (the arena owns the rows, and shared blocks may still be live).
        if let CpuSlot::Flat(kv) = self {
            kv.poison();
        }
    }
}

/// CPU reference backend: one [`Transformer`] (weights + scratch) shared
/// across all sequences via [`Transformer::forward_with_kv`].
pub struct CpuBackend {
    model: Transformer,
    arena: Option<PagedKvArena>,
}

impl CpuBackend {
    /// Wraps a transformer with flat (slot-pool) KV context.
    #[must_use]
    pub fn new(model: Transformer) -> Self {
        Self { model, arena: None }
    }

    /// Wraps a transformer with a shared paged-KV arena of `blocks`.
    #[must_use]
    pub fn new_paged(model: Transformer, blocks: BlockConfig) -> Self {
        let arena = PagedKvArena::new(model.config(), blocks);
        Self {
            model,
            arena: Some(arena),
        }
    }

    /// The underlying model.
    #[must_use]
    pub fn model(&self) -> &Transformer {
        &self.model
    }

    /// One sequential forward step. Returns a borrow of the model's logits
    /// scratch — the caller decides when (and whether) to copy, so a
    /// prefill chunk of N tokens no longer pays N `to_vec` allocations,
    /// only the single copy of the last token's logits it actually keeps.
    fn forward<'m>(
        model: &'m mut Transformer,
        arena: &mut Option<PagedKvArena>,
        slot: &mut CpuSlot,
        tok: u32,
        pos: usize,
    ) -> &'m [f32] {
        match slot {
            CpuSlot::Flat(kv) => model.forward_with_kv(kv, tok, pos),
            CpuSlot::Paged(table) => {
                let arena = arena.as_mut().expect("paged slot without an arena");
                let mut view = arena.view(table);
                model.forward_with_kv(&mut view, tok, pos)
            }
        }
    }
}

impl Backend for CpuBackend {
    type Slot = CpuSlot;

    fn config(&self) -> ModelConfig {
        *self.model.config()
    }

    fn new_slot(&self) -> Self::Slot {
        match &self.arena {
            None => CpuSlot::Flat(KvCache::new(self.model.config())),
            Some(arena) => CpuSlot::Paged(BlockTable::new(arena.block_size())),
        }
    }

    fn prefill(
        &mut self,
        slot: &mut Self::Slot,
        tokens: &[u32],
        start_pos: usize,
    ) -> (Vec<f32>, u64) {
        assert!(!tokens.is_empty(), "empty chunk");
        let (last, rest) = tokens.split_last().expect("non-empty chunk");
        for (i, &tok) in rest.iter().enumerate() {
            // Intermediate logits stay in the model's scratch, uncopied.
            Self::forward(&mut self.model, &mut self.arena, slot, tok, start_pos + i);
        }
        let logits = Self::forward(
            &mut self.model,
            &mut self.arena,
            slot,
            *last,
            start_pos + rest.len(),
        );
        (logits.to_vec(), tokens.len() as u64)
    }

    /// One batched decode step through
    /// [`Transformer::forward_batch_with_kv`]: the layers are walked once
    /// and every weight matrix is streamed once for the whole batch
    /// (bit-identical to the per-sequence loop — see DESIGN.md §13). The
    /// virtual-tick cost stays `slots.len()` — the serve clock charges
    /// per-token work so reports remain byte-reproducible; the weight-reuse
    /// win shows up in wall-clock throughput (`ablation_batched_gemm`) and
    /// in the `cpu.gemm_*` telemetry counters.
    fn decode(&mut self, slots: &mut [&mut Self::Slot], tokens: &[u32]) -> (Vec<Vec<f32>>, u64) {
        assert_eq!(slots.len(), tokens.len(), "one token per sequence");
        assert!(!slots.is_empty(), "empty batch");
        let positions: Vec<usize> = slots.iter().map(|s| s.slot_len()).collect();
        let vocab = self.model.config().vocab_size;
        let logits: &[f32] = match &mut self.arena {
            None => {
                let mut kvs: Vec<&mut KvCache> = slots
                    .iter_mut()
                    .map(|s| match &mut **s {
                        CpuSlot::Flat(kv) => kv,
                        CpuSlot::Paged(_) => panic!("paged slot in a flat backend"),
                    })
                    .collect();
                self.model
                    .forward_batch_with_kv(kvs.as_mut_slice(), tokens, &positions)
            }
            Some(arena) => {
                let tables: Vec<&mut BlockTable> = slots
                    .iter_mut()
                    .map(|s| match &mut **s {
                        CpuSlot::Paged(table) => table,
                        CpuSlot::Flat(_) => panic!("flat slot in a paged backend"),
                    })
                    .collect();
                let mut batch = arena.batch_view(tables);
                self.model
                    .forward_batch_with_kv(&mut batch, tokens, &positions)
            }
        };
        let out = (0..slots.len())
            .map(|b| logits[b * vocab..(b + 1) * vocab].to_vec())
            .collect();
        (out, slots.len() as u64)
    }

    /// One mixed tick through [`Transformer::forward_runs_with_kv`]: every
    /// decode row and prefill-chunk row of the tick shares the same layer
    /// walk and weight streams. The virtual-tick cost is the total number
    /// of token rows carried — per-token, like `prefill` and `decode`, so
    /// the clock charges work actually done rather than a tick per phase.
    fn forward_mixed(
        &mut self,
        slots: &mut [&mut Self::Slot],
        runs: &[&[u32]],
    ) -> (Vec<Vec<f32>>, u64) {
        assert_eq!(slots.len(), runs.len(), "one token run per sequence");
        assert!(!slots.is_empty(), "empty batch");
        let starts: Vec<usize> = slots.iter().map(|s| s.slot_len()).collect();
        let counts: Vec<usize> = runs.iter().map(|r| r.len()).collect();
        let tokens: Vec<u32> = runs.iter().flat_map(|r| r.iter().copied()).collect();
        let rows = tokens.len() as u64;
        let vocab = self.model.config().vocab_size;
        let logits: &[f32] = match &mut self.arena {
            None => {
                let mut kvs: Vec<&mut KvCache> = slots
                    .iter_mut()
                    .map(|s| match &mut **s {
                        CpuSlot::Flat(kv) => kv,
                        CpuSlot::Paged(_) => panic!("paged slot in a flat backend"),
                    })
                    .collect();
                self.model
                    .forward_runs_with_kv(kvs.as_mut_slice(), &tokens, &counts, &starts)
            }
            Some(arena) => {
                let tables: Vec<&mut BlockTable> = slots
                    .iter_mut()
                    .map(|s| match &mut **s {
                        CpuSlot::Paged(table) => table,
                        CpuSlot::Flat(_) => panic!("flat slot in a paged backend"),
                    })
                    .collect();
                let mut batch = arena.batch_view(tables);
                self.model
                    .forward_runs_with_kv(&mut batch, &tokens, &counts, &starts)
            }
        };
        let out = (0..slots.len())
            .map(|b| logits[b * vocab..(b + 1) * vocab].to_vec())
            .collect();
        (out, rows)
    }

    /// One verify tick through
    /// [`Transformer::forward_runs_all_logits_with_kv`]: the same single
    /// weight-streaming pass as `forward_mixed`, but every row's logits
    /// come back (row-major per run) for the accept loop to score. Cost
    /// stays per-token-row, like every other CPU tick.
    fn verify(&mut self, slots: &mut [&mut Self::Slot], runs: &[&[u32]]) -> (Vec<Vec<f32>>, u64) {
        assert_eq!(slots.len(), runs.len(), "one token run per sequence");
        assert!(!slots.is_empty(), "empty batch");
        let starts: Vec<usize> = slots.iter().map(|s| s.slot_len()).collect();
        let counts: Vec<usize> = runs.iter().map(|r| r.len()).collect();
        let tokens: Vec<u32> = runs.iter().flat_map(|r| r.iter().copied()).collect();
        let rows = tokens.len() as u64;
        let vocab = self.model.config().vocab_size;
        let logits: &[f32] = match &mut self.arena {
            None => {
                let mut kvs: Vec<&mut KvCache> = slots
                    .iter_mut()
                    .map(|s| match &mut **s {
                        CpuSlot::Flat(kv) => kv,
                        CpuSlot::Paged(_) => panic!("paged slot in a flat backend"),
                    })
                    .collect();
                self.model.forward_runs_all_logits_with_kv(
                    kvs.as_mut_slice(),
                    &tokens,
                    &counts,
                    &starts,
                )
            }
            Some(arena) => {
                let tables: Vec<&mut BlockTable> = slots
                    .iter_mut()
                    .map(|s| match &mut **s {
                        CpuSlot::Paged(table) => table,
                        CpuSlot::Flat(_) => panic!("flat slot in a paged backend"),
                    })
                    .collect();
                let mut batch = arena.batch_view(tables);
                self.model
                    .forward_runs_all_logits_with_kv(&mut batch, &tokens, &counts, &starts)
            }
        };
        let mut out = Vec::with_capacity(runs.len());
        let mut row = 0usize;
        for &cnt in &counts {
            out.push(logits[row * vocab..(row + cnt) * vocab].to_vec());
            row += cnt;
        }
        (out, rows)
    }

    fn truncate_slot(slot: &mut Self::Slot, len: usize) -> Vec<BlockId> {
        match slot {
            CpuSlot::Flat(kv) => {
                kv.truncate(len);
                Vec::new()
            }
            CpuSlot::Paged(table) => table.rollback(len),
        }
    }

    fn block_config(&self) -> Option<BlockConfig> {
        self.arena.as_ref().map(PagedKvArena::block_config)
    }

    fn slot_table_mut(slot: &mut Self::Slot) -> Option<&mut BlockTable> {
        match slot {
            CpuSlot::Flat(_) => None,
            CpuSlot::Paged(table) => Some(table),
        }
    }

    fn on_blocks_freed(&mut self, blocks: &[BlockId]) {
        if cfg!(debug_assertions) {
            if let Some(arena) = &mut self.arena {
                arena.poison_blocks(blocks);
            }
        }
    }

    fn name(&self) -> &'static str {
        "cpu"
    }
}

/// Accelerator-simulation backend: one [`Engine`] shared across sequences
/// via [`Engine::prefill_chunk_seq`] and [`Engine::decode_batch`]. Costs
/// are the simulated device cycles, so batching amortizes weight streams
/// exactly as the device would.
pub struct AccelBackend {
    engine: Engine,
}

impl AccelBackend {
    /// Wraps an engine with flat (slot-pool) KV context.
    #[must_use]
    pub fn new(engine: Engine) -> Self {
        Self { engine }
    }

    /// Wraps an engine and switches it to a shared paged-KV arena of
    /// `blocks`.
    #[must_use]
    pub fn new_paged(mut engine: Engine, blocks: BlockConfig) -> Self {
        engine.enable_paged_kv(blocks);
        Self { engine }
    }

    /// The underlying engine.
    #[must_use]
    pub fn engine(&self) -> &Engine {
        &self.engine
    }
}

impl Backend for AccelBackend {
    type Slot = SequenceState;

    fn config(&self) -> ModelConfig {
        self.engine.graph().config
    }

    fn new_slot(&self) -> Self::Slot {
        self.engine.new_sequence()
    }

    fn prefill(
        &mut self,
        slot: &mut Self::Slot,
        tokens: &[u32],
        start_pos: usize,
    ) -> (Vec<f32>, u64) {
        let step = self.engine.prefill_chunk_seq(slot, tokens, start_pos);
        (step.logits, step.cycles.0)
    }

    fn decode(&mut self, slots: &mut [&mut Self::Slot], tokens: &[u32]) -> (Vec<Vec<f32>>, u64) {
        let (logits, step) = self.engine.decode_batch(slots, tokens);
        (logits, step.cycles.0)
    }

    fn forward_mixed(
        &mut self,
        slots: &mut [&mut Self::Slot],
        runs: &[&[u32]],
    ) -> (Vec<Vec<f32>>, u64) {
        let (logits, step) = self.engine.forward_mixed(slots, runs);
        (logits, step.cycles.0)
    }

    /// One verify tick through [`Engine::verify_batch`]: the cost is the
    /// simulated cycles of the single mixed device pass, so the ~K×
    /// weight-traffic cut per accepted run shows up directly in the
    /// report's tick totals.
    fn verify(&mut self, slots: &mut [&mut Self::Slot], runs: &[&[u32]]) -> (Vec<Vec<f32>>, u64) {
        let (logits, step) = self.engine.verify_batch(slots, runs);
        (logits, step.cycles.0)
    }

    fn truncate_slot(slot: &mut Self::Slot, len: usize) -> Vec<BlockId> {
        slot.truncate(len)
    }

    fn block_config(&self) -> Option<BlockConfig> {
        self.engine.paged_block_config()
    }

    fn slot_table_mut(slot: &mut Self::Slot) -> Option<&mut BlockTable> {
        slot.block_table_mut()
    }

    fn on_blocks_freed(&mut self, blocks: &[BlockId]) {
        if cfg!(debug_assertions) {
            self.engine.poison_blocks(blocks);
        }
    }

    fn name(&self) -> &'static str {
        "accel"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use speedllm_accel::opt::OptConfig;
    use speedllm_llama::weights::TransformerWeights;
    use speedllm_pagedkv::BlockAllocator;
    use std::sync::Arc;

    fn weights() -> TransformerWeights {
        TransformerWeights::synthetic(ModelConfig::test_tiny(), 42)
    }

    #[test]
    fn cpu_backend_matches_single_tenant_forward() {
        let mut backend = CpuBackend::new(Transformer::new(weights()));
        let mut oracle = Transformer::new(weights());
        let mut slot = backend.new_slot();
        let (chunk_logits, cost) = backend.prefill(&mut slot, &[1, 5, 9], 0);
        assert_eq!(cost, 3);
        let mut want = Vec::new();
        for (pos, &t) in [1u32, 5, 9].iter().enumerate() {
            want = oracle.forward(t, pos).to_vec();
        }
        assert_eq!(chunk_logits, want, "prefill diverged from single-tenant");

        let mut refs = [&mut slot];
        let (dec, cost) = backend.decode(&mut refs, &[7]);
        assert_eq!(cost, 1);
        assert_eq!(dec[0], oracle.forward(7, 3).to_vec());
    }

    #[test]
    fn paged_cpu_backend_matches_flat_cpu_backend() {
        let mut flat = CpuBackend::new(Transformer::new(weights()));
        let bc = BlockConfig {
            block_size: 4,
            n_blocks: 8,
        };
        let mut paged = CpuBackend::new_paged(Transformer::new(weights()), bc);
        assert_eq!(paged.block_config(), Some(bc));
        assert!(flat.block_config().is_none());

        let mut alloc = BlockAllocator::new(bc);
        let mut fs = flat.new_slot();
        let mut ps = paged.new_slot();
        let table = CpuBackend::slot_table_mut(&mut ps).expect("paged slot");
        for _ in 0..2 {
            table.push_block(alloc.alloc().unwrap());
        }
        let (lf, _) = flat.prefill(&mut fs, &[3, 9, 14, 27, 5], 0);
        let (lp, _) = paged.prefill(&mut ps, &[3, 9, 14, 27, 5], 0);
        assert_eq!(lp, lf, "block indirection changed CPU math");

        let mut fr = [&mut fs];
        let mut pr = [&mut ps];
        let (df, _) = flat.decode(&mut fr, &[8]);
        let (dp, _) = paged.decode(&mut pr, &[8]);
        assert_eq!(dp, df);
    }

    #[test]
    fn accel_backend_matches_cpu_backend() {
        let mut cpu = CpuBackend::new(Transformer::new(weights()));
        let engine = Engine::new(Arc::new(weights()), OptConfig::full()).unwrap();
        let mut acc = AccelBackend::new(engine);
        let mut cs = cpu.new_slot();
        let mut as_ = acc.new_slot();
        let (lc, _) = cpu.prefill(&mut cs, &[3, 9, 14], 0);
        let (la, _) = acc.prefill(&mut as_, &[3, 9, 14], 0);
        let d = lc
            .iter()
            .zip(&la)
            .fold(0.0f32, |m, (a, b)| m.max((a - b).abs()));
        assert!(d < 1e-4, "backends diverged by {d}");
    }

    #[test]
    fn cpu_mixed_tick_matches_separate_phases_bit_exactly() {
        // One tick carrying a decode row + a 3-token prefill chunk must
        // equal prefill-then-decode run separately, and cost the total
        // token rows carried.
        let mut mixed = CpuBackend::new(Transformer::new(weights()));
        let mut oracle = CpuBackend::new(Transformer::new(weights()));

        // Warm sequence: 2-token context in both backends.
        let mut warm_m = mixed.new_slot();
        let mut warm_o = oracle.new_slot();
        mixed.prefill(&mut warm_m, &[4, 11], 0);
        oracle.prefill(&mut warm_o, &[4, 11], 0);
        // Cold sequence starts empty.
        let mut cold_m = mixed.new_slot();
        let mut cold_o = oracle.new_slot();

        let mut slots = [&mut warm_m, &mut cold_m];
        let runs: [&[u32]; 2] = [&[7], &[3, 9, 14]];
        let (got, cost) = mixed.forward_mixed(&mut slots, &runs);
        assert_eq!(cost, 4, "mixed tick must cost the rows it carried");

        let mut one = [&mut warm_o];
        let (dec, _) = oracle.decode(&mut one, &[7]);
        let (pre, _) = oracle.prefill(&mut cold_o, &[3, 9, 14], 0);
        assert_eq!(got[0], dec[0], "decode member diverged in mixed tick");
        assert_eq!(got[1], pre, "prefill member diverged in mixed tick");
        assert_eq!(warm_m.slot_len(), 3);
        assert_eq!(cold_m.slot_len(), 3);
    }

    #[test]
    fn accel_mixed_tick_matches_separate_phases_bit_exactly() {
        let make = || {
            let engine = Engine::new(Arc::new(weights()), OptConfig::full()).unwrap();
            AccelBackend::new(engine)
        };
        let mut mixed = make();
        let mut oracle = make();

        let mut warm_m = mixed.new_slot();
        let mut warm_o = oracle.new_slot();
        mixed.prefill(&mut warm_m, &[4, 11], 0);
        oracle.prefill(&mut warm_o, &[4, 11], 0);
        let mut cold_m = mixed.new_slot();
        let mut cold_o = oracle.new_slot();

        let mut slots = [&mut warm_m, &mut cold_m];
        let runs: [&[u32]; 2] = [&[7], &[3, 9, 14]];
        let (got, cost) = mixed.forward_mixed(&mut slots, &runs);
        assert!(cost > 0, "device pass must cost cycles");

        let mut one = [&mut warm_o];
        let (dec, _) = oracle.decode(&mut one, &[7]);
        let (pre, _) = oracle.prefill(&mut cold_o, &[3, 9, 14], 0);
        assert_eq!(got[0], dec[0], "decode member diverged in mixed tick");
        assert_eq!(got[1], pre, "prefill member diverged in mixed tick");
    }

    #[test]
    fn accel_decode_cost_is_sublinear_in_batch() {
        let engine = Engine::new(Arc::new(weights()), OptConfig::full()).unwrap();
        let mut acc = AccelBackend::new(engine);
        let mut one = acc.new_slot();
        let mut refs = [&mut one];
        let (_, c1) = acc.decode(&mut refs, &[5]);
        let mut slots: Vec<SequenceState> = (0..4).map(|_| acc.new_slot()).collect();
        let mut refs: Vec<&mut SequenceState> = slots.iter_mut().collect();
        let (_, c4) = acc.decode(&mut refs, &[5, 6, 7, 8]);
        assert!(c4 < 4 * c1, "batching must amortize: 1->{c1}, 4->{c4}");
    }
}
