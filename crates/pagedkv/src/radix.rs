//! Radix tree over *full* KV blocks: maps token prefixes (in
//! `block_size`-token edges) to chains of shared physical blocks, so a
//! new request with a cached prompt prefix reuses the prefilled blocks
//! and skips straight to the divergence point.
//!
//! The index is itself a holder: every cached block carries one tree
//! refcount (taken at [`RadixIndex::insert`]) in addition to one per
//! referencing sequence, which keeps hot prefixes alive *between*
//! requests. Under memory pressure [`RadixIndex::evict`] drops
//! least-recently-used leaf chains whose blocks no live sequence
//! references, in a deterministic order (oldest stamp first, block id
//! as tie-break) so serve runs stay byte-reproducible.

use std::collections::BTreeMap;

use crate::block::{BlockAllocator, BlockId};

#[derive(Debug)]
struct Node {
    /// The `block_size` tokens labelling the edge from the parent.
    tokens: Box<[u32]>,
    block: BlockId,
    /// `None` = child of the root.
    parent: Option<usize>,
    children: BTreeMap<Box<[u32]>, usize>,
    /// Lookup clock stamp for LRU eviction.
    last_use: u64,
}

/// Prefix → shared-block-chain index at block granularity. Only full
/// blocks are ever cached: partially filled tails stay private to their
/// sequence, so a cached block is immutable by construction.
#[derive(Debug)]
pub struct RadixIndex {
    block_size: usize,
    /// Slab of nodes; `None` entries are free for reuse.
    nodes: Vec<Option<Node>>,
    free_nodes: Vec<usize>,
    root_children: BTreeMap<Box<[u32]>, usize>,
    clock: u64,
    cached: usize,
}

impl RadixIndex {
    #[must_use]
    pub fn new(block_size: usize) -> Self {
        assert!(block_size > 0, "block_size must be positive");
        Self {
            block_size,
            nodes: Vec::new(),
            free_nodes: Vec::new(),
            root_children: BTreeMap::new(),
            clock: 0,
            cached: 0,
        }
    }

    #[must_use]
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of blocks currently cached by the tree.
    #[must_use]
    pub fn cached_blocks(&self) -> usize {
        self.cached
    }

    fn node(&self, id: usize) -> &Node {
        self.nodes[id].as_ref().expect("live node")
    }

    fn node_mut(&mut self, id: usize) -> &mut Node {
        self.nodes[id].as_mut().expect("live node")
    }

    /// Longest cached chain matching a prefix of `tokens`, capped at
    /// `max_tokens` (callers cap below the full context so at least one
    /// token is always left to prefill, which produces the logits).
    /// Returns the physical blocks of the matched prefix in order; the
    /// match covers `returned.len() * block_size` tokens. Touches the
    /// matched path's LRU stamps.
    pub fn lookup(&mut self, tokens: &[u32], max_tokens: usize) -> Vec<BlockId> {
        self.clock += 1;
        let stamp = self.clock;
        let limit = max_tokens.min(tokens.len()) / self.block_size;
        let mut chain = Vec::new();
        let mut children = &self.root_children;
        let mut path = Vec::new();
        for d in 0..limit {
            let chunk = &tokens[d * self.block_size..(d + 1) * self.block_size];
            match children.get(chunk) {
                Some(&id) => {
                    path.push(id);
                    chain.push(self.node(id).block);
                    children = &self.node(id).children;
                }
                None => break,
            }
        }
        for id in path {
            self.node_mut(id).last_use = stamp;
        }
        chain
    }

    /// Length in tokens of the longest cached prefix of `tokens`, as a
    /// side-effect-free probe: no LRU stamp is touched and no refcount
    /// is taken, so a router can rank replicas by expected prefix hit
    /// without pinning blocks on replicas it may not choose. Agrees
    /// with [`RadixIndex::lookup`]: for any `tokens` and cap,
    /// `lookup(tokens, cap).len() * block_size
    ///  == longest_prefix_len(tokens).min(cap / block_size * block_size)`.
    #[must_use]
    pub fn longest_prefix_len(&self, tokens: &[u32]) -> usize {
        let limit = tokens.len() / self.block_size;
        let mut matched = 0;
        let mut children = &self.root_children;
        for d in 0..limit {
            let chunk = &tokens[d * self.block_size..(d + 1) * self.block_size];
            match children.get(chunk) {
                Some(&id) => {
                    matched += 1;
                    children = &self.node(id).children;
                }
                None => break,
            }
        }
        matched * self.block_size
    }

    /// Caches the chain `blocks` under the token prefix `tokens` (which
    /// must cover at least `blocks.len() * block_size` tokens). Each
    /// *newly* cached block gains one tree refcount via `alloc.retain`;
    /// depths already cached keep their existing block (the KV contents
    /// are identical by determinism of the forward pass, so the caller's
    /// duplicate simply is not cached). Returns how many blocks were
    /// newly cached.
    pub fn insert(
        &mut self,
        tokens: &[u32],
        blocks: &[BlockId],
        alloc: &mut BlockAllocator,
    ) -> usize {
        assert!(
            tokens.len() >= blocks.len() * self.block_size,
            "prefix shorter than the block chain"
        );
        self.clock += 1;
        let stamp = self.clock;
        let mut parent: Option<usize> = None;
        let mut added = 0;
        for (d, &block) in blocks.iter().enumerate() {
            let chunk = &tokens[d * self.block_size..(d + 1) * self.block_size];
            let children = match parent {
                Some(p) => &self.node(p).children,
                None => &self.root_children,
            };
            if let Some(&id) = children.get(chunk) {
                self.node_mut(id).last_use = stamp;
                parent = Some(id);
                continue;
            }
            alloc.retain(block);
            let node = Node {
                tokens: chunk.into(),
                block,
                parent,
                children: BTreeMap::new(),
                last_use: stamp,
            };
            let id = match self.free_nodes.pop() {
                Some(slot) => {
                    self.nodes[slot] = Some(node);
                    slot
                }
                None => {
                    self.nodes.push(Some(node));
                    self.nodes.len() - 1
                }
            };
            match parent {
                Some(p) => self.node_mut(p).children.insert(chunk.into(), id),
                None => self.root_children.insert(chunk.into(), id),
            };
            self.cached += 1;
            added += 1;
            parent = Some(id);
        }
        added
    }

    /// Frees cached blocks until `need` have been freed or no candidate
    /// remains. Only leaf nodes whose block has no live sequence holder
    /// (refcount exactly 1, the tree's own) are evictable; dropping a
    /// leaf can expose its parent, so whole cold chains unwind. Returns
    /// the freed block ids (oldest-stamp-first, block id tie-break —
    /// fully deterministic).
    pub fn evict(&mut self, need: usize, alloc: &mut BlockAllocator) -> Vec<BlockId> {
        let mut freed = Vec::new();
        while freed.len() < need {
            let mut best: Option<(u64, BlockId, usize)> = None;
            for (id, slot) in self.nodes.iter().enumerate() {
                let Some(n) = slot else { continue };
                if !n.children.is_empty() || alloc.refcount(n.block) != 1 {
                    continue;
                }
                let key = (n.last_use, n.block);
                if best.map_or(true, |(u, b, _)| key < (u, b)) {
                    best = Some((n.last_use, n.block, id));
                }
            }
            let Some((_, _, id)) = best else { break };
            let node = self.nodes[id].take().expect("live node");
            self.free_nodes.push(id);
            self.cached -= 1;
            match node.parent {
                Some(p) => self.node_mut(p).children.remove(&node.tokens),
                None => self.root_children.remove(&node.tokens),
            };
            let was_freed = alloc.release(node.block);
            debug_assert!(was_freed, "tree held the last reference");
            freed.push(node.block);
        }
        freed
    }

    /// Every block currently cached (unordered use only in tests).
    #[must_use]
    pub fn blocks(&self) -> Vec<BlockId> {
        self.nodes
            .iter()
            .filter_map(|n| n.as_ref().map(|n| n.block))
            .collect()
    }

    /// Structural invariants for the property suite: parent/child links
    /// are consistent and every cached block is live in `alloc`.
    pub fn check_invariants(&self, alloc: &BlockAllocator) -> Result<(), String> {
        let mut reachable = 0usize;
        let mut stack: Vec<(Option<usize>, usize)> =
            self.root_children.values().map(|&id| (None, id)).collect();
        while let Some((parent, id)) = stack.pop() {
            let Some(n) = self.nodes.get(id).and_then(|s| s.as_ref()) else {
                return Err(format!("child link to dead node {id}"));
            };
            if n.parent != parent {
                return Err(format!("node {id} has a stale parent pointer"));
            }
            if alloc.refcount(n.block) == 0 {
                return Err(format!("cached block {:?} is on the free list", n.block));
            }
            reachable += 1;
            stack.extend(n.children.values().map(|&c| (Some(id), c)));
        }
        if reachable != self.cached {
            return Err(format!(
                "cached count {} != reachable nodes {reachable}",
                self.cached
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockConfig;

    fn setup(n_blocks: usize) -> (RadixIndex, BlockAllocator) {
        (
            RadixIndex::new(2),
            BlockAllocator::new(BlockConfig {
                block_size: 2,
                n_blocks,
            }),
        )
    }

    fn chain(alloc: &mut BlockAllocator, n: usize) -> Vec<BlockId> {
        (0..n).map(|_| alloc.alloc().unwrap()).collect()
    }

    #[test]
    fn lookup_returns_exactly_the_inserted_prefix() {
        let (mut idx, mut alloc) = setup(8);
        let toks = [1, 2, 3, 4, 5];
        let blocks = chain(&mut alloc, 2); // covers [1,2] and [3,4]
        assert_eq!(idx.insert(&toks, &blocks, &mut alloc), 2);
        assert_eq!(idx.lookup(&toks, 5), blocks);
        assert_eq!(idx.lookup(&[1, 2, 9, 9], 4), blocks[..1]);
        assert_eq!(idx.lookup(&[7, 7], 2), &[]);
        // The cap truncates the walk to whole blocks below it.
        assert_eq!(idx.lookup(&toks, 3), blocks[..1]);
        idx.check_invariants(&alloc).unwrap();
    }

    #[test]
    fn insert_is_idempotent_and_keeps_the_first_block() {
        let (mut idx, mut alloc) = setup(8);
        let toks = [1, 2, 3, 4];
        let first = chain(&mut alloc, 2);
        let second = chain(&mut alloc, 2);
        assert_eq!(idx.insert(&toks, &first, &mut alloc), 2);
        assert_eq!(
            idx.insert(&toks, &second, &mut alloc),
            0,
            "duplicate prefix caches nothing"
        );
        assert_eq!(idx.lookup(&toks, 4), first, "first insert wins");
        assert_eq!(alloc.refcount(second[0]), 1, "duplicate not retained");
        assert_eq!(alloc.refcount(first[0]), 2, "owner + tree");
        idx.check_invariants(&alloc).unwrap();
    }

    #[test]
    fn shared_prefixes_share_nodes() {
        let (mut idx, mut alloc) = setup(8);
        let a = chain(&mut alloc, 2);
        idx.insert(&[1, 2, 3, 4], &a, &mut alloc);
        // Same first block tokens, divergent second block: one new node.
        let b = chain(&mut alloc, 2);
        assert_eq!(idx.insert(&[1, 2, 8, 9], &b, &mut alloc), 1);
        assert_eq!(idx.cached_blocks(), 3);
        assert_eq!(alloc.refcount(b[0]), 1, "shared depth not re-cached");
        assert_eq!(idx.lookup(&[1, 2, 8, 9], 4), vec![a[0], b[1]]);
        idx.check_invariants(&alloc).unwrap();
    }

    #[test]
    fn evict_unwinds_cold_leaf_chains_deterministically() {
        let (mut idx, mut alloc) = setup(8);
        let a = chain(&mut alloc, 2);
        let b = chain(&mut alloc, 2);
        idx.insert(&[1, 2, 3, 4], &a, &mut alloc);
        idx.insert(&[5, 6, 7, 8], &b, &mut alloc);
        // The owning sequences release their chains; only the tree holds them.
        for &blk in a.iter().chain(&b) {
            alloc.release(blk);
        }
        // Touch chain `a` so `b` is colder.
        idx.lookup(&[1, 2, 3, 4], 4);
        let freed = idx.evict(2, &mut alloc);
        assert_eq!(freed, vec![b[1], b[0]], "leaf first, then exposed parent");
        assert_eq!(idx.cached_blocks(), 2);
        assert_eq!(idx.lookup(&[5, 6, 7, 8], 4), &[]);
        assert_eq!(idx.lookup(&[1, 2, 3, 4], 4), a, "hot chain survived");
        idx.check_invariants(&alloc).unwrap();
    }

    #[test]
    fn probe_agrees_with_lookup_and_takes_no_refcounts() {
        let (mut idx, mut alloc) = setup(8);
        let toks = [1, 2, 3, 4, 5, 6];
        let blocks = chain(&mut alloc, 3);
        idx.insert(&toks, &blocks, &mut alloc);
        let refs_before: Vec<_> = blocks.iter().map(|&b| alloc.refcount(b)).collect();
        // Full-chain, partial, divergent, and sub-block probes.
        assert_eq!(idx.longest_prefix_len(&toks), 6);
        assert_eq!(idx.longest_prefix_len(&[1, 2, 3, 9]), 2);
        assert_eq!(idx.longest_prefix_len(&[7, 7]), 0);
        assert_eq!(idx.longest_prefix_len(&[1]), 0, "sub-block never matches");
        // Probing neither retains blocks nor perturbs the LRU order.
        let refs_after: Vec<_> = blocks.iter().map(|&b| alloc.refcount(b)).collect();
        assert_eq!(refs_before, refs_after, "probe must not take refcounts");
        // Probe-then-lookup agreement across caps.
        for cap in 0..=toks.len() {
            let hit = idx.lookup(&toks, cap);
            let capped = idx.longest_prefix_len(&toks).min(cap / 2 * 2);
            assert_eq!(hit.len() * 2, capped, "cap {cap}");
        }
        idx.check_invariants(&alloc).unwrap();
    }

    #[test]
    fn probe_does_not_disturb_eviction_order() {
        let (mut idx, mut alloc) = setup(8);
        let a = chain(&mut alloc, 1);
        let b = chain(&mut alloc, 1);
        idx.insert(&[1, 2], &a, &mut alloc);
        idx.insert(&[5, 6], &b, &mut alloc);
        for &blk in a.iter().chain(&b) {
            alloc.release(blk);
        }
        // A lookup would re-stamp chain `a` and make `b` the eviction
        // victim; the probe must leave `a` the oldest entry.
        assert_eq!(idx.longest_prefix_len(&[1, 2]), 2);
        assert_eq!(idx.evict(1, &mut alloc), a, "probe kept a cold");
        idx.check_invariants(&alloc).unwrap();
    }

    #[test]
    fn blocks_referenced_by_live_sequences_are_pinned() {
        let (mut idx, mut alloc) = setup(8);
        let a = chain(&mut alloc, 1);
        idx.insert(&[1, 2], &a, &mut alloc);
        // The owning sequence still holds the block: nothing to evict.
        assert!(idx.evict(1, &mut alloc).is_empty());
        alloc.release(a[0]);
        assert_eq!(idx.evict(1, &mut alloc), a);
        assert_eq!(alloc.free_blocks(), 8);
        idx.check_invariants(&alloc).unwrap();
    }
}
