//! The physical K/V backing store for paged sequences, and the view that
//! adapts an `(arena, block table)` pair into a [`KvStore`] so the
//! transformer forward pass writes straight into paged memory.

use speedllm_llama::config::ModelConfig;
use speedllm_llama::kv_cache::{KvBatch, KvStore};

use crate::block::{BlockAllocator, BlockConfig, BlockId, BlockTable};

/// One flat K and V buffer per layer, laid out `[n_blocks, block_size,
/// kv_dim]` row-major — the paged analogue of `KvCache`'s
/// `[seq_len, kv_dim]`. Physical block `b` owns rows
/// `b*block_size .. (b+1)*block_size`; sequences address it through
/// their [`BlockTable`].
#[derive(Debug)]
pub struct PagedKvArena {
    k: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
    kv_dim: usize,
    head_dim: usize,
    block_size: usize,
    n_blocks: usize,
    /// Logical context window: the capacity reported to the forward pass.
    seq_len: usize,
}

impl PagedKvArena {
    /// Allocates the physical pool for `model` with geometry `blocks`.
    #[must_use]
    pub fn new(model: &ModelConfig, blocks: BlockConfig) -> Self {
        assert!(blocks.block_size > 0 && blocks.n_blocks > 0);
        let kv_dim = model.kv_dim();
        let per_layer = blocks.n_blocks * blocks.block_size * kv_dim;
        Self {
            k: (0..model.n_layers).map(|_| vec![0.0; per_layer]).collect(),
            v: (0..model.n_layers).map(|_| vec![0.0; per_layer]).collect(),
            kv_dim,
            head_dim: model.head_dim(),
            block_size: blocks.block_size,
            n_blocks: blocks.n_blocks,
            seq_len: model.seq_len,
        }
    }

    #[must_use]
    pub fn block_config(&self) -> BlockConfig {
        BlockConfig {
            block_size: self.block_size,
            n_blocks: self.n_blocks,
        }
    }

    #[must_use]
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Total bytes of paged K/V storage.
    #[must_use]
    pub fn bytes(&self) -> usize {
        2 * self.k.len()
            * self.n_blocks
            * self.block_size
            * self.kv_dim
            * std::mem::size_of::<f32>()
    }

    #[inline]
    fn row_off(&self, block: BlockId, slot: usize) -> usize {
        debug_assert!(slot < self.block_size);
        (block.index() * self.block_size + slot) * self.kv_dim
    }

    /// Key vector of one KV head at physical `(layer, block, slot)`.
    #[inline]
    #[must_use]
    pub fn key_head_at(&self, layer: usize, block: BlockId, slot: usize, kv_head: usize) -> &[f32] {
        let off = self.row_off(block, slot) + kv_head * self.head_dim;
        &self.k[layer][off..off + self.head_dim]
    }

    /// Value vector of one KV head at physical `(layer, block, slot)`.
    #[inline]
    #[must_use]
    pub fn value_head_at(
        &self,
        layer: usize,
        block: BlockId,
        slot: usize,
        kv_head: usize,
    ) -> &[f32] {
        let off = self.row_off(block, slot) + kv_head * self.head_dim;
        &self.v[layer][off..off + self.head_dim]
    }

    /// Writes one K/V row at physical `(layer, block, slot)`.
    pub fn store_at(&mut self, layer: usize, block: BlockId, slot: usize, k: &[f32], v: &[f32]) {
        assert_eq!(k.len(), self.kv_dim, "bad key width");
        assert_eq!(v.len(), self.kv_dim, "bad value width");
        let off = self.row_off(block, slot);
        self.k[layer][off..off + self.kv_dim].copy_from_slice(k);
        self.v[layer][off..off + self.kv_dim].copy_from_slice(v);
    }

    /// Copies every layer's rows of `src` into `dst` (copy-on-write body).
    pub fn copy_block(&mut self, src: BlockId, dst: BlockId) {
        assert_ne!(src, dst, "copy onto itself");
        let rows = self.block_size * self.kv_dim;
        let s = src.index() * rows;
        let d = dst.index() * rows;
        for side in [&mut self.k, &mut self.v] {
            for layer in side.iter_mut() {
                let (from, to) = if s < d {
                    let (a, b) = layer.split_at_mut(d);
                    (&a[s..s + rows], &mut b[..rows])
                } else {
                    let (a, b) = layer.split_at_mut(s);
                    (&b[..rows], &mut a[d..d + rows])
                };
                to.copy_from_slice(from);
            }
        }
    }

    /// Ensures the block holding logical `pos` in `table` is exclusively
    /// owned, copying it to a fresh block if it is shared (copy-on-write).
    /// Returns `false` when the pool has no free block for the copy.
    pub fn make_writable(
        &mut self,
        alloc: &mut BlockAllocator,
        table: &mut BlockTable,
        pos: usize,
    ) -> bool {
        let (src, _) = table.locate(pos);
        if alloc.refcount(src) == 1 {
            return true;
        }
        let Some(dst) = alloc.alloc() else {
            return false;
        };
        self.copy_block(src, dst);
        table.replace_block(pos / self.block_size, dst);
        alloc.release(src);
        true
    }

    /// NaN-poisons the storage of freed blocks (debug-build hygiene, the
    /// paged analogue of `KvCache::poison`): a stale read of a recycled
    /// block surfaces as NaN logits instead of silently borrowing a
    /// previous tenant's context.
    pub fn poison_blocks(&mut self, blocks: &[BlockId]) {
        let rows = self.block_size * self.kv_dim;
        for &b in blocks {
            let off = b.index() * rows;
            for side in [&mut self.k, &mut self.v] {
                for layer in side.iter_mut() {
                    layer[off..off + rows].fill(f32::NAN);
                }
            }
        }
    }

    /// A [`KvStore`] view over one sequence: reads and writes resolve
    /// through `table`'s logical→physical mapping.
    pub fn view<'a>(&'a mut self, table: &'a mut BlockTable) -> PagedSeqView<'a> {
        assert_eq!(
            table.block_size(),
            self.block_size,
            "table/arena block size mismatch"
        );
        PagedSeqView { arena: self, table }
    }

    /// A [`KvBatch`] view over several sequences at once: each batch index
    /// resolves through its own block table into this shared arena. This
    /// is what the batched decode pass uses — a slice of
    /// [`PagedKvArena::view`]s cannot exist because each view borrows the
    /// whole arena mutably, whereas one batch view holds the single arena
    /// borrow and fans out per-index.
    ///
    /// # Panics
    /// Panics if any table's block size disagrees with the arena's.
    pub fn batch_view<'a>(&'a mut self, tables: Vec<&'a mut BlockTable>) -> PagedKvBatch<'a> {
        for (i, t) in tables.iter().enumerate() {
            assert_eq!(
                t.block_size(),
                self.block_size,
                "table {i}/arena block size mismatch"
            );
        }
        PagedKvBatch {
            arena: self,
            tables,
        }
    }
}

/// Borrowed `(arena, table)` pair implementing [`KvStore`]: the forward
/// pass sees an ordinary sequence cache while every access lands in
/// paged physical memory.
#[derive(Debug)]
pub struct PagedSeqView<'a> {
    arena: &'a mut PagedKvArena,
    table: &'a mut BlockTable,
}

impl KvStore for PagedSeqView<'_> {
    fn kv_len(&self) -> usize {
        self.table.len()
    }

    fn kv_capacity(&self) -> usize {
        self.arena.seq_len
    }

    fn store(&mut self, layer: usize, pos: usize, k: &[f32], v: &[f32]) {
        assert!(
            pos < self.arena.seq_len,
            "pos {pos} out of cache capacity {}",
            self.arena.seq_len
        );
        let (block, slot) = self.table.locate(pos);
        self.arena.store_at(layer, block, slot, k, v);
        if layer == self.arena.k.len() - 1 {
            self.table.note_stored(pos);
        }
    }

    fn key_head(&self, layer: usize, pos: usize, kv_head: usize) -> &[f32] {
        let (block, slot) = self.table.locate(pos);
        self.arena.key_head_at(layer, block, slot, kv_head)
    }

    fn value_head(&self, layer: usize, pos: usize, kv_head: usize) -> &[f32] {
        let (block, slot) = self.table.locate(pos);
        self.arena.value_head_at(layer, block, slot, kv_head)
    }

    fn truncate(&mut self, len: usize) {
        // The view has no allocator, so only the logical length shrinks
        // here; blocks past the cut stay mapped until the owner runs
        // `BlockTable::rollback` and releases what it pops.
        if len < self.table.len() {
            self.table.set_len(len);
        }
    }
}

/// Borrowed `(arena, tables)` group implementing [`KvBatch`]: one batched
/// forward pass reads and appends context for several paged sequences.
/// Per index, every access behaves exactly like the corresponding
/// [`PagedSeqView`] access — same `locate`, same `store_at`, same
/// `note_stored` on the last layer — which is what keeps batched paged
/// decoding bit-identical to the per-sequence loop.
#[derive(Debug)]
pub struct PagedKvBatch<'a> {
    arena: &'a mut PagedKvArena,
    tables: Vec<&'a mut BlockTable>,
}

impl KvBatch for PagedKvBatch<'_> {
    fn batch_len(&self) -> usize {
        self.tables.len()
    }

    fn kv_len(&self, i: usize) -> usize {
        self.tables[i].len()
    }

    fn kv_capacity(&self, _i: usize) -> usize {
        self.arena.seq_len
    }

    fn store(&mut self, i: usize, layer: usize, pos: usize, k: &[f32], v: &[f32]) {
        assert!(
            pos < self.arena.seq_len,
            "pos {pos} out of cache capacity {}",
            self.arena.seq_len
        );
        let (block, slot) = self.tables[i].locate(pos);
        self.arena.store_at(layer, block, slot, k, v);
        if layer == self.arena.k.len() - 1 {
            self.tables[i].note_stored(pos);
        }
    }

    fn key_head(&self, i: usize, layer: usize, pos: usize, kv_head: usize) -> &[f32] {
        let (block, slot) = self.tables[i].locate(pos);
        self.arena.key_head_at(layer, block, slot, kv_head)
    }

    fn value_head(&self, i: usize, layer: usize, pos: usize, kv_head: usize) -> &[f32] {
        let (block, slot) = self.tables[i].locate(pos);
        self.arena.value_head_at(layer, block, slot, kv_head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_arena(n_blocks: usize) -> (PagedKvArena, BlockAllocator) {
        let cfg = ModelConfig::test_tiny();
        let bc = BlockConfig {
            block_size: 4,
            n_blocks,
        };
        (PagedKvArena::new(&cfg, bc), BlockAllocator::new(bc))
    }

    fn filled_table(alloc: &mut BlockAllocator, n: usize) -> BlockTable {
        let mut t = BlockTable::new(alloc.block_size());
        for _ in 0..n {
            t.push_block(alloc.alloc().unwrap());
        }
        t
    }

    #[test]
    fn view_round_trips_rows_through_the_table() {
        let (mut arena, mut alloc) = tiny_arena(4);
        let mut t = filled_table(&mut alloc, 2);
        let k: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let v: Vec<f32> = (0..8).map(|i| -(i as f32)).collect();
        {
            let mut view = arena.view(&mut t);
            assert_eq!(view.kv_capacity(), 32, "logical window, not block span");
            for layer in 0..2 {
                view.store(layer, 5, &k, &v); // second block, slot 1
            }
            assert_eq!(view.kv_len(), 6);
            assert_eq!(view.key_head(0, 5, 0), &[0.0, 1.0, 2.0, 3.0]);
            assert_eq!(view.value_head(1, 5, 1), &[-4.0, -5.0, -6.0, -7.0]);
        }
        // The physical row is in the table's second block at slot 1.
        let b = t.blocks()[1];
        assert_eq!(arena.key_head_at(0, b, 1, 0), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn len_tracks_last_layer_writes_like_kv_cache() {
        let (mut arena, mut alloc) = tiny_arena(2);
        let mut t = filled_table(&mut alloc, 1);
        let z = vec![0.0f32; 8];
        let mut view = arena.view(&mut t);
        view.store(0, 0, &z, &z);
        assert_eq!(view.kv_len(), 0, "only first layer written");
        view.store(1, 0, &z, &z);
        assert_eq!(view.kv_len(), 1);
    }

    #[test]
    fn copy_on_write_preserves_the_reader() {
        let (mut arena, mut alloc) = tiny_arena(4);
        let mut t = filled_table(&mut alloc, 1);
        let k: Vec<f32> = (0..8).map(|i| 10.0 + i as f32).collect();
        for layer in 0..2 {
            arena.view(&mut t).store(layer, 2, &k, &k);
        }
        let mut forked = alloc.fork(&t);
        assert_eq!(alloc.refcount(t.blocks()[0]), 2);

        // The fork appends at pos 3: shared block, so CoW must trigger.
        assert!(arena.make_writable(&mut alloc, &mut forked, 3));
        assert_ne!(forked.blocks()[0], t.blocks()[0], "fork got a copy");
        assert_eq!(alloc.refcount(t.blocks()[0]), 1);
        let w: Vec<f32> = (0..8).map(|i| 99.0 - i as f32).collect();
        for layer in 0..2 {
            arena.view(&mut forked).store(layer, 3, &w, &w);
        }
        // The copy carried the shared prefix, and the original is untouched.
        assert_eq!(arena.view(&mut forked).key_head(0, 2, 0), &k[..4]);
        assert_eq!(arena.view(&mut t).key_head(0, 2, 0), &k[..4]);
        assert_ne!(
            arena.view(&mut t).key_head(0, 3, 0),
            &w[..4],
            "writer must not leak into the original block"
        );
        // Exclusive blocks skip the copy.
        let before = forked.blocks()[0];
        assert!(arena.make_writable(&mut alloc, &mut forked, 3));
        assert_eq!(forked.blocks()[0], before);
    }

    #[test]
    fn make_writable_fails_cleanly_when_out_of_blocks() {
        let (mut arena, mut alloc) = tiny_arena(1);
        let t = filled_table(&mut alloc, 1);
        let mut forked = alloc.fork(&t);
        assert!(!arena.make_writable(&mut alloc, &mut forked, 0));
        assert_eq!(forked.blocks(), t.blocks(), "failed CoW must not mutate");
    }

    #[test]
    fn poison_marks_only_the_given_blocks() {
        let (mut arena, mut alloc) = tiny_arena(2);
        let t = filled_table(&mut alloc, 2);
        let k = vec![1.0f32; 8];
        let (b0, b1) = (t.blocks()[0], t.blocks()[1]);
        arena.store_at(0, b0, 0, &k, &k);
        arena.store_at(0, b1, 0, &k, &k);
        arena.poison_blocks(&[b0]);
        assert!(arena.key_head_at(0, b0, 0, 0).iter().all(|x| x.is_nan()));
        assert!(arena.key_head_at(0, b1, 0, 0).iter().all(|x| x.is_finite()));
    }
}
