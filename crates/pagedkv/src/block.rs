//! Physical block identifiers, the free-list allocator, and the
//! per-sequence block table.

/// Identifier of one physical KV block (a `block_size`-token page).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Index into per-block arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Geometry of a paged KV pool: how many tokens one block holds and how
/// many physical blocks exist in total.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockConfig {
    /// Tokens per block. Must be > 0.
    pub block_size: usize,
    /// Total physical blocks in the arena. Must be > 0.
    pub n_blocks: usize,
}

impl BlockConfig {
    /// Total token capacity of the pool.
    pub fn total_tokens(&self) -> usize {
        self.block_size * self.n_blocks
    }
}

/// Free-list allocator over a fixed population of physical blocks with
/// per-block reference counts.
///
/// The refcount of a block equals the number of *referencing holders*:
/// one per sequence block-table that contains it, plus one if it is
/// retained by a prefix cache ([`crate::RadixIndex`]). `alloc` hands out
/// a free block at refcount 1; `retain` adds a holder; `release` drops
/// one and returns the block to the free list when the count hits zero.
/// Alloc and free are O(1) (LIFO free list).
#[derive(Debug)]
pub struct BlockAllocator {
    block_size: usize,
    /// LIFO free list of block ids.
    free: Vec<BlockId>,
    /// Per-block reference counts; 0 means free.
    refcount: Vec<u32>,
    /// Lifetime counters (telemetry / conservation checks).
    total_allocs: u64,
    total_frees: u64,
}

impl BlockAllocator {
    pub fn new(cfg: BlockConfig) -> Self {
        assert!(cfg.block_size > 0, "block_size must be positive");
        assert!(cfg.n_blocks > 0, "n_blocks must be positive");
        assert!(cfg.n_blocks <= u32::MAX as usize, "block id overflow");
        // Pop order is ascending ids first: push n-1..0 so block 0 is on top.
        let free = (0..cfg.n_blocks as u32).rev().map(BlockId).collect();
        Self {
            block_size: cfg.block_size,
            free,
            refcount: vec![0; cfg.n_blocks],
            total_allocs: 0,
            total_frees: 0,
        }
    }

    #[inline]
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    #[inline]
    pub fn n_blocks(&self) -> usize {
        self.refcount.len()
    }

    /// Blocks currently on the free list.
    #[inline]
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }

    /// Blocks currently held by at least one holder.
    #[inline]
    pub fn in_use(&self) -> usize {
        self.n_blocks() - self.free.len()
    }

    /// Current refcount of `b` (0 == free).
    #[inline]
    pub fn refcount(&self, b: BlockId) -> u32 {
        self.refcount[b.index()]
    }

    /// Lifetime (allocations, frees) — frees never exceed allocations.
    pub fn counters(&self) -> (u64, u64) {
        (self.total_allocs, self.total_frees)
    }

    /// Pop a free block and hand it out at refcount 1. `None` when the
    /// pool is exhausted (the caller decides whether to evict cache,
    /// preempt a sequence, or stall admission).
    pub fn alloc(&mut self) -> Option<BlockId> {
        let b = self.free.pop()?;
        debug_assert_eq!(self.refcount[b.index()], 0, "free block had holders");
        self.refcount[b.index()] = 1;
        self.total_allocs += 1;
        Some(b)
    }

    /// Add one holder to a live block.
    pub fn retain(&mut self, b: BlockId) {
        let rc = &mut self.refcount[b.index()];
        assert!(*rc > 0, "retain of a free block {b:?}");
        *rc += 1;
    }

    /// Drop one holder; returns `true` when the block was freed (count
    /// reached zero and it went back on the free list).
    pub fn release(&mut self, b: BlockId) -> bool {
        let rc = &mut self.refcount[b.index()];
        assert!(*rc > 0, "release of a free block {b:?}");
        *rc -= 1;
        if *rc == 0 {
            self.free.push(b);
            self.total_frees += 1;
            true
        } else {
            false
        }
    }

    /// Clone a block table by reference: every block gains one holder.
    /// The fork shares all physical blocks with the original; appends
    /// into a shared tail must go through
    /// [`crate::PagedKvArena::make_writable`] first (copy-on-write).
    pub fn fork(&mut self, table: &BlockTable) -> BlockTable {
        for &b in table.blocks() {
            self.retain(b);
        }
        BlockTable {
            blocks: table.blocks.clone(),
            len: table.len,
            block_size: table.block_size,
        }
    }

    /// Structural invariants, used by the property suite: the free list
    /// holds exactly the refcount-0 blocks, once each.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut on_free_list = vec![false; self.n_blocks()];
        for &b in &self.free {
            if on_free_list[b.index()] {
                return Err(format!("block {b:?} appears twice on the free list"));
            }
            on_free_list[b.index()] = true;
            if self.refcount[b.index()] != 0 {
                return Err(format!("free block {b:?} has nonzero refcount"));
            }
        }
        for (i, &rc) in self.refcount.iter().enumerate() {
            if rc == 0 && !on_free_list[i] {
                return Err(format!("refcount-0 block {i} missing from the free list"));
            }
        }
        if self.total_frees > self.total_allocs {
            return Err("more frees than allocations".into());
        }
        Ok(())
    }
}

/// Per-sequence logical→physical mapping: position `p` of the sequence
/// lives in physical block `blocks[p / block_size]` at row
/// `p % block_size`. `len` counts the tokens whose K/V are fully stored
/// (all layers written), mirroring `KvCache::len`.
#[derive(Clone, Debug, Default)]
pub struct BlockTable {
    blocks: Vec<BlockId>,
    len: usize,
    block_size: usize,
}

impl BlockTable {
    pub fn new(block_size: usize) -> Self {
        assert!(block_size > 0, "block_size must be positive");
        Self {
            blocks: Vec::new(),
            len: 0,
            block_size,
        }
    }

    #[inline]
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Tokens fully stored so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Token capacity of the currently mapped blocks.
    #[inline]
    pub fn capacity_tokens(&self) -> usize {
        self.blocks.len() * self.block_size
    }

    /// The physical chain, in logical order.
    #[inline]
    pub fn blocks(&self) -> &[BlockId] {
        &self.blocks
    }

    /// Append one physical block to the end of the chain.
    pub fn push_block(&mut self, b: BlockId) {
        self.blocks.push(b);
    }

    /// Mark the first `len` tokens as already stored (prefix-hit credit
    /// at admission: the shared blocks arrive prefilled).
    pub fn set_len(&mut self, len: usize) {
        assert!(len <= self.capacity_tokens(), "len beyond mapped blocks");
        self.len = len;
    }

    /// Physical location of logical position `pos`.
    #[inline]
    pub fn locate(&self, pos: usize) -> (BlockId, usize) {
        let bi = pos / self.block_size;
        assert!(
            bi < self.blocks.len(),
            "position {pos} is not mapped (table holds {} blocks of {})",
            self.blocks.len(),
            self.block_size
        );
        (self.blocks[bi], pos % self.block_size)
    }

    /// Record that position `pos` now holds a full K/V entry (called
    /// once the last layer's row is written, matching `KvCache::store`).
    #[inline]
    pub fn note_stored(&mut self, pos: usize) {
        self.len = self.len.max(pos + 1);
    }

    /// Replace the block at chain index `chain_idx` (copy-on-write).
    pub(crate) fn replace_block(&mut self, chain_idx: usize, b: BlockId) {
        self.blocks[chain_idx] = b;
    }

    /// Roll the table back to `len` stored tokens, popping every block
    /// that lies wholly past the new length (including capacity granted
    /// ahead of the store cursor). Returns the popped blocks in chain
    /// order; the caller must hand each one back to the allocator —
    /// `release` drops one reference, so a CoW-shared block survives for
    /// its other holders and only the last reference actually frees it.
    /// The block straddling `len` stays mapped: rolled-back positions
    /// inside it are simply overwritten by the next store.
    pub fn rollback(&mut self, len: usize) -> Vec<BlockId> {
        self.len = self.len.min(len);
        let keep = len.div_ceil(self.block_size).min(self.blocks.len());
        self.blocks.split_off(keep)
    }

    /// Strip the table for release: hands back the physical chain and
    /// leaves the table empty (so a pooled slot resets clean).
    pub fn take_blocks(&mut self) -> Vec<BlockId> {
        self.len = 0;
        std::mem::take(&mut self.blocks)
    }

    /// Logical reset without releasing blocks — only valid when the
    /// chain has already been stripped.
    pub fn reset(&mut self) {
        assert!(
            self.blocks.is_empty(),
            "reset of a table still holding blocks; release them first"
        );
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(block_size: usize, n_blocks: usize) -> BlockConfig {
        BlockConfig {
            block_size,
            n_blocks,
        }
    }

    #[test]
    fn alloc_release_round_trip() {
        let mut a = BlockAllocator::new(cfg(4, 3));
        assert_eq!(a.free_blocks(), 3);
        let b0 = a.alloc().unwrap();
        let b1 = a.alloc().unwrap();
        let b2 = a.alloc().unwrap();
        assert_eq!((b0, b1, b2), (BlockId(0), BlockId(1), BlockId(2)));
        assert!(a.alloc().is_none(), "pool must exhaust");
        assert!(a.release(b1));
        assert_eq!(a.free_blocks(), 1);
        // LIFO: the freshly freed block comes back first.
        assert_eq!(a.alloc().unwrap(), b1);
        a.check_invariants().unwrap();
    }

    #[test]
    fn retain_defers_the_free() {
        let mut a = BlockAllocator::new(cfg(4, 2));
        let b = a.alloc().unwrap();
        a.retain(b);
        assert!(!a.release(b), "one holder remains");
        assert_eq!(a.refcount(b), 1);
        assert!(a.release(b), "last holder frees");
        assert_eq!(a.refcount(b), 0);
        a.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "release of a free block")]
    fn double_free_panics() {
        let mut a = BlockAllocator::new(cfg(4, 1));
        let b = a.alloc().unwrap();
        a.release(b);
        a.release(b);
    }

    #[test]
    fn fork_shares_blocks() {
        let mut a = BlockAllocator::new(cfg(2, 4));
        let mut t = BlockTable::new(2);
        t.push_block(a.alloc().unwrap());
        t.push_block(a.alloc().unwrap());
        t.set_len(3);
        let f = a.fork(&t);
        assert_eq!(f.blocks(), t.blocks());
        assert_eq!(f.len(), 3);
        for &b in t.blocks() {
            assert_eq!(a.refcount(b), 2);
        }
        for b in f.clone().take_blocks() {
            a.release(b);
        }
        for &b in t.blocks() {
            assert_eq!(a.refcount(b), 1, "original still holds its chain");
        }
        a.check_invariants().unwrap();
    }

    #[test]
    fn table_maps_positions_block_major() {
        let mut t = BlockTable::new(4);
        t.push_block(BlockId(7));
        t.push_block(BlockId(2));
        assert_eq!(t.capacity_tokens(), 8);
        assert_eq!(t.locate(0), (BlockId(7), 0));
        assert_eq!(t.locate(3), (BlockId(7), 3));
        assert_eq!(t.locate(4), (BlockId(2), 0));
        assert_eq!(t.locate(7), (BlockId(2), 3));
        t.note_stored(0);
        t.note_stored(1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "not mapped")]
    fn locate_past_chain_panics() {
        let mut t = BlockTable::new(4);
        t.push_block(BlockId(0));
        t.locate(4);
    }

    #[test]
    fn rollback_pops_whole_blocks_past_the_keep_point() {
        let mut a = BlockAllocator::new(cfg(4, 4));
        let mut t = BlockTable::new(4);
        for _ in 0..4 {
            t.push_block(a.alloc().unwrap());
        }
        t.set_len(13); // blocks 0..3 mapped, position 13 straddles block 3
                       // Keep 6 tokens: block 1 straddles the cut and stays; 2, 3 pop.
        let popped = t.rollback(6);
        assert_eq!(popped, vec![BlockId(2), BlockId(3)]);
        assert_eq!(t.len(), 6);
        assert_eq!(t.blocks(), &[BlockId(0), BlockId(1)]);
        assert_eq!(t.capacity_tokens(), 8);
        for b in popped {
            assert!(a.release(b));
        }
        a.check_invariants().unwrap();
        // Rolling back to the current length is a no-op.
        assert!(t.rollback(6).is_empty());
        assert_eq!(t.len(), 6);
        // Rolling back past the stored length never grows it.
        assert!(t.rollback(100).is_empty());
        assert_eq!(t.len(), 6);
        // A block-boundary cut keeps exactly the full blocks before it.
        let popped = t.rollback(4);
        assert_eq!(popped, vec![BlockId(1)]);
        assert_eq!(t.len(), 4);
        for b in popped {
            assert!(a.release(b));
        }
        // A CoW-shared popped block survives until its last holder.
        let shared = a.alloc().unwrap();
        a.retain(shared);
        t.push_block(shared);
        t.note_stored(5);
        let popped = t.rollback(4);
        assert_eq!(popped, vec![shared]);
        assert!(!a.release(shared), "other holder keeps the block alive");
        assert_eq!(a.refcount(shared), 1);
        assert!(a.release(shared));
        a.check_invariants().unwrap();
    }
}
