//! Block-granular paged KV-cache with prefix sharing.
//!
//! The paper's second co-design pillar is a memory-allocation *reuse*
//! strategy: buffer segments are recycled cyclically under a liveness
//! schedule so short-lived data never pays an allocation stall. This
//! crate lifts that discipline from single-kernel buffers to the
//! multi-request serving tier:
//!
//! - [`BlockAllocator`] — a free-list allocator over fixed
//!   `block_size`-token KV pages with O(1) alloc/free, per-block
//!   refcounts, and fork/copy-on-write support.
//! - [`BlockTable`] — a per-sequence logical→physical mapping (position
//!   `p` lives in `blocks[p / block_size]` at slot `p % block_size`),
//!   so attention reads no longer assume contiguity.
//! - [`PagedKvArena`] — the physical K/V backing store, one flat buffer
//!   per layer, addressed through block tables. [`PagedKvArena::view`]
//!   adapts an `(arena, table)` pair into a [`speedllm_llama::kv_cache::KvStore`]
//!   so the unmodified transformer forward pass writes straight into
//!   paged memory.
//! - [`RadixIndex`] — a radix tree over *full* blocks mapping token
//!   prefixes to shared block chains. Requests with a common prompt
//!   prefix reuse already-prefilled blocks and skip straight to the
//!   divergence point; cached chains are evicted LRU under pressure.
//!
//! Sharing is full-block-only: a block becomes shareable only once all
//! `block_size` positions are written and the owning sequence has
//! frozen it (inserted it into the index). Writers must hold a block
//! exclusively (`refcount == 1`); [`PagedKvArena::make_writable`]
//! performs the copy-on-write when a forked table needs to append.

pub mod arena;
pub mod block;
pub mod radix;

pub use arena::{PagedKvArena, PagedKvBatch, PagedSeqView};
pub use block::{BlockAllocator, BlockConfig, BlockId, BlockTable};
pub use radix::RadixIndex;
