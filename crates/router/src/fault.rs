//! Deterministic fault injection: a plan that takes a replica down at a
//! fixed cluster tick and (optionally) brings it back later. Faults are
//! part of the cluster configuration, so a faulted run is exactly as
//! reproducible as a healthy one — the property suite leans on this to
//! compare faulted token streams against a no-fault oracle.

/// One scheduled replica outage on the cluster clock.
///
/// At `down_tick` the replica is marked down and every incomplete
/// request on it (queued, in flight, or preempted) is drained back into
/// the router queue for re-routing. At `up_tick` (exclusive of any work
/// in between — the replica rejoins empty) it becomes routable again;
/// `u64::MAX` means it never comes back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Index of the replica to kill.
    pub replica: usize,
    /// Cluster tick at which the replica goes down.
    pub down_tick: u64,
    /// Cluster tick at which it rejoins (`u64::MAX` = never).
    pub up_tick: u64,
}

impl FaultPlan {
    /// A plan that takes `replica` down at `down_tick` forever.
    #[must_use]
    pub fn down_forever(replica: usize, down_tick: u64) -> Self {
        Self {
            replica,
            down_tick,
            up_tick: u64::MAX,
        }
    }

    /// Parses the CLI spelling `T:R` (down at tick T forever) or
    /// `T:R:U` (down at T, back up at U).
    ///
    /// # Errors
    /// Returns a message on malformed specs or `U <= T`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let parts: Vec<&str> = s.split(':').collect();
        let bad = |what: &str| format!("bad --fault-at `{s}`: {what} (expected T:R or T:R:U)");
        if parts.len() != 2 && parts.len() != 3 {
            return Err(bad("wrong number of fields"));
        }
        let down_tick: u64 = parts[0].parse().map_err(|_| bad("bad tick"))?;
        let replica: usize = parts[1].parse().map_err(|_| bad("bad replica"))?;
        let up_tick = match parts.get(2) {
            Some(p) => p.parse().map_err(|_| bad("bad up tick"))?,
            None => u64::MAX,
        };
        if up_tick <= down_tick {
            return Err(bad("up tick must be after the down tick"));
        }
        Ok(Self {
            replica,
            down_tick,
            up_tick,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_both_spellings() {
        assert_eq!(
            FaultPlan::parse("12:1").unwrap(),
            FaultPlan::down_forever(1, 12)
        );
        assert_eq!(
            FaultPlan::parse("5:0:30").unwrap(),
            FaultPlan {
                replica: 0,
                down_tick: 5,
                up_tick: 30
            }
        );
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in ["", "5", "a:1", "5:b", "5:1:2:3", "5:1:5", "9:1:4"] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }
}
