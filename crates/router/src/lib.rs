//! # speedllm-router
//!
//! The cluster front-end over the serve layer (DESIGN.md §17): N
//! independent [`speedllm_serve::ServeEngine`] replicas — each with its
//! own backend, KV budget, and paged-KV arena — behind a single router
//! queue, driven by one deterministic virtual-tick cluster clock.
//!
//! Three pieces:
//!
//! * [`policy`] — the routing stack: prefix-cache-aware placement
//!   (side-effect-free `RadixIndex` probes), least-outstanding-tokens
//!   load balancing with a per-replica backpressure cap, and a
//!   round-robin baseline.
//! * [`fault`] — scheduled replica outages ([`FaultPlan`]); a downed
//!   replica's incomplete requests drain back into the router queue and
//!   re-route, with token streams bit-identical to a no-fault run.
//! * [`cluster`] / [`report`] — the tick loop and the byte-reproducible
//!   [`ClusterReport`] (per-replica serve reports plus router rows).

#![warn(missing_docs)]

pub mod cluster;
pub mod fault;
pub mod policy;
pub mod report;

pub use cluster::{Cluster, ClusterCompletion, ClusterConfig, RouteDecision};
pub use fault::FaultPlan;
pub use policy::{Candidate, Policy, RouteReason};
pub use report::{stream_digest, ClusterReport, RouterStats};
