//! The cluster front-end: N independent [`ServeEngine`] replicas behind
//! one router queue, driven by a deterministic virtual-tick **cluster
//! clock** (DESIGN.md §17).
//!
//! One cluster tick = apply fault transitions, poll arrivals, dispatch
//! from the router queue, then step every live non-idle replica once in
//! replica-index order. Each replica keeps its own virtual clock (ticks
//! = token rows / device cycles, advancing only while it works); the
//! cluster clock counts scheduler rounds. Both are virtual, so a run is
//! a pure function of (engines, workload, config) and every report and
//! event export is byte-reproducible.
//!
//! Failover leans on a serve-layer invariant: per-request seeded
//! samplers make token streams independent of batch composition, so a
//! request drained off a dead replica and re-run from scratch elsewhere
//! emits the *same* stream a no-fault run would — which is exactly what
//! `tests/router_props.rs` asserts.

use std::collections::{BTreeMap, VecDeque};

use speedllm_serve::{
    Backend, Completion, Event, Percentiles, Request, ServeEngine, ServeReport, TrafficSource,
};

use crate::fault::FaultPlan;
use crate::policy::{Candidate, Policy, RouteReason};
use crate::report::{stream_digest, ClusterReport, RouterStats};

/// Router configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Routing policy.
    pub policy: Policy,
    /// Per-replica backpressure cap on outstanding tokens (prompt +
    /// token budget of every request routed but not yet completed).
    /// When every live replica is at its cap the head request *waits at
    /// the router* instead of piling onto a replica queue.
    pub max_outstanding_tokens: usize,
    /// Scheduled replica outages.
    pub faults: Vec<FaultPlan>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            policy: Policy::Prefix,
            max_outstanding_tokens: usize::MAX,
            faults: Vec::new(),
        }
    }
}

/// One completed request, on the cluster clock.
#[derive(Debug, Clone)]
pub struct ClusterCompletion {
    /// The replica-local completion (its timestamps are on that
    /// replica's own virtual clock).
    pub completion: Completion,
    /// Replica that finished the request.
    pub replica: u16,
    /// Cluster tick the request arrived at the router.
    pub arrival: u64,
    /// Cluster tick of the final dispatch to a replica.
    pub dispatched: u64,
    /// Cluster tick whose replica step sampled the first token.
    pub first_token: Option<u64>,
    /// Cluster tick whose replica step completed the request.
    pub finished: u64,
    /// Times the request was dispatched (1 + failovers it rode out).
    pub times_routed: u32,
}

/// One routing decision, for the property suite (e.g. "no decision ever
/// targets a downed replica").
#[derive(Debug, Clone, Copy)]
pub struct RouteDecision {
    /// Cluster tick of the decision.
    pub tick: u64,
    /// Request id.
    pub req: u64,
    /// Chosen replica.
    pub replica: u16,
    /// Why the policy chose it.
    pub reason: RouteReason,
}

/// A request waiting at the router.
struct Waiting {
    req: Request,
    /// Cluster tick the request first arrived at the router.
    arrival: u64,
    times_routed: u32,
    /// Replica a failover drained it from, if any.
    prev_replica: Option<u16>,
}

/// Router-side bookkeeping for a dispatched request.
struct InFlight {
    arrival: u64,
    dispatched: u64,
    cost: usize,
    times_routed: u32,
}

struct Replica<B: Backend> {
    engine: ServeEngine<B>,
    up: bool,
    /// Outstanding tokens routed to it (decremented on completion).
    outstanding_tokens: usize,
    /// `(cluster_tick, replica_now_after_step)` per step taken, used to
    /// map replica-clock timestamps back onto the cluster clock.
    clock_history: Vec<(u64, u64)>,
}

/// The cluster front-end. Owns the replicas and the router queue; see
/// the module docs for the tick discipline.
pub struct Cluster<B: Backend> {
    replicas: Vec<Replica<B>>,
    cfg: ClusterConfig,
    queue: VecDeque<Waiting>,
    tick: u64,
    inflight: BTreeMap<u64, InFlight>,
    completions: Vec<ClusterCompletion>,
    stats: RouterStats,
    decisions: Vec<RouteDecision>,
    rr_next: usize,
}

impl<B: Backend> Cluster<B> {
    /// Builds a cluster over `engines` (replica index = position).
    ///
    /// # Panics
    /// Panics on an empty replica set, more than `u16::MAX` replicas, or
    /// a fault plan naming a replica that does not exist.
    pub fn new(engines: Vec<ServeEngine<B>>, cfg: ClusterConfig) -> Self {
        assert!(!engines.is_empty(), "a cluster needs at least one replica");
        assert!(
            engines.len() <= usize::from(u16::MAX),
            "replica indices must fit the event stamp (u16)"
        );
        for f in &cfg.faults {
            assert!(
                f.replica < engines.len(),
                "fault plan names replica {} of {}",
                f.replica,
                engines.len()
            );
        }
        let replicas = engines
            .into_iter()
            .map(|engine| Replica {
                engine,
                up: true,
                outstanding_tokens: 0,
                clock_history: Vec::new(),
            })
            .collect();
        Self {
            replicas,
            cfg,
            queue: VecDeque::new(),
            tick: 0,
            inflight: BTreeMap::new(),
            completions: Vec::new(),
            stats: RouterStats::default(),
            decisions: Vec::new(),
            rr_next: 0,
        }
    }

    /// Attaches a fresh [`speedllm_serve::ServeRecorder`] to every
    /// replica so [`Cluster::take_events`] can merge their lifecycle
    /// logs after the run.
    pub fn attach_recorders(&mut self) {
        for r in &mut self.replicas {
            r.engine
                .attach_recorder(speedllm_serve::ServeRecorder::new());
        }
    }

    /// Current cluster tick.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.tick
    }

    /// Number of replicas.
    #[must_use]
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Whether replica `i` is currently routable.
    #[must_use]
    pub fn replica_up(&self, i: usize) -> bool {
        self.replicas[i].up
    }

    /// Requests at the router plus requests inside replicas.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.queue.len() + self.inflight.len()
    }

    /// Completions so far, in completion order.
    #[must_use]
    pub fn completions(&self) -> &[ClusterCompletion] {
        &self.completions
    }

    /// Every routing decision taken, in order.
    #[must_use]
    pub fn decisions(&self) -> &[RouteDecision] {
        &self.decisions
    }

    /// Router counters.
    #[must_use]
    pub fn router_stats(&self) -> &RouterStats {
        &self.stats
    }

    /// Runs the cluster until the source is exhausted and every request
    /// has completed. Requests stranded with *every* replica down wait
    /// at the router until one rejoins; a workload whose fault plan
    /// downs all replicas forever would spin, so [`Cluster::new`]'s
    /// caller picks plans that leave the cluster servable.
    pub fn run(&mut self, source: &mut dyn TrafficSource) {
        loop {
            self.apply_faults();
            for req in source.poll(self.tick, self.outstanding(), usize::MAX) {
                let arrival = req.arrival;
                self.queue.push_back(Waiting {
                    req,
                    arrival,
                    times_routed: 0,
                    prev_replica: None,
                });
            }
            self.dispatch();
            self.step_replicas();
            self.sample_imbalance();
            let idle = self.replicas.iter().all(|r| r.engine.is_idle());
            if source.is_exhausted() && self.queue.is_empty() && idle {
                break;
            }
            self.tick = self.next_tick(source, idle);
        }
    }

    /// Takes every replica's recorded lifecycle events, stamped with the
    /// replica id and concatenated in replica order (each replica's
    /// slice stays chronological on its own clock). Empty when
    /// [`Cluster::attach_recorders`] was never called.
    pub fn take_events(&mut self) -> Vec<Event> {
        let mut out = Vec::new();
        for (i, r) in self.replicas.iter_mut().enumerate() {
            if let Some(rec) = r.engine.take_recorder() {
                out.extend(rec.events.events().iter().map(|&e| Event {
                    replica: Some(i as u16),
                    ..e
                }));
            }
        }
        out
    }

    /// Builds the cluster report from the completed run.
    #[must_use]
    pub fn report(&self) -> ClusterReport {
        let requests = self.completions.len();
        let tokens: u64 = self
            .completions
            .iter()
            .map(|c| c.completion.tokens.len() as u64)
            .sum();
        let first_arrival = self
            .completions
            .iter()
            .map(|c| c.arrival)
            .min()
            .unwrap_or(0);
        let last_finish = self
            .completions
            .iter()
            .map(|c| c.finished)
            .max()
            .unwrap_or(0);
        let ttft = Percentiles::of(
            self.completions
                .iter()
                .filter_map(|c| c.first_token.map(|ft| ft.saturating_sub(c.arrival)))
                .collect(),
        );
        let e2e = Percentiles::of(
            self.completions
                .iter()
                .map(|c| c.finished.saturating_sub(c.arrival))
                .collect(),
        );
        let queue_wait = Percentiles::of(
            self.completions
                .iter()
                .map(|c| c.dispatched.saturating_sub(c.arrival))
                .collect(),
        );
        let locals: Vec<Completion> = self
            .completions
            .iter()
            .map(|c| c.completion.clone())
            .collect();
        let per_replica = self
            .replicas
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let mine: Vec<Completion> = self
                    .completions
                    .iter()
                    .filter(|c| usize::from(c.replica) == i)
                    .map(|c| c.completion.clone())
                    .collect();
                ServeReport::from_run(&mine, r.engine.stats(), r.engine.slot_reuses())
            })
            .collect();
        ClusterReport {
            replicas: self.replicas.len(),
            policy: self.cfg.policy,
            requests,
            tokens,
            makespan: last_finish.saturating_sub(first_arrival),
            ttft,
            e2e,
            queue_wait,
            router: self.stats,
            digest: stream_digest(&locals),
            per_replica,
            backend: self.replicas[0].engine.backend().name().to_string(),
        }
    }

    /// Applies every fault transition scheduled for the current tick:
    /// downed replicas are drained back into the router queue (at the
    /// front, preserving their admission order), revived replicas
    /// become routable again.
    fn apply_faults(&mut self) {
        let faults = self.cfg.faults.clone();
        for f in &faults {
            if f.down_tick == self.tick && self.replicas[f.replica].up {
                self.replicas[f.replica].up = false;
                let drained = self.replicas[f.replica].engine.take_incomplete();
                self.replicas[f.replica].outstanding_tokens = 0;
                self.stats.failed_over += drained.len() as u64;
                for req in drained.into_iter().rev() {
                    let (arrival, times_routed) = match self.inflight.remove(&req.id) {
                        Some(info) => (info.arrival, info.times_routed),
                        None => (req.arrival, 0),
                    };
                    self.queue.push_front(Waiting {
                        req,
                        arrival,
                        times_routed,
                        prev_replica: Some(f.replica as u16),
                    });
                }
            }
            if f.up_tick == self.tick {
                self.replicas[f.replica].up = true;
            }
        }
    }

    /// Dispatches from the head of the router queue until the queue is
    /// empty or the head request cannot be placed (strict FIFO — no
    /// overtaking, so admission order is deterministic and starvation-
    /// free).
    fn dispatch(&mut self) {
        loop {
            let Some(head) = self.queue.front() else {
                break;
            };
            let cost = head.req.prompt.len() + head.req.max_new_tokens;
            let cands: Vec<Candidate> = self
                .replicas
                .iter()
                .enumerate()
                .filter(|(_, r)| {
                    r.up && r.outstanding_tokens.saturating_add(cost)
                        <= self.cfg.max_outstanding_tokens
                })
                .map(|(i, r)| Candidate {
                    index: i,
                    outstanding_tokens: r.outstanding_tokens,
                    prefix_hit: r.engine.prefix_hit_len(&head.req.prompt),
                })
                .collect();
            let Some((idx, reason)) = self.cfg.policy.choose(&cands, &mut self.rr_next) else {
                break;
            };
            let chosen = cands.iter().find(|c| c.index == idx).expect("chosen");
            let hit = chosen.prefix_hit;
            let mut w = self.queue.pop_front().expect("head");
            // The replica clock is the engine's arrival domain: stamp
            // dispatch time so replica-local TTFT stays well-defined.
            w.req.arrival = self.replicas[idx].engine.now();
            let id = w.req.id;
            let prompt_len = w.req.prompt.len();
            match self.replicas[idx].engine.submit(w.req) {
                Ok(()) => {}
                Err(req) => {
                    // Replica queue full despite the token cap: hold the
                    // request at the router and stop for this tick.
                    w.req = req;
                    self.queue.push_front(w);
                    break;
                }
            }
            self.stats.routed += 1;
            match reason {
                RouteReason::PrefixHit => self.stats.routed_prefix += 1,
                RouteReason::LeastLoaded => self.stats.routed_least_loaded += 1,
                RouteReason::RoundRobin => self.stats.routed_round_robin += 1,
            }
            self.stats.prefix_hit_tokens_at_placement += hit as u64;
            self.stats.prompt_tokens_at_placement += prompt_len as u64;
            if matches!(w.prev_replica, Some(p) if usize::from(p) != idx) {
                self.stats.rebalanced += 1;
            }
            self.decisions.push(RouteDecision {
                tick: self.tick,
                req: id,
                replica: idx as u16,
                reason,
            });
            self.replicas[idx].outstanding_tokens += cost;
            self.inflight.insert(
                id,
                InFlight {
                    arrival: w.arrival,
                    dispatched: self.tick,
                    cost,
                    times_routed: w.times_routed + 1,
                },
            );
        }
    }

    /// Steps every live, non-idle replica once in index order and
    /// collects completions onto the cluster clock.
    fn step_replicas(&mut self) {
        for i in 0..self.replicas.len() {
            if !self.replicas[i].up || self.replicas[i].engine.is_idle() {
                continue;
            }
            let done = self.replicas[i].engine.step();
            let now_after = self.replicas[i].engine.now();
            self.replicas[i].clock_history.push((self.tick, now_after));
            for c in done {
                let info = self
                    .inflight
                    .remove(&c.id)
                    .expect("completion for a request the router never dispatched");
                self.replicas[i].outstanding_tokens = self.replicas[i]
                    .outstanding_tokens
                    .saturating_sub(info.cost);
                let first_token = c.first_token_at.map(|ft| {
                    let h = &self.replicas[i].clock_history;
                    let pos = h.partition_point(|&(_, rn)| rn < ft);
                    h.get(pos).map_or(self.tick, |&(ct, _)| ct)
                });
                self.completions.push(ClusterCompletion {
                    completion: c,
                    replica: i as u16,
                    arrival: info.arrival,
                    dispatched: info.dispatched,
                    first_token,
                    finished: self.tick,
                    times_routed: info.times_routed,
                });
            }
        }
    }

    /// Samples the live-replica load spread (max/min outstanding-token
    /// ratio) once per tick, when at least two live replicas carry load.
    fn sample_imbalance(&mut self) {
        let loads: Vec<usize> = self
            .replicas
            .iter()
            .filter(|r| r.up)
            .map(|r| r.outstanding_tokens)
            .collect();
        if loads.len() < 2 {
            return;
        }
        let max = *loads.iter().max().expect("non-empty");
        let min = *loads.iter().min().expect("non-empty");
        if min > 0 {
            self.stats.imbalance_sum += max as f64 / min as f64;
            self.stats.imbalance_samples += 1;
        }
    }

    /// The next cluster tick: +1 while there is work anywhere, else a
    /// jump to the next arrival or fault transition (never past one, so
    /// outages land on schedule relative to arrivals).
    fn next_tick(&self, source: &dyn TrafficSource, idle: bool) -> u64 {
        if !idle || !self.queue.is_empty() {
            return self.tick + 1;
        }
        let mut target = u64::MAX;
        if let Some(a) = source.next_arrival(self.outstanding()) {
            if a > self.tick {
                target = target.min(a);
            }
        }
        for f in &self.cfg.faults {
            if f.down_tick > self.tick {
                target = target.min(f.down_tick);
            }
            if f.up_tick > self.tick && f.up_tick != u64::MAX {
                target = target.min(f.up_tick);
            }
        }
        if target == u64::MAX {
            self.tick + 1
        } else {
            target
        }
    }
}
