//! Routing policy stack (DESIGN.md §17).
//!
//! The router picks a replica for the request at the head of its queue
//! from the **candidate set** — live replicas whose outstanding-token
//! load leaves room under the backpressure cap. All three policies are
//! deterministic: ties break by load and then by replica index, so a
//! cluster run renders byte-identical reports run to run.

use std::fmt;

/// Which replica gets the next request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Prefix-cache-aware placement: the replica whose radix index holds
    /// the longest cached prefix of the prompt (probed side-effect-free
    /// via `ServeEngine::prefix_hit_len`), ties broken by least load.
    /// Falls back to least-loaded when no replica has a cached prefix.
    Prefix,
    /// Least outstanding tokens (queued + in-flight), ties broken by
    /// replica index.
    LeastLoaded,
    /// Fixed rotation over live candidates, blind to cache and load.
    RoundRobin,
}

impl Policy {
    /// Parses the CLI spelling (`prefix`, `least-loaded`, `round-robin`).
    ///
    /// # Errors
    /// Returns a message naming the valid spellings on anything else.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "prefix" => Ok(Policy::Prefix),
            "least-loaded" => Ok(Policy::LeastLoaded),
            "round-robin" => Ok(Policy::RoundRobin),
            other => Err(format!(
                "unknown policy `{other}` (expected prefix, least-loaded, or round-robin)"
            )),
        }
    }

    /// The CLI spelling.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Policy::Prefix => "prefix",
            Policy::LeastLoaded => "least-loaded",
            Policy::RoundRobin => "round-robin",
        }
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a routing decision landed where it did (counted per decision in
/// the cluster report).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteReason {
    /// A replica held a cached prefix of the prompt (prefix policy).
    PrefixHit,
    /// Chosen for having the least outstanding tokens (least-loaded
    /// policy, or the prefix policy's cold-prompt fallback).
    LeastLoaded,
    /// Next in the rotation (round-robin policy).
    RoundRobin,
}

/// One live replica the policy may choose, as seen at decision time.
#[derive(Debug, Clone, Copy)]
pub struct Candidate {
    /// Replica index.
    pub index: usize,
    /// Outstanding tokens (queued + in-flight) routed to it.
    pub outstanding_tokens: usize,
    /// Longest cached prefix of the prompt on it, in tokens.
    pub prefix_hit: usize,
}

impl Policy {
    /// Picks a candidate, or `None` when the set is empty (every live
    /// replica is at its backpressure cap — the request waits at the
    /// router). `rr_next` is the round-robin cursor, advanced only by
    /// that policy. Candidates must be sorted by `index` (the router
    /// builds them that way).
    pub fn choose(&self, cands: &[Candidate], rr_next: &mut usize) -> Option<(usize, RouteReason)> {
        if cands.is_empty() {
            return None;
        }
        match self {
            Policy::RoundRobin => {
                // First candidate at or past the cursor, wrapping.
                let pick = cands
                    .iter()
                    .find(|c| c.index >= *rr_next)
                    .unwrap_or(&cands[0]);
                *rr_next = pick.index + 1;
                Some((pick.index, RouteReason::RoundRobin))
            }
            Policy::LeastLoaded => {
                let pick = cands
                    .iter()
                    .min_by_key(|c| (c.outstanding_tokens, c.index))
                    .expect("non-empty");
                Some((pick.index, RouteReason::LeastLoaded))
            }
            Policy::Prefix => {
                let pick = cands
                    .iter()
                    .min_by_key(|c| {
                        (
                            std::cmp::Reverse(c.prefix_hit),
                            c.outstanding_tokens,
                            c.index,
                        )
                    })
                    .expect("non-empty");
                let reason = if pick.prefix_hit > 0 {
                    RouteReason::PrefixHit
                } else {
                    RouteReason::LeastLoaded
                };
                Some((pick.index, reason))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(index: usize, load: usize, hit: usize) -> Candidate {
        Candidate {
            index,
            outstanding_tokens: load,
            prefix_hit: hit,
        }
    }

    #[test]
    fn parse_round_trips_names() {
        for p in [Policy::Prefix, Policy::LeastLoaded, Policy::RoundRobin] {
            assert_eq!(Policy::parse(p.name()).unwrap(), p);
        }
        assert!(Policy::parse("random").is_err());
    }

    #[test]
    fn round_robin_rotates_over_candidates_and_wraps() {
        let cands = [cand(0, 9, 4), cand(2, 0, 9)];
        let mut cursor = 0;
        let order: Vec<usize> = (0..4)
            .map(|_| {
                Policy::RoundRobin
                    .choose(&cands, &mut cursor)
                    .map(|(i, _)| i)
                    .unwrap()
            })
            .collect();
        // Blind to load and prefix hits; skips the missing replica 1.
        assert_eq!(order, vec![0, 2, 0, 2]);
    }

    #[test]
    fn least_loaded_breaks_ties_by_index() {
        let mut cursor = 0;
        let cands = [cand(0, 5, 0), cand(1, 3, 0), cand(2, 3, 0)];
        assert_eq!(
            Policy::LeastLoaded.choose(&cands, &mut cursor),
            Some((1, RouteReason::LeastLoaded))
        );
    }

    #[test]
    fn prefix_prefers_longest_hit_and_falls_back_to_load() {
        let mut cursor = 0;
        let cands = [cand(0, 1, 4), cand(1, 9, 8), cand(2, 0, 0)];
        assert_eq!(
            Policy::Prefix.choose(&cands, &mut cursor),
            Some((1, RouteReason::PrefixHit)),
            "longest hit wins even under load"
        );
        let cold = [cand(0, 5, 0), cand(1, 2, 0)];
        assert_eq!(
            Policy::Prefix.choose(&cold, &mut cursor),
            Some((1, RouteReason::LeastLoaded)),
            "cold prompts fall back to least-loaded"
        );
        assert_eq!(Policy::Prefix.choose(&[], &mut cursor), None);
    }
}
