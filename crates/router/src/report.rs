//! The cluster-level report: router rows (routing decisions by reason,
//! prefix-hit rate at placement, failover counts, load imbalance) over
//! the aggregated per-replica [`ServeReport`]s. Everything derives from
//! the deterministic cluster clock, so the rendered text is
//! byte-identical run to run for a given configuration.

use std::fmt;

use speedllm_llama::generate::safe_rate;
use speedllm_serve::{Completion, Percentiles, ServeReport};

use crate::policy::Policy;

/// Router-level counters accumulated over a cluster run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RouterStats {
    /// Dispatches to a replica (re-dispatches after failover included).
    pub routed: u64,
    /// Decisions taken because a replica held a cached prompt prefix.
    pub routed_prefix: u64,
    /// Decisions taken by least outstanding tokens (including the
    /// prefix policy's cold-prompt fallback).
    pub routed_least_loaded: u64,
    /// Decisions taken by the round-robin rotation.
    pub routed_round_robin: u64,
    /// Prompt tokens already cached on the chosen replica at placement,
    /// summed over dispatches (whatever the policy — this measures what
    /// placement achieved, not what it aimed for).
    pub prefix_hit_tokens_at_placement: u64,
    /// Prompt tokens dispatched (denominator of the placement hit rate).
    pub prompt_tokens_at_placement: u64,
    /// Requests drained off a downed replica and returned to the router
    /// queue.
    pub failed_over: u64,
    /// Failed-over requests whose re-route landed on a *different*
    /// replica than the one that died.
    pub rebalanced: u64,
    /// Sum of per-tick max/min outstanding-token ratios over live
    /// replicas (sampled only when ≥ 2 replicas are live with nonzero
    /// load).
    pub imbalance_sum: f64,
    /// Ticks contributing to `imbalance_sum`.
    pub imbalance_samples: u64,
}

impl RouterStats {
    /// Placement-time prefix hit rate in [0, 1].
    #[must_use]
    pub fn prefix_hit_rate(&self) -> f64 {
        safe_rate(
            self.prefix_hit_tokens_at_placement as f64,
            self.prompt_tokens_at_placement as f64,
        )
    }

    /// Mean per-tick max/min outstanding-token ratio, or `None` when
    /// never sampled (single replica, or never two loaded replicas).
    #[must_use]
    pub fn mean_imbalance(&self) -> Option<f64> {
        (self.imbalance_samples > 0).then(|| self.imbalance_sum / self.imbalance_samples as f64)
    }
}

/// FNV-1a 64-bit digest over `(id, tokens)` pairs sorted by id: two runs
/// emitted bit-identical streams iff their digests agree. The
/// policy-identity gate in `scripts/verify.sh` compares this line
/// between `cluster-bench` runs under different routing policies.
#[must_use]
pub fn stream_digest(completions: &[Completion]) -> u64 {
    let mut sorted: Vec<&Completion> = completions.iter().collect();
    sorted.sort_by_key(|c| c.id);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for c in sorted {
        eat(&c.id.to_le_bytes());
        for &t in &c.tokens {
            eat(&t.to_le_bytes());
        }
    }
    h
}

/// The whole-cluster report: aggregate latency/throughput on the
/// cluster clock, the router rows, and one [`ServeReport`] per replica
/// (on each replica's own virtual clock).
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Replica count.
    pub replicas: usize,
    /// Routing policy the run used.
    pub policy: Policy,
    /// Requests completed cluster-wide.
    pub requests: usize,
    /// Tokens generated cluster-wide.
    pub tokens: u64,
    /// First arrival → last completion, in cluster ticks.
    pub makespan: u64,
    /// Arrival → first token, in cluster ticks (router queue included).
    pub ttft: Percentiles,
    /// Arrival → completion, in cluster ticks.
    pub e2e: Percentiles,
    /// Arrival → (final) dispatch, in cluster ticks.
    pub queue_wait: Percentiles,
    /// Router counters.
    pub router: RouterStats,
    /// FNV-1a digest of the emitted token streams ([`stream_digest`]).
    pub digest: u64,
    /// One serve report per replica, indexed by replica.
    pub per_replica: Vec<ServeReport>,
    /// Backend name (shared by every replica).
    pub backend: String,
}

impl ClusterReport {
    /// Renders the report (the `Display` impl defers here).
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::new();
        let r = &self.router;
        s.push_str(&format!(
            "cluster-bench report ({} backend, {} replicas, policy {})\n",
            self.backend, self.replicas, self.policy
        ));
        s.push_str(&format!("  requests completed   {}\n", self.requests));
        s.push_str(&format!("  tokens generated     {}\n", self.tokens));
        s.push_str(&format!(
            "  makespan             {} cluster ticks\n",
            self.makespan
        ));
        s.push_str(&format!(
            "  throughput           {:.3} tok/ktick\n",
            safe_rate(self.tokens as f64, self.makespan as f64) * 1000.0
        ));
        s.push_str(&format!(
            "  ttft p50/p95/p99     {} / {} / {} cluster ticks\n",
            self.ttft.p50, self.ttft.p95, self.ttft.p99
        ));
        s.push_str(&format!(
            "  e2e p50/p95/p99      {} / {} / {} cluster ticks\n",
            self.e2e.p50, self.e2e.p95, self.e2e.p99
        ));
        s.push_str(&format!(
            "  router queue wait    {} / {} / {} cluster ticks (p50/p95/p99)\n",
            self.queue_wait.p50, self.queue_wait.p95, self.queue_wait.p99
        ));
        s.push_str(&format!(
            "  routing decisions    {} (prefix {}, least-loaded {}, round-robin {})\n",
            r.routed, r.routed_prefix, r.routed_least_loaded, r.routed_round_robin
        ));
        s.push_str(&format!(
            "  prefix hit at placement {} / {} prompt tokens ({:.1}%)\n",
            r.prefix_hit_tokens_at_placement,
            r.prompt_tokens_at_placement,
            r.prefix_hit_rate() * 100.0
        ));
        s.push_str(&format!(
            "  failed over          {} (rebalanced {})\n",
            r.failed_over, r.rebalanced
        ));
        match r.mean_imbalance() {
            Some(m) => s.push_str(&format!(
                "  load imbalance       {m:.2} (mean max/min outstanding tokens)\n"
            )),
            None => s.push_str("  load imbalance       n/a\n"),
        }
        s.push_str(&format!("  token stream digest  {:#018x}\n", self.digest));
        s.push_str("\nper-replica reports\n");
        for (i, rep) in self.per_replica.iter().enumerate() {
            s.push_str(&format!("-- replica {i} --\n"));
            s.push_str(&rep.render(&self.backend));
        }
        s
    }
}

impl fmt::Display for ClusterReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn completion(id: u64, tokens: Vec<u32>) -> Completion {
        Completion {
            id,
            tokens,
            arrival: 0,
            admitted_at: 0,
            first_token_at: Some(1),
            finished_at: 2,
            slot_index: 0,
            admission_seq: id,
            token_ticks: Vec::new(),
        }
    }

    #[test]
    fn digest_is_order_independent_but_stream_sensitive() {
        let a = [completion(1, vec![5, 6]), completion(2, vec![7])];
        let b = [completion(2, vec![7]), completion(1, vec![5, 6])];
        assert_eq!(stream_digest(&a), stream_digest(&b), "sorted by id");
        let c = [completion(1, vec![5, 9]), completion(2, vec![7])];
        assert_ne!(stream_digest(&a), stream_digest(&c));
        // Token/id boundaries must not alias.
        let d = [completion(1, vec![5]), completion(2, vec![6, 7])];
        assert_ne!(stream_digest(&a), stream_digest(&d));
    }

    #[test]
    fn router_stats_rates_handle_empty_runs() {
        let r = RouterStats::default();
        assert_eq!(r.prefix_hit_rate(), 0.0);
        assert_eq!(r.mean_imbalance(), None);
    }
}
