//! Minimal dependency-free flag parsing for the `speedllm` binary.
//!
//! Grammar: `speedllm <command> [--flag value]...` — every flag takes
//! exactly one value; unknown flags are errors so typos fail loudly.

use std::collections::HashMap;

use speedllm_accel::opt::OptConfig;
use speedllm_llama::config::ModelConfig;
use speedllm_llama::sampler::SamplerKind;

/// Parsed command line: command name + flag map.
#[derive(Debug, Clone)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    flags: HashMap<String, String>,
}

/// Parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

impl Args {
    /// Parses `argv[1..]`: a command followed by `--key value` pairs.
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Self, ParseError> {
        let mut it = argv.into_iter();
        let command = it
            .next()
            .ok_or_else(|| ParseError("missing command; try `speedllm help`".into()))?;
        let mut flags = HashMap::new();
        while let Some(arg) = it.next() {
            let key = arg
                .strip_prefix("--")
                .ok_or_else(|| ParseError(format!("expected --flag, got `{arg}`")))?;
            let value = it
                .next()
                .ok_or_else(|| ParseError(format!("flag --{key} needs a value")))?;
            if flags.insert(key.to_string(), value).is_some() {
                return Err(ParseError(format!("duplicate flag --{key}")));
            }
        }
        Ok(Self { command, flags })
    }

    /// Raw string flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// String flag with default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// Integer flag with default.
    pub fn get_usize(&self, key: &str, default: usize) -> Result<usize, ParseError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ParseError(format!("--{key} expects an integer, got `{v}`"))),
        }
    }

    /// u64 flag with default.
    pub fn get_u64(&self, key: &str, default: u64) -> Result<u64, ParseError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ParseError(format!("--{key} expects an integer, got `{v}`"))),
        }
    }

    /// Rejects flags outside the allowed set (catches typos).
    pub fn expect_only(&self, allowed: &[&str]) -> Result<(), ParseError> {
        for key in self.flags.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(ParseError(format!(
                    "unknown flag --{key}; allowed: {}",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        Ok(())
    }
}

/// Resolves a `--preset` name to a model config.
pub fn parse_preset(name: &str) -> Result<ModelConfig, ParseError> {
    match name {
        "stories260k" | "260k" => Ok(ModelConfig::stories260k()),
        "stories15m" | "15m" => Ok(ModelConfig::stories15m()),
        "stories42m" | "42m" => Ok(ModelConfig::stories42m()),
        "stories110m" | "110m" => Ok(ModelConfig::stories110m()),
        "tiny" => Ok(ModelConfig::test_tiny()),
        other => Err(ParseError(format!(
            "unknown preset `{other}` (stories260k|stories15m|stories42m|stories110m|tiny)"
        ))),
    }
}

/// Resolves a `--variant` name to an optimization config.
pub fn parse_variant(name: &str) -> Result<OptConfig, ParseError> {
    match name {
        "full" | "ours" => Ok(OptConfig::full()),
        "no-fuse" => Ok(OptConfig::no_fuse()),
        "no-parallel" => Ok(OptConfig::no_parallel()),
        "no-reuse" => Ok(OptConfig::no_reuse()),
        "unoptimized" | "baseline" => Ok(OptConfig::unoptimized()),
        "int8" => Ok(OptConfig::full_int8()),
        "int4" => Ok(OptConfig::full_int4()),
        other => Err(ParseError(format!(
            "unknown variant `{other}` (full|no-fuse|no-parallel|no-reuse|unoptimized|int8|int4)"
        ))),
    }
}

/// Parses a `--quant` weight precision: `f32`, `int8`, or `int4`.
pub fn parse_quant(name: &str) -> Result<speedllm_llama::QuantMode, ParseError> {
    speedllm_llama::QuantMode::parse(name)
        .ok_or_else(|| ParseError(format!("unknown quant mode `{name}` (f32|int8|int4)")))
}

/// Parses a `--sampler` spec: `argmax`, `temp:0.9`, `topp:0.9,0.95`,
/// `topk:0.9,40`.
pub fn parse_sampler(spec: &str) -> Result<SamplerKind, ParseError> {
    if spec == "argmax" {
        return Ok(SamplerKind::Argmax);
    }
    let (kind, rest) = spec
        .split_once(':')
        .ok_or_else(|| ParseError(format!("bad sampler spec `{spec}`")))?;
    let bad = || ParseError(format!("bad sampler spec `{spec}`"));
    match kind {
        "temp" => {
            let t: f32 = rest.parse().map_err(|_| bad())?;
            Ok(SamplerKind::Temperature(t))
        }
        "topp" => {
            let (t, p) = rest.split_once(',').ok_or_else(bad)?;
            Ok(SamplerKind::TopP {
                temperature: t.parse().map_err(|_| bad())?,
                p: p.parse().map_err(|_| bad())?,
            })
        }
        "topk" => {
            let (t, k) = rest.split_once(',').ok_or_else(bad)?;
            Ok(SamplerKind::TopK {
                temperature: t.parse().map_err(|_| bad())?,
                k: k.parse().map_err(|_| bad())?,
            })
        }
        _ => Err(bad()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let a = Args::parse(argv("generate --prompt hello --steps 8")).unwrap();
        assert_eq!(a.command, "generate");
        assert_eq!(a.get("prompt"), Some("hello"));
        assert_eq!(a.get_usize("steps", 0).unwrap(), 8);
        assert_eq!(a.get_usize("missing", 7).unwrap(), 7);
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(Args::parse(argv("")).is_err());
        assert!(Args::parse(argv("cmd positional")).is_err());
        assert!(Args::parse(argv("cmd --flag")).is_err());
        assert!(Args::parse(argv("cmd --a 1 --a 2")).is_err());
    }

    #[test]
    fn expect_only_catches_typos() {
        let a = Args::parse(argv("cmd --steps 3 --stpes 4")).unwrap();
        assert!(a.expect_only(&["steps"]).is_err());
        let b = Args::parse(argv("cmd --steps 3")).unwrap();
        assert!(b.expect_only(&["steps", "prompt"]).is_ok());
    }

    #[test]
    fn preset_names_resolve() {
        assert_eq!(
            parse_preset("stories15m").unwrap(),
            ModelConfig::stories15m()
        );
        assert_eq!(parse_preset("15m").unwrap(), ModelConfig::stories15m());
        assert!(parse_preset("huge").is_err());
    }

    #[test]
    fn variant_names_resolve() {
        assert_eq!(parse_variant("full").unwrap(), OptConfig::full());
        assert_eq!(parse_variant("baseline").unwrap(), OptConfig::unoptimized());
        assert_eq!(parse_variant("int8").unwrap(), OptConfig::full_int8());
        assert_eq!(parse_variant("int4").unwrap(), OptConfig::full_int4());
        assert!(parse_variant("hyper").is_err());
        assert_eq!(
            parse_quant("int4").unwrap(),
            speedllm_llama::QuantMode::Int4
        );
        assert!(parse_quant("fp16").is_err());
    }

    #[test]
    fn sampler_specs_resolve() {
        assert_eq!(parse_sampler("argmax").unwrap(), SamplerKind::Argmax);
        assert_eq!(
            parse_sampler("temp:0.8").unwrap(),
            SamplerKind::Temperature(0.8)
        );
        assert_eq!(
            parse_sampler("topp:0.9,0.95").unwrap(),
            SamplerKind::TopP {
                temperature: 0.9,
                p: 0.95
            }
        );
        assert_eq!(
            parse_sampler("topk:1.0,40").unwrap(),
            SamplerKind::TopK {
                temperature: 1.0,
                k: 40
            }
        );
        assert!(parse_sampler("weird").is_err());
        assert!(parse_sampler("topp:0.9").is_err());
    }

    #[test]
    fn bad_integer_flag_reports_key() {
        let a = Args::parse(argv("cmd --steps banana")).unwrap();
        let err = a.get_usize("steps", 0).unwrap_err();
        assert!(err.0.contains("--steps"));
    }
}
