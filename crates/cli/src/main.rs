//! `speedllm` — command-line front end of the SpeedLLM simulator.
//!
//! ```text
//! speedllm generate --preset stories15m --prompt "Once upon a time" --steps 64
//! speedllm compare  --preset stories15m --prompt "Hello" --steps 32
//! speedllm inspect  --preset stories15m --variant full [--dot graph.dot]
//! speedllm trace    --preset stories260k --variant full
//! speedllm devices  --preset stories15m
//! speedllm help
//! ```

mod args;

use std::cell::RefCell;
use std::process::ExitCode;

use speedllm_telemetry as tel;

use args::{parse_preset, parse_quant, parse_sampler, parse_variant, Args};
use speedllm_accel::opt::OptConfig;
use speedllm_accel::report::{fmt_bytes, fmt_joules, fmt_seconds, Table};
use speedllm_accel::runtime::AcceleratedLlm;
use speedllm_fpga_sim::resources::Resources;
use speedllm_gpu_model::{GpuSpec, U280_PRICE_USD};
use speedllm_llama::tokenizer::Tokenizer;
use speedllm_llama::weights::TransformerWeights;
use speedllm_llama::QuantMode;

const HELP: &str = "\
speedllm — FPGA LLM-accelerator simulator (SpeedLLM reproduction)

USAGE: speedllm <command> [--flag value]...

COMMANDS
  generate   run one inference and print text + metrics
             --preset NAME | --model FILE --tokenizer FILE
             --prompt STR  --steps N  --variant V  --sampler S  --seed N
             --chunk N (chunked prefill, 1..64)
  run        alias of generate (pairs well with --trace-out)
  compare    run all four Fig-2 variants on one workload
             --preset NAME --prompt STR --steps N --seed N
  inspect    print graph/schedule/memory-plan/resource summary
             --preset NAME --variant V [--dot FILE]
  trace      ASCII Gantt of one decode step's device timeline
             --preset NAME --variant V [--chrome FILE]
  devices    tokens/s/$ table: simulated U280 vs GPU rooflines
             --preset NAME --steps N
  eval       perplexity of each MPE/KV precision vs the fp32 reference
             --preset NAME --tokens N --seed N
             --engines cpu|accel|all (default all)
             --gate-int8 FRAC --gate-int4 FRAC  exit nonzero when the
             quantized perplexity drifts more than FRAC from fp32
  serve-bench  continuous-batching serve loop over seeded synthetic
             traffic; prints a deterministic TTFT/latency/throughput
             report in virtual ticks
             --preset NAME --backend cpu|accel --requests N
             --slots N --batch N --chunk N --queue-cap N
             --kv pool|paged --block-size N --shared-prefix N
             --mode open|closed --mean TICKS --concurrency N
             --max-new N --sampler S --seed N [--smoke]
             --quant f32|int8|int4  weight precision for the serve hot
             path (DESIGN.md §18): group-quantized weights streamed
             through fused dequant-GEMM kernels (f32 accumulate);
             cpu and accel int4 logits are bit-identical
             --spec-k N  speculative decoding: draft N tokens ahead and
             verify them in one batched target pass (DESIGN.md §16);
             the emitted streams stay bit-identical to plain decoding
             --draft-model auto|PRESET|FILE  draft model for --spec-k
             (default auto: a stories260K-shaped trunk speaking the
             target preset's vocabulary)
             --events-out FILE  write the per-request lifecycle event
             log (JSONL, virtual-tick stamped) for `analyze`
             --metrics-out FILE  write per-tick scheduler samples
             (queue depth, batch rows, budget utilization, KV blocks);
             CSV unless FILE ends in .jsonl
             (--kv paged serves block-granular KV with radix
             prefix sharing and preemptive eviction at the same
             memory budget as --slots flat slots)
  cluster-bench  data-parallel cluster of serve replicas behind one
             router queue (DESIGN.md §17): prefix-cache-aware /
             least-loaded / round-robin placement, per-replica
             backpressure, deterministic fault injection with
             failover; prints a byte-reproducible cluster report
             --preset NAME --backend cpu|accel --replicas N
             --policy prefix|least-loaded|round-robin
             --fault-at T:R[:U][,T:R[:U]...]  replica R down at
             cluster tick T (back up at U; omitted = forever)
             --max-outstanding N  per-replica backpressure cap
             (outstanding prompt+decode tokens)
             --requests N --slots N --batch N --chunk N
             --queue-cap N --block-size N --shared-prefix N
             --mode open|closed --mean TICKS --concurrency N
             --max-new N --sampler S --seed N [--smoke]
             --events-out FILE  merged replica-stamped lifecycle
             events (JSONL) for `analyze`
  analyze    phase-breakdown dashboard over a serve-bench event log:
             per-phase table (queue/prefill/decode/stall), goodput,
             top-N slowest requests with timelines, anomaly flags
             --events FILE [--top N]
  help       this text

GLOBAL FLAGS
  --trace-out FILE  enable telemetry and write a combined Chrome
                    trace-event JSON (host wall-time spans + simulator
                    cycle timeline) loadable in Perfetto /
                    chrome://tracing; also prints a metrics summary
                    table. Setting SPEEDLLM_TRACE=1 enables telemetry
                    (summary table only) without writing a file.
                    SPEEDLLM_THREADS=N pins the CPU matvec/matmul worker
                    count (default: available parallelism, capped at 16)
                    so parallel-strategy runs reproduce across hosts.

VALUES
  presets:  stories260k stories15m stories42m stories110m tiny
  variants: full no-fuse no-parallel no-reuse unoptimized int8
  samplers: argmax | temp:T | topp:T,P | topk:T,K
";

thread_local! {
    /// Simulator timeline stashed by a traced command for the combined
    /// trace written at exit.
    static SIM_TRACE: RefCell<Option<speedllm_fpga_sim::trace::TraceBuffer>> =
        const { RefCell::new(None) };
    /// Serve lifecycle events stashed by serve-bench for per-request
    /// tracks in the combined trace written at exit.
    static SERVE_EVENTS: RefCell<Option<Vec<speedllm_serve::Event>>> =
        const { RefCell::new(None) };
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "help" || argv[0] == "--help" {
        print!("{HELP}");
        return ExitCode::SUCCESS;
    }
    match run(argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Flags in `bools` may appear without a value (`--smoke`); give them one
/// so the uniform `--flag value` grammar still holds downstream.
fn normalize_bool_flags(mut argv: Vec<String>, bools: &[&str]) -> Vec<String> {
    let mut i = 0;
    while i < argv.len() {
        let is_bool = argv[i]
            .strip_prefix("--")
            .map_or(false, |k| bools.contains(&k));
        if is_bool && argv.get(i + 1).map_or(true, |v| v.starts_with("--")) {
            argv.insert(i + 1, "1".into());
        }
        i += 1;
    }
    argv
}

fn run(argv: Vec<String>) -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse(normalize_bool_flags(argv, &["smoke"]))?;
    // Telemetry is a global concern: --trace-out (any command) or the
    // SPEEDLLM_TRACE env var switches collection on before dispatch.
    if args.get("trace-out").is_some() {
        tel::set_enabled(true);
    } else {
        tel::init_from_env();
    }
    match args.command.as_str() {
        "generate" | "run" => cmd_generate(&args),
        "compare" => cmd_compare(&args),
        "inspect" => cmd_inspect(&args),
        "trace" => cmd_trace(&args),
        "devices" => cmd_devices(&args),
        "eval" => cmd_eval(&args),
        "serve-bench" => cmd_serve_bench(&args),
        "cluster-bench" => cmd_cluster_bench(&args),
        "analyze" => cmd_analyze(&args),
        other => return Err(format!("unknown command `{other}`; try `speedllm help`").into()),
    }?;
    finalize_telemetry(args.get("trace-out"))
}

/// End-of-run telemetry surface: prints the metrics summary table and, if
/// requested, writes the combined host+simulator Chrome trace.
fn finalize_telemetry(trace_out: Option<&str>) -> Result<(), Box<dyn std::error::Error>> {
    if !tel::enabled() {
        return Ok(());
    }
    let snap = tel::metrics::snapshot();
    if !snap.is_empty() {
        println!();
        println!("telemetry summary");
        let mut table = Table::new(&["metric", "count", "p50", "p95", "p99", "max"]);
        for (name, s) in &snap.histograms {
            table.row(vec![
                (*name).into(),
                s.count.to_string(),
                s.p50.to_string(),
                s.p95.to_string(),
                s.p99.to_string(),
                s.max.to_string(),
            ]);
        }
        for (name, v) in &snap.counters {
            table.row(vec![
                (*name).into(),
                v.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
        }
        for (name, v) in &snap.gauges {
            table.row(vec![
                (*name).into(),
                format!("{v}"),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
        }
        println!("{}", table.render());
        println!("(histogram rows: *_cycles in device cycles, *_ns in wall nanoseconds)");
    }
    if tel::dropped_spans() > 0 {
        println!("(+{} spans dropped)", tel::dropped_spans());
    }
    if let Some(path) = trace_out {
        let mut trace = tel::export::ChromeTrace::new();
        SIM_TRACE.with(|t| {
            if let Some(sim) = t.borrow_mut().take() {
                sim.to_chrome_track(
                    &speedllm_fpga_sim::cycles::ClockDomain::U280_KERNEL,
                    tel::export::SIM_PID,
                    &mut trace,
                );
            }
        });
        SERVE_EVENTS.with(|t| {
            if let Some(events) = t.borrow_mut().take() {
                // One named track per request: the serve run renders as
                // a gantt of overlapping request lifetimes.
                speedllm_serve::events_to_chrome(&events, &mut trace);
            }
        });
        let json = tel::export::chrome_trace_json(&tel::drain_spans(), Some(trace));
        std::fs::write(path, &json)?;
        println!(
            "wrote Chrome trace ({} bytes) to {path} — open in https://ui.perfetto.dev or chrome://tracing",
            json.len()
        );
    }
    Ok(())
}

fn build_system(args: &Args, opt: OptConfig) -> Result<AcceleratedLlm, Box<dyn std::error::Error>> {
    let seed = args.get_u64("seed", 42)?;
    if let Some(model_path) = args.get("model") {
        let tok_path = args
            .get("tokenizer")
            .ok_or("--model requires --tokenizer")?;
        let weights = TransformerWeights::load(std::path::Path::new(model_path))?;
        let tokenizer = Tokenizer::load(std::path::Path::new(tok_path), weights.config.vocab_size)?;
        Ok(AcceleratedLlm::new(weights, tokenizer, opt)?)
    } else {
        let preset = parse_preset(args.get_or("preset", "stories15m"))?;
        Ok(AcceleratedLlm::synthetic(preset, seed, opt)?)
    }
}

fn cmd_generate(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    args.expect_only(&[
        "preset",
        "model",
        "tokenizer",
        "prompt",
        "steps",
        "variant",
        "sampler",
        "seed",
        "chunk",
        "trace-out",
    ])?;
    let opt = parse_variant(args.get_or("variant", "full"))?;
    let sampler = parse_sampler(args.get_or("sampler", "argmax"))?;
    let steps = args.get_usize("steps", 48)?;
    let chunk = args.get_usize("chunk", 1)?;
    if !(1..=64).contains(&chunk) {
        return Err("--chunk must be in 1..=64".into());
    }
    let mut system = build_system(args, opt)?;
    set_prefill_chunk(&mut system, chunk, opt)?;
    let prompt = args.get_or("prompt", "Once upon a time");
    let mut session = system.session(sampler, args.get_u64("seed", 42)?);
    if tel::enabled() {
        // Capture the device timeline alongside host spans; the combined
        // trace is written by finalize_telemetry.
        session.engine_mut().capture_trace(1 << 16);
    }
    let report = session.generate(prompt, steps)?;
    if let Some(sim) = session.engine_mut().take_trace() {
        SIM_TRACE.with(|s| *s.borrow_mut() = Some(sim));
    }

    println!("model:   {}", system.config());
    println!(
        "variant: {} ({})",
        opt.short_name(),
        args.get_or("variant", "full")
    );
    println!("prompt:  {prompt:?}");
    println!("output:  {:?}", report.output.text);
    println!();
    println!("latency:    {}", fmt_seconds(report.total_latency_s()));
    println!("throughput: {:.0} tok/s", report.decode_tokens_per_s());
    println!(
        "energy:     {} ({:.0} tok/J)",
        fmt_joules(report.energy.total_j()),
        report.tokens_per_joule()
    );
    println!(
        "traffic:    {} HBM read, {} HBM write, {} on-chip",
        fmt_bytes(report.stats.hbm.read_bytes),
        fmt_bytes(report.stats.hbm.write_bytes),
        fmt_bytes(report.stats.ocm_read_bytes + report.stats.ocm_write_bytes),
    );
    Ok(())
}

/// `AcceleratedLlm` validates its design at construction, so rebuilding
/// with a modified chunk requires going through a fresh config.
fn set_prefill_chunk(
    system: &mut AcceleratedLlm,
    chunk: usize,
    _opt: OptConfig,
) -> Result<(), Box<dyn std::error::Error>> {
    if chunk != 1 && system.accel_config().prefill_chunk != chunk {
        // Sessions read prefill_chunk from the engine config; expose the
        // knob by rebuilding the system's AccelConfig via its public API.
        system.set_prefill_chunk(chunk);
    }
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    args.expect_only(&["preset", "prompt", "steps", "seed", "trace-out"])?;
    let steps = args.get_usize("steps", 32)?;
    let prompt = args.get_or("prompt", "Once upon a time");
    let seed = args.get_u64("seed", 42)?;
    let preset = parse_preset(args.get_or("preset", "stories15m"))?;

    let mut table = Table::new(&["variant", "latency", "tok/s", "tok/J", "speedup"]);
    let mut base_latency = None;
    let mut rows = Vec::new();
    for (name, opt) in OptConfig::paper_variants() {
        let system = AcceleratedLlm::synthetic(preset, seed, opt)?;
        let mut session = system.session(speedllm_llama::sampler::SamplerKind::Argmax, seed);
        let r = session.generate(prompt, steps)?;
        if name == "unoptimized" {
            base_latency = Some(r.total_latency_s());
        }
        rows.push((name, r));
    }
    let base = base_latency.expect("unoptimized variant present");
    for (name, r) in &rows {
        table.row(vec![
            (*name).into(),
            fmt_seconds(r.total_latency_s()),
            format!("{:.0}", r.decode_tokens_per_s()),
            format!("{:.0}", r.tokens_per_joule()),
            format!("{:.2}x", base / r.total_latency_s()),
        ]);
    }
    println!("{}", table.render());
    Ok(())
}

fn cmd_inspect(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    args.expect_only(&["preset", "variant", "dot", "seed", "trace-out"])?;
    let preset = parse_preset(args.get_or("preset", "stories15m"))?;
    let opt = parse_variant(args.get_or("variant", "full"))?;

    use speedllm_accel::fusion::fuse;
    use speedllm_accel::ir::{build_decode_graph, dot};
    use speedllm_accel::memplan::plan;

    let graph = build_decode_graph(&preset);
    let schedule = fuse(&graph, opt.operator_fusion);
    let cfg = speedllm_accel::engine::AccelConfig::for_opt(&opt);
    let mplan = plan(
        &graph,
        &schedule,
        opt.memory_reuse,
        cfg.activation_pool_bytes,
    );

    println!("model:    {preset}");
    println!("variant:  {}", opt.short_name());
    let (mpe_ops, sfu_ops) = graph.op_census();
    println!(
        "graph:    {} ops ({mpe_ops} MPE, {sfu_ops} SFU), {} values",
        graph.ops.len(),
        graph.values.len()
    );
    let rep = schedule.report(&graph);
    println!(
        "schedule: {} kernels; {} values fused away, {} materialized",
        rep.kernels, rep.internal_values, rep.materialized_values
    );
    println!(
        "memory:   {} values on-chip (peak {}), {} in HBM ({})",
        mplan.ocm_values(),
        fmt_bytes(mplan.ocm_high_water),
        mplan.hbm_values(),
        fmt_bytes(mplan.hbm_activation_bytes),
    );
    let used = cfg.resource_usage();
    let budget = Resources::u280_budget();
    let u = used.utilization(&budget);
    println!(
        "fabric:   LUT {:.0}%  FF {:.0}%  DSP {:.0}%  BRAM {:.0}%  URAM {:.0}%",
        u[0] * 100.0,
        u[1] * 100.0,
        u[2] * 100.0,
        u[3] * 100.0,
        u[4] * 100.0
    );

    if let Some(path) = args.get("dot") {
        let text = dot::schedule_to_dot(&graph, &schedule, Some(&mplan));
        std::fs::write(path, &text)?;
        println!("wrote {} bytes of DOT to {path}", text.len());
    }
    Ok(())
}

fn cmd_trace(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    args.expect_only(&["preset", "variant", "seed", "width", "chrome", "trace-out"])?;
    let preset = parse_preset(args.get_or("preset", "stories260k"))?;
    let opt = parse_variant(args.get_or("variant", "full"))?;
    let width = args.get_usize("width", 100)?;
    let system = AcceleratedLlm::synthetic(preset, args.get_u64("seed", 42)?, opt)?;
    let mut session = system.session(speedllm_llama::sampler::SamplerKind::Argmax, 0);
    session.step(1, 0);
    session.step(2, 1);
    session.engine_mut().capture_trace(8192);
    let r = session.step(3, 2);
    let trace = session.engine_mut().take_trace().expect("trace");
    println!(
        "one decode step, variant {}: {} cycles",
        opt.short_name(),
        r.cycles.0
    );
    print!("{}", trace.render_gantt(width));
    if let Some(path) = args.get("chrome") {
        let json = trace.to_chrome_json(&speedllm_fpga_sim::cycles::ClockDomain::U280_KERNEL);
        std::fs::write(path, &json)?;
        println!(
            "wrote Chrome trace ({} bytes) to {path} — open in chrome://tracing",
            json.len()
        );
    }
    Ok(())
}

fn cmd_eval(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    args.expect_only(&[
        "preset",
        "tokens",
        "seed",
        "engines",
        "gate-int8",
        "gate-int4",
        "trace-out",
    ])?;
    let preset = parse_preset(args.get_or("preset", "tiny"))?;
    let n_tokens = args.get_usize("tokens", 24)?.max(2).min(preset.seq_len);
    let seed = args.get_u64("seed", 42)?;
    let engines = args.get_or("engines", "all");
    if !matches!(engines, "cpu" | "accel" | "all") {
        return Err(Box::new(args::ParseError(format!(
            "unknown --engines `{engines}` (cpu|accel|all)"
        ))));
    }
    let parse_gate = |key: &str| -> Result<Option<f64>, Box<dyn std::error::Error>> {
        match args.get(key) {
            None => Ok(None),
            Some(v) => Ok(Some(v.parse::<f64>().map_err(|_| {
                args::ParseError(format!(
                    "--{key} expects a max relative ppl drift like 0.05, got `{v}`"
                ))
            })?)),
        }
    };
    let gates = [
        (QuantMode::Int8, parse_gate("gate-int8")?),
        (QuantMode::Int4, parse_gate("gate-int4")?),
    ];

    use speedllm_llama::eval::{evaluate_reference, evaluate_with};
    use speedllm_llama::forward::Transformer;

    let weights = TransformerWeights::synthetic(preset, seed);
    let tokens: Vec<u32> = (0..n_tokens)
        .map(|i| ((i as u64 * 37 + seed) % preset.vocab_size as u64) as u32)
        .collect();
    let base = evaluate_reference(&mut Transformer::new(weights.clone()), &tokens);

    // Worst observed |ppl/ppl_f32 - 1| per quant mode, across engines.
    let mut drift: Vec<(QuantMode, f64)> = Vec::new();
    let mut record = |mode: QuantMode, ppl: f64| {
        let d = (ppl / base.perplexity() - 1.0).abs();
        match drift.iter_mut().find(|(m, _)| *m == mode) {
            Some((_, worst)) => *worst = worst.max(d),
            None => drift.push((mode, d)),
        }
    };

    let mut table = Table::new(&["engine", "perplexity", "bits/token", "vs reference"]);
    table.row(vec![
        "CPU reference (fp32)".into(),
        format!("{:.2}", base.perplexity()),
        format!("{:.3}", base.bits_per_token()),
        "1.000x".into(),
    ]);
    if engines != "accel" {
        for mode in [QuantMode::Int8, QuantMode::Int4] {
            let mut model = Transformer::new(weights.clone());
            model.set_quant_mode(mode);
            let r = evaluate_with(preset.vocab_size, &tokens, |t, p| {
                model.forward(t, p).to_vec()
            });
            record(mode, r.perplexity());
            table.row(vec![
                format!("CPU {} (fused dequant-GEMM)", mode.name()),
                format!("{:.2}", r.perplexity()),
                format!("{:.3}", r.bits_per_token()),
                format!("{:.3}x", r.perplexity() / base.perplexity()),
            ]);
        }
    }
    if engines != "cpu" {
        for (name, mode, opt) in [
            ("accelerator fp32", QuantMode::F32, OptConfig::full()),
            ("accelerator int8", QuantMode::Int8, OptConfig::full_int8()),
            ("accelerator int4", QuantMode::Int4, OptConfig::full_int4()),
        ] {
            let sys = AcceleratedLlm::new(
                weights.clone(),
                Tokenizer::synthetic(preset.vocab_size, seed),
                opt,
            )?;
            let mut session = sys.session(speedllm_llama::sampler::SamplerKind::Argmax, 0);
            let r = evaluate_with(preset.vocab_size, &tokens, |t, p| session.step(t, p).logits);
            if mode != QuantMode::F32 {
                record(mode, r.perplexity());
            }
            table.row(vec![
                name.into(),
                format!("{:.2}", r.perplexity()),
                format!("{:.3}", r.bits_per_token()),
                format!("{:.3}x", r.perplexity() / base.perplexity()),
            ]);
        }
    }
    println!("scoring {} tokens on {preset}\n", n_tokens - 1);
    println!("{}", table.render());
    println!("(untrained synthetic weights: perplexity sits near the vocabulary size;\n the column to watch is the relative drift of quantized engines)");

    for (mode, bound) in gates {
        let Some(bound) = bound else { continue };
        let worst = drift
            .iter()
            .find(|(m, _)| *m == mode)
            .map(|(_, d)| *d)
            .ok_or_else(|| {
                format!(
                    "--gate-{} set but no {} engine ran",
                    mode.name(),
                    mode.name()
                )
            })?;
        if worst > bound {
            return Err(format!(
                "perplexity gate failed: {} drift {:.4} exceeds bound {:.4}",
                mode.name(),
                worst,
                bound
            )
            .into());
        }
        println!(
            "ppl gate {}: worst relative drift {:.4} within bound {:.4}",
            mode.name(),
            worst,
            bound
        );
    }
    Ok(())
}

fn cmd_devices(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    args.expect_only(&["preset", "steps", "seed", "trace-out"])?;
    let preset = parse_preset(args.get_or("preset", "stories15m"))?;
    let steps = args.get_usize("steps", 32)?;
    let system = AcceleratedLlm::synthetic(preset, args.get_u64("seed", 42)?, OptConfig::full())?;
    let mut session = system.session(speedllm_llama::sampler::SamplerKind::Argmax, 0);
    let r = session.generate("Once upon a time", steps)?;

    let mut table = Table::new(&["device", "tok/s", "price", "tok/s/$"]);
    table.row(vec![
        "SpeedLLM / U280".into(),
        format!("{:.0}", r.decode_tokens_per_s()),
        format!("{U280_PRICE_USD:.0}"),
        format!("{:.3}", r.decode_tokens_per_s() / U280_PRICE_USD),
    ]);
    for gpu in GpuSpec::paper_gpus() {
        let t = gpu.decode_tokens_per_s(&preset, steps / 2 + 8, 2.0);
        table.row(vec![
            gpu.name.into(),
            format!("{t:.0}"),
            format!("{:.0}", gpu.price_usd),
            format!("{:.3}", t / gpu.price_usd),
        ]);
    }
    println!("{}", table.render());
    Ok(())
}

/// Drives one serve-bench run to completion and renders its report,
/// returning the observability recorder when one was requested.
fn serve_bench_run<B: speedllm_serve::Backend>(
    backend: B,
    scfg: speedllm_serve::ServeConfig,
    lcfg: &speedllm_serve::LoadGenConfig,
    record: bool,
    spec: Option<(speedllm_llama::forward::Transformer, usize)>,
) -> Result<(String, Option<speedllm_serve::ServeRecorder>), Box<dyn std::error::Error>> {
    let mut engine = speedllm_serve::ServeEngine::new(backend, scfg);
    if let Some((draft, k)) = spec {
        engine.enable_speculative(draft, k)?;
    }
    if record {
        engine.attach_recorder(speedllm_serve::ServeRecorder::new());
    }
    let name = engine.backend().name();
    let mut traffic = speedllm_serve::LoadGen::new(lcfg);
    let completions = engine.run_with_source(&mut traffic);
    let report =
        speedllm_serve::ServeReport::from_run(&completions, engine.stats(), engine.slot_reuses())
            .render(name);
    Ok((report, engine.take_recorder()))
}

/// Resolves `--draft-model` for speculative serving: `auto` derives a
/// stories260K-shaped trunk speaking the target's vocabulary, a preset
/// name builds that preset synthetically, anything else is a checkpoint
/// path.  The draft's synthetic seed is offset from the target's so the
/// two models genuinely disagree sometimes.
fn resolve_draft_model(
    spec: &str,
    target: &speedllm_llama::config::ModelConfig,
    seed: u64,
) -> Result<speedllm_llama::forward::Transformer, Box<dyn std::error::Error>> {
    let weights = if spec == "auto" {
        let cfg = speedllm_llama::config::ModelConfig::draft_for(target);
        TransformerWeights::synthetic(cfg, seed.wrapping_add(1))
    } else if let Ok(cfg) = parse_preset(spec) {
        TransformerWeights::synthetic(cfg, seed.wrapping_add(1))
    } else {
        TransformerWeights::load(std::path::Path::new(spec))
            .map_err(|e| format!("--draft-model {spec}: {e}"))?
    };
    Ok(speedllm_llama::forward::Transformer::new(weights))
}

fn cmd_serve_bench(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    use speedllm_serve::{AccelBackend, ArrivalMode, CpuBackend, LoadGenConfig, ServeConfig};

    args.expect_only(&[
        "preset",
        "backend",
        "requests",
        "slots",
        "batch",
        "chunk",
        "queue-cap",
        "kv",
        "quant",
        "block-size",
        "shared-prefix",
        "mode",
        "mean",
        "concurrency",
        "burst-size",
        "burst-gap",
        "token-budget",
        "prefill-ratio",
        "max-new",
        "sampler",
        "seed",
        "smoke",
        "spec-k",
        "draft-model",
        "events-out",
        "metrics-out",
        "trace-out",
    ])?;
    // --smoke: a fixed tiny workload (8 requests on the test-tiny model)
    // that scripts/verify.sh runs twice and byte-compares.
    let smoke = args.get("smoke").is_some();
    let backend = args.get_or("backend", "accel");
    if !matches!(backend, "cpu" | "accel") {
        return Err(format!("unknown --backend `{backend}` (cpu|accel)").into());
    }
    let preset = parse_preset(args.get_or("preset", if smoke { "tiny" } else { "stories260k" }))?;
    let n_requests = args.get_usize("requests", if smoke { 8 } else { 32 })?;
    let seed = args.get_u64("seed", 42)?;
    let sampler = parse_sampler(args.get_or("sampler", "temp:0.8"))?;
    // --spec-k switches on speculative decoding (DESIGN.md §16); the
    // depth/vocab/scheduler validations live in `enable_speculative` so
    // they fail identically from every entry point.
    let spec_k = match args.get("spec-k") {
        Some(_) => Some(args.get_usize("spec-k", 0)?),
        None => None,
    };
    if args.get("draft-model").is_some() && spec_k.is_none() {
        return Err("--draft-model requires --spec-k".into());
    }
    let draft_spec = args.get_or("draft-model", "auto");
    let kv = args.get_or("kv", "pool");
    if !matches!(kv, "pool" | "paged") {
        return Err(format!("unknown --kv `{kv}` (pool|paged)").into());
    }
    // --quant selects the weight precision for the serve hot path
    // (DESIGN.md §18): the CPU backend streams a group-quantized
    // WeightStore through the fused dequant-GEMM kernels, the accel
    // backend selects the matching int8/int4 MPE design point.
    let quant = parse_quant(args.get_or("quant", "f32"))?;
    let slots = args.get_usize("slots", if smoke { 2 } else { 4 })?;
    let block_size = args.get_usize("block-size", 8)?;
    if block_size == 0 {
        return Err("--block-size must be >= 1".into());
    }
    // Equal KV memory to `slots` flat slots; a paged "slot" is only a
    // block table, so concurrency is bounded by blocks instead.
    let n_blocks = slots * preset.seq_len.div_ceil(block_size);
    let block_cfg = speedllm_pagedkv::BlockConfig {
        block_size,
        n_blocks,
    };
    // --prefill-ratio (with or without --token-budget) switches on the
    // unified mixed prefill+decode scheduler (DESIGN.md §14).
    let unified = if args.get("prefill-ratio").is_some() || args.get("token-budget").is_some() {
        let ratio = args.get_u64("prefill-ratio", 50)?;
        if ratio > 100 {
            return Err("--prefill-ratio is a percentage (0..=100)".into());
        }
        let token_budget = args.get_usize("token-budget", 16)?;
        if token_budget == 0 {
            return Err("--token-budget must be >= 1".into());
        }
        Some(speedllm_serve::UnifiedConfig {
            token_budget,
            prefill_pct: ratio as u32,
        })
    } else {
        None
    };
    let scfg = ServeConfig {
        slots: if kv == "paged" { n_blocks } else { slots },
        max_batch: args.get_usize("batch", 8)?,
        prefill_chunk: args.get_usize("chunk", if smoke { 4 } else { 16 })?,
        queue_cap: args.get_usize("queue-cap", 64)?,
        unified,
    };
    let mode = match args.get_or("mode", "closed") {
        "closed" => ArrivalMode::Closed {
            concurrency: args.get_usize("concurrency", scfg.slots * 2)?,
        },
        "open" => ArrivalMode::Open {
            mean_interarrival: args.get_u64("mean", 32)?,
        },
        "bursty" => {
            let burst_size = args.get_usize("burst-size", 4)?;
            let burst_gap = args.get_u64("burst-gap", 64)?;
            if burst_size == 0 {
                return Err("--burst-size must be >= 1".into());
            }
            if burst_gap == 0 {
                return Err("--burst-gap must be >= 1".into());
            }
            ArrivalMode::Bursty {
                burst_size,
                burst_gap,
            }
        }
        other => return Err(format!("unknown --mode `{other}` (open|closed|bursty)").into()),
    };
    let shared_prefix_len = args.get_usize("shared-prefix", 0)?;
    let prompt_lo = 2 + shared_prefix_len;
    let prompt_hi = (preset.seq_len / 4).clamp(2, 12).max(prompt_lo);
    if prompt_hi > preset.seq_len {
        return Err(
            format!("--shared-prefix {shared_prefix_len} does not fit the context window").into(),
        );
    }
    let lcfg = LoadGenConfig {
        n_requests,
        mode,
        prompt_len: (prompt_lo, prompt_hi),
        shared_prefix_len,
        max_new_tokens: (
            1,
            args.get_usize("max-new", if smoke { 6 } else { 16 })?
                .max(1),
        ),
        sampler,
        stop_at_eos: true,
        vocab_size: preset.vocab_size,
        seq_len: preset.seq_len,
        seed,
    };

    let spec = match spec_k {
        Some(k) => Some((resolve_draft_model(draft_spec, &preset, seed)?, k)),
        None => None,
    };

    println!("model:    {preset}");
    println!(
        "schedule: {} slots, batch <= {}, prefill chunk {}, queue cap {}",
        scfg.slots, scfg.max_batch, scfg.prefill_chunk, scfg.queue_cap
    );
    if let Some(u) = scfg.unified {
        println!(
            "unified:  token budget {}, prefill ratio {}%",
            u.token_budget, u.prefill_pct
        );
    }
    if kv == "paged" {
        println!("kv:       paged, {n_blocks} blocks x {block_size} tokens (= {slots} flat slots)");
    } else {
        println!("kv:       slot pool ({slots} flat slots)");
    }
    if shared_prefix_len > 0 {
        println!("prefix:   {shared_prefix_len} shared tokens per prompt");
    }
    if quant != speedllm_llama::QuantMode::F32 {
        println!(
            "quant:    {} weights (fused dequant-GEMM, f32 accumulate)",
            quant.name()
        );
    }
    if let Some(k) = spec_k {
        println!("spec:     speculative decoding, draft `{draft_spec}`, k = {k}");
    }
    match mode {
        ArrivalMode::Open { mean_interarrival } => println!(
            "workload: {n_requests} requests, open loop (mean gap {mean_interarrival} ticks), seed {seed}"
        ),
        ArrivalMode::Closed { concurrency } => println!(
            "workload: {n_requests} requests, closed loop (concurrency {concurrency}), seed {seed}"
        ),
        ArrivalMode::Bursty {
            burst_size,
            burst_gap,
        } => println!(
            "workload: {n_requests} requests, bursty open loop (bursts of {burst_size}, mean gap {burst_gap} ticks), seed {seed}"
        ),
    }
    println!();

    // Observability exports: the recorder is attached only when some
    // output wants it, and recording never perturbs the token streams
    // or the report (asserted by tests/serve_observability.rs).
    let events_out = args.get("events-out");
    let metrics_out = args.get("metrics-out");
    let record = events_out.is_some() || metrics_out.is_some() || args.get("trace-out").is_some();

    // The accel backend realizes --quant as its MPE/HBM design point.
    let accel_opt = match quant {
        speedllm_llama::QuantMode::F32 => OptConfig::full(),
        speedllm_llama::QuantMode::Int8 => OptConfig::full_int8(),
        speedllm_llama::QuantMode::Int4 => OptConfig::full_int4(),
    };
    let cpu_model = |preset, seed| {
        let mut model =
            speedllm_llama::forward::Transformer::new(TransformerWeights::synthetic(preset, seed));
        model.set_quant_mode(quant);
        model
    };
    let (report, recorder) = match (backend, kv) {
        ("cpu", "pool") => serve_bench_run(
            CpuBackend::new(cpu_model(preset, seed)),
            scfg,
            &lcfg,
            record,
            spec,
        )?,
        ("cpu", _) => serve_bench_run(
            CpuBackend::new_paged(cpu_model(preset, seed), block_cfg),
            scfg,
            &lcfg,
            record,
            spec,
        )?,
        (_, "pool") => {
            let weights = std::sync::Arc::new(TransformerWeights::synthetic(preset, seed));
            let engine = speedllm_accel::engine::Engine::new(weights, accel_opt)?;
            serve_bench_run(AccelBackend::new(engine), scfg, &lcfg, record, spec)?
        }
        _ => {
            let weights = std::sync::Arc::new(TransformerWeights::synthetic(preset, seed));
            let engine = speedllm_accel::engine::Engine::new(weights, accel_opt)?;
            serve_bench_run(
                AccelBackend::new_paged(engine, block_cfg),
                scfg,
                &lcfg,
                record,
                spec,
            )?
        }
    };
    print!("{report}");
    if let Some(rec) = recorder {
        if let Some(path) = events_out {
            let jsonl = rec.events.to_jsonl();
            std::fs::write(path, &jsonl)?;
            println!(
                "wrote {} lifecycle events ({} bytes) to {path}",
                rec.events.len(),
                jsonl.len()
            );
            if rec.events.dropped() > 0 {
                println!("(+{} events dropped)", rec.events.dropped());
            }
        }
        if let Some(path) = metrics_out {
            let text = if path.ends_with(".jsonl") {
                rec.ticks.to_jsonl()
            } else {
                rec.ticks.to_csv()
            };
            std::fs::write(path, &text)?;
            println!(
                "wrote {} tick samples ({} bytes) to {path}",
                rec.ticks.len(),
                text.len()
            );
            if rec.ticks.dropped() > 0 {
                println!("(+{} tick samples evicted)", rec.ticks.dropped());
            }
        }
        if args.get("trace-out").is_some() {
            SERVE_EVENTS.with(|s| *s.borrow_mut() = Some(rec.events.events().to_vec()));
        }
    }
    Ok(())
}

/// Drives one cluster-bench run (a [`speedllm_router::Cluster`] over N
/// identical replicas) and returns the rendered report plus the merged
/// replica-stamped event log when one was requested.
fn cluster_bench_run<B: speedllm_serve::Backend>(
    engines: Vec<speedllm_serve::ServeEngine<B>>,
    ccfg: speedllm_router::ClusterConfig,
    lcfg: &speedllm_serve::LoadGenConfig,
    record: bool,
) -> (String, Option<Vec<speedllm_serve::Event>>) {
    let mut cluster = speedllm_router::Cluster::new(engines, ccfg);
    if record {
        cluster.attach_recorders();
    }
    let mut traffic = speedllm_serve::LoadGen::new(lcfg);
    cluster.run(&mut traffic);
    let events = record.then(|| cluster.take_events());
    (cluster.report().render(), events)
}

/// `speedllm cluster-bench` — N serve replicas behind the router
/// (DESIGN.md §17), with policy selection, per-replica backpressure, and
/// deterministic fault injection.
fn cmd_cluster_bench(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    use speedllm_router::{ClusterConfig, FaultPlan, Policy};
    use speedllm_serve::{ArrivalMode, CpuBackend, LoadGenConfig, ServeConfig, ServeEngine};

    args.expect_only(&[
        "preset",
        "backend",
        "replicas",
        "policy",
        "fault-at",
        "max-outstanding",
        "requests",
        "slots",
        "batch",
        "chunk",
        "queue-cap",
        "block-size",
        "shared-prefix",
        "mode",
        "mean",
        "concurrency",
        "max-new",
        "sampler",
        "seed",
        "smoke",
        "events-out",
        "trace-out",
    ])?;
    let smoke = args.get("smoke").is_some();
    let backend = args.get_or("backend", "cpu");
    if !matches!(backend, "cpu" | "accel") {
        return Err(format!("unknown --backend `{backend}` (cpu|accel)").into());
    }
    let preset = parse_preset(args.get_or("preset", if smoke { "tiny" } else { "stories260k" }))?;
    let n_replicas = args.get_usize("replicas", if smoke { 3 } else { 4 })?;
    if n_replicas == 0 || n_replicas > usize::from(u16::MAX) {
        return Err("--replicas must be in 1..=65535".into());
    }
    let policy = Policy::parse(args.get_or("policy", "prefix"))?;
    let faults = match args.get("fault-at") {
        Some(spec) => spec
            .split(',')
            .map(FaultPlan::parse)
            .collect::<Result<Vec<_>, _>>()?,
        None => Vec::new(),
    };
    for f in &faults {
        if f.replica >= n_replicas {
            return Err(format!(
                "--fault-at names replica {} but the cluster has {n_replicas}",
                f.replica
            )
            .into());
        }
    }
    let dead_forever: std::collections::BTreeSet<usize> = faults
        .iter()
        .filter(|f| f.up_tick == u64::MAX)
        .map(|f| f.replica)
        .collect();
    if dead_forever.len() == n_replicas {
        return Err("--fault-at downs every replica forever; the cluster could never drain".into());
    }
    let n_requests = args.get_usize("requests", if smoke { 12 } else { 32 })?;
    let seed = args.get_u64("seed", 42)?;
    let sampler = parse_sampler(args.get_or("sampler", "temp:0.8"))?;
    let slots = args.get_usize("slots", if smoke { 2 } else { 4 })?;
    // The smoke workload's 4-token shared prefix must fill at least one
    // block for prefix routing to have anything to see.
    let block_size = args.get_usize("block-size", if smoke { 4 } else { 8 })?;
    if block_size == 0 {
        return Err("--block-size must be >= 1".into());
    }
    // Every replica gets the same KV budget: `slots` flat slots' worth of
    // paged blocks (the prefix policy needs the radix cache, so the
    // cluster always serves paged KV).
    let n_blocks = slots * preset.seq_len.div_ceil(block_size);
    let block_cfg = speedllm_pagedkv::BlockConfig {
        block_size,
        n_blocks,
    };
    let scfg = ServeConfig {
        slots: n_blocks,
        max_batch: args.get_usize("batch", 8)?,
        prefill_chunk: args.get_usize("chunk", if smoke { 4 } else { 16 })?,
        queue_cap: args.get_usize("queue-cap", 64)?,
        unified: None,
    };
    let mode = match args.get_or("mode", "open") {
        "open" => ArrivalMode::Open {
            mean_interarrival: args.get_u64("mean", if smoke { 8 } else { 32 })?,
        },
        "closed" => ArrivalMode::Closed {
            concurrency: args.get_usize("concurrency", n_replicas * slots)?,
        },
        other => return Err(format!("unknown --mode `{other}` (open|closed)").into()),
    };
    let shared_prefix_len = args.get_usize("shared-prefix", if smoke { 4 } else { 0 })?;
    let prompt_lo = 2 + shared_prefix_len;
    let prompt_hi = (preset.seq_len / 4).clamp(2, 12).max(prompt_lo);
    if prompt_hi > preset.seq_len {
        return Err(
            format!("--shared-prefix {shared_prefix_len} does not fit the context window").into(),
        );
    }
    let max_new = args
        .get_usize("max-new", if smoke { 6 } else { 16 })?
        .max(1);
    let max_outstanding = args.get_usize("max-outstanding", usize::MAX)?;
    if max_outstanding < prompt_hi + max_new {
        return Err(format!(
            "--max-outstanding {max_outstanding} is below the largest request \
             ({prompt_hi} prompt + {max_new} new tokens); nothing could ever dispatch"
        )
        .into());
    }
    let lcfg = LoadGenConfig {
        n_requests,
        mode,
        prompt_len: (prompt_lo, prompt_hi),
        shared_prefix_len,
        max_new_tokens: (1, max_new),
        sampler,
        stop_at_eos: true,
        vocab_size: preset.vocab_size,
        seq_len: preset.seq_len,
        seed,
    };
    let ccfg = ClusterConfig {
        policy,
        max_outstanding_tokens: max_outstanding,
        faults: faults.clone(),
    };

    println!("model:    {preset}");
    println!("cluster:  {n_replicas} replicas, policy {policy}");
    println!(
        "schedule: per replica: batch <= {}, prefill chunk {}, queue cap {}",
        scfg.max_batch, scfg.prefill_chunk, scfg.queue_cap
    );
    println!(
        "kv:       paged, {n_blocks} blocks x {block_size} tokens per replica (= {slots} flat slots)"
    );
    if shared_prefix_len > 0 {
        println!("prefix:   {shared_prefix_len} shared tokens per prompt");
    }
    if max_outstanding != usize::MAX {
        println!("cap:      {max_outstanding} outstanding tokens per replica");
    }
    for f in &faults {
        if f.up_tick == u64::MAX {
            println!(
                "fault:    replica {} down at tick {} (forever)",
                f.replica, f.down_tick
            );
        } else {
            println!(
                "fault:    replica {} down at tick {}, back at {}",
                f.replica, f.down_tick, f.up_tick
            );
        }
    }
    match mode {
        ArrivalMode::Open { mean_interarrival } => println!(
            "workload: {n_requests} requests, open loop (mean gap {mean_interarrival} ticks), seed {seed}"
        ),
        ArrivalMode::Closed { concurrency } => println!(
            "workload: {n_requests} requests, closed loop (concurrency {concurrency}), seed {seed}"
        ),
        ArrivalMode::Bursty { .. } => unreachable!("cluster-bench offers open|closed"),
    }
    println!();

    let events_out = args.get("events-out");
    let record = events_out.is_some();
    let (report, events) = if backend == "cpu" {
        let engines: Vec<ServeEngine<CpuBackend>> = (0..n_replicas)
            .map(|_| {
                let weights = TransformerWeights::synthetic(preset, seed);
                ServeEngine::new(
                    CpuBackend::new_paged(
                        speedllm_llama::forward::Transformer::new(weights),
                        block_cfg,
                    ),
                    scfg,
                )
            })
            .collect();
        cluster_bench_run(engines, ccfg, &lcfg, record)
    } else {
        let weights = std::sync::Arc::new(TransformerWeights::synthetic(preset, seed));
        let engines = (0..n_replicas)
            .map(|_| {
                let engine =
                    speedllm_accel::engine::Engine::new(weights.clone(), OptConfig::full())?;
                Ok(ServeEngine::new(
                    speedllm_serve::AccelBackend::new_paged(engine, block_cfg),
                    scfg,
                ))
            })
            .collect::<Result<Vec<_>, Box<dyn std::error::Error>>>()?;
        cluster_bench_run(engines, ccfg, &lcfg, record)
    };
    print!("{report}");
    if let Some(path) = events_out {
        let events = events.expect("recorded when --events-out is set");
        let jsonl: String = events.iter().map(|e| e.to_json() + "\n").collect();
        std::fs::write(path, &jsonl)?;
        println!(
            "wrote {} lifecycle events ({} bytes) to {path}",
            events.len(),
            jsonl.len()
        );
    }
    Ok(())
}

/// `speedllm analyze` — phase-breakdown dashboard over the lifecycle
/// event JSONL written by `serve-bench --events-out`.
fn cmd_analyze(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    args.expect_only(&["events", "top", "trace-out"])?;
    let path = args
        .get("events")
        .ok_or("analyze requires --events FILE (from serve-bench --events-out)")?;
    let top = args.get_usize("top", 5)?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let events = speedllm_serve::parse_events_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
    let opts = speedllm_serve::AnalyzeOptions {
        top,
        ..Default::default()
    };
    print!("{}", speedllm_serve::render_analysis(&events, &opts));
    Ok(())
}
