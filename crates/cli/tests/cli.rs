//! End-to-end tests of the `speedllm` binary: spawn the real executable
//! and assert on its output and exit codes.

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_speedllm"))
        .args(args)
        // Keep the ambient environment from toggling telemetry under us.
        .env_remove("SPEEDLLM_TRACE")
        .output()
        .expect("binary must spawn")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

#[test]
fn help_prints_usage() {
    let o = run(&["help"]);
    assert!(o.status.success());
    let out = stdout(&o);
    assert!(out.contains("USAGE"));
    assert!(out.contains("generate"));
    assert!(out.contains("compare"));
    // No args behaves like help.
    let o2 = run(&[]);
    assert!(o2.status.success());
    assert!(stdout(&o2).contains("USAGE"));
}

#[test]
fn generate_runs_on_tiny_preset() {
    let o = run(&[
        "generate", "--preset", "tiny", "--steps", "6", "--prompt", "hi",
    ]);
    assert!(o.status.success(), "stderr: {}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("latency:"));
    assert!(out.contains("throughput:"));
    assert!(out.contains("tok/J"));
}

#[test]
fn generate_with_all_samplers_and_chunk() {
    for sampler in ["argmax", "temp:0.9", "topp:0.9,0.9", "topk:1.0,8"] {
        let o = run(&[
            "generate",
            "--preset",
            "tiny",
            "--steps",
            "4",
            "--sampler",
            sampler,
            "--chunk",
            "4",
        ]);
        assert!(o.status.success(), "sampler {sampler}: {}", stderr(&o));
    }
}

#[test]
fn compare_lists_all_variants() {
    let o = run(&["compare", "--preset", "stories260k", "--steps", "6"]);
    assert!(o.status.success(), "stderr: {}", stderr(&o));
    let out = stdout(&o);
    for name in ["SpeedLLM (ours)", "no-fuse", "no-parallel", "unoptimized"] {
        assert!(out.contains(name), "missing {name} in:\n{out}");
    }
    assert!(out.contains("1.00x"), "baseline speedup row");
}

#[test]
fn inspect_reports_structure_and_writes_dot() {
    let dot_path = std::env::temp_dir().join(format!("speedllm_cli_{}.dot", std::process::id()));
    let o = run(&[
        "inspect",
        "--preset",
        "tiny",
        "--variant",
        "full",
        "--dot",
        dot_path.to_str().unwrap(),
    ]);
    assert!(o.status.success(), "stderr: {}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("kernels"));
    assert!(out.contains("fabric:"));
    let dot = std::fs::read_to_string(&dot_path).expect("dot file written");
    std::fs::remove_file(&dot_path).ok();
    assert!(dot.starts_with("digraph"));
}

#[test]
fn trace_draws_gantt_and_exports_chrome() {
    let json_path = std::env::temp_dir().join(format!("speedllm_cli_{}.json", std::process::id()));
    let o = run(&[
        "trace",
        "--preset",
        "tiny",
        "--variant",
        "full",
        "--chrome",
        json_path.to_str().unwrap(),
    ]);
    assert!(o.status.success(), "stderr: {}", stderr(&o));
    assert!(stdout(&o).contains("MPE"));
    let json = std::fs::read_to_string(&json_path).expect("chrome trace written");
    std::fs::remove_file(&json_path).ok();
    assert!(json.starts_with('['));
}

#[test]
fn run_with_trace_out_writes_combined_trace_and_summary() {
    let path = std::env::temp_dir().join(format!("speedllm_cli_trace_{}.json", std::process::id()));
    let o = run(&[
        "run",
        "--preset",
        "tiny",
        "--steps",
        "6",
        "--trace-out",
        path.to_str().unwrap(),
    ]);
    assert!(o.status.success(), "stderr: {}", stderr(&o));
    let out = stdout(&o);
    assert!(
        out.contains("telemetry summary"),
        "no summary table:\n{out}"
    );
    assert!(out.contains("accel.decode_token_cycles"));
    assert!(out.contains("p99"));
    let json = std::fs::read_to_string(&path).expect("trace written");
    std::fs::remove_file(&path).ok();
    // Host spans and simulator spans share one trace file, as separate
    // Chrome processes.
    assert!(json.starts_with('['));
    assert!(json.trim_end().ends_with(']'));
    assert!(json.contains("\"host (wall time)\""));
    assert!(json.contains("\"fpga-sim (cycle time)\""));
    assert!(json.contains("decode_token"));
    assert!(json.contains("prefill_chunk"));
}

#[test]
fn trace_disabled_by_default_prints_no_summary() {
    let o = run(&["generate", "--preset", "tiny", "--steps", "4"]);
    assert!(o.status.success(), "stderr: {}", stderr(&o));
    assert!(!stdout(&o).contains("telemetry summary"));
}

#[test]
fn devices_prints_cost_table() {
    let o = run(&["devices", "--preset", "stories260k", "--steps", "6"]);
    assert!(o.status.success(), "stderr: {}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("U280"));
    assert!(out.contains("V100S"));
    assert!(out.contains("A100"));
    assert!(out.contains("tok/s/$"));
}

#[test]
fn eval_compares_precisions() {
    let o = run(&["eval", "--preset", "tiny", "--tokens", "16"]);
    assert!(o.status.success(), "stderr: {}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("CPU reference"));
    assert!(out.contains("accelerator int8"));
    assert!(out.contains("perplexity"));
}

#[test]
fn unknown_command_and_flags_fail_loudly() {
    let o = run(&["frobnicate"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("unknown command"));

    let o = run(&["generate", "--preset", "tiny", "--bogus", "1"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("unknown flag"));

    let o = run(&["generate", "--preset", "nosuch"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("unknown preset"));
}

#[test]
fn generate_loads_real_checkpoint_files() {
    use speedllm_llama::config::ModelConfig;
    use speedllm_llama::tokenizer::Tokenizer;
    use speedllm_llama::weights::TransformerWeights;
    let dir = std::env::temp_dir();
    let wpath = dir.join(format!("speedllm_cli_w_{}.bin", std::process::id()));
    let tpath = dir.join(format!("speedllm_cli_t_{}.bin", std::process::id()));
    let cfg = ModelConfig::test_tiny();
    TransformerWeights::synthetic(cfg, 1).save(&wpath).unwrap();
    Tokenizer::synthetic(cfg.vocab_size, 1)
        .save(&tpath)
        .unwrap();
    let o = run(&[
        "generate",
        "--model",
        wpath.to_str().unwrap(),
        "--tokenizer",
        tpath.to_str().unwrap(),
        "--steps",
        "4",
    ]);
    std::fs::remove_file(&wpath).ok();
    std::fs::remove_file(&tpath).ok();
    assert!(o.status.success(), "stderr: {}", stderr(&o));
    assert!(stdout(&o).contains("throughput:"));
}
