//! End-to-end determinism of `speedllm serve-bench`: the acceptance bar
//! is that the same seed yields a byte-identical report (virtual-tick
//! timing, exact percentiles — no wall-clock anywhere in the output).

use std::process::Command;

fn run(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_speedllm"))
        .args(args)
        .output()
        .expect("spawn speedllm");
    assert!(
        out.status.success(),
        "serve-bench failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

#[test]
fn smoke_report_is_byte_identical_across_runs() {
    let a = run(&["serve-bench", "--smoke"]);
    let b = run(&["serve-bench", "--smoke"]);
    assert_eq!(a, b, "same seed must render the same bytes");
    assert!(a.contains("serve-bench report (accel backend)"));
    assert!(a.contains("requests completed   8"));
    // A bare `--smoke` and an explicit `--smoke 1` are the same flag.
    assert_eq!(a, run(&["serve-bench", "--smoke", "1"]));
}

#[test]
fn seed_changes_the_workload() {
    let a = run(&["serve-bench", "--smoke", "--backend", "cpu"]);
    let b = run(&["serve-bench", "--smoke", "--backend", "cpu", "--seed", "43"]);
    assert_ne!(a, b, "a different seed must change the report");
}

#[test]
fn open_loop_mode_runs_on_cpu_backend() {
    let a = run(&[
        "serve-bench",
        "--smoke",
        "--backend",
        "cpu",
        "--mode",
        "open",
        "--mean",
        "8",
    ]);
    assert!(a.contains("serve-bench report (cpu backend)"));
    assert!(a.contains("open loop (mean gap 8 ticks)"));
    assert!(a.contains("requests completed   8"));
}
