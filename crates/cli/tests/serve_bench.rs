//! End-to-end determinism of `speedllm serve-bench`: the acceptance bar
//! is that the same seed yields a byte-identical report (virtual-tick
//! timing, exact percentiles — no wall-clock anywhere in the output).

use std::process::Command;

fn run(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_speedllm"))
        .args(args)
        .output()
        .expect("spawn speedllm");
    assert!(
        out.status.success(),
        "serve-bench failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

#[test]
fn smoke_report_is_byte_identical_across_runs() {
    let a = run(&["serve-bench", "--smoke"]);
    let b = run(&["serve-bench", "--smoke"]);
    assert_eq!(a, b, "same seed must render the same bytes");
    assert!(a.contains("serve-bench report (accel backend)"));
    assert!(a.contains("requests completed   8"));
    // A bare `--smoke` and an explicit `--smoke 1` are the same flag.
    assert_eq!(a, run(&["serve-bench", "--smoke", "1"]));
}

#[test]
fn seed_changes_the_workload() {
    let a = run(&["serve-bench", "--smoke", "--backend", "cpu"]);
    let b = run(&["serve-bench", "--smoke", "--backend", "cpu", "--seed", "43"]);
    assert_ne!(a, b, "a different seed must change the report");
}

#[test]
fn open_loop_mode_runs_on_cpu_backend() {
    let a = run(&[
        "serve-bench",
        "--smoke",
        "--backend",
        "cpu",
        "--mode",
        "open",
        "--mean",
        "8",
    ]);
    assert!(a.contains("serve-bench report (cpu backend)"));
    assert!(a.contains("open loop (mean gap 8 ticks)"));
    assert!(a.contains("requests completed   8"));
}

/// Runs the binary expecting a clean failure: non-zero exit, an
/// `error:` line on stderr, and no panic backtrace.
fn run_err(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_speedllm"))
        .args(args)
        .output()
        .expect("spawn speedllm");
    assert!(
        !out.status.success(),
        "expected failure, got: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let err = String::from_utf8(out.stderr).expect("utf8 stderr");
    assert!(
        err.contains("error:"),
        "stderr should carry an `error:` line, got: {err}"
    );
    assert!(!err.contains("panicked"), "bad flags must not panic: {err}");
    err
}

#[test]
fn speculative_smoke_is_deterministic_and_reports_acceptance() {
    let args = [
        "serve-bench",
        "--smoke",
        "--backend",
        "cpu",
        "--spec-k",
        "4",
        "--sampler",
        "argmax",
    ];
    let a = run(&args);
    assert_eq!(a, run(&args), "speculative runs must stay deterministic");
    assert!(a.contains("spec:     speculative decoding, draft `auto`, k = 4"));
    assert!(a.contains("spec rounds"));
    assert!(a.contains("spec acceptance"));
    // The greedy draft shares the target's trunk shape; acceptance must
    // be nonzero or speculation is not actually engaging.
    assert!(
        !a.contains("(0.000)"),
        "greedy smoke acceptance must be nonzero:\n{a}"
    );
}

#[test]
fn speculative_flat_and_paged_emit_the_same_token_totals() {
    let flat = run(&[
        "serve-bench",
        "--smoke",
        "--backend",
        "cpu",
        "--spec-k",
        "2",
        "--sampler",
        "argmax",
    ]);
    let paged = run(&[
        "serve-bench",
        "--smoke",
        "--backend",
        "cpu",
        "--spec-k",
        "2",
        "--sampler",
        "argmax",
        "--kv",
        "paged",
    ]);
    let tokens = |r: &str| {
        r.lines()
            .find(|l| l.contains("tokens generated"))
            .map(str::to_owned)
            .expect("report has a tokens row")
    };
    assert_eq!(tokens(&flat), tokens(&paged));
}

#[test]
fn quantized_runs_are_byte_identical_across_backends_and_kv_layouts() {
    // The quantized serve hot path (DESIGN.md §18) must stay exactly as
    // reproducible as f32: fused dequant-GEMM accumulates in a fixed
    // order, so double runs render the same bytes on every backend × KV
    // layout corner.
    for quant in ["int8", "int4"] {
        for backend in ["cpu", "accel"] {
            for kv in ["pool", "paged"] {
                let args = [
                    "serve-bench",
                    "--smoke",
                    "--backend",
                    backend,
                    "--kv",
                    kv,
                    "--quant",
                    quant,
                ];
                let a = run(&args);
                assert_eq!(
                    a,
                    run(&args),
                    "{quant} on {backend}/{kv} must render the same bytes"
                );
                assert!(
                    a.contains(&format!("quant:    {quant} weights")),
                    "report must announce the quant mode:\n{a}"
                );
                assert!(a.contains("requests completed   8"));
            }
        }
    }
}

#[test]
fn quant_mode_changes_accel_timing_but_not_cpu_token_accounting() {
    // On the simulated accelerator the quantized weight stream narrows
    // HBM traffic, so virtual-tick timing must actually move; the report
    // is still deterministic (checked above), just different from f32.
    let f32_run = run(&["serve-bench", "--smoke", "--backend", "accel"]);
    let int8_run = run(&[
        "serve-bench",
        "--smoke",
        "--backend",
        "accel",
        "--quant",
        "int8",
    ]);
    assert_ne!(
        f32_run, int8_run,
        "int8 must change the accel timing report"
    );
    // The CPU backend charges per-token virtual ticks independent of the
    // weight format: completion counts survive quantization.
    let cpu = run(&[
        "serve-bench",
        "--smoke",
        "--backend",
        "cpu",
        "--quant",
        "int4",
    ]);
    assert!(cpu.contains("requests completed   8"));
}

#[test]
fn bad_quant_mode_is_a_clean_error() {
    let err = run_err(&["serve-bench", "--smoke", "--quant", "fp16"]);
    assert!(err.contains("unknown quant mode"), "got: {err}");
}

#[test]
fn spec_k_zero_is_a_clean_error() {
    let err = run_err(&["serve-bench", "--smoke", "--spec-k", "0"]);
    assert!(err.contains("k must be >= 1"), "got: {err}");
}

#[test]
fn missing_draft_checkpoint_is_a_clean_error() {
    let err = run_err(&[
        "serve-bench",
        "--smoke",
        "--spec-k",
        "4",
        "--draft-model",
        "/no/such/draft.bin",
    ]);
    assert!(err.contains("/no/such/draft.bin"), "got: {err}");
}

#[test]
fn draft_with_mismatched_vocab_is_a_clean_error() {
    // The stories260K preset speaks a different vocabulary than the
    // smoke-test tiny model; enable_speculative must refuse the pair.
    let err = run_err(&[
        "serve-bench",
        "--smoke",
        "--spec-k",
        "4",
        "--draft-model",
        "stories260k",
    ]);
    assert!(err.contains("vocabulary"), "got: {err}");
}

#[test]
fn draft_model_without_spec_k_is_a_clean_error() {
    let err = run_err(&["serve-bench", "--smoke", "--draft-model", "stories260k"]);
    assert!(
        err.contains("--draft-model requires --spec-k"),
        "got: {err}"
    );
}

#[test]
fn speculation_cannot_combine_with_the_unified_scheduler() {
    let err = run_err(&[
        "serve-bench",
        "--smoke",
        "--spec-k",
        "4",
        "--token-budget",
        "8",
    ]);
    assert!(err.contains("unified"), "got: {err}");
}
