//! Byte-pair-encoding tokenizer, binary-compatible with llama2.c's
//! `tokenizer.bin`.
//!
//! File layout (little-endian): `i32 max_token_length`, then for each of
//! `vocab_size` tokens a `f32 score`, an `i32 byte_len`, and that many raw
//! bytes. The vocabulary size itself is external (it comes from the model
//! config), exactly as in llama2.c.
//!
//! Encoding follows the llama2.c algorithm: optional BOS, a dummy `" "`
//! prefix for non-empty text, per-codepoint lookup with `<0xXX>` byte
//! fallback, then iterated greedy merging of the adjacent pair whose
//! concatenation has the highest score. Decoding maps `<0xXX>` tokens back
//! to raw bytes and strips the leading space after BOS.
//!
//! When no real `tokenizer.bin` is available, [`Tokenizer::synthetic`]
//! builds a deterministic vocabulary with the same structure (specials,
//! byte-fallback block, learned subwords) so that end-to-end text flows are
//! exercised identically.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::path::Path;

/// Token id conventions shared with llama2.c / SentencePiece.
pub const TOKEN_UNK: u32 = 0;
/// Beginning-of-sequence token id.
pub const TOKEN_BOS: u32 = 1;
/// End-of-sequence token id.
pub const TOKEN_EOS: u32 = 2;
/// First of the 256 `<0xXX>` byte-fallback ids.
pub const BYTE_FALLBACK_BASE: u32 = 3;

/// A loaded BPE vocabulary with scores.
#[derive(Debug, Clone)]
pub struct Tokenizer {
    vocab: Vec<Vec<u8>>,
    scores: Vec<f32>,
    index: HashMap<Vec<u8>, u32>,
    max_token_length: usize,
}

/// Errors raised while loading a tokenizer file.
#[derive(Debug)]
pub enum TokenizerError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A token length field was negative or absurd.
    BadLength(i64),
}

impl std::fmt::Display for TokenizerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TokenizerError::Io(e) => write!(f, "tokenizer I/O error: {e}"),
            TokenizerError::BadLength(n) => write!(f, "bad token length {n}"),
        }
    }
}

impl std::error::Error for TokenizerError {}

impl From<io::Error> for TokenizerError {
    fn from(e: io::Error) -> Self {
        TokenizerError::Io(e)
    }
}

impl Tokenizer {
    /// Builds a tokenizer from explicit token strings and scores.
    ///
    /// # Panics
    /// Panics if lengths differ or the vocabulary is empty.
    #[must_use]
    pub fn from_vocab(vocab: Vec<Vec<u8>>, scores: Vec<f32>) -> Self {
        assert_eq!(vocab.len(), scores.len(), "vocab/scores length mismatch");
        assert!(!vocab.is_empty(), "empty vocabulary");
        let mut index = HashMap::with_capacity(vocab.len());
        for (i, tok) in vocab.iter().enumerate() {
            // First occurrence wins, matching llama2.c's sorted lookup of
            // the lowest matching id.
            index.entry(tok.clone()).or_insert(i as u32);
        }
        let max_token_length = vocab.iter().map(Vec::len).max().unwrap_or(0);
        Self {
            vocab,
            scores,
            index,
            max_token_length,
        }
    }

    /// Deterministic synthetic vocabulary of exactly `vocab_size` entries:
    /// 3 specials, 256 byte-fallback tokens, then learned subwords (single
    /// ASCII characters, common English fragments, and seeded filler).
    /// Longer tokens get higher scores so the greedy merge prefers them.
    #[must_use]
    pub fn synthetic(vocab_size: usize, seed: u64) -> Self {
        assert!(vocab_size >= 3, "vocabulary must hold the special tokens");
        let mut vocab: Vec<Vec<u8>> = Vec::with_capacity(vocab_size);
        vocab.push(b"<unk>".to_vec());
        vocab.push(b"\n<s>\n".to_vec());
        vocab.push(b"\n</s>\n".to_vec());
        for b in 0u16..256 {
            if vocab.len() == vocab_size {
                break;
            }
            vocab.push(format!("<0x{b:02X}>").into_bytes());
        }
        let mut seen: std::collections::HashSet<Vec<u8>> = vocab.iter().cloned().collect();
        let mut push_unique = |vocab: &mut Vec<Vec<u8>>, tok: Vec<u8>| {
            if vocab.len() < vocab_size && seen.insert(tok.clone()) {
                vocab.push(tok);
            }
        };
        // Single printable ASCII characters (space first — the encoder's
        // dummy prefix requires " " to exist for realistic vocab sizes).
        push_unique(&mut vocab, b" ".to_vec());
        for c in (b'a'..=b'z').chain(b'A'..=b'Z').chain(b'0'..=b'9') {
            push_unique(&mut vocab, vec![c]);
        }
        for c in b".,!?'\"-:;()".iter() {
            push_unique(&mut vocab, vec![*c]);
        }
        push_unique(&mut vocab, b"\n".to_vec());
        // Common English fragments, space-prefixed words first (the
        // TinyStories vocabulary is dominated by these).
        const FRAGMENTS: &[&str] = &[
            " the", " and", " a", " to", " was", " it", " of", " in", " he", " she", " that",
            " his", " her", " with", " for", " they", " on", " said", " had", " you", " is",
            " one", " day", " very", " little", " big", " time", " saw", " wanted", " happy",
            " play", " friend", " went", " were", " then", " so", "ing", "ed", "er", "ly", "es",
            "th", "he", "in", "an", "on", "re", "at", "en", "nd", "st", "or", "ou", "it", "is",
            "ar", "ll", "om", "ion", "ent",
            // Space-prefixed intermediates so multi-char space-prefixed
            // words are reachable by pairwise merges.
            " t", " a", " s", " w", " h", " o", " b", " m", " d", " f", " p", " l", " th", " wa",
            " an", " he", " sa", " wh", " O", " T", " L", " Once", " upon", " there", " named",
            " Tim", " Lily", " mom", " dog", " cat", " tree", " ball", " home", " did", " not",
            " but", " all", " up",
        ];
        for frag in FRAGMENTS {
            push_unique(&mut vocab, frag.as_bytes().to_vec());
        }
        // Seeded filler subwords until the requested size is reached.
        let mut rng = crate::rng::Xoshiro256::seed_from_u64(seed);
        const LETTERS: &[u8] = b"etaoinshrdlucmfwypvbgkjqxz";
        while vocab.len() < vocab_size {
            let len = 2 + rng.below(5) as usize;
            let mut tok = Vec::with_capacity(len + 1);
            if rng.below(2) == 0 {
                tok.push(b' ');
            }
            for _ in 0..len {
                tok.push(LETTERS[rng.below(LETTERS.len() as u64) as usize]);
            }
            push_unique(&mut vocab, tok);
        }
        // Scores: longer tokens merge first; a tiny id-based tiebreak keeps
        // the ordering total and deterministic.
        let scores: Vec<f32> = vocab
            .iter()
            .enumerate()
            .map(|(i, t)| t.len() as f32 - i as f32 * 1e-5)
            .collect();
        Self::from_vocab(vocab, scores)
    }

    /// Number of tokens in the vocabulary.
    #[must_use]
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Longest token, in bytes.
    #[must_use]
    pub fn max_token_length(&self) -> usize {
        self.max_token_length
    }

    /// The raw bytes of token `id`.
    #[must_use]
    pub fn token_bytes(&self, id: u32) -> &[u8] {
        &self.vocab[id as usize]
    }

    /// Looks up the id of an exact token string.
    #[must_use]
    pub fn lookup(&self, token: &[u8]) -> Option<u32> {
        self.index.get(token).copied()
    }

    /// Encodes `text` into token ids, llama2.c style.
    #[must_use]
    pub fn encode(&self, text: &str, bos: bool, eos: bool) -> Vec<u32> {
        let mut tokens: Vec<u32> = Vec::with_capacity(text.len() + 2);
        if bos {
            tokens.push(TOKEN_BOS);
        }
        if !text.is_empty() {
            // llama2.c inserts a dummy " " prefix token (SentencePiece
            // convention) when one exists in the vocabulary.
            if let Some(space) = self.lookup(b" ") {
                tokens.push(space);
            }
        }
        // Per-codepoint lookup with byte fallback.
        let mut buf = [0u8; 4];
        for ch in text.chars() {
            let s = ch.encode_utf8(&mut buf).as_bytes();
            match self.lookup(s) {
                Some(id) => tokens.push(id),
                None => {
                    for &b in s {
                        let id = BYTE_FALLBACK_BASE + b as u32;
                        // Degenerate vocabularies without the full byte
                        // table fall back to <unk> rather than emitting an
                        // out-of-range id.
                        tokens.push(if (id as usize) < self.vocab.len() {
                            id
                        } else {
                            TOKEN_UNK
                        });
                    }
                }
            }
        }
        // Greedy pair merging: repeatedly merge the adjacent pair whose
        // concatenation exists in the vocabulary with the highest score.
        let mut merge_buf: Vec<u8> = Vec::with_capacity(2 * self.max_token_length);
        loop {
            let mut best: Option<(f32, usize, u32)> = None;
            for i in 0..tokens.len().saturating_sub(1) {
                merge_buf.clear();
                merge_buf.extend_from_slice(self.token_bytes(tokens[i]));
                merge_buf.extend_from_slice(self.token_bytes(tokens[i + 1]));
                if let Some(id) = self.lookup(&merge_buf) {
                    let score = self.scores[id as usize];
                    if best.is_none_or(|(s, _, _)| score > s) {
                        best = Some((score, i, id));
                    }
                }
            }
            match best {
                Some((_, i, id)) => {
                    tokens[i] = id;
                    tokens.remove(i + 1);
                }
                None => break,
            }
        }
        if eos {
            tokens.push(TOKEN_EOS);
        }
        tokens
    }

    /// Decodes a single token into bytes, applying the llama2.c rules:
    /// `<0xXX>` tokens become raw bytes, and a leading space is stripped
    /// when the previous token was BOS.
    #[must_use]
    pub fn decode_piece(&self, prev: u32, token: u32) -> Vec<u8> {
        let piece = self.token_bytes(token);
        // Byte-fallback pattern "<0xXX>".
        if piece.len() == 6 && piece.starts_with(b"<0x") && piece[5] == b'>' {
            if let Ok(hex) = std::str::from_utf8(&piece[3..5]) {
                if let Ok(b) = u8::from_str_radix(hex, 16) {
                    return vec![b];
                }
            }
        }
        if prev == TOKEN_BOS && piece.first() == Some(&b' ') {
            return piece[1..].to_vec();
        }
        piece.to_vec()
    }

    /// Decodes a whole token sequence into a string (lossy UTF-8).
    #[must_use]
    pub fn decode(&self, tokens: &[u32]) -> String {
        let mut bytes = Vec::new();
        let mut prev = TOKEN_BOS;
        for &tok in tokens {
            if tok == TOKEN_BOS {
                prev = tok;
                continue;
            }
            if tok == TOKEN_EOS {
                break;
            }
            bytes.extend_from_slice(&self.decode_piece(prev, tok));
            prev = tok;
        }
        String::from_utf8_lossy(&bytes).into_owned()
    }

    /// Serializes in the llama2.c `tokenizer.bin` format.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let file = std::fs::File::create(path)?;
        let mut w = io::BufWriter::new(file);
        self.write_to(&mut w)?;
        w.flush()
    }

    /// Writes the `tokenizer.bin` layout to an arbitrary sink.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(&(self.max_token_length as i32).to_le_bytes())?;
        for (tok, &score) in self.vocab.iter().zip(&self.scores) {
            w.write_all(&score.to_le_bytes())?;
            w.write_all(&(tok.len() as i32).to_le_bytes())?;
            w.write_all(tok)?;
        }
        Ok(())
    }

    /// Loads a `tokenizer.bin` with the given external vocabulary size.
    pub fn load(path: &Path, vocab_size: usize) -> Result<Self, TokenizerError> {
        let file = std::fs::File::open(path)?;
        let mut r = io::BufReader::new(file);
        Self::read_from(&mut r, vocab_size)
    }

    /// Reads the `tokenizer.bin` layout from an arbitrary source.
    pub fn read_from(r: &mut impl Read, vocab_size: usize) -> Result<Self, TokenizerError> {
        let mut u32buf = [0u8; 4];
        r.read_exact(&mut u32buf)?;
        let _max_len = i32::from_le_bytes(u32buf);
        let mut vocab = Vec::with_capacity(vocab_size);
        let mut scores = Vec::with_capacity(vocab_size);
        for _ in 0..vocab_size {
            r.read_exact(&mut u32buf)?;
            scores.push(f32::from_le_bytes(u32buf));
            r.read_exact(&mut u32buf)?;
            let len = i32::from_le_bytes(u32buf);
            if !(0..=1 << 20).contains(&len) {
                return Err(TokenizerError::BadLength(len as i64));
            }
            let mut tok = vec![0u8; len as usize];
            r.read_exact(&mut tok)?;
            vocab.push(tok);
        }
        Ok(Self::from_vocab(vocab, scores))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tok() -> Tokenizer {
        Tokenizer::synthetic(512, 7)
    }

    #[test]
    fn synthetic_has_exact_size_and_specials() {
        let t = tok();
        assert_eq!(t.vocab_size(), 512);
        assert_eq!(t.token_bytes(TOKEN_UNK), b"<unk>");
        assert_eq!(t.lookup(b"<0x41>"), Some(BYTE_FALLBACK_BASE + 0x41));
    }

    #[test]
    fn synthetic_is_deterministic() {
        let a = Tokenizer::synthetic(1000, 3);
        let b = Tokenizer::synthetic(1000, 3);
        for i in 0..1000 {
            assert_eq!(a.token_bytes(i), b.token_bytes(i));
        }
    }

    #[test]
    fn encode_empty_is_just_bos_eos() {
        let t = tok();
        assert_eq!(t.encode("", true, true), vec![TOKEN_BOS, TOKEN_EOS]);
        assert_eq!(t.encode("", false, false), Vec::<u32>::new());
    }

    #[test]
    fn encode_decode_roundtrips_ascii() {
        let t = tok();
        for text in ["hello world", "Once upon a time", "a", "the cat sat."] {
            let ids = t.encode(text, true, false);
            let back = t.decode(&ids);
            assert_eq!(back, text, "ids={ids:?}");
        }
    }

    #[test]
    fn encode_decode_roundtrips_non_ascii_via_byte_fallback() {
        let t = tok();
        let text = "héllo ☃";
        let ids = t.encode(text, true, false);
        assert_eq!(t.decode(&ids), text);
        // The snowman is certainly not in the synthetic vocab, so fallback
        // bytes must appear.
        assert!(ids
            .iter()
            .any(|&i| (BYTE_FALLBACK_BASE..BYTE_FALLBACK_BASE + 256).contains(&i)));
    }

    #[test]
    fn merging_shrinks_token_count() {
        let t = tok();
        let text = "the and the and the";
        let ids = t.encode(text, false, false);
        // Without merges this would be one token per char plus the prefix.
        assert!(
            ids.len() < text.len() / 2,
            "merges ineffective: {} ids",
            ids.len()
        );
    }

    #[test]
    fn eos_terminates_decode() {
        let t = tok();
        let mut ids = t.encode("hi", true, true);
        ids.extend(t.encode("IGNORED", false, false));
        assert_eq!(t.decode(&ids), "hi");
    }

    #[test]
    fn tokenizer_bin_roundtrip() {
        let t = tok();
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let r = Tokenizer::read_from(&mut buf.as_slice(), t.vocab_size()).unwrap();
        assert_eq!(r.vocab_size(), t.vocab_size());
        for i in 0..t.vocab_size() as u32 {
            assert_eq!(r.token_bytes(i), t.token_bytes(i));
        }
        let text = "round trip me";
        assert_eq!(r.encode(text, true, false), t.encode(text, true, false));
    }

    #[test]
    fn tokenizer_file_roundtrip() {
        let t = tok();
        let path = std::env::temp_dir().join("speedllm_tokenizer_roundtrip.bin");
        t.save(&path).unwrap();
        let r = Tokenizer::load(&path, t.vocab_size()).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(r.encode("abc", true, true), t.encode("abc", true, true));
    }

    #[test]
    fn truncated_tokenizer_rejected() {
        let t = tok();
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(Tokenizer::read_from(&mut buf.as_slice(), t.vocab_size()).is_err());
    }

    #[test]
    fn all_token_ids_stay_in_vocab() {
        let t = Tokenizer::synthetic(300, 5);
        let ids = t.encode(
            "The quick brown fox jumps over the lazy dog! 0123",
            true,
            true,
        );
        for &id in &ids {
            assert!((id as usize) < t.vocab_size(), "id {id} out of range");
        }
    }

    #[test]
    fn duplicate_tokens_resolve_to_first_id() {
        let vocab = vec![b"a".to_vec(), b"a".to_vec(), b"b".to_vec()];
        let t = Tokenizer::from_vocab(vocab, vec![0.0, 0.0, 0.0]);
        assert_eq!(t.lookup(b"a"), Some(0));
    }
}
