//! CPU parallelism utilities.
//!
//! Two tools live here:
//!
//! * [`par_matvec`] — a row-partitioned parallel matrix–vector product built
//!   on `std::thread::scope`. This is the kernel behind the *parallel CPU
//!   reference* baseline used by the examples; it is data-race free by
//!   construction (each worker owns a disjoint `&mut` chunk of the output).
//! * [`ThreadPool`] — a small long-lived worker pool (an in-repo MPMC
//!   channel from [`crate::sync`] + a completion counter) for `'static`
//!   jobs, used by the benchmark harness to evaluate independent
//!   accelerator variants concurrently.
//!
//! Both deliberately avoid work-stealing sophistication: the workloads are
//! regular, so static partitioning is within a few percent of optimal and
//! much easier to reason about. Everything here is `std`-only.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::sync::{unbounded, Sender};

/// Minimum number of multiply-accumulates per worker before parallelism
/// pays for thread wake-up; below this, [`par_matvec`] runs serially.
const PAR_MIN_MACS_PER_THREAD: usize = 64 * 1024;

/// Environment variable that pins the worker count returned by
/// [`recommended_threads`], so bench runs are reproducible across hosts.
pub const THREADS_ENV: &str = "SPEEDLLM_THREADS";

/// Returns a sensible worker count: the `SPEEDLLM_THREADS` environment
/// variable when set to a positive integer (capped at 64 as a fat-finger
/// guard), otherwise available parallelism capped at 16 (beyond that,
/// memory bandwidth dominates for matvec).
#[must_use]
pub fn recommended_threads() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n.min(64);
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}

/// Splits `n` items into at most `parts` contiguous ranges of near-equal
/// length. Returns fewer ranges when `n < parts`. Ranges are non-empty,
/// disjoint, and cover `0..n`.
#[must_use]
pub fn split_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    if n == 0 || parts == 0 {
        return Vec::new();
    }
    let parts = parts.min(n);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Parallel dense matvec: `out[r] = w[r, :] · x` with rows statically
/// partitioned over `threads` workers. Falls back to the serial kernel when
/// the work is too small to amortize thread wake-up.
pub fn par_matvec(out: &mut [f32], w: &[f32], x: &[f32], rows: usize, cols: usize, threads: usize) {
    assert_eq!(out.len(), rows);
    assert_eq!(w.len(), rows * cols);
    assert_eq!(x.len(), cols);
    let threads = threads.max(1);
    if threads == 1 || rows * cols < PAR_MIN_MACS_PER_THREAD * 2 {
        crate::ops::matvec(out, w, x, rows, cols);
        return;
    }
    let ranges = split_ranges(rows, threads);
    // Partition the output into disjoint &mut chunks matching the ranges.
    std::thread::scope(|s| {
        let mut rest = out;
        for range in &ranges {
            let (chunk, tail) = rest.split_at_mut(range.len());
            rest = tail;
            let range = range.clone();
            s.spawn(move || {
                for (o, r) in chunk.iter_mut().zip(range) {
                    *o = crate::ops::dot(&w[r * cols..(r + 1) * cols], x);
                }
            });
        }
    });
}

/// Parallel batched matmul: `out[r * batch + b] = w[r, :] · xs[b]` with
/// rows statically partitioned over `threads` workers, exactly like
/// [`par_matvec`]. The activations are transposed to batch-major once
/// (workers share the read-only transpose), and the row-major
/// `[rows][batch]` output layout makes each worker's row range a
/// contiguous `&mut` chunk, so the same `split_at_mut` partitioning
/// applies. Every worker runs the same [`crate::ops::matmul_rows_xt`]
/// lane-blocked kernel as the serial [`crate::ops::matmul`], so results
/// are bit-identical regardless of thread count. Falls back to the serial
/// kernel when the total work is too small to amortize thread wake-up.
pub fn par_matmul(
    out: &mut [f32],
    w: &[f32],
    xs: &[f32],
    rows: usize,
    cols: usize,
    batch: usize,
    threads: usize,
) {
    assert_eq!(out.len(), rows * batch);
    assert_eq!(w.len(), rows * cols);
    assert_eq!(xs.len(), batch * cols);
    let threads = threads.max(1);
    if threads == 1 || rows * cols * batch < PAR_MIN_MACS_PER_THREAD * 2 {
        crate::ops::matmul(out, w, xs, rows, cols, batch);
        return;
    }
    let ranges = split_ranges(rows, threads);
    let xt = crate::ops::transpose_batch_major(xs, cols, batch);
    let xt: &[f32] = &xt;
    std::thread::scope(|s| {
        let mut rest = out;
        for range in &ranges {
            let (chunk, tail) = rest.split_at_mut(range.len() * batch);
            rest = tail;
            let range = range.clone();
            s.spawn(move || {
                crate::ops::matmul_rows_xt(chunk, w, xt, range, cols, batch);
            });
        }
    });
}

/// Parallel fused dequant matvec: the quantized twin of [`par_matvec`].
/// Rows are statically partitioned and each worker runs
/// [`crate::qgemm::qmatvec_rows`], so results are bit-identical regardless
/// of thread count. Falls back to the serial kernel when the work is too
/// small to amortize thread wake-up.
pub fn par_qmatvec(out: &mut [f32], w: &crate::quant::QuantMatrix, x: &[f32], threads: usize) {
    let (rows, cols) = (w.rows(), w.cols());
    assert_eq!(out.len(), rows);
    assert_eq!(x.len(), cols);
    let threads = threads.max(1);
    if threads == 1 || rows * cols < PAR_MIN_MACS_PER_THREAD * 2 {
        crate::qgemm::qmatvec(out, w, x);
        return;
    }
    let ranges = split_ranges(rows, threads);
    std::thread::scope(|s| {
        let mut rest = out;
        for range in &ranges {
            let (chunk, tail) = rest.split_at_mut(range.len());
            rest = tail;
            let range = range.clone();
            s.spawn(move || {
                crate::qgemm::qmatvec_rows(chunk, w, range, x);
            });
        }
    });
}

/// Parallel batched fused dequant-GEMM: the quantized twin of
/// [`par_matmul`]. Workers run [`crate::qgemm::qmatmul_rows_xt`] over
/// disjoint row ranges of the shared batch-major transpose, so results are
/// bit-identical to the serial [`crate::qgemm::qmatmul`] regardless of
/// thread count.
pub fn par_qmatmul(
    out: &mut [f32],
    w: &crate::quant::QuantMatrix,
    xs: &[f32],
    batch: usize,
    threads: usize,
) {
    let (rows, cols) = (w.rows(), w.cols());
    assert_eq!(out.len(), rows * batch);
    assert_eq!(xs.len(), batch * cols);
    let threads = threads.max(1);
    if threads == 1 || rows * cols * batch < PAR_MIN_MACS_PER_THREAD * 2 {
        crate::qgemm::qmatmul(out, w, xs, batch);
        return;
    }
    let ranges = split_ranges(rows, threads);
    let xt = crate::ops::transpose_batch_major(xs, cols, batch);
    let xt: &[f32] = &xt;
    std::thread::scope(|s| {
        let mut rest = out;
        for range in &ranges {
            let (chunk, tail) = rest.split_at_mut(range.len() * batch);
            rest = tail;
            let range = range.clone();
            s.spawn(move || {
                crate::qgemm::qmatmul_rows_xt(chunk, w, xt, range, batch);
            });
        }
    });
}

/// A fixed-size worker pool for `'static` jobs.
///
/// Jobs are closures sent over an unbounded channel; [`ThreadPool::join`]
/// blocks until every submitted job has finished (not merely been picked
/// up). Dropping the pool joins the workers after draining the queue.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    pending: Arc<PendingCount>,
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PendingCount {
    count: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

impl PendingCount {
    fn incr(&self) {
        self.count.fetch_add(1, Ordering::SeqCst);
    }
    fn decr(&self) {
        if self.count.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
            self.cv.notify_all();
        }
    }
    fn wait_zero(&self) {
        let mut guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        while self.count.load(Ordering::SeqCst) != 0 {
            guard = self.cv.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl ThreadPool {
    /// Spawns `threads` workers (at least one).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver) = unbounded::<Job>();
        let pending = Arc::new(PendingCount {
            count: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        });
        let mut handles = Vec::with_capacity(threads);
        for i in 0..threads {
            let rx = receiver.clone();
            let pending = Arc::clone(&pending);
            let handle = std::thread::Builder::new()
                .name(format!("speedllm-worker-{i}"))
                .spawn(move || {
                    // Channel disconnect (all senders dropped) ends the loop.
                    while let Ok(job) = rx.recv() {
                        job();
                        pending.decr();
                    }
                })
                .expect("failed to spawn worker thread");
            handles.push(handle);
        }
        Self {
            sender: Some(sender),
            handles,
            pending,
        }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Submits a job for execution.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.pending.incr();
        self.sender
            .as_ref()
            .expect("pool already shut down")
            .send(Box::new(job))
            .expect("workers disconnected");
    }

    /// Blocks until all submitted jobs have completed.
    pub fn join(&self) {
        self.pending.wait_zero();
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.join();
        // Dropping the sender disconnects the channel so workers exit.
        drop(self.sender.take());
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn split_ranges_covers_exactly() {
        for n in [0usize, 1, 7, 100, 101] {
            for parts in [1usize, 2, 3, 8, 200] {
                let ranges = split_ranges(n, parts);
                let mut covered = 0;
                let mut prev_end = 0;
                for r in &ranges {
                    assert_eq!(r.start, prev_end, "ranges must be contiguous");
                    assert!(!r.is_empty(), "ranges must be non-empty");
                    covered += r.len();
                    prev_end = r.end;
                }
                assert_eq!(covered, n, "n={n} parts={parts}");
                if n > 0 {
                    assert!(ranges.len() <= parts.min(n));
                }
            }
        }
    }

    #[test]
    fn split_ranges_balance_within_one() {
        let ranges = split_ranges(10, 3);
        let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        assert_eq!(lens.iter().sum::<usize>(), 10);
        assert!(lens.iter().max().unwrap() - lens.iter().min().unwrap() <= 1);
    }

    #[test]
    fn par_matvec_matches_serial_small_and_large() {
        for (rows, cols) in [(3usize, 5usize), (257, 1031)] {
            let w: Vec<f32> = (0..rows * cols).map(|i| ((i % 13) as f32) - 6.0).collect();
            let x: Vec<f32> = (0..cols).map(|i| (i as f32 * 0.1).sin()).collect();
            let mut serial = vec![0.0f32; rows];
            crate::ops::matvec(&mut serial, &w, &x, rows, cols);
            for threads in [1usize, 2, 4, 7] {
                let mut par = vec![0.0f32; rows];
                par_matvec(&mut par, &w, &x, rows, cols, threads);
                for (a, b) in serial.iter().zip(&par) {
                    assert!((a - b).abs() < 1e-4, "{a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn par_matmul_is_bit_identical_to_serial() {
        // Large enough to clear the serial-fallback threshold, so the
        // scoped-thread path really runs.
        let (rows, cols) = (193usize, 517usize);
        let w: Vec<f32> = (0..rows * cols).map(|i| ((i % 23) as f32) - 11.0).collect();
        for batch in [1usize, 3, 4] {
            let xs: Vec<f32> = (0..batch * cols).map(|i| (i as f32 * 0.05).sin()).collect();
            let mut serial = vec![0.0f32; rows * batch];
            crate::ops::matmul(&mut serial, &w, &xs, rows, cols, batch);
            for threads in [1usize, 2, 5] {
                let mut par = vec![0.0f32; rows * batch];
                par_matmul(&mut par, &w, &xs, rows, cols, batch, threads);
                // Exact equality: same dot over the same operands per element.
                assert_eq!(serial, par, "threads={threads} batch={batch}");
            }
        }
    }

    #[test]
    fn threads_env_override_pins_worker_count() {
        // Process-global env var: restore whatever was set so concurrently
        // running tests only ever observe a valid positive override.
        let prev = std::env::var(THREADS_ENV).ok();
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(recommended_threads(), 3);
        std::env::set_var(THREADS_ENV, "999");
        assert_eq!(recommended_threads(), 64, "override is capped");
        match prev {
            Some(v) => std::env::set_var(THREADS_ENV, v),
            None => std::env::remove_var(THREADS_ENV),
        }
        // Garbage and non-positive values fall back to the default.
        for bad in ["0", "-2", "lots", ""] {
            let prev = std::env::var(THREADS_ENV).ok();
            std::env::set_var(THREADS_ENV, bad);
            assert!(recommended_threads() >= 1);
            match prev {
                Some(v) => std::env::set_var(THREADS_ENV, v),
                None => std::env::remove_var(THREADS_ENV),
            }
        }
    }

    #[test]
    fn pool_runs_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.join();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn pool_join_is_reentrant() {
        let pool = ThreadPool::new(2);
        pool.join(); // nothing submitted
        let counter = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&counter);
        pool.execute(move || {
            c.fetch_add(7, Ordering::SeqCst);
        });
        pool.join();
        pool.join();
        assert_eq!(counter.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn pool_drop_waits_for_jobs() {
        let counter = Arc::new(AtomicU64::new(0));
        {
            let pool = ThreadPool::new(3);
            for _ in 0..20 {
                let c = Arc::clone(&counter);
                pool.execute(move || {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
        } // drop here must block until all 20 ran
        assert_eq!(counter.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn pool_jobs_can_run_concurrently() {
        // With 4 workers, 4 sleeping jobs should overlap: total wall time
        // well under 4x the per-job sleep.
        let pool = ThreadPool::new(4);
        let start = std::time::Instant::now();
        for _ in 0..4 {
            pool.execute(|| std::thread::sleep(std::time::Duration::from_millis(50)));
        }
        pool.join();
        assert!(
            start.elapsed() < std::time::Duration::from_millis(190),
            "jobs did not overlap: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn recommended_threads_is_positive() {
        assert!(recommended_threads() >= 1);
    }
}
