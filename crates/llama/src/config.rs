//! Model architecture configuration.
//!
//! [`ModelConfig`] mirrors the `Config` header of a llama2.c checkpoint and
//! fully determines every tensor shape in the network. The named presets
//! correspond to the TinyStories checkpoint family the paper evaluates
//! (`stories15M` is the headline workload) plus the 1.1B TinyLlama
//! configuration for scale studies.

use std::fmt;

/// Architecture hyper-parameters of a Llama-2 style decoder-only
/// transformer, as serialized in the llama2.c checkpoint header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelConfig {
    /// Embedding / residual-stream width.
    pub dim: usize,
    /// Hidden width of the SwiGLU feed-forward block.
    pub hidden_dim: usize,
    /// Number of transformer layers.
    pub n_layers: usize,
    /// Number of attention (query) heads. Must divide `dim`.
    pub n_heads: usize,
    /// Number of key/value heads (grouped-query attention when smaller than
    /// `n_heads`). Must divide `n_heads`.
    pub n_kv_heads: usize,
    /// Vocabulary size of the paired tokenizer.
    pub vocab_size: usize,
    /// Maximum sequence length the RoPE tables / KV cache are sized for.
    pub seq_len: usize,
    /// Whether the token-embedding matrix is shared with the output
    /// classifier ("tied" weights, as in the TinyStories checkpoints).
    pub shared_classifier: bool,
}

/// Error returned by [`ModelConfig::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A dimension that must be non-zero was zero.
    ZeroField(&'static str),
    /// `dim` is not divisible by `n_heads`.
    #[allow(missing_docs)]
    DimNotDivisibleByHeads { dim: usize, n_heads: usize },
    /// `n_heads` is not divisible by `n_kv_heads`.
    #[allow(missing_docs)]
    HeadsNotDivisibleByKvHeads { n_heads: usize, n_kv_heads: usize },
    /// The per-head dimension must be even for rotary embeddings.
    #[allow(missing_docs)]
    OddHeadDim { head_dim: usize },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroField(name) => write!(f, "config field `{name}` must be non-zero"),
            ConfigError::DimNotDivisibleByHeads { dim, n_heads } => {
                write!(f, "dim {dim} is not divisible by n_heads {n_heads}")
            }
            ConfigError::HeadsNotDivisibleByKvHeads {
                n_heads,
                n_kv_heads,
            } => {
                write!(
                    f,
                    "n_heads {n_heads} is not divisible by n_kv_heads {n_kv_heads}"
                )
            }
            ConfigError::OddHeadDim { head_dim } => {
                write!(f, "head_dim {head_dim} must be even for RoPE")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl ModelConfig {
    /// The 260K-parameter TinyStories model (`stories260K`). Small enough
    /// for exhaustive testing in debug builds.
    #[must_use]
    pub fn stories260k() -> Self {
        Self {
            dim: 64,
            hidden_dim: 172,
            n_layers: 5,
            n_heads: 8,
            n_kv_heads: 4,
            vocab_size: 512,
            seq_len: 512,
            shared_classifier: true,
        }
    }

    /// The 15M-parameter TinyStories model (`stories15M`) — the checkpoint
    /// the paper deploys on the U280.
    #[must_use]
    pub fn stories15m() -> Self {
        Self {
            dim: 288,
            hidden_dim: 768,
            n_layers: 6,
            n_heads: 6,
            n_kv_heads: 6,
            vocab_size: 32000,
            seq_len: 256,
            shared_classifier: true,
        }
    }

    /// The 42M-parameter TinyStories model (`stories42M`).
    #[must_use]
    pub fn stories42m() -> Self {
        Self {
            dim: 512,
            hidden_dim: 1376,
            n_layers: 8,
            n_heads: 8,
            n_kv_heads: 8,
            vocab_size: 32000,
            seq_len: 1024,
            shared_classifier: true,
        }
    }

    /// The 110M-parameter TinyStories model (`stories110M`).
    #[must_use]
    pub fn stories110m() -> Self {
        Self {
            dim: 768,
            hidden_dim: 2048,
            n_layers: 12,
            n_heads: 12,
            n_kv_heads: 12,
            vocab_size: 32000,
            seq_len: 1024,
            shared_classifier: true,
        }
    }

    /// The TinyLlama-1.1B architecture (GQA, 22 layers). Used only for
    /// analytic scale studies — far too large for functional simulation in
    /// tests.
    #[must_use]
    pub fn tinyllama1_1b() -> Self {
        Self {
            dim: 2048,
            hidden_dim: 5632,
            n_layers: 22,
            n_heads: 32,
            n_kv_heads: 4,
            vocab_size: 32000,
            seq_len: 2048,
            shared_classifier: false,
        }
    }

    /// A stories260K-class draft architecture for speculative decoding
    /// against `target`: the stories260K trunk (dim 64, 5 layers) with the
    /// target's `vocab_size` and `seq_len`, so drafted token ids are valid
    /// target inputs and the draft can shadow the full context. Keeping
    /// the trunk tiny is what makes the draft pass nearly free — its
    /// per-token GEMM cost is a small fraction of the target's even after
    /// adopting a 32K vocab, because the tied classifier reuses the
    /// embedding.
    #[must_use]
    pub fn draft_for(target: &Self) -> Self {
        Self {
            vocab_size: target.vocab_size,
            seq_len: target.seq_len,
            ..Self::stories260k()
        }
    }

    /// A deliberately tiny config for unit tests: 2 layers, dim 16.
    #[must_use]
    pub fn test_tiny() -> Self {
        Self {
            dim: 16,
            hidden_dim: 44,
            n_layers: 2,
            n_heads: 4,
            n_kv_heads: 2,
            vocab_size: 64,
            seq_len: 32,
            shared_classifier: true,
        }
    }

    /// Checks the structural invariants every other module relies on.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (name, v) in [
            ("dim", self.dim),
            ("hidden_dim", self.hidden_dim),
            ("n_layers", self.n_layers),
            ("n_heads", self.n_heads),
            ("n_kv_heads", self.n_kv_heads),
            ("vocab_size", self.vocab_size),
            ("seq_len", self.seq_len),
        ] {
            if v == 0 {
                return Err(ConfigError::ZeroField(name));
            }
        }
        if !self.dim.is_multiple_of(self.n_heads) {
            return Err(ConfigError::DimNotDivisibleByHeads {
                dim: self.dim,
                n_heads: self.n_heads,
            });
        }
        if !self.n_heads.is_multiple_of(self.n_kv_heads) {
            return Err(ConfigError::HeadsNotDivisibleByKvHeads {
                n_heads: self.n_heads,
                n_kv_heads: self.n_kv_heads,
            });
        }
        if !self.head_dim().is_multiple_of(2) {
            return Err(ConfigError::OddHeadDim {
                head_dim: self.head_dim(),
            });
        }
        Ok(())
    }

    /// Width of one attention head.
    #[must_use]
    pub fn head_dim(&self) -> usize {
        self.dim / self.n_heads
    }

    /// Total width of the key/value projections (`n_kv_heads * head_dim`).
    #[must_use]
    pub fn kv_dim(&self) -> usize {
        self.n_kv_heads * self.head_dim()
    }

    /// Number of query heads sharing each KV head (1 for MHA).
    #[must_use]
    pub fn gqa_group(&self) -> usize {
        self.n_heads / self.n_kv_heads
    }

    /// Total parameter count implied by the shapes.
    #[must_use]
    pub fn param_count(&self) -> usize {
        let d = self.dim;
        let h = self.hidden_dim;
        let kv = self.kv_dim();
        let per_layer = 2 * d                 // rms_att + rms_ffn
            + d * d                           // wq
            + 2 * d * kv                      // wk, wv
            + d * d                           // wo
            + 3 * d * h; // w1, w2, w3
        let embed = self.vocab_size * d;
        let classifier = if self.shared_classifier {
            0
        } else {
            self.vocab_size * d
        };
        embed + self.n_layers * per_layer + d /* final rmsnorm */ + classifier
    }

    /// Bytes of weight data at the given element width (4 for f32, 1 for
    /// Q8 payload before scales).
    #[must_use]
    pub fn weight_bytes(&self, bytes_per_el: usize) -> usize {
        self.param_count() * bytes_per_el
    }

    /// Bytes of f32 weight data streamed through the dense GEMM kernels by
    /// one forward step: the seven per-layer projections plus the
    /// classifier. This is exactly the traffic a batched decode step
    /// amortizes — a batch of B sequences streams these bytes once instead
    /// of B times — so `gemm_weight_bytes / tokens` is the
    /// weight-bytes-per-token figure the telemetry counters report.
    #[must_use]
    pub fn gemm_weight_bytes(&self) -> usize {
        let d = self.dim;
        let h = self.hidden_dim;
        let kv = self.kv_dim();
        let per_layer = d * d       // wq
            + 2 * d * kv            // wk, wv
            + d * d                 // wo
            + 3 * d * h; // w1, w2, w3
        (self.n_layers * per_layer + self.vocab_size * d) * 4
    }

    /// Bytes of KV cache required for a full `seq_len` context in f32.
    #[must_use]
    pub fn kv_cache_bytes(&self) -> usize {
        2 * self.n_layers * self.seq_len * self.kv_dim() * 4
    }

    /// FLOPs (multiply-accumulate counted as 2) for one decode step at
    /// context position `pos` — the dominant matmul + attention cost.
    #[must_use]
    pub fn decode_flops(&self, pos: usize) -> usize {
        let d = self.dim;
        let h = self.hidden_dim;
        let kv = self.kv_dim();
        // Each matmul element is one MAC = 2 flops.
        let matmul_flops = 2
            * self.n_layers
            * (d * d /*wq*/ + d * kv /*wk*/ + d * kv /*wv*/ + d * d /*wo*/
                + d * h /*w1*/ + d * h /*w3*/ + h * d/*w2*/);
        // Scores (q·k over pos+1 keys) and mix (probs·v), per head.
        let attn_flops = 2 * self.n_layers * (pos + 1) * (self.n_heads * self.head_dim()) * 2;
        let logits_flops = 2 * d * self.vocab_size;
        matmul_flops + attn_flops + logits_flops
    }
}

impl fmt::Display for ModelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dim={} hidden={} layers={} heads={} kv_heads={} vocab={} seq={} (~{:.1}M params)",
            self.dim,
            self.hidden_dim,
            self.n_layers,
            self.n_heads,
            self.n_kv_heads,
            self.vocab_size,
            self.seq_len,
            self.param_count() as f64 / 1e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        for cfg in [
            ModelConfig::stories260k(),
            ModelConfig::stories15m(),
            ModelConfig::stories42m(),
            ModelConfig::stories110m(),
            ModelConfig::tinyllama1_1b(),
            ModelConfig::test_tiny(),
        ] {
            cfg.validate().expect("preset must validate");
        }
    }

    #[test]
    fn stories15m_param_count_is_about_15m() {
        let n = ModelConfig::stories15m().param_count();
        assert!((14_000_000..26_000_000).contains(&n), "got {n}");
    }

    #[test]
    fn stories260k_is_small() {
        // stories260K has a tied classifier and tiny dims; the embedding
        // dominates. Parameter count should be well under 2M.
        let n = ModelConfig::stories260k().param_count();
        assert!(n < 2_000_000, "got {n}");
    }

    #[test]
    fn head_dim_and_kv_dim() {
        let cfg = ModelConfig::test_tiny();
        assert_eq!(cfg.head_dim(), 4);
        assert_eq!(cfg.kv_dim(), 8);
        assert_eq!(cfg.gqa_group(), 2);
    }

    #[test]
    fn zero_field_is_rejected() {
        let mut cfg = ModelConfig::test_tiny();
        cfg.n_layers = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroField("n_layers")));
    }

    #[test]
    fn indivisible_heads_rejected() {
        let mut cfg = ModelConfig::test_tiny();
        cfg.n_heads = 3;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::DimNotDivisibleByHeads { .. })
                | Err(ConfigError::HeadsNotDivisibleByKvHeads { .. })
        ));
    }

    #[test]
    fn gqa_mismatch_rejected() {
        let mut cfg = ModelConfig::test_tiny();
        cfg.n_kv_heads = 3;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::HeadsNotDivisibleByKvHeads { .. })
        ));
    }

    #[test]
    fn decode_flops_grow_with_position() {
        let cfg = ModelConfig::stories15m();
        assert!(cfg.decode_flops(100) > cfg.decode_flops(0));
    }

    #[test]
    fn kv_cache_bytes_match_shape() {
        let cfg = ModelConfig::test_tiny();
        assert_eq!(cfg.kv_cache_bytes(), 2 * 2 * 32 * 8 * 4);
    }

    #[test]
    fn untied_classifier_adds_params() {
        let tied = ModelConfig::stories15m();
        let untied = ModelConfig {
            shared_classifier: false,
            ..tied
        };
        assert_eq!(
            untied.param_count() - tied.param_count(),
            tied.vocab_size * tied.dim
        );
    }
}
