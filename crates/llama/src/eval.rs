//! Model-quality evaluation: token-level cross-entropy and perplexity.
//!
//! The standard way to check that a compressed or accelerated model still
//! "works" is to score a held-out token stream: feed tokens one at a time
//! and accumulate the negative log-likelihood the model assigns to each
//! *next* token. This is how int8/sparse variants of the accelerator are
//! judged against the fp32 reference without needing trained weights —
//! relative perplexity degradation is meaningful even on synthetic models.

use crate::forward::Transformer;
use crate::ops::softmax;

/// Accumulated evaluation result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalResult {
    /// Tokens scored (predictions made).
    pub tokens: usize,
    /// Summed negative log-likelihood (nats).
    pub nll: f64,
}

impl EvalResult {
    /// Mean cross-entropy in nats per token.
    #[must_use]
    pub fn cross_entropy(&self) -> f64 {
        if self.tokens == 0 {
            return 0.0;
        }
        self.nll / self.tokens as f64
    }

    /// Perplexity (`exp` of the mean cross-entropy).
    #[must_use]
    pub fn perplexity(&self) -> f64 {
        self.cross_entropy().exp()
    }

    /// Bits per token.
    #[must_use]
    pub fn bits_per_token(&self) -> f64 {
        self.cross_entropy() / std::f64::consts::LN_2
    }
}

/// Scores `tokens` with the reference transformer: for each position `i`,
/// the model predicts token `i+1`. The transformer is reset first; the
/// stream must fit the context window.
///
/// # Panics
/// Panics if fewer than two tokens are supplied or the stream exceeds the
/// context window.
pub fn evaluate_reference(model: &mut Transformer, tokens: &[u32]) -> EvalResult {
    assert!(tokens.len() >= 2, "need at least two tokens to score one");
    assert!(
        tokens.len() <= model.config().seq_len,
        "stream of {} exceeds context window {}",
        tokens.len(),
        model.config().seq_len
    );
    model.reset();
    let mut result = EvalResult {
        tokens: 0,
        nll: 0.0,
    };
    let mut probs: Vec<f32> = Vec::new();
    for (pos, window) in tokens.windows(2).enumerate() {
        let (current, next) = (window[0], window[1]);
        let logits = model.forward(current, pos);
        probs.clear();
        probs.extend_from_slice(logits);
        softmax(&mut probs);
        let p = probs[next as usize].max(f32::MIN_POSITIVE);
        result.nll -= (p as f64).ln();
        result.tokens += 1;
    }
    result
}

/// Scores a token stream against per-step logits supplied by any engine
/// (used to evaluate the simulated accelerator without duplicating the
/// loop). The callback receives `(token, pos)` and returns the logits.
pub fn evaluate_with(
    vocab_size: usize,
    tokens: &[u32],
    mut step: impl FnMut(u32, usize) -> Vec<f32>,
) -> EvalResult {
    assert!(tokens.len() >= 2, "need at least two tokens to score one");
    let mut result = EvalResult {
        tokens: 0,
        nll: 0.0,
    };
    for (pos, window) in tokens.windows(2).enumerate() {
        let (current, next) = (window[0], window[1]);
        let mut logits = step(current, pos);
        assert_eq!(logits.len(), vocab_size, "bad logit width");
        softmax(&mut logits);
        let p = logits[next as usize].max(f32::MIN_POSITIVE);
        result.nll -= (p as f64).ln();
        result.tokens += 1;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::weights::TransformerWeights;

    fn model() -> Transformer {
        Transformer::new(TransformerWeights::synthetic(ModelConfig::test_tiny(), 42))
    }

    #[test]
    fn perplexity_of_random_model_is_near_vocab_size() {
        // An untrained model is close to uniform over the vocabulary, so
        // perplexity ≈ vocab_size.
        let mut m = model();
        let tokens: Vec<u32> = (0..24).map(|i| (i * 7 + 3) % 64).collect();
        let r = evaluate_reference(&mut m, &tokens);
        assert_eq!(r.tokens, 23);
        let v = 64.0;
        assert!(
            (v * 0.5..v * 2.0).contains(&r.perplexity()),
            "perplexity {} far from vocab {v}",
            r.perplexity()
        );
    }

    #[test]
    fn metrics_are_consistent() {
        let r = EvalResult {
            tokens: 10,
            nll: 23.0,
        };
        assert!((r.cross_entropy() - 2.3).abs() < 1e-12);
        assert!((r.perplexity() - (2.3f64).exp()).abs() < 1e-9);
        assert!((r.bits_per_token() - 2.3 / std::f64::consts::LN_2).abs() < 1e-12);
        let empty = EvalResult {
            tokens: 0,
            nll: 0.0,
        };
        assert_eq!(empty.perplexity(), 1.0);
    }

    #[test]
    fn evaluate_with_matches_reference() {
        let tokens: Vec<u32> = (0..12).map(|i| (i * 11 + 5) % 64).collect();
        let mut m1 = model();
        let want = evaluate_reference(&mut m1, &tokens);
        let mut m2 = model();
        let got = evaluate_with(64, &tokens, |t, p| m2.forward(t, p).to_vec());
        assert_eq!(want.tokens, got.tokens);
        assert!((want.nll - got.nll).abs() < 1e-9);
    }

    #[test]
    fn deterministic_across_runs() {
        let tokens: Vec<u32> = (0..16).map(|i| (i * 3 + 1) % 64).collect();
        let a = evaluate_reference(&mut model(), &tokens);
        let b = evaluate_reference(&mut model(), &tokens);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least two tokens")]
    fn single_token_rejected() {
        evaluate_reference(&mut model(), &[1]);
    }
}
