//! Block-sparse weight matrices.
//!
//! The paper motivates FPGAs over GPUs partly by their ability to exploit
//! sparsity: "model compression techniques such as sparsification …
//! often suffer from a lack of support by conventional hardware like GPUs,
//! particularly when dealing with unstructured sparsity". This module
//! provides the substrate for that claim: magnitude-based block pruning
//! and a compressed block-row format whose matvec skips zero blocks
//! entirely — the access pattern a reconfigurable MPE can exploit (and the
//! SpeedLLM MPE's sparse tile-cost model consumes).
//!
//! Blocks are `1 × block` row segments: fine enough to keep accuracy,
//! coarse enough that index overhead stays negligible and DMA bursts stay
//! contiguous.

/// A row-major matrix stored as compressed sparse blocks: per row, the
/// indices of surviving `block`-wide column segments and their packed
/// values.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSparseMatrix {
    rows: usize,
    cols: usize,
    block: usize,
    /// Per row: sorted indices of non-zero blocks.
    row_blocks: Vec<Vec<u32>>,
    /// Per row: packed values, `row_blocks[r].len() * block` each (the
    /// final block of a row is zero-padded when `cols % block != 0`).
    row_values: Vec<Vec<f32>>,
}

impl BlockSparseMatrix {
    /// Converts a dense matrix, keeping every block whose L1 magnitude is
    /// non-zero. Use [`BlockSparseMatrix::prune`] for lossy sparsification.
    #[must_use]
    pub fn from_dense(w: &[f32], rows: usize, cols: usize, block: usize) -> Self {
        Self::prune(w, rows, cols, block, 0.0)
    }

    /// Magnitude-based block pruning: drops the fraction `sparsity` of
    /// blocks with the smallest L1 norm (globally, so dense layers stay
    /// dense where it matters).
    ///
    /// # Panics
    /// Panics unless `0 ≤ sparsity < 1`, `block ≥ 1`, and the shape
    /// matches the buffer.
    #[must_use]
    pub fn prune(w: &[f32], rows: usize, cols: usize, block: usize, sparsity: f32) -> Self {
        assert_eq!(w.len(), rows * cols, "shape mismatch");
        assert!(block >= 1, "block must be >= 1");
        assert!((0.0..1.0).contains(&sparsity), "sparsity must be in [0,1)");
        let blocks_per_row = cols.div_ceil(block);
        // Rank all blocks by L1 magnitude.
        let mut magnitudes: Vec<(f32, u32, u32)> = Vec::with_capacity(rows * blocks_per_row);
        for r in 0..rows {
            for b in 0..blocks_per_row {
                let start = r * cols + b * block;
                let end = (b * block + block).min(cols) + r * cols;
                let mag: f32 = w[start..end].iter().map(|x| x.abs()).sum();
                magnitudes.push((mag, r as u32, b as u32));
            }
        }
        let drop = (magnitudes.len() as f32 * sparsity) as usize;
        // Partial sort: the `drop` smallest magnitudes are pruned.
        magnitudes.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut keep = vec![true; rows * blocks_per_row];
        for &(_, r, b) in magnitudes.iter().take(drop) {
            keep[r as usize * blocks_per_row + b as usize] = false;
        }

        let mut row_blocks = Vec::with_capacity(rows);
        let mut row_values = Vec::with_capacity(rows);
        for r in 0..rows {
            let mut blocks = Vec::new();
            let mut values = Vec::new();
            for b in 0..blocks_per_row {
                if !keep[r * blocks_per_row + b] {
                    continue;
                }
                blocks.push(b as u32);
                let start = r * cols + b * block;
                let len = block.min(cols - b * block);
                values.extend_from_slice(&w[start..start + len]);
                // Zero-pad the ragged final block.
                values.extend(std::iter::repeat_n(0.0, block - len));
            }
            row_blocks.push(blocks);
            row_values.push(values);
        }
        Self {
            rows,
            cols,
            block,
            row_blocks,
            row_values,
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Block width.
    #[must_use]
    pub fn block(&self) -> usize {
        self.block
    }

    /// Number of stored (non-pruned) blocks.
    #[must_use]
    pub fn nnz_blocks(&self) -> usize {
        self.row_blocks.iter().map(Vec::len).sum()
    }

    /// Fraction of blocks that survived (1.0 = dense).
    #[must_use]
    pub fn density(&self) -> f64 {
        let total = self.rows * self.cols.div_ceil(self.block);
        if total == 0 {
            return 0.0;
        }
        self.nnz_blocks() as f64 / total as f64
    }

    /// Payload bytes the accelerator streams: packed values plus one `u32`
    /// index per block.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        (self.nnz_blocks() * (self.block * 4 + 4)) as u64
    }

    /// Sparse matvec: `out[r] = Σ_b w[r, b·block..] · x[b·block..]` over
    /// surviving blocks only.
    pub fn matvec(&self, out: &mut [f32], x: &[f32]) {
        assert_eq!(out.len(), self.rows);
        assert_eq!(x.len(), self.cols);
        for (r, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for (i, &b) in self.row_blocks[r].iter().enumerate() {
                let vals = &self.row_values[r][i * self.block..(i + 1) * self.block];
                let c0 = b as usize * self.block;
                let len = self.block.min(self.cols - c0);
                acc += crate::ops::dot(&vals[..len], &x[c0..c0 + len]);
            }
            *o = acc;
        }
    }

    /// Reconstructs the (pruned) dense matrix.
    #[must_use]
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.rows * self.cols];
        for r in 0..self.rows {
            for (i, &b) in self.row_blocks[r].iter().enumerate() {
                let c0 = b as usize * self.block;
                let len = self.block.min(self.cols - c0);
                let vals = &self.row_values[r][i * self.block..i * self.block + len];
                out[r * self.cols + c0..r * self.cols + c0 + len].copy_from_slice(vals);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    fn random(rows: usize, cols: usize, seed: u64) -> Vec<f32> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut w = vec![0.0f32; rows * cols];
        rng.fill_normal(&mut w, 1.0);
        w
    }

    #[test]
    fn dense_roundtrip_without_pruning() {
        let w = random(7, 20, 1);
        let m = BlockSparseMatrix::from_dense(&w, 7, 20, 8);
        assert_eq!(m.to_dense(), w);
        assert!((m.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sparse_matvec_matches_dense_on_pruned_matrix() {
        let (rows, cols) = (16, 48);
        let w = random(rows, cols, 2);
        let m = BlockSparseMatrix::prune(&w, rows, cols, 8, 0.5);
        let pruned = m.to_dense();
        let x = random(1, cols, 3);
        let mut want = vec![0.0f32; rows];
        crate::ops::matvec(&mut want, &pruned, &x, rows, cols);
        let mut got = vec![0.0f32; rows];
        m.matvec(&mut got, &x);
        for (a, b) in want.iter().zip(&got) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn pruning_hits_the_requested_sparsity() {
        let (rows, cols) = (32, 64);
        let w = random(rows, cols, 5);
        for sparsity in [0.0f32, 0.25, 0.5, 0.9] {
            let m = BlockSparseMatrix::prune(&w, rows, cols, 8, sparsity);
            let expect = 1.0 - sparsity as f64;
            assert!(
                (m.density() - expect).abs() < 0.02,
                "sparsity {sparsity}: density {}",
                m.density()
            );
        }
    }

    #[test]
    fn pruning_removes_smallest_blocks_first() {
        // Construct a matrix where one block is huge and the rest tiny.
        let (rows, cols, block) = (1usize, 32usize, 8usize);
        let mut w = vec![0.01f32; cols];
        for v in &mut w[8..16] {
            *v = 10.0;
        }
        let m = BlockSparseMatrix::prune(&w, rows, cols, block, 0.7);
        // 4 blocks, drop 2 -> the big block must survive.
        assert!(m.row_blocks[0].contains(&1));
    }

    #[test]
    fn ragged_final_block_is_handled() {
        let (rows, cols) = (3, 21); // 21 = 2*8 + 5
        let w = random(rows, cols, 7);
        let m = BlockSparseMatrix::from_dense(&w, rows, cols, 8);
        assert_eq!(m.to_dense(), w);
        let x = random(1, cols, 8);
        let mut want = vec![0.0f32; rows];
        crate::ops::matvec(&mut want, &w, &x, rows, cols);
        let mut got = vec![0.0f32; rows];
        m.matvec(&mut got, &x);
        for (a, b) in want.iter().zip(&got) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn bytes_shrink_with_sparsity() {
        let (rows, cols) = (64, 64);
        let w = random(rows, cols, 9);
        let dense = BlockSparseMatrix::from_dense(&w, rows, cols, 8);
        let sparse = BlockSparseMatrix::prune(&w, rows, cols, 8, 0.75);
        assert!(sparse.bytes() * 3 < dense.bytes());
        assert!(sparse.nnz_blocks() * 3 < dense.nnz_blocks());
    }

    #[test]
    #[should_panic(expected = "sparsity must be in [0,1)")]
    fn full_sparsity_rejected() {
        let w = random(2, 8, 1);
        let _ = BlockSparseMatrix::prune(&w, 2, 8, 4, 1.0);
    }

    #[test]
    fn pruned_model_quality_degrades_gracefully() {
        // Logit error grows with sparsity but stays bounded at moderate
        // levels — the "preserving algorithmic accuracy" claim.
        let (rows, cols) = (24, 96);
        let w = random(rows, cols, 11);
        let x = random(1, cols, 12);
        let mut dense_out = vec![0.0f32; rows];
        crate::ops::matvec(&mut dense_out, &w, &x, rows, cols);
        let mut prev_err = 0.0f32;
        for sparsity in [0.1f32, 0.3, 0.6] {
            let m = BlockSparseMatrix::prune(&w, rows, cols, 8, sparsity);
            let mut got = vec![0.0f32; rows];
            m.matvec(&mut got, &x);
            let err: f32 = dense_out
                .iter()
                .zip(&got)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f32::max);
            assert!(
                err >= prev_err - 1e-4,
                "error should not shrink with pruning"
            );
            prev_err = err;
        }
    }
}
