//! Deterministic pseudo-random number generation.
//!
//! Library code never depends on ambient randomness: every stochastic
//! component (synthetic weights, synthetic vocabularies, nucleus sampling)
//! takes an explicit seeded generator so that runs — and therefore tests and
//! benchmark workloads — are bit-reproducible across machines.
//!
//! Two generators are provided:
//!
//! * [`SplitMix64`] — a tiny, fast stream used for seeding and for cheap
//!   one-off draws.
//! * [`Xoshiro256`] — xoshiro256** 1.0, the workhorse generator used for
//!   bulk draws (weight tensors, sampling). Seeded from a `SplitMix64`
//!   stream per the authors' recommendation.

/// SplitMix64 generator (Steele, Lea & Flood; public domain reference
/// implementation). Primarily used to expand a single `u64` seed into the
/// larger state of [`Xoshiro256`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Any seed, including zero, is
    /// valid.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64 pseudo-random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** 1.0 (Blackman & Vigna; public domain reference
/// implementation). Full-period 2^256 − 1 generator with excellent
/// statistical quality for non-cryptographic use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator whose 256-bit state is expanded from `seed` with
    /// [`SplitMix64`], as recommended by the xoshiro authors.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Returns the next 64 pseudo-random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32 pseudo-random bits (upper half of a 64-bit draw).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; dividing by 2^53 yields a uniform double.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, 1)` with 24 bits of precision.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform draw in `[lo, hi)`. `hi` must be greater than `lo`.
    #[inline]
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        debug_assert!(hi > lo, "empty range [{lo}, {hi})");
        lo + (hi - lo) * self.next_f32()
    }

    /// Unbiased uniform draw in `[0, n)` using Lemire's multiply-shift
    /// rejection method. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is an empty range");
        // Lemire 2019: multiply a 64-bit draw by n, reject the biased slice.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Standard normal draw (Box–Muller transform).
    pub fn next_normal_f32(&mut self) -> f32 {
        // Draw u1 in (0, 1] to keep ln finite.
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        (r * theta.cos()) as f32
    }

    /// Fills `out` with i.i.d. normal draws scaled by `std`.
    pub fn fill_normal(&mut self, out: &mut [f32], std: f32) {
        for v in out {
            *v = self.next_normal_f32() * std;
        }
    }

    /// Fills `out` with uniform draws in `[lo, hi)`.
    pub fn fill_uniform(&mut self, out: &mut [f32], lo: f32, hi: f32) {
        for v in out {
            *v = self.range_f32(lo, hi);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vector() {
        // Reference outputs for seed 1234567 from the canonical C code.
        let mut sm = SplitMix64::new(1234567);
        let got: Vec<u64> = (0..3).map(|_| sm.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                6457827717110365317,
                3203168211198807973,
                9817491932198370423
            ]
        );
    }

    #[test]
    fn xoshiro_is_deterministic_across_instances() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f32_draws_stay_in_unit_interval() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.next_f32();
            assert!((0.0..1.0).contains(&x), "{x} out of [0,1)");
        }
    }

    #[test]
    fn f64_draws_stay_in_unit_interval() {
        let mut rng = Xoshiro256::seed_from_u64(8);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "{x} out of [0,1)");
        }
    }

    #[test]
    fn below_is_in_range_and_hits_all_values() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all residues should appear in 1000 draws"
        );
    }

    #[test]
    fn below_one_is_always_zero() {
        let mut rng = Xoshiro256::seed_from_u64(4);
        for _ in 0..100 {
            assert_eq!(rng.below(1), 0);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn below_zero_panics() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let _ = rng.below(0);
    }

    #[test]
    fn normal_draws_have_plausible_moments() {
        let mut rng = Xoshiro256::seed_from_u64(9);
        let n = 50_000;
        let mut sum = 0.0f64;
        let mut sumsq = 0.0f64;
        for _ in 0..n {
            let x = rng.next_normal_f32() as f64;
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = Xoshiro256::seed_from_u64(10);
        for _ in 0..10_000 {
            let x = rng.range_f32(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&x));
        }
    }

    #[test]
    fn fill_normal_scales_std() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        let mut buf = vec![0.0f32; 20_000];
        rng.fill_normal(&mut buf, 0.5);
        let var: f64 = buf.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>() / buf.len() as f64;
        assert!(
            (var - 0.25).abs() < 0.02,
            "variance {var} should be near 0.25"
        );
    }
}
