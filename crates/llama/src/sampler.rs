//! Token sampling: greedy argmax, temperature scaling, and top-p (nucleus)
//! sampling — the same trio llama2.c's host program offers. All sampling is
//! driven by an explicit seeded RNG so generation is reproducible.

use crate::ops::softmax;
use crate::rng::Xoshiro256;

/// Sampling policy applied to the logits of each decode step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SamplerKind {
    /// Always pick the highest-logit token (deterministic).
    Argmax,
    /// Softmax with temperature, then draw from the full distribution.
    Temperature(f32),
    /// Softmax with temperature, then draw from the smallest set of tokens
    /// whose cumulative probability exceeds `p`.
    TopP {
        /// Softmax temperature (must be positive).
        temperature: f32,
        /// Nucleus mass in `(0, 1]`.
        p: f32,
    },
    /// Softmax with temperature restricted to the `k` highest-probability
    /// tokens.
    TopK {
        /// Softmax temperature (must be positive).
        temperature: f32,
        /// Number of candidates kept (≥ 1).
        k: usize,
    },
}

/// A stateful sampler: policy + RNG + scratch.
#[derive(Debug, Clone)]
pub struct Sampler {
    kind: SamplerKind,
    rng: Xoshiro256,
    /// Scratch probability buffer reused between steps.
    probs: Vec<f32>,
    /// Scratch index buffer for nucleus sorting.
    order: Vec<u32>,
    /// Multiplicative penalty applied to the logits of recently generated
    /// tokens (1.0 = disabled), à la CTRL/llama.cpp.
    repetition_penalty: f32,
    /// How many recent tokens the penalty window covers.
    penalty_window: usize,
    /// Recently generated tokens (bounded by `penalty_window`).
    recent: std::collections::VecDeque<u32>,
    /// Scratch for penalized logits.
    adjusted: Vec<f32>,
}

impl Sampler {
    /// Creates a sampler with the given policy and seed.
    #[must_use]
    pub fn new(kind: SamplerKind, seed: u64) -> Self {
        if let SamplerKind::Temperature(t)
        | SamplerKind::TopP { temperature: t, .. }
        | SamplerKind::TopK { temperature: t, .. } = kind
        {
            assert!(t > 0.0, "temperature must be positive, got {t}");
        }
        if let SamplerKind::TopP { p, .. } = kind {
            assert!(p > 0.0 && p <= 1.0, "top-p mass must be in (0,1], got {p}");
        }
        if let SamplerKind::TopK { k, .. } = kind {
            assert!(k >= 1, "top-k needs at least one candidate");
        }
        Self {
            kind,
            rng: Xoshiro256::seed_from_u64(seed),
            probs: Vec::new(),
            order: Vec::new(),
            repetition_penalty: 1.0,
            penalty_window: 0,
            recent: std::collections::VecDeque::new(),
            adjusted: Vec::new(),
        }
    }

    /// Enables a repetition penalty: logits of the last `window` sampled
    /// tokens are divided by `penalty` (when positive) or multiplied (when
    /// negative), discouraging loops. `penalty` must be ≥ 1.
    #[must_use]
    pub fn with_repetition_penalty(mut self, penalty: f32, window: usize) -> Self {
        assert!(penalty >= 1.0, "penalty must be >= 1, got {penalty}");
        self.repetition_penalty = penalty;
        self.penalty_window = window;
        self
    }

    /// Convenience for greedy decoding.
    #[must_use]
    pub fn argmax() -> Self {
        Self::new(SamplerKind::Argmax, 0)
    }

    /// Samples the next token id from `logits`.
    pub fn sample(&mut self, logits: &[f32]) -> u32 {
        assert!(!logits.is_empty(), "empty logits");
        // Move the scratch buffer out so `self` stays free for the draw
        // below (no per-call allocation).
        let mut adjusted = std::mem::take(&mut self.adjusted);
        let logits = if self.repetition_penalty > 1.0 && !self.recent.is_empty() {
            adjusted.clear();
            adjusted.extend_from_slice(logits);
            for &tok in &self.recent {
                if let Some(l) = adjusted.get_mut(tok as usize) {
                    // CTRL-style: shrink positive logits, push negative
                    // ones further down.
                    *l = if *l > 0.0 {
                        *l / self.repetition_penalty
                    } else {
                        *l * self.repetition_penalty
                    };
                }
            }
            &adjusted[..]
        } else {
            logits
        };
        let picked = match self.kind {
            SamplerKind::Argmax => argmax(logits),
            SamplerKind::Temperature(t) => {
                self.prepare_probs(logits, t);
                let coin = self.rng.next_f32();
                sample_multinomial(&self.probs, coin)
            }
            SamplerKind::TopP { temperature, p } => {
                self.prepare_probs(logits, temperature);
                let coin = self.rng.next_f32();
                sample_top_p(&self.probs, &mut self.order, p, coin)
            }
            SamplerKind::TopK { temperature, k } => {
                self.prepare_probs(logits, temperature);
                let coin = self.rng.next_f32();
                sample_top_k(&self.probs, &mut self.order, k, coin)
            }
        };
        self.adjusted = adjusted;
        if self.penalty_window > 0 {
            self.recent.push_back(picked);
            while self.recent.len() > self.penalty_window {
                self.recent.pop_front();
            }
        }
        picked
    }

    fn prepare_probs(&mut self, logits: &[f32], temperature: f32) {
        self.probs.clear();
        self.probs.extend(logits.iter().map(|&l| l / temperature));
        softmax(&mut self.probs);
    }
}

/// Index of the maximum element (first on ties).
#[must_use]
pub fn argmax(x: &[f32]) -> u32 {
    let mut best = 0usize;
    for (i, &v) in x.iter().enumerate().skip(1) {
        if v > x[best] {
            best = i;
        }
    }
    best as u32
}

/// Draws from a probability vector using an inverse-CDF walk with the given
/// uniform `coin` in `[0, 1)`.
fn sample_multinomial(probs: &[f32], coin: f32) -> u32 {
    let mut cdf = 0.0f32;
    for (i, &p) in probs.iter().enumerate() {
        cdf += p;
        if coin < cdf {
            return i as u32;
        }
    }
    // Rounding may leave cdf slightly below 1; fall back to the last token.
    probs.len() as u32 - 1
}

/// Nucleus sampling: restricts to the highest-probability tokens whose
/// cumulative mass reaches `top_p`, renormalizes, and draws with `coin`.
fn sample_top_p(probs: &[f32], order: &mut Vec<u32>, top_p: f32, coin: f32) -> u32 {
    order.clear();
    order.extend(0..probs.len() as u32);
    // Sort descending by probability; stable so equal-probability tokens
    // keep id order and results are platform-independent.
    order.sort_by(|&a, &b| {
        probs[b as usize]
            .partial_cmp(&probs[a as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut mass = 0.0f32;
    let mut cut = order.len();
    for (i, &id) in order.iter().enumerate() {
        mass += probs[id as usize];
        if mass >= top_p {
            cut = i + 1;
            break;
        }
    }
    let nucleus = &order[..cut];
    let target = coin * mass;
    let mut cdf = 0.0f32;
    for &id in nucleus {
        cdf += probs[id as usize];
        if target < cdf {
            return id;
        }
    }
    nucleus[nucleus.len() - 1]
}

/// Top-k sampling: keeps the `k` highest-probability tokens, renormalizes,
/// and draws with `coin`.
fn sample_top_k(probs: &[f32], order: &mut Vec<u32>, k: usize, coin: f32) -> u32 {
    order.clear();
    order.extend(0..probs.len() as u32);
    order.sort_by(|&a, &b| {
        probs[b as usize]
            .partial_cmp(&probs[a as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let cut = k.min(order.len());
    let kept = &order[..cut];
    let mass: f32 = kept.iter().map(|&i| probs[i as usize]).sum();
    let target = coin * mass;
    let mut cdf = 0.0f32;
    for &id in kept {
        cdf += probs[id as usize];
        if target < cdf {
            return id;
        }
    }
    kept[kept.len() - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_picks_max_and_first_tie() {
        assert_eq!(argmax(&[0.1, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[5.0, 5.0, 1.0]), 0);
        assert_eq!(argmax(&[-1.0]), 0);
    }

    #[test]
    fn argmax_sampler_is_deterministic() {
        let mut s = Sampler::argmax();
        let logits = [0.0f32, 10.0, 3.0];
        for _ in 0..5 {
            assert_eq!(s.sample(&logits), 1);
        }
    }

    #[test]
    fn temperature_sampler_is_seed_deterministic() {
        let logits: Vec<f32> = (0..50).map(|i| (i as f32 * 0.3).sin()).collect();
        let mut a = Sampler::new(SamplerKind::Temperature(0.8), 11);
        let mut b = Sampler::new(SamplerKind::Temperature(0.8), 11);
        for _ in 0..20 {
            assert_eq!(a.sample(&logits), b.sample(&logits));
        }
    }

    #[test]
    fn low_temperature_approaches_argmax() {
        let logits = [1.0f32, 4.0, 2.0];
        let mut s = Sampler::new(SamplerKind::Temperature(0.01), 3);
        for _ in 0..20 {
            assert_eq!(s.sample(&logits), 1);
        }
    }

    #[test]
    fn temperature_sampler_hits_multiple_tokens() {
        let logits = [1.0f32, 1.0, 1.0, 1.0];
        let mut s = Sampler::new(SamplerKind::Temperature(1.0), 5);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.sample(&logits) as usize] = true;
        }
        assert!(seen.iter().filter(|&&x| x).count() >= 3, "{seen:?}");
    }

    #[test]
    fn top_p_excludes_tail() {
        // Token 0 has ~overwhelming mass; with small p only it survives.
        let logits = [10.0f32, 0.0, 0.0, 0.0];
        let mut s = Sampler::new(
            SamplerKind::TopP {
                temperature: 1.0,
                p: 0.5,
            },
            9,
        );
        for _ in 0..50 {
            assert_eq!(s.sample(&logits), 0);
        }
    }

    #[test]
    fn top_p_one_behaves_like_full_multinomial_support() {
        let logits = [1.0f32, 1.0, 1.0];
        let mut s = Sampler::new(
            SamplerKind::TopP {
                temperature: 1.0,
                p: 1.0,
            },
            17,
        );
        let mut seen = [false; 3];
        for _ in 0..300 {
            seen[s.sample(&logits) as usize] = true;
        }
        assert!(seen.iter().all(|&x| x), "{seen:?}");
    }

    #[test]
    fn samples_are_always_in_range() {
        let logits: Vec<f32> = (0..31).map(|i| ((i * 7 % 13) as f32) - 6.0).collect();
        for kind in [
            SamplerKind::Argmax,
            SamplerKind::Temperature(1.3),
            SamplerKind::TopP {
                temperature: 0.9,
                p: 0.9,
            },
        ] {
            let mut s = Sampler::new(kind, 23);
            for _ in 0..100 {
                assert!((s.sample(&logits) as usize) < logits.len());
            }
        }
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn zero_temperature_rejected() {
        let _ = Sampler::new(SamplerKind::Temperature(0.0), 0);
    }

    #[test]
    #[should_panic(expected = "top-p mass")]
    fn bad_top_p_rejected() {
        let _ = Sampler::new(
            SamplerKind::TopP {
                temperature: 1.0,
                p: 1.5,
            },
            0,
        );
    }

    #[test]
    fn top_k_one_is_argmax() {
        let logits = [0.5f32, 3.0, -1.0, 2.9];
        let mut s = Sampler::new(
            SamplerKind::TopK {
                temperature: 1.0,
                k: 1,
            },
            3,
        );
        for _ in 0..20 {
            assert_eq!(s.sample(&logits), 1);
        }
    }

    #[test]
    fn top_k_restricts_support() {
        // With k=2, only the two best tokens may appear.
        let logits = [5.0f32, 4.9, -10.0, -10.0];
        let mut s = Sampler::new(
            SamplerKind::TopK {
                temperature: 1.0,
                k: 2,
            },
            5,
        );
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.sample(&logits) as usize] = true;
        }
        assert!(seen[0] && seen[1], "{seen:?}");
        assert!(!seen[2] && !seen[3], "{seen:?}");
    }

    #[test]
    fn top_k_larger_than_vocab_is_full_multinomial() {
        let logits = [1.0f32, 1.0, 1.0];
        let mut s = Sampler::new(
            SamplerKind::TopK {
                temperature: 1.0,
                k: 99,
            },
            8,
        );
        let mut seen = [false; 3];
        for _ in 0..300 {
            seen[s.sample(&logits) as usize] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn top_k_zero_rejected() {
        let _ = Sampler::new(
            SamplerKind::TopK {
                temperature: 1.0,
                k: 0,
            },
            0,
        );
    }

    #[test]
    fn repetition_penalty_breaks_loops() {
        // Argmax would repeat token 1 forever; the penalty must eventually
        // pick something else.
        let logits = [2.9f32, 3.0, 2.8];
        let mut s = Sampler::argmax().with_repetition_penalty(1.5, 4);
        let first = s.sample(&logits);
        assert_eq!(first, 1);
        let second = s.sample(&logits);
        assert_ne!(second, 1, "penalty must demote the repeated token");
    }

    #[test]
    fn repetition_penalty_window_expires() {
        let logits = [2.9f32, 3.0, 2.8, 2.7];
        let mut s = Sampler::argmax().with_repetition_penalty(2.0, 1);
        let a = s.sample(&logits); // 1
        let b = s.sample(&logits); // 0 (1 penalized)
        let c = s.sample(&logits); // 1 again (only b=0 in window)
        assert_eq!((a, b, c), (1, 0, 1));
    }

    #[test]
    #[should_panic(expected = "penalty must be >= 1")]
    fn sub_one_penalty_rejected() {
        let _ = Sampler::argmax().with_repetition_penalty(0.5, 4);
    }

    #[test]
    fn multinomial_degenerate_coin() {
        // coin == 0.99999 with all mass on token 0 must still return a
        // valid index via the fallback.
        assert_eq!(sample_multinomial(&[1.0, 0.0], 0.999_99), 0);
        assert_eq!(sample_multinomial(&[0.0, 0.0], 0.5), 1, "fallback to last");
    }
}
