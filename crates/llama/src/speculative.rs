//! Speculative decoding with exact equivalence: a cheap draft model
//! proposes K tokens greedily, the target scores the pending token plus
//! all K proposals in **one** weight-streaming verify pass
//! ([`Transformer::forward_runs_all_logits_with_kv`]), and the session
//! accepts the longest prefix on which the request sampler agrees —
//! rolling back draft and target KV state for everything past the accept
//! point.
//!
//! The decode path is memory-bandwidth-bound (DESIGN.md §10): every
//! non-speculative step streams the full weight matrix for one token. A
//! verify pass streams it once for K+1 tokens, so with acceptance rate
//! `a` the weight traffic per emitted token drops by roughly the mean
//! accepted run length — the single-stream analogue of batched decode.
//!
//! **Why the output is bit-identical to [`crate::generate::generate`]:**
//! the request sampler is invoked exactly once per emitted token, in
//! emission order, on logits that are bit-identical to what the
//! sequential pass would have produced for the same prefix (the mixed
//! batched forward computes every dense element with the same `dot` over
//! the same operands — see `forward_runs_with_kv`). Draft proposals only
//! decide *which* logits rows get precomputed; they never influence a
//! sampled value. This holds for seeded temperature/top-p/top-k samplers
//! and repetition penalties too, because the sampler's RNG and recency
//! window advance through the identical call sequence. See DESIGN.md §16.

use crate::config::ModelConfig;
use crate::forward::Transformer;
use crate::generate::GenerateOptions;
use crate::kv_cache::KvStore;
use crate::sampler::{self, Sampler};
use crate::tokenizer::{TOKEN_BOS, TOKEN_EOS};

/// A verification backend for speculative decoding: something that can
/// score a run of tokens in one pass (returning logits for **every**
/// row) and roll its KV state back to a shorter context.
///
/// The CPU implementation is [`CpuVerifier`]; the accelerator sim
/// provides its own in `speedllm-accel` so the same [`SpecSession`]
/// drives both.
pub trait VerifyTarget {
    /// The target model's architecture.
    fn config(&self) -> ModelConfig;
    /// Positions currently held in the target KV state.
    fn context_len(&self) -> usize;
    /// Forwards `tokens` at positions `start..start + tokens.len()` and
    /// writes the logits of every row into `out`, row-major
    /// `[tokens.len() * vocab]`. Afterwards the context holds
    /// `start + tokens.len()` positions.
    fn verify_into(&mut self, tokens: &[u32], start: usize, out: &mut Vec<f32>);
    /// Rolls the KV state back to `len` positions (no-op if already at or
    /// below `len`).
    fn truncate(&mut self, len: usize);
}

/// [`VerifyTarget`] over the CPU reference model and any [`KvStore`]
/// (flat cache or paged view). For a paged view, `truncate` shrinks the
/// *logical* mapping only — physical block reclamation stays with the
/// block-table owner (`BlockTable::rollback` in `speedllm-pagedkv`).
pub struct CpuVerifier<'a, K: KvStore + ?Sized> {
    model: &'a mut Transformer,
    kv: &'a mut K,
}

impl<'a, K: KvStore + ?Sized> CpuVerifier<'a, K> {
    /// Pairs the target model with the KV store carrying its context.
    pub fn new(model: &'a mut Transformer, kv: &'a mut K) -> Self {
        Self { model, kv }
    }
}

impl<K: KvStore + ?Sized> VerifyTarget for CpuVerifier<'_, K> {
    fn config(&self) -> ModelConfig {
        *self.model.config()
    }

    fn context_len(&self) -> usize {
        self.kv.kv_len()
    }

    fn verify_into(&mut self, tokens: &[u32], start: usize, out: &mut Vec<f32>) {
        let mut refs = [&mut *self.kv];
        let logits = self.model.forward_runs_all_logits_with_kv(
            refs.as_mut_slice(),
            tokens,
            &[tokens.len()],
            &[start],
        );
        out.clear();
        out.extend_from_slice(logits);
    }

    fn truncate(&mut self, len: usize) {
        self.kv.truncate(len);
    }
}

/// Acceptance accounting for a speculative run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpecMetrics {
    /// Draft tokens proposed (and scored by a verify pass).
    pub drafted: u64,
    /// Draft tokens the request sampler agreed with.
    pub accepted: u64,
    /// Verify passes issued.
    pub rounds: u64,
    /// Tokens emitted to the output stream (accepted drafts + the bonus
    /// token each round samples beyond its last agreeing draft).
    pub emitted: u64,
}

impl SpecMetrics {
    /// Fraction of drafted tokens accepted (`0.0` when nothing drafted).
    #[must_use]
    pub fn acceptance_rate(&self) -> f64 {
        if self.drafted == 0 {
            0.0
        } else {
            self.accepted as f64 / self.drafted as f64
        }
    }

    /// Mean accepted draft run length per verify round (`0.0` when no
    /// rounds ran).
    #[must_use]
    pub fn mean_accepted_run(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.accepted as f64 / self.rounds as f64
        }
    }

    /// Folds another accounting into this one (serve aggregates
    /// per-sequence metrics into engine totals).
    pub fn merge(&mut self, other: &SpecMetrics) {
        self.drafted += other.drafted;
        self.accepted += other.accepted;
        self.rounds += other.rounds;
        self.emitted += other.emitted;
    }
}

/// What the session is holding between rounds.
#[derive(Debug, Clone)]
enum Pending {
    /// Logits after the last history token; the next emission samples
    /// from these (the state right after prefill).
    Logits(Vec<f32>),
    /// The last history token has been emitted but not yet forwarded
    /// through the target; the target context is `history.len() - 1`.
    Token(u32),
}

/// Speculative decoding session: draft-K-ahead, verify-in-one-pass,
/// accept the longest sampler-agreeing prefix, roll back the rest.
///
/// The session owns only *state* (token history, pending logits/token,
/// metrics); the target backend, draft model, draft KV store, and
/// request sampler are passed into each [`SpecSession::round`] call so a
/// server can multiplex one draft model over many sequences.
///
/// Invariants between rounds (enforced with debug assertions):
/// - `Pending::Logits` ⇒ target context == `history.len()` and the
///   logits are those after the final history token;
/// - `Pending::Token(x)` ⇒ `x == *history.last()` and target context ==
///   `history.len() - 1` (`x` is emitted but not yet forwarded);
/// - the draft KV holds some prefix of `history` (it is truncated or
///   caught up lazily at the start of each round).
pub struct SpecSession {
    k: usize,
    history: Vec<u32>,
    prompt_len: usize,
    pending: Pending,
    /// One past the last position the budget/context allows.
    end_pos: usize,
    stop_at_eos: bool,
    finished: bool,
    metrics: SpecMetrics,
    /// Verify-pass logits scratch, `[(J + 1) * vocab]`.
    scratch: Vec<f32>,
}

impl SpecSession {
    /// Prefills `prompt_tokens` through `target` (one batched verify
    /// pass) and leaves the session ready to decode up to
    /// `options.max_new_tokens` tokens, drafting `k` ahead per round.
    ///
    /// # Panics
    /// Panics if `k == 0`, the prompt is empty or exceeds the context
    /// window, or the target already holds context (sessions start cold;
    /// a server resuming from its own prefill uses
    /// [`SpecSession::from_prefilled`]).
    pub fn begin<T: VerifyTarget>(
        target: &mut T,
        prompt_tokens: &[u32],
        k: usize,
        options: GenerateOptions,
    ) -> Self {
        let cfg = target.config();
        assert!(!prompt_tokens.is_empty(), "prompt must not be empty");
        assert!(
            prompt_tokens.len() <= cfg.seq_len,
            "prompt of {} tokens exceeds context window {}",
            prompt_tokens.len(),
            cfg.seq_len
        );
        assert_eq!(target.context_len(), 0, "target context must start cold");
        let mut logits = Vec::new();
        target.verify_into(prompt_tokens, 0, &mut logits);
        // Only the final row's logits are observable after prefill.
        let vocab = cfg.vocab_size;
        let last = logits.split_off((prompt_tokens.len() - 1) * vocab);
        Self::from_prefilled(prompt_tokens.to_vec(), last, cfg, k, options)
    }

    /// Builds a session from an already-prefilled context: `history` is
    /// the full prompt (all forwarded through the target) and `logits`
    /// are the target logits after its final token. The serving layer
    /// uses this to hand chunked-prefill output to a speculative decode
    /// phase.
    ///
    /// # Panics
    /// Panics if `k == 0`, `history` is empty, or `logits` is not one
    /// vocabulary row.
    pub fn from_prefilled(
        history: Vec<u32>,
        logits: Vec<f32>,
        config: ModelConfig,
        k: usize,
        options: GenerateOptions,
    ) -> Self {
        assert!(k >= 1, "speculative depth k must be >= 1");
        assert!(!history.is_empty(), "prefilled history must not be empty");
        assert_eq!(logits.len(), config.vocab_size, "one logits row expected");
        let prompt_len = history.len();
        Self {
            k,
            history,
            prompt_len,
            pending: Pending::Logits(logits),
            end_pos: (prompt_len + options.max_new_tokens).min(config.seq_len),
            stop_at_eos: options.stop_at_eos,
            finished: false,
            metrics: SpecMetrics::default(),
            scratch: Vec::new(),
        }
    }

    /// True once the budget/context is exhausted or EOS was sampled.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Acceptance accounting so far.
    #[must_use]
    pub fn metrics(&self) -> &SpecMetrics {
        &self.metrics
    }

    /// Prompt + emitted tokens, in order.
    #[must_use]
    pub fn history(&self) -> &[u32] {
        &self.history
    }

    /// Tokens emitted so far (the generated stream).
    #[must_use]
    pub fn emitted(&self) -> &[u32] {
        &self.history[self.prompt_len..]
    }

    /// Runs one draft→verify→accept round, appending newly emitted
    /// tokens to `out` and returning how many were emitted. Returns `0`
    /// once finished. `sampler` must be the request sampler — it is
    /// called exactly once per emitted token (plus once for a sampled
    /// EOS), exactly as sequential decoding would.
    ///
    /// `draft`/`draft_kv` carry the draft model and this sequence's
    /// draft context; the draft must share the target's vocabulary and
    /// its context window must cover the target's.
    pub fn round<T, K>(
        &mut self,
        target: &mut T,
        draft: &mut Transformer,
        draft_kv: &mut K,
        sampler: &mut Sampler,
        out: &mut Vec<u32>,
    ) -> usize
    where
        T: VerifyTarget,
        K: KvStore + ?Sized,
    {
        if self.finished {
            return 0;
        }
        let cfg = target.config();
        debug_assert_eq!(
            draft.config().vocab_size,
            cfg.vocab_size,
            "draft and target vocabularies must match"
        );
        let emitted_before = out.len();

        // Ensure a pending *token*: right after prefill the session holds
        // logits instead, so sample the first emission here.
        let x = match &mut self.pending {
            Pending::Token(x) => *x,
            Pending::Logits(logits) => {
                if self.history.len() >= self.end_pos {
                    self.finished = true;
                    return 0;
                }
                let logits = std::mem::take(logits);
                let y = sampler.sample(&logits);
                if self.stop_at_eos && (y == TOKEN_EOS || y == TOKEN_BOS) {
                    self.finished = true;
                    return 0;
                }
                self.emit(y, out);
                if self.history.len() >= self.end_pos {
                    // Budget spent on this token; no verify pass needed.
                    self.finished = true;
                    self.pending = Pending::Token(y);
                    return out.len() - emitted_before;
                }
                self.pending = Pending::Token(y);
                y
            }
        };

        // `x` sits at history index `n`; the target holds positions 0..n.
        let n = self.history.len() - 1;
        debug_assert_eq!(target.context_len(), n, "target context out of sync");

        // Draft sync: truncate past the accept point, or lazily catch up
        // on history the draft has not seen (first round, or after the
        // serving layer prefilled the target out-of-band).
        let draft_ctx = draft_kv.kv_len();
        if draft_ctx > n {
            draft_kv.truncate(n);
        } else {
            for i in draft_ctx..n {
                draft.forward_with_kv(draft_kv, self.history[i], i);
            }
        }

        // Propose greedily. Budget cap: a round can usefully emit at most
        // `budget` tokens, and the j-th accepted draft is the (j+1)-th
        // emission, so drafting past `budget - 1` is wasted work. The
        // window cap keeps verify positions inside the target context.
        let budget = self.end_pos - self.history.len();
        let j_max = self
            .k
            .min(budget.saturating_sub(1))
            .min(cfg.seq_len - 1 - n);
        let mut run = Vec::with_capacity(j_max + 1);
        run.push(x);
        let mut cur = x;
        for off in 0..j_max {
            let logits = draft.forward_with_kv(draft_kv, cur, n + off);
            cur = sampler::argmax(logits);
            run.push(cur);
        }
        self.metrics.drafted += j_max as u64;

        // One target pass scores every row; afterwards the target holds
        // n + run.len() positions (to be rolled back past the accept
        // point below).
        let mut scratch = std::mem::take(&mut self.scratch);
        target.verify_into(&run, n, &mut scratch);
        self.metrics.rounds += 1;
        let vocab = cfg.vocab_size;

        // Accept loop: row j holds the logits after run[j]; the request
        // sampler decides the token at position n + j + 1. Each sampled
        // token is compared against the next draft; the first
        // disagreement (or the bonus token past the last draft) ends the
        // round.
        let last = run.len() - 1;
        for j in 0..run.len() {
            let row = &scratch[j * vocab..(j + 1) * vocab];
            let y = sampler.sample(row);
            if self.stop_at_eos && (y == TOKEN_EOS || y == TOKEN_BOS) {
                // Nothing emitted for EOS; drop rows past the history.
                self.finished = true;
                target.truncate(n + j + 1);
                break;
            }
            self.emit(y, out);
            let matched = j < last && y == run[j + 1];
            if matched {
                self.metrics.accepted += 1;
            }
            if self.history.len() >= self.end_pos {
                // Budget exhausted; keep exactly the rows backing the
                // history (y itself is forwarded only if it matched).
                self.finished = true;
                target.truncate(n + j + 1 + usize::from(matched));
                break;
            }
            if !matched {
                // `y` replaces the rejected draft: roll both sides back
                // to the agreed prefix. `y` is emitted but not yet
                // forwarded — it becomes the next round's pending token.
                self.pending = Pending::Token(y);
                target.truncate(n + j + 1);
                draft_kv.truncate(n + j + 1);
                break;
            }
        }
        self.scratch = scratch;
        out.len() - emitted_before
    }

    fn emit(&mut self, y: u32, out: &mut Vec<u32>) {
        self.history.push(y);
        self.metrics.emitted += 1;
        out.push(y);
    }
}

/// Drives a [`SpecSession`] to completion, returning the emitted stream —
/// the speculative twin of collecting [`crate::generate::DecodeSession`]
/// steps. The stream is bit-identical to sequential decoding with the
/// same `sampler` seed.
pub fn run_speculative<T, K>(
    session: &mut SpecSession,
    target: &mut T,
    draft: &mut Transformer,
    draft_kv: &mut K,
    sampler: &mut Sampler,
) -> Vec<u32>
where
    T: VerifyTarget,
    K: KvStore + ?Sized,
{
    let mut out = Vec::new();
    while !session.is_finished() {
        session.round(target, draft, draft_kv, sampler, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{DecodeSession, GenerateOptions};
    use crate::kv_cache::KvCache;
    use crate::sampler::SamplerKind;
    use crate::weights::TransformerWeights;

    fn target() -> Transformer {
        Transformer::new(TransformerWeights::synthetic(ModelConfig::test_tiny(), 42))
    }

    fn draft() -> Transformer {
        // An *independent* tiny model: same vocab/window, different seed,
        // so acceptance is imperfect and rollback paths actually run.
        Transformer::new(TransformerWeights::synthetic(ModelConfig::test_tiny(), 9))
    }

    fn sequential_stream(prompt: &[u32], sampler: &mut Sampler, opts: GenerateOptions) -> Vec<u32> {
        let mut model = target();
        let mut session = DecodeSession::begin(&mut model, prompt, opts);
        let mut out = Vec::new();
        while let Some(t) = session.step(sampler) {
            out.push(t);
        }
        out
    }

    #[test]
    fn matches_sequential_greedy_and_seeded() {
        let cfg = ModelConfig::test_tiny();
        let prompt = [1u32, 5, 9];
        for opts in [
            GenerateOptions {
                max_new_tokens: 12,
                stop_at_eos: true,
            },
            GenerateOptions {
                max_new_tokens: 24,
                stop_at_eos: false,
            },
        ] {
            for kind in [
                SamplerKind::Argmax,
                SamplerKind::Temperature(0.8),
                SamplerKind::TopP {
                    temperature: 1.0,
                    p: 0.9,
                },
            ] {
                let want = sequential_stream(&prompt, &mut Sampler::new(kind, 7), opts);
                for k in [1usize, 2, 4, 8] {
                    let mut tmodel = target();
                    let mut tkv = KvCache::new(&cfg);
                    let mut dmodel = draft();
                    let mut dkv = KvCache::new(&cfg);
                    let mut verifier = CpuVerifier::new(&mut tmodel, &mut tkv);
                    let mut session = SpecSession::begin(&mut verifier, &prompt, k, opts);
                    let got = run_speculative(
                        &mut session,
                        &mut verifier,
                        &mut dmodel,
                        &mut dkv,
                        &mut Sampler::new(kind, 7),
                    );
                    assert_eq!(got, want, "k={k} kind={kind:?} opts={opts:?}");
                    assert_eq!(session.emitted(), &want[..]);
                }
            }
        }
    }

    #[test]
    fn self_draft_accepts_everything() {
        // Draft == target under greedy sampling: every proposal must be
        // accepted, so each round emits k accepted tokens plus a bonus.
        let cfg = ModelConfig::test_tiny();
        let prompt = [2u32, 3];
        let opts = GenerateOptions {
            max_new_tokens: 9,
            stop_at_eos: false,
        };
        let mut tmodel = target();
        let mut tkv = KvCache::new(&cfg);
        let mut dmodel = target();
        let mut dkv = KvCache::new(&cfg);
        let mut verifier = CpuVerifier::new(&mut tmodel, &mut tkv);
        let mut session = SpecSession::begin(&mut verifier, &prompt, 4, opts);
        let got = run_speculative(
            &mut session,
            &mut verifier,
            &mut dmodel,
            &mut dkv,
            &mut Sampler::argmax(),
        );
        let want = sequential_stream(&prompt, &mut Sampler::argmax(), opts);
        assert_eq!(got, want);
        let m = *session.metrics();
        assert_eq!(m.accepted, m.drafted, "greedy self-draft must fully agree");
        assert!(m.drafted > 0);
        assert_eq!(m.acceptance_rate(), 1.0);
    }

    #[test]
    fn post_rejection_kv_matches_fresh_prefill() {
        // Rollback oracle: after a full speculative run, the target KV
        // bytes over the kept context must equal a from-scratch prefill
        // of the same history — no stale draft rows survive.
        let cfg = ModelConfig::test_tiny();
        let prompt = [4u32, 8, 1];
        let opts = GenerateOptions {
            max_new_tokens: 10,
            stop_at_eos: false,
        };
        let mut tmodel = target();
        let mut tkv = KvCache::new(&cfg);
        let mut dmodel = draft();
        let mut dkv = KvCache::new(&cfg);
        let mut verifier = CpuVerifier::new(&mut tmodel, &mut tkv);
        let mut session = SpecSession::begin(&mut verifier, &prompt, 3, opts);
        run_speculative(
            &mut session,
            &mut verifier,
            &mut dmodel,
            &mut dkv,
            &mut Sampler::new(SamplerKind::Temperature(0.9), 13),
        );
        assert!(session.metrics().accepted < session.metrics().drafted);

        let kept = tkv.len();
        let history = session.history().to_vec();
        assert!(kept <= history.len());
        let mut fresh_model = target();
        let mut fresh = KvCache::new(&cfg);
        for (pos, &tok) in history[..kept].iter().enumerate() {
            fresh_model.forward_with_kv(&mut fresh, tok, pos);
        }
        for layer in 0..cfg.n_layers {
            for pos in 0..kept {
                assert_eq!(
                    tkv.key_row(layer, pos),
                    fresh.key_row(layer, pos),
                    "stale K at layer {layer} pos {pos}"
                );
                assert_eq!(
                    tkv.value_row(layer, pos),
                    fresh.value_row(layer, pos),
                    "stale V at layer {layer} pos {pos}"
                );
            }
        }
    }

    #[test]
    fn budget_is_respected_exactly() {
        let cfg = ModelConfig::test_tiny();
        let prompt = [1u32, 2, 3, 4];
        for max_new in [1usize, 2, 5] {
            let opts = GenerateOptions {
                max_new_tokens: max_new,
                stop_at_eos: false,
            };
            let mut tmodel = target();
            let mut tkv = KvCache::new(&cfg);
            let mut dmodel = draft();
            let mut dkv = KvCache::new(&cfg);
            let mut verifier = CpuVerifier::new(&mut tmodel, &mut tkv);
            let mut session = SpecSession::begin(&mut verifier, &prompt, 4, opts);
            let got = run_speculative(
                &mut session,
                &mut verifier,
                &mut dmodel,
                &mut dkv,
                &mut Sampler::argmax(),
            );
            let want = sequential_stream(&prompt, &mut Sampler::argmax(), opts);
            assert_eq!(got, want, "max_new={max_new}");
            assert_eq!(got.len(), max_new.min(want.len()));
        }
    }

    #[test]
    #[should_panic(expected = "speculative depth k must be >= 1")]
    fn zero_k_is_rejected() {
        let cfg = ModelConfig::test_tiny();
        let mut tmodel = target();
        let mut tkv = KvCache::new(&cfg);
        let mut verifier = CpuVerifier::new(&mut tmodel, &mut tkv);
        SpecSession::begin(&mut verifier, &[1, 2], 0, GenerateOptions::default());
    }

    #[test]
    fn metrics_merge_accumulates() {
        let mut a = SpecMetrics {
            drafted: 4,
            accepted: 3,
            rounds: 2,
            emitted: 5,
        };
        let b = SpecMetrics {
            drafted: 6,
            accepted: 1,
            rounds: 3,
            emitted: 4,
        };
        a.merge(&b);
        assert_eq!(
            a,
            SpecMetrics {
                drafted: 10,
                accepted: 4,
                rounds: 5,
                emitted: 9,
            }
        );
        assert!((a.acceptance_rate() - 0.4).abs() < 1e-12);
        assert!((a.mean_accepted_run() - 0.8).abs() < 1e-12);
    }
}
