//! Fused dequant-GEMM kernels over group-quantized weights.
//!
//! These mirror the weight-reuse shape of [`crate::ops::matmul`]: one pass
//! over the quantized weight matrix per batched tick. Each [`GROUP`]-wide
//! weight group is dequantized **once** into a register-resident block
//! ([`QuantMatrix::dequant_group_into`]) and then applied across every
//! batch column, so the compressed payload — not the f32 expansion — is
//! what streams from memory per tick.
//!
//! Determinism contract: [`qmatvec`] accumulates each output element with a
//! single f32 accumulator in increasing column order, and the batched
//! [`qmatmul`] lanes replay exactly that mul-then-add sequence per lane
//! (independent accumulator chains, never reassociated). A batched result
//! is therefore **bit-identical** to `batch` independent [`qmatvec`] calls,
//! which is what keeps quantized serve reports byte-reproducible across
//! batch compositions and double runs. [`crate::parallel::par_qmatmul`]
//! hands disjoint row ranges of these kernels to its workers, preserving
//! the same per-element order.

use crate::ops::transpose_batch_major;
use crate::quant::{QuantMatrix, GROUP};
use std::ops::Range;

/// Fused dequant matvec over a row range: `out[r - rows.start] =
/// Σ_c dequant(w[r, c]) · x[c]`, one f32 accumulator per row in increasing
/// `c` — the reference accumulation order every batched lane replays.
pub fn qmatvec_rows(out: &mut [f32], w: &QuantMatrix, rows: Range<usize>, x: &[f32]) {
    debug_assert_eq!(out.len(), rows.len());
    debug_assert!(rows.end <= w.rows());
    debug_assert_eq!(x.len(), w.cols());
    let cols = w.cols();
    let mut wg = [0.0f32; GROUP];
    for (o, r) in out.iter_mut().zip(rows) {
        let mut acc = 0.0f32;
        for g in 0..w.groups_per_row() {
            w.dequant_group_into(r, g, &mut wg);
            let c0 = g * GROUP;
            let n = (cols - c0).min(GROUP);
            for (&wv, &xv) in wg[..n].iter().zip(&x[c0..c0 + n]) {
                acc += wv * xv;
            }
        }
        *o = acc;
    }
}

/// Fused dequant matvec: `out[r] = dequant(w[r, :]) · x`.
pub fn qmatvec(out: &mut [f32], w: &QuantMatrix, x: &[f32]) {
    debug_assert_eq!(out.len(), w.rows());
    qmatvec_rows(out, w, 0..w.rows(), x);
}

/// One quantized weight row against `L` batch lanes of batch-major
/// activations. The group is dequantized once into `wg` registers, then
/// each expanded weight multiplies all `L` lanes — the weight-reuse core.
/// Per lane this is [`qmatvec_rows`]'s exact accumulation sequence.
#[inline]
fn qrow_lanes<const L: usize>(
    w: &QuantMatrix,
    r: usize,
    xt: &[f32],
    batch: usize,
    b0: usize,
) -> [f32; L] {
    let cols = w.cols();
    let mut acc = [0.0f32; L];
    let mut wg = [0.0f32; GROUP];
    for g in 0..w.groups_per_row() {
        w.dequant_group_into(r, g, &mut wg);
        let c0 = g * GROUP;
        let n = (cols - c0).min(GROUP);
        for (i, &wv) in wg[..n].iter().enumerate() {
            let xc = &xt[(c0 + i) * batch..];
            let x: &[f32; L] = xc[b0..b0 + L].try_into().expect("lane block in bounds");
            for l in 0..L {
                acc[l] += wv * x[l];
            }
        }
    }
    acc
}

/// Batched fused dequant-GEMM inner kernel over pre-transposed
/// (batch-major) activations: `out[(r - rows.start) * batch + b] =
/// dequant(w[r, :]) · x_b` for `r` in `rows`. Lanes are processed in
/// blocks of 8/4/2/1 exactly like [`crate::ops::matmul_rows_xt`], so each
/// quantized row is streamed (and dequantized) once per row visit and
/// reused across every batch lane.
pub fn qmatmul_rows_xt(
    out: &mut [f32],
    w: &QuantMatrix,
    xt: &[f32],
    rows: Range<usize>,
    batch: usize,
) {
    debug_assert_eq!(out.len(), rows.len() * batch);
    debug_assert!(rows.end <= w.rows());
    debug_assert_eq!(xt.len(), w.cols() * batch);
    for (out_row, r) in out.chunks_exact_mut(batch).zip(rows) {
        let mut b0 = 0;
        while b0 + 8 <= batch {
            out_row[b0..b0 + 8].copy_from_slice(&qrow_lanes::<8>(w, r, xt, batch, b0));
            b0 += 8;
        }
        if b0 + 4 <= batch {
            out_row[b0..b0 + 4].copy_from_slice(&qrow_lanes::<4>(w, r, xt, batch, b0));
            b0 += 4;
        }
        if b0 + 2 <= batch {
            out_row[b0..b0 + 2].copy_from_slice(&qrow_lanes::<2>(w, r, xt, batch, b0));
            b0 += 2;
        }
        if b0 < batch {
            out_row[b0] = qrow_lanes::<1>(w, r, xt, batch, b0)[0];
        }
    }
}

/// Batched fused dequant-GEMM with weight reuse: `out[r * batch + b] =
/// dequant(w[r, :]) · xs[b]` for sequence-major activations, row-major
/// output — the quantized twin of [`crate::ops::matmul`]. A batch of B
/// decode steps streams the compressed matrix once instead of B times,
/// and every element is bit-identical to a [`qmatvec`] call.
pub fn qmatmul(out: &mut [f32], w: &QuantMatrix, xs: &[f32], batch: usize) {
    debug_assert_eq!(out.len(), w.rows() * batch);
    debug_assert_eq!(xs.len(), batch * w.cols());
    if batch == 1 {
        qmatvec(out, w, xs);
        return;
    }
    let xt = transpose_batch_major(xs, w.cols(), batch);
    qmatmul_rows_xt(out, w, &xt, 0..w.rows(), batch);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::QuantKind;
    use crate::rng::Xoshiro256;

    fn random_case(rows: usize, cols: usize, batch: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut w = vec![0.0f32; rows * cols];
        let mut xs = vec![0.0f32; batch * cols];
        rng.fill_normal(&mut w, 0.2);
        rng.fill_normal(&mut xs, 1.0);
        (w, xs)
    }

    /// Satellite: pins `QuantMatrix::matvec` (now the serve-path kernel)
    /// against the quantize→dequantize→`ops::matvec` reference — exact,
    /// because both accumulate identical dequantized values in the same
    /// order — and within `error_bound()` of the f32 original.
    #[test]
    fn matvec_is_pinned_to_dequantized_reference() {
        for kind in [QuantKind::Int8, QuantKind::Int4] {
            let (rows, cols) = (20, 100); // partial trailing group
            let (w, x) = random_case(rows, cols, 1, 11);
            let qm = QuantMatrix::quantize_with(&w, rows, cols, kind);
            let mut got = vec![0.0f32; rows];
            qm.matvec(&mut got, &x);

            let deq = qm.dequantize();
            let mut reference = vec![0.0f32; rows];
            crate::ops::matvec(&mut reference, &deq, &x, rows, cols);
            assert_eq!(
                got, reference,
                "{kind:?}: must replay dequantized matvec exactly"
            );

            let mut exact = vec![0.0f32; rows];
            crate::ops::matvec(&mut exact, &w, &x, rows, cols);
            let l1: f32 = x.iter().map(|v| v.abs()).sum();
            let bound = qm.error_bound() * l1 + 1e-6;
            for (e, a) in exact.iter().zip(&got) {
                assert!(
                    (e - a).abs() <= bound,
                    "{kind:?}: {e} vs {a}, bound {bound}"
                );
            }
        }
    }

    #[test]
    fn batched_qmatmul_is_bit_identical_to_qmatvec() {
        for kind in [QuantKind::Int8, QuantKind::Int4] {
            for batch in [1, 2, 3, 5, 8, 11] {
                let (rows, cols) = (17, 70);
                let (w, xs) = random_case(rows, cols, batch, 21 + batch as u64);
                let qm = QuantMatrix::quantize_with(&w, rows, cols, kind);
                let mut batched = vec![0.0f32; rows * batch];
                qmatmul(&mut batched, &qm, &xs, batch);
                let mut single = vec![0.0f32; rows];
                for b in 0..batch {
                    qmatvec(&mut single, &qm, &xs[b * cols..(b + 1) * cols]);
                    for r in 0..rows {
                        assert_eq!(
                            batched[r * batch + b].to_bits(),
                            single[r].to_bits(),
                            "{kind:?} batch {batch} row {r} lane {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn row_range_kernel_matches_full_kernel() {
        let (rows, cols, batch) = (24, 64, 4);
        let (w, xs) = random_case(rows, cols, batch, 5);
        let qm = QuantMatrix::quantize(&w, rows, cols);
        let xt = transpose_batch_major(&xs, cols, batch);
        let mut full = vec![0.0f32; rows * batch];
        qmatmul_rows_xt(&mut full, &qm, &xt, 0..rows, batch);
        let mut part = vec![0.0f32; 10 * batch];
        qmatmul_rows_xt(&mut part, &qm, &xt, 7..17, batch);
        assert_eq!(&full[7 * batch..17 * batch], &part[..]);
        let mut vecs = vec![0.0f32; 10];
        qmatvec_rows(&mut vecs, &qm, 7..17, &xs[..cols]);
        for r in 0..10 {
            assert_eq!(vecs[r].to_bits(), part[r * batch].to_bits());
        }
    }
}
