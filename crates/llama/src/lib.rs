//! # speedllm-llama
//!
//! The Llama-2 inference substrate of the SpeedLLM reproduction: everything
//! the paper's host software stack provides (llama2.c model loading,
//! tokenization, the reference forward pass, sampling, quantization), built
//! from scratch in safe Rust.
//!
//! The crate serves three roles:
//!
//! 1. **Correctness oracle** — [`forward::Transformer`] is the scalar
//!    reference implementation that the simulated accelerator's outputs are
//!    checked against.
//! 2. **CPU baseline** — [`parallel`] provides the multithreaded CPU
//!    implementation used as a comparison point in the examples.
//! 3. **Shared kernels** — [`ops`] kernels are reused by the accelerator
//!    engine for per-tile functional computation, so the co-design is
//!    functionally transparent by construction.
//!
//! ## Quick example
//!
//! ```
//! use speedllm_llama::config::ModelConfig;
//! use speedllm_llama::weights::TransformerWeights;
//! use speedllm_llama::forward::Transformer;
//! use speedllm_llama::tokenizer::Tokenizer;
//! use speedllm_llama::sampler::Sampler;
//! use speedllm_llama::generate::{generate, GenerateOptions};
//!
//! let cfg = ModelConfig::test_tiny();
//! let mut model = Transformer::new(TransformerWeights::synthetic(cfg, 42));
//! let tokenizer = Tokenizer::synthetic(cfg.vocab_size, 42);
//! let mut sampler = Sampler::argmax();
//! let out = generate(&mut model, &tokenizer, &mut sampler, "once", GenerateOptions::default());
//! assert!(!out.generated_tokens.is_empty());
//! ```

#![warn(missing_docs)]

pub mod bpe_train;
pub mod config;
pub mod eval;
pub mod forward;
pub mod generate;
pub mod kv_cache;
pub mod ops;
pub mod parallel;
pub mod qgemm;
pub mod quant;
pub mod rng;
pub mod sampler;
pub mod sparse;
pub mod speculative;
pub mod sync;
pub mod tensor;
pub mod tokenizer;
pub mod weights;

pub use config::ModelConfig;
pub use forward::{MatVecStrategy, Transformer, WeightStore};
pub use quant::QuantMode;
pub use sampler::{Sampler, SamplerKind};
pub use tokenizer::Tokenizer;
pub use weights::TransformerWeights;
