//! Scalar reference kernels for Llama-2 inference.
//!
//! Every kernel operates on plain `f32` slices so the same code backs both
//! the CPU reference forward pass ([`crate::forward`]) and the tiled
//! functional execution inside the accelerator engine. Keeping one set of
//! kernels is what lets integration tests assert that the simulated
//! accelerator is *functionally transparent*: fusion, memory planning, and
//! pipelining may only change timing, never values (beyond float
//! reassociation in tiled accumulation).

/// Default RoPE frequency base used by the llama2.c model family.
pub const ROPE_THETA: f32 = 10000.0;

/// Epsilon used inside RMS normalization, matching llama2.c.
pub const RMS_EPS: f32 = 1e-5;

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics (debug) if the lengths differ.
#[inline]
#[must_use]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dot length mismatch");
    // Accumulate in f32 like llama2.c; tiled variants reassociate, which is
    // why equivalence tests use a tolerance.
    let mut acc = 0.0f32;
    for (&x, &y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

/// RMS normalization: `out[i] = x[i] * weight[i] / rms(x)`.
///
/// `out` and `x` may be the same slice via [`rmsnorm_inplace`]; this variant
/// writes to a distinct output.
pub fn rmsnorm(out: &mut [f32], x: &[f32], weight: &[f32]) {
    debug_assert_eq!(out.len(), x.len());
    debug_assert_eq!(x.len(), weight.len());
    let ss = x.iter().map(|&v| v * v).sum::<f32>() / x.len() as f32;
    let inv = 1.0 / (ss + RMS_EPS).sqrt();
    for ((o, &xi), &wi) in out.iter_mut().zip(x).zip(weight) {
        *o = xi * inv * wi;
    }
}

/// In-place RMS normalization.
pub fn rmsnorm_inplace(x: &mut [f32], weight: &[f32]) {
    debug_assert_eq!(x.len(), weight.len());
    let ss = x.iter().map(|&v| v * v).sum::<f32>() / x.len() as f32;
    let inv = 1.0 / (ss + RMS_EPS).sqrt();
    for (xi, &wi) in x.iter_mut().zip(weight) {
        *xi *= inv * wi;
    }
}

/// Numerically-stable in-place softmax over `x`.
pub fn softmax(x: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    let max = x.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
    let mut sum = 0.0f32;
    for v in x.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    let inv = 1.0 / sum;
    for v in x.iter_mut() {
        *v *= inv;
    }
}

/// Dense matrix–vector product: `out[r] = w[r, :] · x` for a row-major
/// `rows × cols` matrix `w`.
pub fn matvec(out: &mut [f32], w: &[f32], x: &[f32], rows: usize, cols: usize) {
    debug_assert_eq!(out.len(), rows);
    debug_assert_eq!(w.len(), rows * cols);
    debug_assert_eq!(x.len(), cols);
    for (r, o) in out.iter_mut().enumerate() {
        *o = dot(&w[r * cols..(r + 1) * cols], x);
    }
}

/// Transposes sequence-major activations (`xs[b * cols + c]`) into
/// batch-major order (`xt[c * batch + b]`), the layout the batched matmul
/// kernel consumes: all batch lanes for one column sit adjacent, so the
/// inner loop reads them with one contiguous load per weight element.
#[must_use]
pub fn transpose_batch_major(xs: &[f32], cols: usize, batch: usize) -> Vec<f32> {
    debug_assert_eq!(xs.len(), batch * cols);
    let mut xt = vec![0.0f32; cols * batch];
    for (b, x) in xs.chunks_exact(cols).enumerate() {
        for (c, &v) in x.iter().enumerate() {
            xt[c * batch + b] = v;
        }
    }
    xt
}

/// One weight row against `L` batch lanes of batch-major activations:
/// `acc[l] = Σ_c row[c] · xt[c * batch + b0 + l]`, accumulating in
/// increasing `c` with a single f32 accumulator per lane — the exact
/// mul-then-add sequence [`dot`] performs, so every lane is bit-identical
/// to `dot(row, xs[b])`. The `L` chains are *independent output elements*;
/// keeping them live together is what breaks the one-accumulator latency
/// chain (and lets the compiler vectorize across lanes) without ever
/// reassociating a single element's sum.
#[inline]
fn row_lanes<const L: usize>(row: &[f32], xt: &[f32], batch: usize, b0: usize) -> [f32; L] {
    let mut acc = [0.0f32; L];
    for (&wv, xc) in row.iter().zip(xt.chunks_exact(batch)) {
        let x: &[f32; L] = xc[b0..b0 + L].try_into().expect("lane block in bounds");
        for l in 0..L {
            acc[l] += wv * x[l];
        }
    }
    acc
}

/// Batched matmul inner kernel over pre-transposed (batch-major)
/// activations: `out[(r - rows.start) * batch + b] = w[r, :] · x_b` for
/// `r` in `rows`. Lanes are processed in blocks of 8/4/2/1, each block a
/// [`row_lanes`] call, so each weight row is streamed once per row visit
/// and reused across every batch lane. [`crate::parallel::par_matmul`]
/// hands disjoint row ranges of this kernel to its workers.
pub fn matmul_rows_xt(
    out: &mut [f32],
    w: &[f32],
    xt: &[f32],
    rows: std::ops::Range<usize>,
    cols: usize,
    batch: usize,
) {
    debug_assert_eq!(out.len(), rows.len() * batch);
    debug_assert!(rows.end * cols <= w.len());
    debug_assert_eq!(xt.len(), cols * batch);
    for (out_row, r) in out.chunks_exact_mut(batch).zip(rows) {
        let row = &w[r * cols..(r + 1) * cols];
        let mut b0 = 0;
        while b0 + 8 <= batch {
            out_row[b0..b0 + 8].copy_from_slice(&row_lanes::<8>(row, xt, batch, b0));
            b0 += 8;
        }
        if b0 + 4 <= batch {
            out_row[b0..b0 + 4].copy_from_slice(&row_lanes::<4>(row, xt, batch, b0));
            b0 += 4;
        }
        if b0 + 2 <= batch {
            out_row[b0..b0 + 2].copy_from_slice(&row_lanes::<2>(row, xt, batch, b0));
            b0 += 2;
        }
        if b0 < batch {
            out_row[b0] = row_lanes::<1>(row, xt, batch, b0)[0];
        }
    }
}

/// Batched dense matmul with weight reuse: `out[r * batch + b] =
/// w[r, :] · xs[b]` for a row-major `rows × cols` matrix `w` and `batch`
/// activation columns stored sequence-major (`xs[b * cols..(b + 1) * cols]`
/// is sequence `b`'s vector, the same layout the forward pass keeps its
/// per-sequence scratch in).
///
/// The output is **row-major** (`[rows][batch]`): all batch results for one
/// weight row are adjacent, which is what lets the kernel stream each
/// weight row exactly once and reuse it across the whole batch — a batch of
/// B decode steps reads `rows × cols` weights once instead of B times. The
/// activations are transposed to batch-major once (O(cols·batch), nothing
/// next to the O(rows·cols·batch) GEMM) so the [`row_lanes`] kernel can
/// keep up to 8 independent accumulator chains live per weight row; each
/// chain replays [`dot`]'s exact accumulation order, so a batched result
/// is **bit-identical** to `batch` independent [`matvec`] calls.
pub fn matmul(out: &mut [f32], w: &[f32], xs: &[f32], rows: usize, cols: usize, batch: usize) {
    debug_assert_eq!(out.len(), rows * batch);
    debug_assert_eq!(w.len(), rows * cols);
    debug_assert_eq!(xs.len(), batch * cols);
    if batch == 1 {
        matvec(out, w, xs, rows, cols);
        return;
    }
    let xt = transpose_batch_major(xs, cols, batch);
    matmul_rows_xt(out, w, &xt, 0..rows, cols, batch);
}

/// Tiled partial matvec: accumulates `w[r, c0..c1] · x[c0..c1]` into
/// `out[r - r0]` for rows `r0..r1`. Callers must zero `out` before the first
/// column tile. This is the kernel the accelerator's MPE tiles map onto.
pub fn matvec_tile_accumulate(
    out: &mut [f32],
    w: &[f32],
    x: &[f32],
    cols: usize,
    rows: std::ops::Range<usize>,
    col_tile: std::ops::Range<usize>,
) {
    debug_assert_eq!(out.len(), rows.len());
    debug_assert!(col_tile.end <= cols);
    debug_assert!(col_tile.end <= x.len());
    for (o, r) in out.iter_mut().zip(rows) {
        let row = &w[r * cols + col_tile.start..r * cols + col_tile.end];
        *o += dot(row, &x[col_tile.clone()]);
    }
}

/// SiLU (sigmoid-weighted linear unit): `x * σ(x)`.
#[inline]
#[must_use]
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// SwiGLU gate: `h1[i] = silu(h1[i]) * h3[i]`, in place in `h1`.
pub fn swiglu(h1: &mut [f32], h3: &[f32]) {
    debug_assert_eq!(h1.len(), h3.len());
    for (a, &b) in h1.iter_mut().zip(h3) {
        *a = silu(*a) * b;
    }
}

/// Element-wise residual accumulation: `acc[i] += delta[i]`.
pub fn add_inplace(acc: &mut [f32], delta: &[f32]) {
    debug_assert_eq!(acc.len(), delta.len());
    for (a, &d) in acc.iter_mut().zip(delta) {
        *a += d;
    }
}

/// Applies rotary position embeddings in the llama2.c convention: adjacent
/// pairs within each `head_dim`-wide head of `v` are rotated by
/// `pos · θ^(−i/head_dim)`.
pub fn rope_inplace(v: &mut [f32], pos: usize, head_dim: usize, theta: f32) {
    debug_assert_eq!(v.len() % head_dim, 0, "vector not a whole number of heads");
    debug_assert_eq!(head_dim % 2, 0, "head_dim must be even");
    for head in v.chunks_mut(head_dim) {
        for i in (0..head_dim).step_by(2) {
            let freq = 1.0 / theta.powf(i as f32 / head_dim as f32);
            let angle = pos as f32 * freq;
            let (sin, cos) = angle.sin_cos();
            let (v0, v1) = (head[i], head[i + 1]);
            head[i] = v0 * cos - v1 * sin;
            head[i + 1] = v0 * sin + v1 * cos;
        }
    }
}

/// Attention scores for one head: `scores[t] = q · k_t / sqrt(head_dim)` for
/// `t` in `0..=pos`, where `key_at(t)` yields the cached key row.
pub fn attention_scores<'k>(
    scores: &mut [f32],
    q: &[f32],
    mut key_at: impl FnMut(usize) -> &'k [f32],
    pos: usize,
) {
    debug_assert!(scores.len() > pos);
    let scale = 1.0 / (q.len() as f32).sqrt();
    for (t, s) in scores.iter_mut().enumerate().take(pos + 1) {
        *s = dot(q, key_at(t)) * scale;
    }
}

/// Weighted value mix for one head: `out = Σ_t probs[t] · v_t`.
pub fn attention_mix<'v>(
    out: &mut [f32],
    probs: &[f32],
    mut value_at: impl FnMut(usize) -> &'v [f32],
    pos: usize,
) {
    out.fill(0.0);
    for (t, &p) in probs.iter().enumerate().take(pos + 1) {
        let v = value_at(t);
        debug_assert_eq!(v.len(), out.len());
        for (o, &vi) in out.iter_mut().zip(v) {
            *o += p * vi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f32, b: f32, tol: f32) {
        assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn rmsnorm_matches_hand_computation() {
        let x = [3.0f32, 4.0];
        let w = [1.0f32, 2.0];
        let mut out = [0.0f32; 2];
        rmsnorm(&mut out, &x, &w);
        // rms = sqrt((9+16)/2 + eps) ≈ sqrt(12.5)
        let inv = 1.0 / (12.5f32 + RMS_EPS).sqrt();
        assert_close(out[0], 3.0 * inv, 1e-6);
        assert_close(out[1], 4.0 * inv * 2.0, 1e-6);
    }

    #[test]
    fn rmsnorm_inplace_matches_out_of_place() {
        let x = [0.5f32, -1.25, 2.0, 0.0];
        let w = [1.0f32, 0.5, -1.0, 2.0];
        let mut a = [0.0f32; 4];
        rmsnorm(&mut a, &x, &w);
        let mut b = x;
        rmsnorm_inplace(&mut b, &w);
        for (x, y) in a.iter().zip(&b) {
            assert_close(*x, *y, 1e-7);
        }
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let mut x = [1.0f32, 2.0, 3.0];
        softmax(&mut x);
        assert_close(x.iter().sum::<f32>(), 1.0, 1e-6);
        assert!(x[2] > x[1] && x[1] > x[0]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let mut a = [1.0f32, 2.0, 3.0];
        let mut b = [1001.0f32, 1002.0, 1003.0];
        softmax(&mut a);
        softmax(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert_close(*x, *y, 1e-6);
        }
    }

    #[test]
    fn softmax_handles_extremes() {
        let mut x = [f32::NEG_INFINITY, 0.0];
        softmax(&mut x);
        assert_close(x[0], 0.0, 1e-9);
        assert_close(x[1], 1.0, 1e-9);
        let mut empty: [f32; 0] = [];
        softmax(&mut empty);
    }

    #[test]
    fn matvec_identity() {
        let w = [1.0f32, 0.0, 0.0, 1.0]; // 2x2 identity
        let x = [7.0f32, -3.0];
        let mut out = [0.0f32; 2];
        matvec(&mut out, &w, &x, 2, 2);
        assert_eq!(out, x);
    }

    #[test]
    fn matvec_rectangular() {
        // 2x3 matrix
        let w = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0];
        let x = [1.0f32, 0.0, -1.0];
        let mut out = [0.0f32; 2];
        matvec(&mut out, &w, &x, 2, 3);
        assert_eq!(out, [-2.0, -2.0]);
    }

    #[test]
    fn matmul_is_bit_identical_to_per_column_matvec() {
        let (rows, cols) = (5usize, 9usize);
        let w: Vec<f32> = (0..rows * cols)
            .map(|i| ((i * 31 % 17) as f32) * 0.37 - 4.0)
            .collect();
        for batch in [1usize, 2, 3, 8] {
            let xs: Vec<f32> = (0..batch * cols)
                .map(|i| (i as f32 * 0.21).cos() * 1.7)
                .collect();
            let mut batched = vec![0.0f32; rows * batch];
            matmul(&mut batched, &w, &xs, rows, cols, batch);
            for b in 0..batch {
                let mut single = vec![0.0f32; rows];
                matvec(&mut single, &w, &xs[b * cols..(b + 1) * cols], rows, cols);
                for r in 0..rows {
                    // Exact: the batched kernel must not reassociate.
                    assert_eq!(batched[r * batch + b], single[r], "r={r} b={b}");
                }
            }
        }
    }

    #[test]
    fn matmul_batch_one_equals_matvec() {
        let (rows, cols) = (4usize, 6usize);
        let w: Vec<f32> = (0..rows * cols).map(|i| i as f32 - 11.0).collect();
        let x: Vec<f32> = (0..cols).map(|i| (i as f32).sin()).collect();
        let mut mv = vec![0.0f32; rows];
        matvec(&mut mv, &w, &x, rows, cols);
        let mut mm = vec![0.0f32; rows];
        matmul(&mut mm, &w, &x, rows, cols, 1);
        assert_eq!(mv, mm);
    }

    #[test]
    fn tiled_matvec_matches_dense() {
        let rows = 7;
        let cols = 13;
        let w: Vec<f32> = (0..rows * cols)
            .map(|i| ((i * 37 % 19) as f32) - 9.0)
            .collect();
        let x: Vec<f32> = (0..cols).map(|i| (i as f32 * 0.37).sin()).collect();
        let mut dense = vec![0.0f32; rows];
        matvec(&mut dense, &w, &x, rows, cols);

        let mut tiled = vec![0.0f32; rows];
        for r0 in (0..rows).step_by(3) {
            let r1 = (r0 + 3).min(rows);
            let mut acc = vec![0.0f32; r1 - r0];
            for c0 in (0..cols).step_by(4) {
                let c1 = (c0 + 4).min(cols);
                matvec_tile_accumulate(&mut acc, &w, &x, cols, r0..r1, c0..c1);
            }
            tiled[r0..r1].copy_from_slice(&acc);
        }
        for (a, b) in dense.iter().zip(&tiled) {
            assert_close(*a, *b, 1e-4);
        }
    }

    #[test]
    fn silu_fixed_points() {
        assert_close(silu(0.0), 0.0, 1e-9);
        assert!(silu(10.0) > 9.99);
        assert!(silu(-10.0).abs() < 1e-3);
    }

    #[test]
    fn swiglu_combines() {
        let mut h1 = [1.0f32, -1.0];
        let h3 = [2.0f32, 3.0];
        swiglu(&mut h1, &h3);
        assert_close(h1[0], silu(1.0) * 2.0, 1e-6);
        assert_close(h1[1], silu(-1.0) * 3.0, 1e-6);
    }

    #[test]
    fn add_inplace_accumulates() {
        let mut acc = [1.0f32, 2.0];
        add_inplace(&mut acc, &[10.0, 20.0]);
        assert_eq!(acc, [11.0, 22.0]);
    }

    #[test]
    fn rope_at_pos_zero_is_identity() {
        let mut v = [0.3f32, -0.7, 1.1, 0.0];
        let orig = v;
        rope_inplace(&mut v, 0, 4, ROPE_THETA);
        for (a, b) in v.iter().zip(&orig) {
            assert_close(*a, *b, 1e-7);
        }
    }

    #[test]
    fn rope_preserves_norm() {
        let mut v: Vec<f32> = (0..8).map(|i| (i as f32 * 0.7).cos()).collect();
        let norm0: f32 = v.iter().map(|x| x * x).sum();
        rope_inplace(&mut v, 17, 4, ROPE_THETA);
        let norm1: f32 = v.iter().map(|x| x * x).sum();
        assert_close(norm0, norm1, 1e-4);
    }

    #[test]
    fn rope_first_pair_rotates_by_pos_radians() {
        // For i=0 the frequency is exactly 1, so the first pair rotates by
        // `pos` radians.
        let mut v = [1.0f32, 0.0, 0.0, 0.0];
        rope_inplace(&mut v, 1, 4, ROPE_THETA);
        assert_close(v[0], 1.0f32.cos(), 1e-6);
        assert_close(v[1], 1.0f32.sin(), 1e-6);
    }

    #[test]
    fn attention_scores_and_mix_single_key() {
        let q = [1.0f32, 0.0];
        let k = [2.0f32, 0.0];
        let v = [5.0f32, 7.0];
        let mut scores = [0.0f32; 1];
        attention_scores(&mut scores, &q, |_| &k[..], 0);
        assert_close(scores[0], 2.0 / (2.0f32).sqrt(), 1e-6);
        softmax(&mut scores);
        let mut out = [0.0f32; 2];
        attention_mix(&mut out, &scores, |_| &v[..], 0);
        assert_eq!(out, v);
    }

    #[test]
    fn attention_mix_weights_values() {
        let probs = [0.25f32, 0.75];
        let v0 = [4.0f32];
        let v1 = [8.0f32];
        let mut out = [0.0f32];
        attention_mix(
            &mut out,
            &probs,
            |t| if t == 0 { &v0[..] } else { &v1[..] },
            1,
        );
        assert_close(out[0], 0.25 * 4.0 + 0.75 * 8.0, 1e-6);
    }
}
