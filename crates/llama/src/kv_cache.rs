//! Key/value cache for autoregressive decoding, plus the fixed-size slot
//! pool the serving layer admits requests into.
//!
//! One contiguous buffer per layer per side (`K`, `V`), laid out
//! `[seq_len, kv_dim]` row-major so that a timestep's keys for all KV heads
//! are contiguous — the same layout the accelerator stages into HBM. Slices
//! are handed out per `(layer, timestep, head)` so attention kernels never
//! index raw offsets.
//!
//! [`KvCachePool`] holds a fixed number of pre-allocated cache slots
//! (anything implementing [`PoolSlot`]) and checks them out one request at
//! a time. Released slots are logically reset — and, in debug builds,
//! poison-filled with NaN — so a reused slot is indistinguishable from a
//! fresh one and any read of a stale row surfaces immediately.

use crate::config::ModelConfig;

/// Per-layer K and V caches for a full context window.
#[derive(Debug, Clone)]
pub struct KvCache {
    k: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
    kv_dim: usize,
    head_dim: usize,
    seq_len: usize,
    /// Number of positions currently filled (same for every layer).
    len: usize,
}

impl KvCache {
    /// Allocates an empty cache sized for `config`.
    #[must_use]
    pub fn new(config: &ModelConfig) -> Self {
        let kv_dim = config.kv_dim();
        let per_layer = config.seq_len * kv_dim;
        Self {
            k: (0..config.n_layers).map(|_| vec![0.0; per_layer]).collect(),
            v: (0..config.n_layers).map(|_| vec![0.0; per_layer]).collect(),
            kv_dim,
            head_dim: config.head_dim(),
            seq_len: config.seq_len,
            len: 0,
        }
    }

    /// Number of positions stored so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no positions have been stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum number of positions the cache can hold.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.seq_len
    }

    /// Clears the logical contents (capacity is retained).
    pub fn reset(&mut self) {
        self.len = 0;
    }

    /// Shrinks the logical length to `len`, discarding every stored
    /// position at `len..`. A no-op when the cache is already at or below
    /// `len`. In debug builds the dropped rows are NaN-poisoned so a read
    /// past the truncation point is loud — the speculative-decoding
    /// rejection path relies on truncated rows never being observable.
    pub fn truncate(&mut self, len: usize) {
        if len >= self.len {
            return;
        }
        if cfg!(debug_assertions) {
            for side in [&mut self.k, &mut self.v] {
                for layer in side.iter_mut() {
                    layer[len * self.kv_dim..self.len * self.kv_dim].fill(f32::NAN);
                }
            }
        }
        self.len = len;
    }

    /// Writes the key and value rows for `pos` in `layer`. Positions must
    /// be written in order; writing position `p` sets the logical length to
    /// `p + 1` once the last layer has stored it.
    ///
    /// # Panics
    /// Panics if `pos` exceeds capacity or the slices are misshapen.
    pub fn store(&mut self, layer: usize, pos: usize, k: &[f32], v: &[f32]) {
        assert!(
            pos < self.seq_len,
            "pos {pos} out of cache capacity {}",
            self.seq_len
        );
        assert_eq!(k.len(), self.kv_dim, "bad key width");
        assert_eq!(v.len(), self.kv_dim, "bad value width");
        let off = pos * self.kv_dim;
        self.k[layer][off..off + self.kv_dim].copy_from_slice(k);
        self.v[layer][off..off + self.kv_dim].copy_from_slice(v);
        if layer == self.k.len() - 1 {
            self.len = self.len.max(pos + 1);
        }
    }

    /// Key row for `(layer, pos)` across all KV heads.
    #[must_use]
    pub fn key_row(&self, layer: usize, pos: usize) -> &[f32] {
        let off = pos * self.kv_dim;
        &self.k[layer][off..off + self.kv_dim]
    }

    /// Value row for `(layer, pos)` across all KV heads.
    #[must_use]
    pub fn value_row(&self, layer: usize, pos: usize) -> &[f32] {
        let off = pos * self.kv_dim;
        &self.v[layer][off..off + self.kv_dim]
    }

    /// Key vector of one KV head at `(layer, pos)`.
    #[must_use]
    pub fn key_head(&self, layer: usize, pos: usize, kv_head: usize) -> &[f32] {
        let row = self.key_row(layer, pos);
        &row[kv_head * self.head_dim..(kv_head + 1) * self.head_dim]
    }

    /// Value vector of one KV head at `(layer, pos)`.
    #[must_use]
    pub fn value_head(&self, layer: usize, pos: usize, kv_head: usize) -> &[f32] {
        let row = self.value_row(layer, pos);
        &row[kv_head * self.head_dim..(kv_head + 1) * self.head_dim]
    }

    /// Mutable key row (used by in-place RoPE application).
    pub fn key_row_mut(&mut self, layer: usize, pos: usize) -> &mut [f32] {
        let off = pos * self.kv_dim;
        &mut self.k[layer][off..off + self.kv_dim]
    }

    /// Total bytes of cached state for a full window.
    #[must_use]
    pub fn bytes(&self) -> usize {
        2 * self.k.len() * self.seq_len * self.kv_dim * std::mem::size_of::<f32>()
    }

    /// Overwrites every row with NaN. Correct decoding never reads a row it
    /// has not first stored, so after a poison-fill any stale read shows up
    /// as NaN logits instead of silently borrowing a previous tenant's
    /// context. Called by [`KvCachePool`] on release in debug builds.
    pub fn poison(&mut self) {
        for side in [&mut self.k, &mut self.v] {
            for layer in side.iter_mut() {
                layer.fill(f32::NAN);
            }
        }
    }
}

/// Anything the transformer forward pass can read attention context from
/// and append new K/V rows into. [`KvCache`] is the contiguous reference
/// implementation; the paged KV arena (crate `speedllm-pagedkv`) adapts a
/// block table over the same interface so attention reads go through a
/// logical-position → physical-block indirection instead of assuming
/// contiguity.
///
/// Object-safe on purpose: `DecodeSession` holds an external store as
/// `&mut dyn KvStore`.
pub trait KvStore {
    /// Number of positions fully stored (all layers written).
    fn kv_len(&self) -> usize;
    /// Maximum logical position count (the context window).
    fn kv_capacity(&self) -> usize;
    /// Writes the key and value rows for `pos` in `layer`. Writing the
    /// last layer advances [`KvStore::kv_len`] to `pos + 1`.
    fn store(&mut self, layer: usize, pos: usize, k: &[f32], v: &[f32]);
    /// Key vector of one KV head at `(layer, pos)`.
    fn key_head(&self, layer: usize, pos: usize, kv_head: usize) -> &[f32];
    /// Value vector of one KV head at `(layer, pos)`.
    fn value_head(&self, layer: usize, pos: usize, kv_head: usize) -> &[f32];
    /// Shrinks the logical length to `len`, discarding positions at
    /// `len..` (no-op when already at or below `len`). Speculative
    /// decoding uses this to roll back rejected draft positions; stores
    /// whose backing memory outlives the view (the paged arena) only
    /// shrink the logical mapping here — physical reclamation is the
    /// owner's job.
    fn truncate(&mut self, len: usize);
}

impl KvStore for KvCache {
    fn kv_len(&self) -> usize {
        self.len()
    }

    fn kv_capacity(&self) -> usize {
        self.capacity()
    }

    fn store(&mut self, layer: usize, pos: usize, k: &[f32], v: &[f32]) {
        KvCache::store(self, layer, pos, k, v);
    }

    fn key_head(&self, layer: usize, pos: usize, kv_head: usize) -> &[f32] {
        KvCache::key_head(self, layer, pos, kv_head)
    }

    fn value_head(&self, layer: usize, pos: usize, kv_head: usize) -> &[f32] {
        KvCache::value_head(self, layer, pos, kv_head)
    }

    fn truncate(&mut self, len: usize) {
        KvCache::truncate(self, len);
    }
}

/// Batched analogue of [`KvStore`]: per-sequence KV access addressed by a
/// batch index, so one batched forward pass can read and append context
/// for B independent sequences. A slice of `&mut K` stores is the flat
/// implementation (each sequence owns its cache); the paged arena provides
/// `PagedKvBatch` in `speedllm-pagedkv`, where B block tables share one
/// arena — something a slice of [`KvStore`]s cannot express because the
/// arena admits only one mutable view at a time.
///
/// Every method is the per-index twin of the corresponding [`KvStore`]
/// method and must behave identically to calling it on sequence `i`'s own
/// store: that equivalence is what keeps the batched forward pass
/// bit-identical to the per-sequence loop.
pub trait KvBatch {
    /// Number of sequences in the batch.
    fn batch_len(&self) -> usize;
    /// Positions fully stored for sequence `i` (all layers written).
    fn kv_len(&self, i: usize) -> usize;
    /// Context window of sequence `i`'s store.
    fn kv_capacity(&self, i: usize) -> usize;
    /// Writes sequence `i`'s key/value rows for `pos` in `layer`.
    fn store(&mut self, i: usize, layer: usize, pos: usize, k: &[f32], v: &[f32]);
    /// Key vector of one KV head at `(layer, pos)` for sequence `i`.
    fn key_head(&self, i: usize, layer: usize, pos: usize, kv_head: usize) -> &[f32];
    /// Value vector of one KV head at `(layer, pos)` for sequence `i`.
    fn value_head(&self, i: usize, layer: usize, pos: usize, kv_head: usize) -> &[f32];
}

impl<K: KvStore + ?Sized> KvBatch for [&mut K] {
    fn batch_len(&self) -> usize {
        self.len()
    }

    fn kv_len(&self, i: usize) -> usize {
        self[i].kv_len()
    }

    fn kv_capacity(&self, i: usize) -> usize {
        self[i].kv_capacity()
    }

    fn store(&mut self, i: usize, layer: usize, pos: usize, k: &[f32], v: &[f32]) {
        self[i].store(layer, pos, k, v);
    }

    fn key_head(&self, i: usize, layer: usize, pos: usize, kv_head: usize) -> &[f32] {
        self[i].key_head(layer, pos, kv_head)
    }

    fn value_head(&self, i: usize, layer: usize, pos: usize, kv_head: usize) -> &[f32] {
        self[i].value_head(layer, pos, kv_head)
    }
}

/// Per-sequence state a [`KvCachePool`] can manage. Implemented by
/// [`KvCache`] itself (the CPU reference backend) and by richer wrappers
/// such as the accelerator's per-sequence functional state.
pub trait PoolSlot {
    /// Clears the logical contents so the slot can host a new sequence.
    fn reset_slot(&mut self);
    /// Number of positions currently stored.
    fn slot_len(&self) -> usize;
    /// Debug-build guard: overwrite reusable storage with a poison pattern
    /// so stale reads are loud. Default is a no-op.
    fn poison_slot(&mut self) {}
}

impl PoolSlot for KvCache {
    fn reset_slot(&mut self) {
        self.reset();
    }

    fn slot_len(&self) -> usize {
        self.len()
    }

    fn poison_slot(&mut self) {
        self.poison();
    }
}

/// A slot checked out of a [`KvCachePool`]. Move-only: releasing consumes
/// it, so double-release is a compile error rather than a runtime bug.
#[derive(Debug)]
pub struct PooledSlot<S> {
    index: usize,
    state: S,
}

impl<S> PooledSlot<S> {
    /// The pool index this slot occupies (stable across its checkout).
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// The slot's sequence state.
    #[must_use]
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Mutable access to the slot's sequence state.
    pub fn state_mut(&mut self) -> &mut S {
        &mut self.state
    }
}

/// A fixed pool of pre-allocated sequence slots with checkout semantics:
/// [`KvCachePool::acquire`] moves a free slot out (admission), and
/// [`KvCachePool::release`] moves it back after resetting it (eviction).
/// The pool size is the serving layer's hard concurrency limit — when every
/// slot is checked out, admission stalls and requests queue.
#[derive(Debug)]
pub struct KvCachePool<S> {
    /// `None` = checked out. Index is the slot id.
    slots: Vec<Option<S>>,
    /// Free-slot indices, popped LIFO so reuse is exercised eagerly.
    free: Vec<usize>,
    /// Slots that have hosted at least one earlier sequence.
    used_before: Vec<bool>,
    /// Acquisitions that reused a previously-released slot.
    reuses: u64,
}

impl<S: PoolSlot> KvCachePool<S> {
    /// Builds a pool of `n` slots created by `make` (≥ 1).
    pub fn new(n: usize, mut make: impl FnMut() -> S) -> Self {
        assert!(n >= 1, "pool needs at least one slot");
        Self {
            slots: (0..n).map(|_| Some(make())).collect(),
            free: (0..n).rev().collect(),
            used_before: vec![false; n],
            reuses: 0,
        }
    }

    /// Total number of slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Slots currently checked out.
    #[must_use]
    pub fn in_use(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Free slots available for admission.
    #[must_use]
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// True when every slot has been released back.
    #[must_use]
    pub fn all_free(&self) -> bool {
        self.free.len() == self.slots.len()
    }

    /// Acquisitions that reused a previously-released slot.
    #[must_use]
    pub fn reuse_count(&self) -> u64 {
        self.reuses
    }

    /// Checks a slot out, or `None` when the pool is exhausted. The slot is
    /// handed out logically empty (`slot_len() == 0`).
    pub fn acquire(&mut self) -> Option<PooledSlot<S>> {
        let index = self.free.pop()?;
        let state = self.slots[index].take().expect("free slot present");
        if self.used_before[index] {
            self.reuses += 1;
        }
        self.used_before[index] = true;
        debug_assert_eq!(state.slot_len(), 0, "acquired slot not reset");
        Some(PooledSlot { index, state })
    }

    /// Returns a slot to the pool: resets it and, in debug builds,
    /// poison-fills its storage so a stale read by the next tenant is loud.
    ///
    /// # Panics
    /// Panics if the slot does not belong to this pool.
    pub fn release(&mut self, mut slot: PooledSlot<S>) {
        assert!(
            slot.index < self.slots.len() && self.slots[slot.index].is_none(),
            "slot {} does not belong to this pool",
            slot.index
        );
        slot.state.reset_slot();
        if cfg!(debug_assertions) {
            slot.state.poison_slot();
        }
        self.slots[slot.index] = Some(slot.state);
        self.free.push(slot.index);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> KvCache {
        KvCache::new(&ModelConfig::test_tiny())
    }

    #[test]
    fn starts_empty_with_full_capacity() {
        let c = cache();
        assert!(c.is_empty());
        assert_eq!(c.capacity(), 32);
        assert_eq!(c.bytes(), ModelConfig::test_tiny().kv_cache_bytes());
    }

    #[test]
    fn store_and_read_back() {
        let mut c = cache();
        let k: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let v: Vec<f32> = (0..8).map(|i| -(i as f32)).collect();
        for layer in 0..2 {
            c.store(layer, 0, &k, &v);
        }
        assert_eq!(c.len(), 1);
        assert_eq!(c.key_row(0, 0), &k[..]);
        assert_eq!(c.value_row(1, 0), &v[..]);
    }

    #[test]
    fn head_views_partition_the_row() {
        let mut c = cache();
        let k: Vec<f32> = (0..8).map(|i| i as f32).collect();
        c.store(0, 3, &k, &k);
        // test_tiny: head_dim=4, 2 kv heads.
        assert_eq!(c.key_head(0, 3, 0), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(c.key_head(0, 3, 1), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn len_tracks_last_layer_writes() {
        let mut c = cache();
        let z = vec![0.0f32; 8];
        c.store(0, 0, &z, &z);
        assert_eq!(c.len(), 0, "only first layer written");
        c.store(1, 0, &z, &z);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn reset_clears_len() {
        let mut c = cache();
        let z = vec![0.0f32; 8];
        c.store(1, 0, &z, &z);
        c.reset();
        assert!(c.is_empty());
    }

    #[test]
    fn truncate_drops_tail_positions_only() {
        let mut c = cache();
        let row: Vec<f32> = (0..8).map(|i| i as f32).collect();
        for pos in 0..4 {
            for layer in 0..2 {
                c.store(layer, pos, &row, &row);
            }
        }
        assert_eq!(c.len(), 4);
        c.truncate(2);
        assert_eq!(c.len(), 2);
        // Kept rows are untouched; dropped rows are poisoned in debug.
        assert_eq!(c.key_row(0, 1), &row[..]);
        if cfg!(debug_assertions) {
            assert!(c.key_row(0, 2).iter().all(|x| x.is_nan()));
            assert!(c.value_row(1, 3).iter().all(|x| x.is_nan()));
        }
        // Truncating to a larger length never grows the cache.
        c.truncate(10);
        assert_eq!(c.len(), 2);
        // Re-storing a truncated position restores normal operation.
        for layer in 0..2 {
            c.store(layer, 2, &row, &row);
        }
        assert_eq!(c.len(), 3);
        assert_eq!(c.key_row(0, 2), &row[..]);
    }

    #[test]
    #[should_panic(expected = "out of cache capacity")]
    fn overflow_panics() {
        let mut c = cache();
        let z = vec![0.0f32; 8];
        c.store(0, 32, &z, &z);
    }

    #[test]
    #[should_panic(expected = "bad key width")]
    fn misshapen_key_panics() {
        let mut c = cache();
        c.store(0, 0, &[0.0; 3], &[0.0; 8]);
    }

    #[test]
    fn key_row_mut_allows_inplace_rope() {
        let mut c = cache();
        let k: Vec<f32> = (0..8).map(|i| 1.0 + i as f32).collect();
        c.store(0, 1, &k, &k);
        crate::ops::rope_inplace(c.key_row_mut(0, 1), 1, 4, crate::ops::ROPE_THETA);
        assert_ne!(c.key_row(0, 1), &k[..]);
    }

    #[test]
    fn poison_marks_every_row() {
        let mut c = cache();
        let k: Vec<f32> = (0..8).map(|i| i as f32).collect();
        c.store(0, 0, &k, &k);
        c.poison();
        assert!(c.key_row(0, 0).iter().all(|x| x.is_nan()));
        assert!(c.value_row(1, 5).iter().all(|x| x.is_nan()));
    }

    fn pool() -> KvCachePool<KvCache> {
        let cfg = ModelConfig::test_tiny();
        KvCachePool::new(2, || KvCache::new(&cfg))
    }

    #[test]
    fn pool_checkout_bookkeeping() {
        let mut p = pool();
        assert_eq!(p.capacity(), 2);
        assert!(p.all_free());
        let a = p.acquire().unwrap();
        let b = p.acquire().unwrap();
        assert_ne!(a.index(), b.index());
        assert_eq!(p.in_use(), 2);
        assert!(p.acquire().is_none(), "pool exhausted");
        p.release(a);
        assert_eq!(p.available(), 1);
        p.release(b);
        assert!(p.all_free());
    }

    #[test]
    fn pool_reset_on_reuse_and_reuse_counter() {
        let mut p = pool();
        let z = vec![0.5f32; 8];
        let mut a = p.acquire().unwrap();
        for layer in 0..2 {
            a.state_mut().store(layer, 0, &z, &z);
        }
        assert_eq!(a.state().len(), 1);
        assert_eq!(p.reuse_count(), 0);
        p.release(a);
        // The freshly released slot comes back first (LIFO) and is empty.
        let b = p.acquire().unwrap();
        assert_eq!(b.state().len(), 0);
        assert_eq!(p.reuse_count(), 1);
        // In debug builds the old rows are poisoned, never silently stale.
        if cfg!(debug_assertions) {
            assert!(b.state().key_row(0, 0).iter().all(|x| x.is_nan()));
        }
        p.release(b);
    }

    #[test]
    #[should_panic(expected = "does not belong")]
    fn pool_rejects_foreign_slot() {
        let mut p = pool();
        let mut q = pool();
        let a = p.acquire().unwrap();
        // q never handed out slot `a.index()`, so its entry is occupied.
        q.release(a);
    }
}
