//! Key/value cache for autoregressive decoding.
//!
//! One contiguous buffer per layer per side (`K`, `V`), laid out
//! `[seq_len, kv_dim]` row-major so that a timestep's keys for all KV heads
//! are contiguous — the same layout the accelerator stages into HBM. Slices
//! are handed out per `(layer, timestep, head)` so attention kernels never
//! index raw offsets.

use crate::config::ModelConfig;

/// Per-layer K and V caches for a full context window.
#[derive(Debug, Clone)]
pub struct KvCache {
    k: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
    kv_dim: usize,
    head_dim: usize,
    seq_len: usize,
    /// Number of positions currently filled (same for every layer).
    len: usize,
}

impl KvCache {
    /// Allocates an empty cache sized for `config`.
    #[must_use]
    pub fn new(config: &ModelConfig) -> Self {
        let kv_dim = config.kv_dim();
        let per_layer = config.seq_len * kv_dim;
        Self {
            k: (0..config.n_layers).map(|_| vec![0.0; per_layer]).collect(),
            v: (0..config.n_layers).map(|_| vec![0.0; per_layer]).collect(),
            kv_dim,
            head_dim: config.head_dim(),
            seq_len: config.seq_len,
            len: 0,
        }
    }

    /// Number of positions stored so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no positions have been stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum number of positions the cache can hold.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.seq_len
    }

    /// Clears the logical contents (capacity is retained).
    pub fn reset(&mut self) {
        self.len = 0;
    }

    /// Writes the key and value rows for `pos` in `layer`. Positions must
    /// be written in order; writing position `p` sets the logical length to
    /// `p + 1` once the last layer has stored it.
    ///
    /// # Panics
    /// Panics if `pos` exceeds capacity or the slices are misshapen.
    pub fn store(&mut self, layer: usize, pos: usize, k: &[f32], v: &[f32]) {
        assert!(
            pos < self.seq_len,
            "pos {pos} out of cache capacity {}",
            self.seq_len
        );
        assert_eq!(k.len(), self.kv_dim, "bad key width");
        assert_eq!(v.len(), self.kv_dim, "bad value width");
        let off = pos * self.kv_dim;
        self.k[layer][off..off + self.kv_dim].copy_from_slice(k);
        self.v[layer][off..off + self.kv_dim].copy_from_slice(v);
        if layer == self.k.len() - 1 {
            self.len = self.len.max(pos + 1);
        }
    }

    /// Key row for `(layer, pos)` across all KV heads.
    #[must_use]
    pub fn key_row(&self, layer: usize, pos: usize) -> &[f32] {
        let off = pos * self.kv_dim;
        &self.k[layer][off..off + self.kv_dim]
    }

    /// Value row for `(layer, pos)` across all KV heads.
    #[must_use]
    pub fn value_row(&self, layer: usize, pos: usize) -> &[f32] {
        let off = pos * self.kv_dim;
        &self.v[layer][off..off + self.kv_dim]
    }

    /// Key vector of one KV head at `(layer, pos)`.
    #[must_use]
    pub fn key_head(&self, layer: usize, pos: usize, kv_head: usize) -> &[f32] {
        let row = self.key_row(layer, pos);
        &row[kv_head * self.head_dim..(kv_head + 1) * self.head_dim]
    }

    /// Value vector of one KV head at `(layer, pos)`.
    #[must_use]
    pub fn value_head(&self, layer: usize, pos: usize, kv_head: usize) -> &[f32] {
        let row = self.value_row(layer, pos);
        &row[kv_head * self.head_dim..(kv_head + 1) * self.head_dim]
    }

    /// Mutable key row (used by in-place RoPE application).
    pub fn key_row_mut(&mut self, layer: usize, pos: usize) -> &mut [f32] {
        let off = pos * self.kv_dim;
        &mut self.k[layer][off..off + self.kv_dim]
    }

    /// Total bytes of cached state for a full window.
    #[must_use]
    pub fn bytes(&self) -> usize {
        2 * self.k.len() * self.seq_len * self.kv_dim * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> KvCache {
        KvCache::new(&ModelConfig::test_tiny())
    }

    #[test]
    fn starts_empty_with_full_capacity() {
        let c = cache();
        assert!(c.is_empty());
        assert_eq!(c.capacity(), 32);
        assert_eq!(c.bytes(), ModelConfig::test_tiny().kv_cache_bytes());
    }

    #[test]
    fn store_and_read_back() {
        let mut c = cache();
        let k: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let v: Vec<f32> = (0..8).map(|i| -(i as f32)).collect();
        for layer in 0..2 {
            c.store(layer, 0, &k, &v);
        }
        assert_eq!(c.len(), 1);
        assert_eq!(c.key_row(0, 0), &k[..]);
        assert_eq!(c.value_row(1, 0), &v[..]);
    }

    #[test]
    fn head_views_partition_the_row() {
        let mut c = cache();
        let k: Vec<f32> = (0..8).map(|i| i as f32).collect();
        c.store(0, 3, &k, &k);
        // test_tiny: head_dim=4, 2 kv heads.
        assert_eq!(c.key_head(0, 3, 0), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(c.key_head(0, 3, 1), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn len_tracks_last_layer_writes() {
        let mut c = cache();
        let z = vec![0.0f32; 8];
        c.store(0, 0, &z, &z);
        assert_eq!(c.len(), 0, "only first layer written");
        c.store(1, 0, &z, &z);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn reset_clears_len() {
        let mut c = cache();
        let z = vec![0.0f32; 8];
        c.store(1, 0, &z, &z);
        c.reset();
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of cache capacity")]
    fn overflow_panics() {
        let mut c = cache();
        let z = vec![0.0f32; 8];
        c.store(0, 32, &z, &z);
    }

    #[test]
    #[should_panic(expected = "bad key width")]
    fn misshapen_key_panics() {
        let mut c = cache();
        c.store(0, 0, &[0.0; 3], &[0.0; 8]);
    }

    #[test]
    fn key_row_mut_allows_inplace_rope() {
        let mut c = cache();
        let k: Vec<f32> = (0..8).map(|i| 1.0 + i as f32).collect();
        c.store(0, 1, &k, &k);
        crate::ops::rope_inplace(c.key_row_mut(0, 1), 1, 4, crate::ops::ROPE_THETA);
        assert_ne!(c.key_row(0, 1), &k[..]);
    }
}
