//! Reference transformer forward pass (the CPU implementation of
//! llama2.c's `forward()`), used both as the correctness oracle for the
//! simulated accelerator and as the CPU baseline in examples.

use speedllm_telemetry as tel;

use crate::config::ModelConfig;
use crate::kv_cache::{KvCache, KvStore};
use crate::ops;
use crate::weights::TransformerWeights;

/// How dense matvecs are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatVecStrategy {
    /// Single-threaded kernels — bit-deterministic, the correctness oracle.
    Serial,
    /// Row-partitioned scoped threads ([`crate::parallel::par_matvec`]).
    Parallel {
        /// Worker count; clamped to at least 1.
        threads: usize,
    },
}

/// Scratch buffers reused across forward calls (llama2.c's `RunState`).
#[derive(Debug, Clone)]
struct RunState {
    /// Residual stream, `[dim]`.
    x: Vec<f32>,
    /// Normed input / attention output scratch, `[dim]`.
    xb: Vec<f32>,
    /// Second `[dim]` scratch (projection results).
    xb2: Vec<f32>,
    /// FFN gate activations, `[hidden_dim]`.
    hb: Vec<f32>,
    /// FFN up activations, `[hidden_dim]`.
    hb2: Vec<f32>,
    /// Query vector, `[dim]`.
    q: Vec<f32>,
    /// Key scratch for the current position, `[kv_dim]`.
    k: Vec<f32>,
    /// Value scratch for the current position, `[kv_dim]`.
    v: Vec<f32>,
    /// Attention scores for one head, `[seq_len]`.
    att: Vec<f32>,
    /// Output logits, `[vocab_size]`.
    logits: Vec<f32>,
}

impl RunState {
    fn new(c: &ModelConfig) -> Self {
        Self {
            x: vec![0.0; c.dim],
            xb: vec![0.0; c.dim],
            xb2: vec![0.0; c.dim],
            hb: vec![0.0; c.hidden_dim],
            hb2: vec![0.0; c.hidden_dim],
            q: vec![0.0; c.dim],
            k: vec![0.0; c.kv_dim()],
            v: vec![0.0; c.kv_dim()],
            att: vec![0.0; c.seq_len],
            logits: vec![0.0; c.vocab_size],
        }
    }
}

/// Dispatches a dense matvec according to the chosen strategy.
fn run_matvec(
    strategy: MatVecStrategy,
    out: &mut [f32],
    w: &[f32],
    x: &[f32],
    rows: usize,
    cols: usize,
) {
    match strategy {
        MatVecStrategy::Serial => ops::matvec(out, w, x, rows, cols),
        MatVecStrategy::Parallel { threads } => {
            crate::parallel::par_matvec(out, w, x, rows, cols, threads.max(1));
        }
    }
}

/// A transformer with its weights, KV cache, and scratch state: everything
/// needed to decode token-by-token.
pub struct Transformer {
    weights: TransformerWeights,
    state: RunState,
    kv: KvCache,
    strategy: MatVecStrategy,
}

impl Transformer {
    /// Wraps loaded or synthetic weights.
    #[must_use]
    pub fn new(weights: TransformerWeights) -> Self {
        let state = RunState::new(&weights.config);
        let kv = KvCache::new(&weights.config);
        Self {
            weights,
            state,
            kv,
            strategy: MatVecStrategy::Serial,
        }
    }

    /// Selects the matvec execution strategy.
    pub fn set_strategy(&mut self, strategy: MatVecStrategy) {
        self.strategy = strategy;
    }

    /// The architecture config.
    #[must_use]
    pub fn config(&self) -> &ModelConfig {
        &self.weights.config
    }

    /// Borrow of the underlying weights.
    #[must_use]
    pub fn weights(&self) -> &TransformerWeights {
        &self.weights
    }

    /// Current context length (positions already decoded).
    #[must_use]
    pub fn context_len(&self) -> usize {
        self.kv.len()
    }

    /// Clears the KV cache to start a fresh sequence.
    pub fn reset(&mut self) {
        self.kv.reset();
    }

    /// Runs one decode step: processes `token` at position `pos` and
    /// returns the logits over the vocabulary.
    ///
    /// # Panics
    /// Panics if `pos` is outside the model's context window or `token` is
    /// out of vocabulary.
    pub fn forward(&mut self, token: u32, pos: usize) -> &[f32] {
        Self::forward_into(
            &self.weights,
            &mut self.state,
            &mut self.kv,
            self.strategy,
            token,
            pos,
        );
        &self.state.logits
    }

    /// Runs one decode step against an **external** KV cache instead of the
    /// transformer's own — the multi-tenant entry point. A server holds one
    /// `Transformer` (weights + scratch) and a pool of caches, one per
    /// in-flight sequence; the internal cache is untouched, so single-tenant
    /// callers are unaffected.
    ///
    /// Bit-identical to [`Transformer::forward`]: both run the same serial
    /// kernels in the same order, so a sequence decoded through a pooled
    /// cache reproduces the single-tenant token stream exactly.
    ///
    /// # Panics
    /// Panics if `pos` is outside the context window, `token` is out of
    /// vocabulary, or `kv` was not sized for this model's config.
    pub fn forward_with_cache(&mut self, kv: &mut KvCache, token: u32, pos: usize) -> &[f32] {
        self.forward_with_kv(kv, token, pos)
    }

    /// Like [`Transformer::forward_with_cache`] but over any [`KvStore`]
    /// implementation — in particular a paged block-table view, where the
    /// logical position → physical row mapping goes through a per-sequence
    /// block table instead of assuming contiguity. The kernels and their
    /// execution order are identical, so paged and contiguous caches
    /// produce bit-identical logits.
    pub fn forward_with_kv<K: KvStore + ?Sized>(
        &mut self,
        kv: &mut K,
        token: u32,
        pos: usize,
    ) -> &[f32] {
        assert_eq!(
            kv.kv_capacity(),
            self.weights.config.seq_len,
            "kv cache sized for a different context window"
        );
        Self::forward_into(
            &self.weights,
            &mut self.state,
            kv,
            self.strategy,
            token,
            pos,
        );
        &self.state.logits
    }

    /// The forward pass over explicit parts, so callers can substitute the
    /// KV cache while reusing the shared scratch state.
    fn forward_into<K: KvStore + ?Sized>(
        weights: &TransformerWeights,
        state: &mut RunState,
        kv: &mut K,
        strategy: MatVecStrategy,
        token: u32,
        pos: usize,
    ) {
        let c = weights.config;
        assert!(
            pos < c.seq_len,
            "pos {pos} outside context window {}",
            c.seq_len
        );
        assert!(
            (token as usize) < c.vocab_size,
            "token {token} out of vocab"
        );
        let dim = c.dim;
        let kv_dim = c.kv_dim();
        let head_dim = c.head_dim();
        let gqa = c.gqa_group();

        let _fwd = tel::span("cpu", "forward").arg("pos", pos as i64);

        // Token embedding -> residual stream.
        state
            .x
            .copy_from_slice(weights.embedding_row(token as usize));

        for layer in 0..c.n_layers {
            let st = &mut *state;
            let lw = &weights.layers[layer];

            // ---- Attention block ----
            {
                let _att = tel::span("cpu", "attention").arg("layer", layer as i64);
                ops::rmsnorm(&mut st.xb, &st.x, &lw.rms_att);
                {
                    let _qkv = tel::span("cpu", "qkv").arg("layer", layer as i64);
                    run_matvec(strategy, &mut st.q, &lw.wq, &st.xb, dim, dim);
                    run_matvec(strategy, &mut st.k, &lw.wk, &st.xb, kv_dim, dim);
                    run_matvec(strategy, &mut st.v, &lw.wv, &st.xb, kv_dim, dim);
                }

                // Rotary embeddings on q (all heads) and k (kv heads).
                ops::rope_inplace(&mut st.q, pos, head_dim, ops::ROPE_THETA);
                ops::rope_inplace(&mut st.k, pos, head_dim, ops::ROPE_THETA);
                // Cache this position's K/V.
                kv.store(layer, pos, &st.k, &st.v);

                // Multi-head attention with grouped-query sharing.
                {
                    let _mha = tel::span("cpu", "mha").arg("layer", layer as i64);
                    for h in 0..c.n_heads {
                        let kv_head = h / gqa;
                        let q = &st.q[h * head_dim..(h + 1) * head_dim];
                        let att = &mut st.att[..pos + 1];
                        ops::attention_scores(att, q, |t| kv.key_head(layer, t, kv_head), pos);
                        ops::softmax(att);
                        let out = &mut st.xb[h * head_dim..(h + 1) * head_dim];
                        ops::attention_mix(out, att, |t| kv.value_head(layer, t, kv_head), pos);
                    }
                }

                // Output projection + residual.
                run_matvec(strategy, &mut st.xb2, &lw.wo, &st.xb, dim, dim);
                ops::add_inplace(&mut st.x, &st.xb2);
            }

            // ---- FFN block (SwiGLU) ----
            {
                let _ffn = tel::span("cpu", "ffn").arg("layer", layer as i64);
                ops::rmsnorm(&mut st.xb, &st.x, &lw.rms_ffn);
                run_matvec(strategy, &mut st.hb, &lw.w1, &st.xb, c.hidden_dim, dim);
                run_matvec(strategy, &mut st.hb2, &lw.w3, &st.xb, c.hidden_dim, dim);
                ops::swiglu(&mut st.hb, &st.hb2);
                run_matvec(strategy, &mut st.xb2, &lw.w2, &st.hb, dim, c.hidden_dim);
                ops::add_inplace(&mut st.x, &st.xb2);
            }
        }

        // Final norm + classifier.
        let _cls = tel::span("cpu", "classifier").arg("pos", pos as i64);
        ops::rmsnorm_inplace(&mut state.x, &weights.rms_final);
        run_matvec(
            strategy,
            &mut state.logits,
            weights.classifier(),
            &state.x,
            c.vocab_size,
            dim,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::TransformerWeights;

    fn model() -> Transformer {
        Transformer::new(TransformerWeights::synthetic(ModelConfig::test_tiny(), 42))
    }

    #[test]
    fn forward_produces_finite_logits() {
        let mut t = model();
        let logits = t.forward(5, 0);
        assert_eq!(logits.len(), 64);
        assert!(logits.iter().all(|x| x.is_finite()));
        assert!(logits.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn forward_is_deterministic() {
        let mut a = model();
        let mut b = model();
        for pos in 0..4 {
            let la = a.forward(pos as u32 + 1, pos).to_vec();
            let lb = b.forward(pos as u32 + 1, pos).to_vec();
            assert_eq!(la, lb);
        }
    }

    #[test]
    fn logits_depend_on_history() {
        // Same token at pos 1 after different pos-0 tokens must differ.
        let mut a = model();
        let mut b = model();
        a.forward(1, 0);
        b.forward(2, 0);
        let la = a.forward(3, 1).to_vec();
        let lb = b.forward(3, 1).to_vec();
        assert_ne!(la, lb);
    }

    #[test]
    fn reset_restores_initial_behavior() {
        let mut t = model();
        let first = t.forward(7, 0).to_vec();
        t.forward(9, 1);
        t.reset();
        let again = t.forward(7, 0).to_vec();
        assert_eq!(first, again);
    }

    #[test]
    fn parallel_strategy_matches_serial() {
        let weights = TransformerWeights::synthetic(ModelConfig::stories260k(), 3);
        let mut serial = Transformer::new(weights.clone());
        let mut par = Transformer::new(weights);
        par.set_strategy(MatVecStrategy::Parallel { threads: 4 });
        for pos in 0..3 {
            let a = serial.forward(10 + pos as u32, pos).to_vec();
            let b = par.forward(10 + pos as u32, pos).to_vec();
            let max_diff = a
                .iter()
                .zip(&b)
                .fold(0.0f32, |m, (x, y)| m.max((x - y).abs()));
            assert!(max_diff < 1e-4, "parallel diverged: {max_diff}");
        }
    }

    #[test]
    #[should_panic(expected = "outside context window")]
    fn pos_overflow_panics() {
        let mut t = model();
        t.forward(0, 32);
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn bad_token_panics() {
        let mut t = model();
        t.forward(64, 0);
    }

    #[test]
    fn context_len_advances() {
        let mut t = model();
        assert_eq!(t.context_len(), 0);
        t.forward(1, 0);
        assert_eq!(t.context_len(), 1);
        t.forward(2, 1);
        assert_eq!(t.context_len(), 2);
    }
}
