//! Reference transformer forward pass (the CPU implementation of
//! llama2.c's `forward()`), used both as the correctness oracle for the
//! simulated accelerator and as the CPU baseline in examples.

use speedllm_telemetry as tel;

use crate::config::ModelConfig;
use crate::kv_cache::{KvBatch, KvCache, KvStore};
use crate::ops;
use crate::quant::{QuantKind, QuantMatrix, QuantMode, QuantWeights};
use crate::weights::TransformerWeights;

/// How dense matvecs are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatVecStrategy {
    /// Single-threaded kernels — bit-deterministic, the correctness oracle.
    Serial,
    /// Row-partitioned scoped threads ([`crate::parallel::par_matvec`]).
    Parallel {
        /// Worker count; clamped to at least 1.
        threads: usize,
    },
}

/// Scratch buffers reused across forward calls (llama2.c's `RunState`).
#[derive(Debug, Clone)]
struct RunState {
    /// Residual stream, `[dim]`.
    x: Vec<f32>,
    /// Normed input / attention output scratch, `[dim]`.
    xb: Vec<f32>,
    /// Second `[dim]` scratch (projection results).
    xb2: Vec<f32>,
    /// FFN gate activations, `[hidden_dim]`.
    hb: Vec<f32>,
    /// FFN up activations, `[hidden_dim]`.
    hb2: Vec<f32>,
    /// Query vector, `[dim]`.
    q: Vec<f32>,
    /// Key scratch for the current position, `[kv_dim]`.
    k: Vec<f32>,
    /// Value scratch for the current position, `[kv_dim]`.
    v: Vec<f32>,
    /// Attention scores for one head, `[seq_len]`.
    att: Vec<f32>,
    /// Output logits, `[vocab_size]`.
    logits: Vec<f32>,
}

impl RunState {
    fn new(c: &ModelConfig) -> Self {
        Self {
            x: vec![0.0; c.dim],
            xb: vec![0.0; c.dim],
            xb2: vec![0.0; c.dim],
            hb: vec![0.0; c.hidden_dim],
            hb2: vec![0.0; c.hidden_dim],
            q: vec![0.0; c.dim],
            k: vec![0.0; c.kv_dim()],
            v: vec![0.0; c.kv_dim()],
            att: vec![0.0; c.seq_len],
            logits: vec![0.0; c.vocab_size],
        }
    }
}

/// Scratch buffers for the batched pass, token-row-major: row `r` of an
/// `[rows * width]` buffer is `[r * width..(r + 1) * width]`, the same
/// per-token layout as [`RunState`], so every per-token kernel (rmsnorm,
/// RoPE, attention, swiglu) runs on exactly the operands it would see in
/// the sequential path. A *row* is one token of one sequence: a decode
/// step contributes one row, a prefill chunk contributes one row per
/// chunk token, and rows of the same sequence are contiguous and
/// position-ordered. Only the GEMM staging buffer is row-major in the
/// [`ops::matmul`] output sense (`[out_rows][batch]`); its contents are
/// scattered back to token-row-major immediately after each matmul.
#[derive(Debug, Clone)]
struct BatchState {
    /// Allocated row capacity; buffers are sized for this many token rows.
    capacity: usize,
    /// Residual streams, `[capacity * dim]`.
    x: Vec<f32>,
    /// Normed input / attention output scratch, `[capacity * dim]`.
    xb: Vec<f32>,
    /// Projection results, `[capacity * dim]`.
    xb2: Vec<f32>,
    /// FFN gate activations, `[capacity * hidden_dim]`.
    hb: Vec<f32>,
    /// FFN up activations, `[capacity * hidden_dim]`.
    hb2: Vec<f32>,
    /// Query vectors, `[capacity * dim]`.
    q: Vec<f32>,
    /// Key scratch, `[capacity * kv_dim]`.
    k: Vec<f32>,
    /// Value scratch, `[capacity * kv_dim]`.
    v: Vec<f32>,
    /// Attention scores for one head of one row, `[seq_len]`.
    att: Vec<f32>,
    /// Output logits, `[capacity * vocab_size]`, sequence-major (one
    /// vector per *sequence*, for its last row).
    logits: Vec<f32>,
    /// Row-major GEMM staging, `[max(dim, hidden_dim, vocab) * capacity]`.
    gemm: Vec<f32>,
}

impl BatchState {
    fn new(c: &ModelConfig, capacity: usize) -> Self {
        let widest = c.dim.max(c.hidden_dim).max(c.vocab_size);
        Self {
            capacity,
            x: vec![0.0; capacity * c.dim],
            xb: vec![0.0; capacity * c.dim],
            xb2: vec![0.0; capacity * c.dim],
            hb: vec![0.0; capacity * c.hidden_dim],
            hb2: vec![0.0; capacity * c.hidden_dim],
            q: vec![0.0; capacity * c.dim],
            k: vec![0.0; capacity * c.kv_dim()],
            v: vec![0.0; capacity * c.kv_dim()],
            att: vec![0.0; c.seq_len],
            logits: vec![0.0; capacity * c.vocab_size],
            gemm: vec![0.0; capacity * widest],
        }
    }
}

/// Scatters a row-major GEMM result (`src[r * batch + b]`, the
/// [`ops::matmul`] output layout) into sequence-major scratch
/// (`dst[b * rows + r]`). Pure data movement — `O(rows × batch)` against
/// the `O(rows × cols)` weight stream it unlocks — and therefore neutral
/// to bit-identity.
fn scatter_to_seq(dst: &mut [f32], src: &[f32], rows: usize, batch: usize) {
    debug_assert_eq!(dst.len(), rows * batch);
    debug_assert_eq!(src.len(), rows * batch);
    for (b, seq) in dst.chunks_exact_mut(rows).enumerate() {
        for (r, o) in seq.iter_mut().enumerate() {
            *o = src[r * batch + b];
        }
    }
}

/// The weight stream the dense projections read: the original f32 tensors,
/// or a group-quantized compressed copy built once by
/// [`Transformer::set_quant_mode`]. Everything that is *not* a GEMM operand
/// (norm weights, the embedding gather, RoPE, attention over the KV cache)
/// always stays f32 — quantization only changes what streams through the
/// matmul kernels.
pub enum WeightStore {
    /// Stream the original f32 weights.
    F32,
    /// Stream a [`QuantWeights`] compressed copy through the fused
    /// dequant-GEMM kernels in [`crate::qgemm`].
    Quant(QuantWeights),
}

impl WeightStore {
    /// Builds the store for `mode` (quantizing every GEMM operand of
    /// `weights` when the mode is a quantized kind).
    #[must_use]
    pub fn for_mode(weights: &TransformerWeights, mode: QuantMode) -> Self {
        match mode.kind() {
            None => Self::F32,
            Some(kind) => Self::Quant(QuantWeights::quantize(weights, kind)),
        }
    }

    /// The mode this store realizes.
    #[must_use]
    pub fn mode(&self) -> QuantMode {
        match self {
            Self::F32 => QuantMode::F32,
            Self::Quant(q) => match q.kind() {
                QuantKind::Int8 => QuantMode::Int8,
                QuantKind::Int4 => QuantMode::Int4,
            },
        }
    }

    /// Bytes one GEMM tick streams when every projection is read once —
    /// the compressed stream for quantized stores, the f32 stream
    /// otherwise. This is what the `gemm_weight_bytes` telemetry counts.
    #[must_use]
    pub fn gemm_weight_bytes(&self, c: &ModelConfig) -> usize {
        match self {
            Self::F32 => c.gemm_weight_bytes(),
            Self::Quant(q) => q.gemm_weight_bytes(),
        }
    }

    fn layer(&self, layer: usize) -> Option<&crate::quant::QuantLayer> {
        match self {
            Self::F32 => None,
            Self::Quant(q) => Some(&q.layers[layer]),
        }
    }

    fn classifier(&self) -> Option<&QuantMatrix> {
        match self {
            Self::F32 => None,
            Self::Quant(q) => Some(&q.classifier),
        }
    }
}

/// One resolved GEMM operand: an f32 slice or a quantized matrix.
#[derive(Clone, Copy)]
enum MatW<'a> {
    F32(&'a [f32]),
    Quant(&'a QuantMatrix),
}

#[inline]
fn matw<'a>(q: Option<&'a QuantMatrix>, f: &'a [f32]) -> MatW<'a> {
    match q {
        Some(qm) => MatW::Quant(qm),
        None => MatW::F32(f),
    }
}

/// Dispatches a dense matvec according to the chosen strategy.
fn run_matvec(
    strategy: MatVecStrategy,
    out: &mut [f32],
    w: MatW<'_>,
    x: &[f32],
    rows: usize,
    cols: usize,
) {
    match w {
        MatW::F32(w) => match strategy {
            MatVecStrategy::Serial => ops::matvec(out, w, x, rows, cols),
            MatVecStrategy::Parallel { threads } => {
                crate::parallel::par_matvec(out, w, x, rows, cols, threads.max(1));
            }
        },
        MatW::Quant(qm) => {
            debug_assert_eq!((qm.rows(), qm.cols()), (rows, cols));
            match strategy {
                MatVecStrategy::Serial => crate::qgemm::qmatvec(out, qm, x),
                MatVecStrategy::Parallel { threads } => {
                    crate::parallel::par_qmatvec(out, qm, x, threads.max(1));
                }
            }
        }
    }
}

/// Dispatches a batched dense matmul according to the chosen strategy.
/// Serial and parallel kernels compute every element with the same
/// accumulation order (f32 [`ops::dot`], or its fused-dequant twin in
/// [`crate::qgemm`]), so the choice affects wall-clock only, never values.
fn run_matmul(
    strategy: MatVecStrategy,
    out: &mut [f32],
    w: MatW<'_>,
    xs: &[f32],
    rows: usize,
    cols: usize,
    batch: usize,
) {
    match w {
        MatW::F32(w) => match strategy {
            MatVecStrategy::Serial => ops::matmul(out, w, xs, rows, cols, batch),
            MatVecStrategy::Parallel { threads } => {
                crate::parallel::par_matmul(out, w, xs, rows, cols, batch, threads.max(1));
            }
        },
        MatW::Quant(qm) => {
            debug_assert_eq!((qm.rows(), qm.cols()), (rows, cols));
            match strategy {
                MatVecStrategy::Serial => crate::qgemm::qmatmul(out, qm, xs, batch),
                MatVecStrategy::Parallel { threads } => {
                    crate::parallel::par_qmatmul(out, qm, xs, batch, threads.max(1));
                }
            }
        }
    }
}

/// A transformer with its weights, KV cache, and scratch state: everything
/// needed to decode token-by-token.
pub struct Transformer {
    weights: TransformerWeights,
    /// Which weight stream the dense projections read; f32 until
    /// [`Transformer::set_quant_mode`] selects a quantized kind.
    store: WeightStore,
    state: RunState,
    /// Batched-decode scratch, allocated on first batched call and grown
    /// to the largest batch width seen since.
    batch: Option<BatchState>,
    kv: KvCache,
    strategy: MatVecStrategy,
}

impl Transformer {
    /// Wraps loaded or synthetic weights.
    #[must_use]
    pub fn new(weights: TransformerWeights) -> Self {
        let state = RunState::new(&weights.config);
        let kv = KvCache::new(&weights.config);
        Self {
            weights,
            store: WeightStore::F32,
            state,
            batch: None,
            kv,
            strategy: MatVecStrategy::Serial,
        }
    }

    /// Selects the matvec execution strategy.
    pub fn set_strategy(&mut self, strategy: MatVecStrategy) {
        self.strategy = strategy;
    }

    /// Selects the weight precision for every dense projection. A
    /// quantized mode builds the compressed [`WeightStore`] once
    /// (deterministically — same weights, same payload) and all forward
    /// entry points, sequential and batched alike, then stream it through
    /// the fused dequant-GEMM kernels. `QuantMode::F32` restores the
    /// original tensors.
    pub fn set_quant_mode(&mut self, mode: QuantMode) {
        if self.store.mode() != mode {
            self.store = WeightStore::for_mode(&self.weights, mode);
        }
    }

    /// The active weight precision.
    #[must_use]
    pub fn quant_mode(&self) -> QuantMode {
        self.store.mode()
    }

    /// Bytes one GEMM tick streams under the active weight precision —
    /// what the `cpu.gemm_weight_bytes` telemetry adds per forward call.
    #[must_use]
    pub fn gemm_weight_bytes(&self) -> usize {
        self.store.gemm_weight_bytes(&self.weights.config)
    }

    /// The architecture config.
    #[must_use]
    pub fn config(&self) -> &ModelConfig {
        &self.weights.config
    }

    /// Borrow of the underlying weights.
    #[must_use]
    pub fn weights(&self) -> &TransformerWeights {
        &self.weights
    }

    /// Current context length (positions already decoded).
    #[must_use]
    pub fn context_len(&self) -> usize {
        self.kv.len()
    }

    /// Clears the KV cache to start a fresh sequence.
    pub fn reset(&mut self) {
        self.kv.reset();
    }

    /// Rolls the internal KV cache back to `len` positions (no-op if it is
    /// already at or below `len`). Speculative decoding uses this to
    /// discard a draft model's rejected continuations.
    pub fn truncate_kv(&mut self, len: usize) {
        self.kv.truncate(len);
    }

    /// Runs one decode step: processes `token` at position `pos` and
    /// returns the logits over the vocabulary.
    ///
    /// # Panics
    /// Panics if `pos` is outside the model's context window or `token` is
    /// out of vocabulary.
    pub fn forward(&mut self, token: u32, pos: usize) -> &[f32] {
        Self::forward_into(
            &self.weights,
            &self.store,
            &mut self.state,
            &mut self.kv,
            self.strategy,
            token,
            pos,
        );
        &self.state.logits
    }

    /// Runs one decode step against an **external** KV cache instead of the
    /// transformer's own — the multi-tenant entry point. A server holds one
    /// `Transformer` (weights + scratch) and a pool of caches, one per
    /// in-flight sequence; the internal cache is untouched, so single-tenant
    /// callers are unaffected.
    ///
    /// Bit-identical to [`Transformer::forward`]: both run the same serial
    /// kernels in the same order, so a sequence decoded through a pooled
    /// cache reproduces the single-tenant token stream exactly.
    ///
    /// # Panics
    /// Panics if `pos` is outside the context window, `token` is out of
    /// vocabulary, or `kv` was not sized for this model's config.
    pub fn forward_with_cache(&mut self, kv: &mut KvCache, token: u32, pos: usize) -> &[f32] {
        self.forward_with_kv(kv, token, pos)
    }

    /// Like [`Transformer::forward_with_cache`] but over any [`KvStore`]
    /// implementation — in particular a paged block-table view, where the
    /// logical position → physical row mapping goes through a per-sequence
    /// block table instead of assuming contiguity. The kernels and their
    /// execution order are identical, so paged and contiguous caches
    /// produce bit-identical logits.
    pub fn forward_with_kv<K: KvStore + ?Sized>(
        &mut self,
        kv: &mut K,
        token: u32,
        pos: usize,
    ) -> &[f32] {
        assert_eq!(
            kv.kv_capacity(),
            self.weights.config.seq_len,
            "kv cache sized for a different context window"
        );
        Self::forward_into(
            &self.weights,
            &self.store,
            &mut self.state,
            kv,
            self.strategy,
            token,
            pos,
        );
        &self.state.logits
    }

    /// Runs one decode step for a whole **batch** of independent sequences
    /// in a single walk over the layers: `tokens[i]` extends sequence `i`
    /// (whose context lives at index `i` of `kv`) at `positions[i]`.
    /// Returns the logits sequence-major — sequence `i`'s vocabulary
    /// distribution is `out[i * vocab..(i + 1) * vocab]`.
    ///
    /// The point is **weight reuse**: every dense projection runs as one
    /// [`ops::matmul`] over all B activation columns, so each weight
    /// matrix is streamed from memory once per step instead of once per
    /// sequence. Decode is bandwidth-bound, which is why serve throughput
    /// scales with batch width under this entry point (DESIGN.md §13).
    ///
    /// **Bit-identical** to calling [`Transformer::forward_with_kv`] once
    /// per sequence: the batched kernels compute every element with the
    /// same `dot` over the same operands in the same order, the
    /// per-sequence kernels (rmsnorm, RoPE, attention, SwiGLU) run on
    /// sequence-major slices identical to the sequential scratch, and
    /// sequences share no state, so the layer-interleaved schedule cannot
    /// change any value.
    ///
    /// # Panics
    /// Panics on an empty batch, mismatched `tokens`/`positions`/batch
    /// lengths, a position outside the context window, an out-of-vocab
    /// token, or a store sized for a different context window.
    pub fn forward_batch_with_kv<B: KvBatch + ?Sized>(
        &mut self,
        kv: &mut B,
        tokens: &[u32],
        positions: &[usize],
    ) -> &[f32] {
        let n = tokens.len();
        assert!(n >= 1, "empty batch");
        assert_eq!(n, positions.len(), "one position per token");
        let counts = vec![1usize; n];
        self.forward_runs_with_kv(kv, tokens, &counts, positions)
    }

    /// The **mixed-batch** generalization of
    /// [`Transformer::forward_batch_with_kv`]: one walk over the layers
    /// carries a variable number of tokens per sequence, so a single
    /// weight-streaming GEMM tick can serve N decode tokens *and* M
    /// prefill-chunk tokens at once (Sarathi-style unified batching,
    /// DESIGN.md §14).
    ///
    /// Sequence `i` contributes the *run* of `counts[i]` consecutive
    /// tokens starting at `starts[i]` (its rows are the corresponding
    /// slice of `tokens`, which concatenates all runs in sequence order).
    /// A decode step is a run of length 1; a prefill chunk is a run of
    /// its chunk length. Returns the logits of each sequence's **last**
    /// run token, sequence-major: `out[i * vocab..(i + 1) * vocab]`.
    ///
    /// **Bit-identical** to prefilling/decoding each run token-by-token
    /// through [`Transformer::forward_with_kv`]: every dense projection
    /// computes each element with the same `dot` over the same operands,
    /// the per-row kernels run on row slices identical to the sequential
    /// scratch, and attention is causally exact within a run — all K/V
    /// rows of a layer are stored before any row attends, and a row at
    /// position `p` reads keys `0..=p` only, which by the run's
    /// contiguity are exactly the rows the sequential pass would have
    /// cached. Layer-major chunk order cannot change any value because a
    /// token's QKV inputs depend on earlier tokens only through attention
    /// in *previous* layers.
    ///
    /// # Panics
    /// Panics on an empty batch, an empty run, mismatched
    /// `tokens`/`counts`/`starts`/batch lengths, a position outside the
    /// context window, an out-of-vocab token, or a store sized for a
    /// different context window.
    pub fn forward_runs_with_kv<B: KvBatch + ?Sized>(
        &mut self,
        kv: &mut B,
        tokens: &[u32],
        counts: &[usize],
        starts: &[usize],
    ) -> &[f32] {
        let c = self.weights.config;
        let n_seqs = counts.len();
        let rows = tokens.len();
        assert!(n_seqs >= 1, "empty batch");
        assert_eq!(n_seqs, starts.len(), "one start position per sequence");
        assert_eq!(n_seqs, kv.batch_len(), "one KV store per sequence");
        assert_eq!(
            rows,
            counts.iter().sum::<usize>(),
            "token rows must match run counts"
        );
        for i in 0..n_seqs {
            assert!(counts[i] >= 1, "empty run for sequence {i}");
            assert_eq!(
                kv.kv_capacity(i),
                c.seq_len,
                "kv store {i} sized for a different context window"
            );
        }
        if self.batch.as_ref().map_or(true, |b| b.capacity < rows) {
            self.batch = Some(BatchState::new(&c, rows));
        }
        let bs = self.batch.as_mut().expect("batch state just ensured");
        Self::forward_runs_into(
            &self.weights,
            &self.store,
            bs,
            kv,
            self.strategy,
            tokens,
            counts,
            starts,
            false,
        );
        &bs.logits[..n_seqs * c.vocab_size]
    }

    /// Like [`Transformer::forward_runs_with_kv`], but returns the logits
    /// of **every** token row, row-major: `out[r * vocab..(r + 1) * vocab]`
    /// is the distribution after row `r` of `tokens` (rows ordered as the
    /// concatenated runs). This is the verification primitive for
    /// speculative decoding: one weight-streaming pass scores a pending
    /// token plus K drafted continuations, and each row's logits are
    /// bit-identical to what [`Transformer::forward_with_kv`] would have
    /// produced decoding that prefix token-by-token — the classifier is
    /// the same GEMM kernel over the same normed residuals, just over all
    /// rows instead of each sequence's last.
    ///
    /// # Panics
    /// Same conditions as [`Transformer::forward_runs_with_kv`].
    pub fn forward_runs_all_logits_with_kv<B: KvBatch + ?Sized>(
        &mut self,
        kv: &mut B,
        tokens: &[u32],
        counts: &[usize],
        starts: &[usize],
    ) -> &[f32] {
        let c = self.weights.config;
        let n_seqs = counts.len();
        let rows = tokens.len();
        assert!(n_seqs >= 1, "empty batch");
        assert_eq!(n_seqs, starts.len(), "one start position per sequence");
        assert_eq!(n_seqs, kv.batch_len(), "one KV store per sequence");
        assert_eq!(
            rows,
            counts.iter().sum::<usize>(),
            "token rows must match run counts"
        );
        for i in 0..n_seqs {
            assert!(counts[i] >= 1, "empty run for sequence {i}");
            assert_eq!(
                kv.kv_capacity(i),
                c.seq_len,
                "kv store {i} sized for a different context window"
            );
        }
        if self.batch.as_ref().map_or(true, |b| b.capacity < rows) {
            self.batch = Some(BatchState::new(&c, rows));
        }
        let bs = self.batch.as_mut().expect("batch state just ensured");
        Self::forward_runs_into(
            &self.weights,
            &self.store,
            bs,
            kv,
            self.strategy,
            tokens,
            counts,
            starts,
            true,
        );
        &bs.logits[..rows * c.vocab_size]
    }

    /// The mixed-batch forward pass over explicit parts (the batched twin
    /// of [`Transformer::forward_into`]): same layer walk, but each dense
    /// projection is one GEMM over every token row of every run, and
    /// everything per-token runs on that row's slice of the row-major
    /// scratch. With `all_logits = false` the classifier runs only over
    /// each sequence's last row — the sequential pass computes (and
    /// discards) logits for intermediate prefill tokens, so skipping them
    /// cannot change any value that is ever observed. With
    /// `all_logits = true` every row is normed and classified, filling
    /// `bs.logits` row-major `[rows * vocab]` for speculative
    /// verification.
    #[allow(clippy::too_many_arguments)]
    fn forward_runs_into<B: KvBatch + ?Sized>(
        weights: &TransformerWeights,
        store: &WeightStore,
        bs: &mut BatchState,
        kv: &mut B,
        strategy: MatVecStrategy,
        tokens: &[u32],
        counts: &[usize],
        starts: &[usize],
        all_logits: bool,
    ) {
        let c = weights.config;
        let rows = tokens.len();
        let n_seqs = counts.len();
        let dim = c.dim;
        let kv_dim = c.kv_dim();
        let head_dim = c.head_dim();
        let gqa = c.gqa_group();
        let hid = c.hidden_dim;

        // Row maps: which sequence each token row extends, at which
        // position. Rows of one run are contiguous and position-ordered,
        // which is what makes in-run attention causally exact.
        let mut row_seq = Vec::with_capacity(rows);
        let mut row_pos = Vec::with_capacity(rows);
        for (i, (&cnt, &start)) in counts.iter().zip(starts).enumerate() {
            for off in 0..cnt {
                row_seq.push(i);
                row_pos.push(start + off);
            }
        }
        for (&tok, &pos) in tokens.iter().zip(&row_pos) {
            assert!(
                pos < c.seq_len,
                "pos {pos} outside context window {}",
                c.seq_len
            );
            assert!((tok as usize) < c.vocab_size, "token {tok} out of vocab");
        }

        let _fwd = tel::span("cpu", "forward_batch")
            .arg("batch", n_seqs as i64)
            .arg("rows", rows as i64);
        if tel::enabled() {
            // One mixed tick streams the GEMM weights once for all `rows`
            // tokens (decode + prefill alike); `gemm_weight_bytes /
            // gemm_tokens` is bytes-per-token. Quantized stores report the
            // compressed stream.
            tel::metrics::counter_add("cpu.gemm_weight_bytes", store.gemm_weight_bytes(&c) as u64);
            tel::metrics::counter_add("cpu.gemm_tokens", rows as u64);
            tel::metrics::gauge_set("cpu.gemm_batch_width", rows as f64);
        }

        // Gather: token embeddings -> per-row residual streams.
        for (r, &tok) in tokens.iter().enumerate() {
            bs.x[r * dim..(r + 1) * dim].copy_from_slice(weights.embedding_row(tok as usize));
        }

        for layer in 0..c.n_layers {
            let lw = &weights.layers[layer];
            let qlw = store.layer(layer);

            // ---- Attention block ----
            {
                let _att = tel::span("cpu", "attention_batch").arg("layer", layer as i64);
                for r in 0..rows {
                    ops::rmsnorm(
                        &mut bs.xb[r * dim..(r + 1) * dim],
                        &bs.x[r * dim..(r + 1) * dim],
                        &lw.rms_att,
                    );
                }
                {
                    let _qkv = tel::span("cpu", "qkv_batch").arg("layer", layer as i64);
                    run_matmul(
                        strategy,
                        &mut bs.gemm[..dim * rows],
                        matw(qlw.map(|q| &q.wq), &lw.wq),
                        &bs.xb[..rows * dim],
                        dim,
                        dim,
                        rows,
                    );
                    scatter_to_seq(&mut bs.q[..rows * dim], &bs.gemm[..dim * rows], dim, rows);
                    run_matmul(
                        strategy,
                        &mut bs.gemm[..kv_dim * rows],
                        matw(qlw.map(|q| &q.wk), &lw.wk),
                        &bs.xb[..rows * dim],
                        kv_dim,
                        dim,
                        rows,
                    );
                    scatter_to_seq(
                        &mut bs.k[..rows * kv_dim],
                        &bs.gemm[..kv_dim * rows],
                        kv_dim,
                        rows,
                    );
                    run_matmul(
                        strategy,
                        &mut bs.gemm[..kv_dim * rows],
                        matw(qlw.map(|q| &q.wv), &lw.wv),
                        &bs.xb[..rows * dim],
                        kv_dim,
                        dim,
                        rows,
                    );
                    scatter_to_seq(
                        &mut bs.v[..rows * kv_dim],
                        &bs.gemm[..kv_dim * rows],
                        kv_dim,
                        rows,
                    );
                }

                // RoPE + KV store for every row **before** any row
                // attends: a prefill row at position p then finds all
                // same-run keys `<= p` already cached, exactly as the
                // token-sequential pass would have left them.
                for r in 0..rows {
                    let pos = row_pos[r];
                    ops::rope_inplace(
                        &mut bs.q[r * dim..(r + 1) * dim],
                        pos,
                        head_dim,
                        ops::ROPE_THETA,
                    );
                    ops::rope_inplace(
                        &mut bs.k[r * kv_dim..(r + 1) * kv_dim],
                        pos,
                        head_dim,
                        ops::ROPE_THETA,
                    );
                    kv.store(
                        row_seq[r],
                        layer,
                        pos,
                        &bs.k[r * kv_dim..(r + 1) * kv_dim],
                        &bs.v[r * kv_dim..(r + 1) * kv_dim],
                    );
                }

                {
                    let _mha = tel::span("cpu", "mha_batch").arg("layer", layer as i64);
                    for r in 0..rows {
                        let pos = row_pos[r];
                        let b = row_seq[r];
                        for h in 0..c.n_heads {
                            let kv_head = h / gqa;
                            let q = &bs.q[r * dim + h * head_dim..r * dim + (h + 1) * head_dim];
                            // Causal mask inside a mixed tick: row `r`
                            // scores positions `0..=pos` of its own
                            // sequence only — later run rows are invisible
                            // by construction.
                            let att = &mut bs.att[..pos + 1];
                            ops::attention_scores(
                                att,
                                q,
                                |t| kv.key_head(b, layer, t, kv_head),
                                pos,
                            );
                            ops::softmax(att);
                            let out =
                                &mut bs.xb[r * dim + h * head_dim..r * dim + (h + 1) * head_dim];
                            ops::attention_mix(
                                out,
                                att,
                                |t| kv.value_head(b, layer, t, kv_head),
                                pos,
                            );
                        }
                    }
                }

                run_matmul(
                    strategy,
                    &mut bs.gemm[..dim * rows],
                    matw(qlw.map(|q| &q.wo), &lw.wo),
                    &bs.xb[..rows * dim],
                    dim,
                    dim,
                    rows,
                );
                scatter_to_seq(&mut bs.xb2[..rows * dim], &bs.gemm[..dim * rows], dim, rows);
                for r in 0..rows {
                    ops::add_inplace(
                        &mut bs.x[r * dim..(r + 1) * dim],
                        &bs.xb2[r * dim..(r + 1) * dim],
                    );
                }
            }

            // ---- FFN block (SwiGLU) ----
            {
                let _ffn = tel::span("cpu", "ffn_batch").arg("layer", layer as i64);
                for r in 0..rows {
                    ops::rmsnorm(
                        &mut bs.xb[r * dim..(r + 1) * dim],
                        &bs.x[r * dim..(r + 1) * dim],
                        &lw.rms_ffn,
                    );
                }
                run_matmul(
                    strategy,
                    &mut bs.gemm[..hid * rows],
                    matw(qlw.map(|q| &q.w1), &lw.w1),
                    &bs.xb[..rows * dim],
                    hid,
                    dim,
                    rows,
                );
                scatter_to_seq(&mut bs.hb[..rows * hid], &bs.gemm[..hid * rows], hid, rows);
                run_matmul(
                    strategy,
                    &mut bs.gemm[..hid * rows],
                    matw(qlw.map(|q| &q.w3), &lw.w3),
                    &bs.xb[..rows * dim],
                    hid,
                    dim,
                    rows,
                );
                scatter_to_seq(&mut bs.hb2[..rows * hid], &bs.gemm[..hid * rows], hid, rows);
                for r in 0..rows {
                    ops::swiglu(
                        &mut bs.hb[r * hid..(r + 1) * hid],
                        &bs.hb2[r * hid..(r + 1) * hid],
                    );
                }
                run_matmul(
                    strategy,
                    &mut bs.gemm[..dim * rows],
                    matw(qlw.map(|q| &q.w2), &lw.w2),
                    &bs.hb[..rows * hid],
                    dim,
                    hid,
                    rows,
                );
                scatter_to_seq(&mut bs.xb2[..rows * dim], &bs.gemm[..dim * rows], dim, rows);
                for r in 0..rows {
                    ops::add_inplace(
                        &mut bs.x[r * dim..(r + 1) * dim],
                        &bs.xb2[r * dim..(r + 1) * dim],
                    );
                }
            }
        }

        // Final norm + classifier. In the `all_logits` path (speculative
        // verification) every row is normed in place and classified in one
        // GEMM, landing row-major in `logits`; each row's values match the
        // sequential classifier bit-for-bit because rmsnorm and the GEMM
        // column for that row see exactly the sequential operands.
        if all_logits {
            let _cls = tel::span("cpu", "classifier_batch").arg("batch", rows as i64);
            for r in 0..rows {
                ops::rmsnorm_inplace(&mut bs.x[r * dim..(r + 1) * dim], &weights.rms_final);
            }
            run_matmul(
                strategy,
                &mut bs.gemm[..c.vocab_size * rows],
                matw(store.classifier(), weights.classifier()),
                &bs.x[..rows * dim],
                c.vocab_size,
                dim,
                rows,
            );
            scatter_to_seq(
                &mut bs.logits[..rows * c.vocab_size],
                &bs.gemm[..c.vocab_size * rows],
                c.vocab_size,
                rows,
            );
            return;
        }

        // Otherwise classify each sequence's **last** row only
        // (intermediate prefill logits are never observed). The last rows
        // are compacted into `xb` so the classifier still runs as one
        // GEMM streaming the weight matrix once.
        let _cls = tel::span("cpu", "classifier_batch").arg("batch", n_seqs as i64);
        let mut last_rows = Vec::with_capacity(n_seqs);
        let mut running = 0usize;
        for &cnt in counts {
            running += cnt;
            last_rows.push(running - 1);
        }
        for &r in &last_rows {
            ops::rmsnorm_inplace(&mut bs.x[r * dim..(r + 1) * dim], &weights.rms_final);
        }
        for (i, &r) in last_rows.iter().enumerate() {
            let BatchState { x, xb, .. } = bs;
            xb[i * dim..(i + 1) * dim].copy_from_slice(&x[r * dim..(r + 1) * dim]);
        }
        run_matmul(
            strategy,
            &mut bs.gemm[..c.vocab_size * n_seqs],
            matw(store.classifier(), weights.classifier()),
            &bs.xb[..n_seqs * dim],
            c.vocab_size,
            dim,
            n_seqs,
        );
        scatter_to_seq(
            &mut bs.logits[..n_seqs * c.vocab_size],
            &bs.gemm[..c.vocab_size * n_seqs],
            c.vocab_size,
            n_seqs,
        );
    }

    /// The forward pass over explicit parts, so callers can substitute the
    /// KV cache while reusing the shared scratch state.
    fn forward_into<K: KvStore + ?Sized>(
        weights: &TransformerWeights,
        store: &WeightStore,
        state: &mut RunState,
        kv: &mut K,
        strategy: MatVecStrategy,
        token: u32,
        pos: usize,
    ) {
        let c = weights.config;
        assert!(
            pos < c.seq_len,
            "pos {pos} outside context window {}",
            c.seq_len
        );
        assert!(
            (token as usize) < c.vocab_size,
            "token {token} out of vocab"
        );
        let dim = c.dim;
        let kv_dim = c.kv_dim();
        let head_dim = c.head_dim();
        let gqa = c.gqa_group();

        let _fwd = tel::span("cpu", "forward").arg("pos", pos as i64);
        if tel::enabled() {
            // The sequential path streams the GEMM weights once per token —
            // the baseline the batched counters are compared against.
            // Quantized stores report the compressed stream.
            tel::metrics::counter_add("cpu.gemm_weight_bytes", store.gemm_weight_bytes(&c) as u64);
            tel::metrics::counter_add("cpu.gemm_tokens", 1);
            tel::metrics::gauge_set("cpu.gemm_batch_width", 1.0);
        }

        // Token embedding -> residual stream.
        state
            .x
            .copy_from_slice(weights.embedding_row(token as usize));

        for layer in 0..c.n_layers {
            let st = &mut *state;
            let lw = &weights.layers[layer];
            let qlw = store.layer(layer);

            // ---- Attention block ----
            {
                let _att = tel::span("cpu", "attention").arg("layer", layer as i64);
                ops::rmsnorm(&mut st.xb, &st.x, &lw.rms_att);
                {
                    let _qkv = tel::span("cpu", "qkv").arg("layer", layer as i64);
                    run_matvec(
                        strategy,
                        &mut st.q,
                        matw(qlw.map(|q| &q.wq), &lw.wq),
                        &st.xb,
                        dim,
                        dim,
                    );
                    run_matvec(
                        strategy,
                        &mut st.k,
                        matw(qlw.map(|q| &q.wk), &lw.wk),
                        &st.xb,
                        kv_dim,
                        dim,
                    );
                    run_matvec(
                        strategy,
                        &mut st.v,
                        matw(qlw.map(|q| &q.wv), &lw.wv),
                        &st.xb,
                        kv_dim,
                        dim,
                    );
                }

                // Rotary embeddings on q (all heads) and k (kv heads).
                ops::rope_inplace(&mut st.q, pos, head_dim, ops::ROPE_THETA);
                ops::rope_inplace(&mut st.k, pos, head_dim, ops::ROPE_THETA);
                // Cache this position's K/V.
                kv.store(layer, pos, &st.k, &st.v);

                // Multi-head attention with grouped-query sharing.
                {
                    let _mha = tel::span("cpu", "mha").arg("layer", layer as i64);
                    for h in 0..c.n_heads {
                        let kv_head = h / gqa;
                        let q = &st.q[h * head_dim..(h + 1) * head_dim];
                        let att = &mut st.att[..pos + 1];
                        ops::attention_scores(att, q, |t| kv.key_head(layer, t, kv_head), pos);
                        ops::softmax(att);
                        let out = &mut st.xb[h * head_dim..(h + 1) * head_dim];
                        ops::attention_mix(out, att, |t| kv.value_head(layer, t, kv_head), pos);
                    }
                }

                // Output projection + residual.
                run_matvec(
                    strategy,
                    &mut st.xb2,
                    matw(qlw.map(|q| &q.wo), &lw.wo),
                    &st.xb,
                    dim,
                    dim,
                );
                ops::add_inplace(&mut st.x, &st.xb2);
            }

            // ---- FFN block (SwiGLU) ----
            {
                let _ffn = tel::span("cpu", "ffn").arg("layer", layer as i64);
                ops::rmsnorm(&mut st.xb, &st.x, &lw.rms_ffn);
                run_matvec(
                    strategy,
                    &mut st.hb,
                    matw(qlw.map(|q| &q.w1), &lw.w1),
                    &st.xb,
                    c.hidden_dim,
                    dim,
                );
                run_matvec(
                    strategy,
                    &mut st.hb2,
                    matw(qlw.map(|q| &q.w3), &lw.w3),
                    &st.xb,
                    c.hidden_dim,
                    dim,
                );
                ops::swiglu(&mut st.hb, &st.hb2);
                run_matvec(
                    strategy,
                    &mut st.xb2,
                    matw(qlw.map(|q| &q.w2), &lw.w2),
                    &st.hb,
                    dim,
                    c.hidden_dim,
                );
                ops::add_inplace(&mut st.x, &st.xb2);
            }
        }

        // Final norm + classifier.
        let _cls = tel::span("cpu", "classifier").arg("pos", pos as i64);
        ops::rmsnorm_inplace(&mut state.x, &weights.rms_final);
        run_matvec(
            strategy,
            &mut state.logits,
            matw(store.classifier(), weights.classifier()),
            &state.x,
            c.vocab_size,
            dim,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::TransformerWeights;

    fn model() -> Transformer {
        Transformer::new(TransformerWeights::synthetic(ModelConfig::test_tiny(), 42))
    }

    #[test]
    fn forward_produces_finite_logits() {
        let mut t = model();
        let logits = t.forward(5, 0);
        assert_eq!(logits.len(), 64);
        assert!(logits.iter().all(|x| x.is_finite()));
        assert!(logits.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn forward_is_deterministic() {
        let mut a = model();
        let mut b = model();
        for pos in 0..4 {
            let la = a.forward(pos as u32 + 1, pos).to_vec();
            let lb = b.forward(pos as u32 + 1, pos).to_vec();
            assert_eq!(la, lb);
        }
    }

    #[test]
    fn logits_depend_on_history() {
        // Same token at pos 1 after different pos-0 tokens must differ.
        let mut a = model();
        let mut b = model();
        a.forward(1, 0);
        b.forward(2, 0);
        let la = a.forward(3, 1).to_vec();
        let lb = b.forward(3, 1).to_vec();
        assert_ne!(la, lb);
    }

    #[test]
    fn reset_restores_initial_behavior() {
        let mut t = model();
        let first = t.forward(7, 0).to_vec();
        t.forward(9, 1);
        t.reset();
        let again = t.forward(7, 0).to_vec();
        assert_eq!(first, again);
    }

    #[test]
    fn parallel_strategy_matches_serial() {
        let weights = TransformerWeights::synthetic(ModelConfig::stories260k(), 3);
        let mut serial = Transformer::new(weights.clone());
        let mut par = Transformer::new(weights);
        par.set_strategy(MatVecStrategy::Parallel { threads: 4 });
        for pos in 0..3 {
            let a = serial.forward(10 + pos as u32, pos).to_vec();
            let b = par.forward(10 + pos as u32, pos).to_vec();
            let max_diff = a
                .iter()
                .zip(&b)
                .fold(0.0f32, |m, (x, y)| m.max((x - y).abs()));
            assert!(max_diff < 1e-4, "parallel diverged: {max_diff}");
        }
    }

    #[test]
    fn batched_forward_is_bit_identical_to_sequential() {
        use crate::kv_cache::KvCache;
        let cfg = ModelConfig::test_tiny();
        for strategy in [
            MatVecStrategy::Serial,
            MatVecStrategy::Parallel { threads: 3 },
        ] {
            for n in [1usize, 2, 5] {
                let weights = TransformerWeights::synthetic(cfg, 7);
                let mut batched = Transformer::new(weights.clone());
                batched.set_strategy(strategy);
                let mut oracle = Transformer::new(weights);
                oracle.set_strategy(strategy);

                let mut kvs_b: Vec<KvCache> = (0..n).map(|_| KvCache::new(&cfg)).collect();
                let mut kvs_s: Vec<KvCache> = (0..n).map(|_| KvCache::new(&cfg)).collect();
                // Stagger contexts so the batch composition is heterogeneous.
                for (i, kv) in kvs_s.iter_mut().enumerate() {
                    for p in 0..i {
                        oracle.forward_with_kv(kv, (i + p) as u32 % 64, p);
                    }
                }
                for (i, kv) in kvs_b.iter_mut().enumerate() {
                    for p in 0..i {
                        oracle.forward_with_kv(kv, (i + p) as u32 % 64, p);
                    }
                }

                for step in 0..3 {
                    let tokens: Vec<u32> = (0..n).map(|i| ((7 * i + step) % 64) as u32).collect();
                    let positions: Vec<usize> = kvs_b.iter().map(KvCache::len).collect();
                    let mut refs: Vec<&mut KvCache> = kvs_b.iter_mut().collect();
                    let got = batched
                        .forward_batch_with_kv(refs.as_mut_slice(), &tokens, &positions)
                        .to_vec();
                    for (i, kv) in kvs_s.iter_mut().enumerate() {
                        let want = oracle.forward_with_kv(kv, tokens[i], positions[i]);
                        assert_eq!(
                            &got[i * cfg.vocab_size..(i + 1) * cfg.vocab_size],
                            want,
                            "batch {n} seq {i} step {step} diverged"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn quantized_batched_forward_is_bit_identical_to_sequential() {
        use crate::kv_cache::KvCache;
        let cfg = ModelConfig::test_tiny();
        for mode in [QuantMode::Int8, QuantMode::Int4] {
            for strategy in [
                MatVecStrategy::Serial,
                MatVecStrategy::Parallel { threads: 3 },
            ] {
                for n in [1usize, 3, 5] {
                    let weights = TransformerWeights::synthetic(cfg, 7);
                    let mut batched = Transformer::new(weights.clone());
                    batched.set_strategy(strategy);
                    batched.set_quant_mode(mode);
                    let mut oracle = Transformer::new(weights);
                    oracle.set_strategy(strategy);
                    oracle.set_quant_mode(mode);
                    assert_eq!(oracle.quant_mode(), mode);

                    let mut kvs_b: Vec<KvCache> = (0..n).map(|_| KvCache::new(&cfg)).collect();
                    let mut kvs_s: Vec<KvCache> = (0..n).map(|_| KvCache::new(&cfg)).collect();
                    for step in 0..3 {
                        let tokens: Vec<u32> =
                            (0..n).map(|i| ((7 * i + step) % 64) as u32).collect();
                        let positions: Vec<usize> = kvs_b.iter().map(KvCache::len).collect();
                        let mut refs: Vec<&mut KvCache> = kvs_b.iter_mut().collect();
                        let got = batched
                            .forward_batch_with_kv(refs.as_mut_slice(), &tokens, &positions)
                            .to_vec();
                        for (i, kv) in kvs_s.iter_mut().enumerate() {
                            let want = oracle.forward_with_kv(kv, tokens[i], positions[i]);
                            assert_eq!(
                                &got[i * cfg.vocab_size..(i + 1) * cfg.vocab_size],
                                want,
                                "{mode:?} batch {n} seq {i} step {step} diverged ({strategy:?})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn quantized_logits_stay_close_to_f32() {
        let cfg = ModelConfig::test_tiny();
        let weights = TransformerWeights::synthetic(cfg, 11);
        let mut exact = Transformer::new(weights.clone());
        let mut quant = Transformer::new(weights);
        quant.set_quant_mode(QuantMode::Int8);
        for pos in 0..4 {
            let want = exact.forward((pos as u32 * 3) % 64, pos).to_vec();
            let got = quant.forward((pos as u32 * 3) % 64, pos).to_vec();
            let max_err = want
                .iter()
                .zip(&got)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(max_err < 0.5, "int8 logits drifted {max_err} at pos {pos}");
            assert_ne!(want, got, "quantization must actually perturb values");
        }
        // Switching back restores the exact f32 stream.
        quant.set_quant_mode(QuantMode::F32);
        quant.reset();
        exact.reset();
        assert_eq!(
            exact.forward(5, 0).to_vec(),
            quant.forward(5, 0).to_vec(),
            "f32 mode must restore the original weights"
        );
    }

    #[test]
    fn mixed_runs_are_bit_identical_to_sequential() {
        use crate::kv_cache::KvCache;
        let cfg = ModelConfig::test_tiny();
        for strategy in [
            MatVecStrategy::Serial,
            MatVecStrategy::Parallel { threads: 3 },
        ] {
            // Each case: per-sequence (context already cached, run length).
            // Mixes decode rows (count 1) with prefill chunks (count > 1),
            // including a chunk continuing a non-empty context.
            for case in [
                vec![(0usize, 4usize)],       // pure prefill, one seq
                vec![(3, 1), (0, 4)],         // decode + cold prefill
                vec![(2, 1), (1, 3), (4, 1)], // decode, chunk, decode
                vec![(0, 2), (2, 2)],         // two chunks, one warm
                vec![(1, 1), (2, 1), (3, 1)], // pure decode (regression)
            ] {
                let weights = TransformerWeights::synthetic(cfg, 7);
                let mut mixed = Transformer::new(weights.clone());
                mixed.set_strategy(strategy);
                let mut oracle = Transformer::new(weights);
                oracle.set_strategy(strategy);

                let n = case.len();
                let mut kvs_m: Vec<KvCache> = (0..n).map(|_| KvCache::new(&cfg)).collect();
                let mut kvs_s: Vec<KvCache> = (0..n).map(|_| KvCache::new(&cfg)).collect();
                for (i, &(ctx, _)) in case.iter().enumerate() {
                    for p in 0..ctx {
                        let tok = ((5 * i + p) % 64) as u32;
                        oracle.forward_with_kv(&mut kvs_s[i], tok, p);
                        oracle.forward_with_kv(&mut kvs_m[i], tok, p);
                    }
                }

                let mut tokens = Vec::new();
                let mut counts = Vec::new();
                let mut starts = Vec::new();
                for (i, &(ctx, run)) in case.iter().enumerate() {
                    counts.push(run);
                    starts.push(ctx);
                    for off in 0..run {
                        tokens.push(((11 * i + 3 * off + 1) % 64) as u32);
                    }
                }

                let mut refs: Vec<&mut KvCache> = kvs_m.iter_mut().collect();
                let got = mixed
                    .forward_runs_with_kv(refs.as_mut_slice(), &tokens, &counts, &starts)
                    .to_vec();

                // Oracle: feed each sequence's run token-by-token; only the
                // last logits of each run are observable.
                let mut row = 0usize;
                for (i, &(ctx, run)) in case.iter().enumerate() {
                    let mut want = Vec::new();
                    for off in 0..run {
                        want = oracle
                            .forward_with_kv(&mut kvs_s[i], tokens[row], ctx + off)
                            .to_vec();
                        row += 1;
                    }
                    assert_eq!(
                        &got[i * cfg.vocab_size..(i + 1) * cfg.vocab_size],
                        &want[..],
                        "case {case:?} seq {i} diverged ({strategy:?})"
                    );
                    // KV contents must match too: decode again and compare.
                    let probe = ((i + 9) % 64) as u32;
                    let pos = ctx + run;
                    let m = mixed.forward_with_kv(&mut kvs_m[i], probe, pos).to_vec();
                    let s = oracle.forward_with_kv(&mut kvs_s[i], probe, pos);
                    assert_eq!(&m[..], s, "case {case:?} seq {i} KV diverged");
                }
            }
        }
    }

    #[test]
    fn all_logits_rows_match_sequential_decode() {
        use crate::kv_cache::KvCache;
        let cfg = ModelConfig::test_tiny();
        for strategy in [
            MatVecStrategy::Serial,
            MatVecStrategy::Parallel { threads: 3 },
        ] {
            for case in [
                vec![(0usize, 4usize)],
                vec![(3, 1), (0, 4)],
                vec![(2, 2), (1, 3)],
            ] {
                let weights = TransformerWeights::synthetic(cfg, 7);
                let mut mixed = Transformer::new(weights.clone());
                mixed.set_strategy(strategy);
                let mut oracle = Transformer::new(weights);
                oracle.set_strategy(strategy);

                let n = case.len();
                let mut kvs_m: Vec<KvCache> = (0..n).map(|_| KvCache::new(&cfg)).collect();
                let mut kvs_s: Vec<KvCache> = (0..n).map(|_| KvCache::new(&cfg)).collect();
                for (i, &(ctx, _)) in case.iter().enumerate() {
                    for p in 0..ctx {
                        let tok = ((5 * i + p) % 64) as u32;
                        oracle.forward_with_kv(&mut kvs_s[i], tok, p);
                        oracle.forward_with_kv(&mut kvs_m[i], tok, p);
                    }
                }

                let mut tokens = Vec::new();
                let mut counts = Vec::new();
                let mut starts = Vec::new();
                for (i, &(ctx, run)) in case.iter().enumerate() {
                    counts.push(run);
                    starts.push(ctx);
                    for off in 0..run {
                        tokens.push(((11 * i + 3 * off + 1) % 64) as u32);
                    }
                }

                let mut refs: Vec<&mut KvCache> = kvs_m.iter_mut().collect();
                let got = mixed
                    .forward_runs_all_logits_with_kv(refs.as_mut_slice(), &tokens, &counts, &starts)
                    .to_vec();
                assert_eq!(got.len(), tokens.len() * cfg.vocab_size);

                // Every row's logits must match the sequential decode of
                // that prefix — this is what makes speculative
                // verification exact rather than approximate.
                let mut row = 0usize;
                for (i, &(ctx, run)) in case.iter().enumerate() {
                    for off in 0..run {
                        let want = oracle.forward_with_kv(&mut kvs_s[i], tokens[row], ctx + off);
                        assert_eq!(
                            &got[row * cfg.vocab_size..(row + 1) * cfg.vocab_size],
                            want,
                            "case {case:?} seq {i} row {off} diverged ({strategy:?})"
                        );
                        row += 1;
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "token rows must match run counts")]
    fn mismatched_run_counts_panic() {
        use crate::kv_cache::KvCache;
        let cfg = ModelConfig::test_tiny();
        let mut t = model();
        let mut kv = KvCache::new(&cfg);
        let mut refs = [&mut kv];
        t.forward_runs_with_kv(refs.as_mut_slice(), &[1, 2, 3], &[2], &[0]);
    }

    #[test]
    fn batch_scratch_grows_and_shrinks_transparently() {
        use crate::kv_cache::KvCache;
        let cfg = ModelConfig::test_tiny();
        let mut t = model();
        let mut oracle = model();
        // Wide batch first, then a narrower one reusing the larger scratch.
        for n in [4usize, 2, 6, 1] {
            let mut kvs: Vec<KvCache> = (0..n).map(|_| KvCache::new(&cfg)).collect();
            let tokens: Vec<u32> = (0..n as u32).map(|i| 3 + i).collect();
            let positions = vec![0usize; n];
            let mut refs: Vec<&mut KvCache> = kvs.iter_mut().collect();
            let got = t
                .forward_batch_with_kv(refs.as_mut_slice(), &tokens, &positions)
                .to_vec();
            for (i, &tok) in tokens.iter().enumerate() {
                let mut kv = KvCache::new(&cfg);
                let want = oracle.forward_with_kv(&mut kv, tok, 0);
                assert_eq!(&got[i * cfg.vocab_size..(i + 1) * cfg.vocab_size], want);
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_panics() {
        use crate::kv_cache::KvCache;
        let mut t = model();
        let mut refs: Vec<&mut KvCache> = Vec::new();
        t.forward_batch_with_kv(refs.as_mut_slice(), &[], &[]);
    }

    #[test]
    #[should_panic(expected = "outside context window")]
    fn pos_overflow_panics() {
        let mut t = model();
        t.forward(0, 32);
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn bad_token_panics() {
        let mut t = model();
        t.forward(64, 0);
    }

    #[test]
    fn context_len_advances() {
        let mut t = model();
        assert_eq!(t.context_len(), 0);
        t.forward(1, 0);
        assert_eq!(t.context_len(), 1);
        t.forward(2, 1);
        assert_eq!(t.context_len(), 2);
    }
}
