//! Reference transformer forward pass (the CPU implementation of
//! llama2.c's `forward()`), used both as the correctness oracle for the
//! simulated accelerator and as the CPU baseline in examples.

use speedllm_telemetry as tel;

use crate::config::ModelConfig;
use crate::kv_cache::{KvBatch, KvCache, KvStore};
use crate::ops;
use crate::weights::TransformerWeights;

/// How dense matvecs are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatVecStrategy {
    /// Single-threaded kernels — bit-deterministic, the correctness oracle.
    Serial,
    /// Row-partitioned scoped threads ([`crate::parallel::par_matvec`]).
    Parallel {
        /// Worker count; clamped to at least 1.
        threads: usize,
    },
}

/// Scratch buffers reused across forward calls (llama2.c's `RunState`).
#[derive(Debug, Clone)]
struct RunState {
    /// Residual stream, `[dim]`.
    x: Vec<f32>,
    /// Normed input / attention output scratch, `[dim]`.
    xb: Vec<f32>,
    /// Second `[dim]` scratch (projection results).
    xb2: Vec<f32>,
    /// FFN gate activations, `[hidden_dim]`.
    hb: Vec<f32>,
    /// FFN up activations, `[hidden_dim]`.
    hb2: Vec<f32>,
    /// Query vector, `[dim]`.
    q: Vec<f32>,
    /// Key scratch for the current position, `[kv_dim]`.
    k: Vec<f32>,
    /// Value scratch for the current position, `[kv_dim]`.
    v: Vec<f32>,
    /// Attention scores for one head, `[seq_len]`.
    att: Vec<f32>,
    /// Output logits, `[vocab_size]`.
    logits: Vec<f32>,
}

impl RunState {
    fn new(c: &ModelConfig) -> Self {
        Self {
            x: vec![0.0; c.dim],
            xb: vec![0.0; c.dim],
            xb2: vec![0.0; c.dim],
            hb: vec![0.0; c.hidden_dim],
            hb2: vec![0.0; c.hidden_dim],
            q: vec![0.0; c.dim],
            k: vec![0.0; c.kv_dim()],
            v: vec![0.0; c.kv_dim()],
            att: vec![0.0; c.seq_len],
            logits: vec![0.0; c.vocab_size],
        }
    }
}

/// Scratch buffers for the batched decode pass, sequence-major: sequence
/// `b`'s slice of an `[n * width]` buffer is `[b * width..(b + 1) * width]`,
/// the same per-sequence layout as [`RunState`], so every per-sequence
/// kernel (rmsnorm, RoPE, attention, swiglu) runs on exactly the operands
/// it would see in the sequential path. Only the GEMM staging buffer is
/// row-major (`[rows][batch]`, the [`ops::matmul`] output layout); its
/// contents are scattered back to sequence-major immediately after each
/// matmul.
#[derive(Debug, Clone)]
struct BatchState {
    /// Allocated batch capacity; buffers are sized for this many sequences.
    capacity: usize,
    /// Residual streams, `[capacity * dim]`.
    x: Vec<f32>,
    /// Normed input / attention output scratch, `[capacity * dim]`.
    xb: Vec<f32>,
    /// Projection results, `[capacity * dim]`.
    xb2: Vec<f32>,
    /// FFN gate activations, `[capacity * hidden_dim]`.
    hb: Vec<f32>,
    /// FFN up activations, `[capacity * hidden_dim]`.
    hb2: Vec<f32>,
    /// Query vectors, `[capacity * dim]`.
    q: Vec<f32>,
    /// Key scratch, `[capacity * kv_dim]`.
    k: Vec<f32>,
    /// Value scratch, `[capacity * kv_dim]`.
    v: Vec<f32>,
    /// Attention scores for one head of one sequence, `[seq_len]`.
    att: Vec<f32>,
    /// Output logits, `[capacity * vocab_size]`, sequence-major.
    logits: Vec<f32>,
    /// Row-major GEMM staging, `[max(dim, hidden_dim, vocab) * capacity]`.
    gemm: Vec<f32>,
}

impl BatchState {
    fn new(c: &ModelConfig, capacity: usize) -> Self {
        let widest = c.dim.max(c.hidden_dim).max(c.vocab_size);
        Self {
            capacity,
            x: vec![0.0; capacity * c.dim],
            xb: vec![0.0; capacity * c.dim],
            xb2: vec![0.0; capacity * c.dim],
            hb: vec![0.0; capacity * c.hidden_dim],
            hb2: vec![0.0; capacity * c.hidden_dim],
            q: vec![0.0; capacity * c.dim],
            k: vec![0.0; capacity * c.kv_dim()],
            v: vec![0.0; capacity * c.kv_dim()],
            att: vec![0.0; c.seq_len],
            logits: vec![0.0; capacity * c.vocab_size],
            gemm: vec![0.0; capacity * widest],
        }
    }
}

/// Scatters a row-major GEMM result (`src[r * batch + b]`, the
/// [`ops::matmul`] output layout) into sequence-major scratch
/// (`dst[b * rows + r]`). Pure data movement — `O(rows × batch)` against
/// the `O(rows × cols)` weight stream it unlocks — and therefore neutral
/// to bit-identity.
fn scatter_to_seq(dst: &mut [f32], src: &[f32], rows: usize, batch: usize) {
    debug_assert_eq!(dst.len(), rows * batch);
    debug_assert_eq!(src.len(), rows * batch);
    for (b, seq) in dst.chunks_exact_mut(rows).enumerate() {
        for (r, o) in seq.iter_mut().enumerate() {
            *o = src[r * batch + b];
        }
    }
}

/// Dispatches a dense matvec according to the chosen strategy.
fn run_matvec(
    strategy: MatVecStrategy,
    out: &mut [f32],
    w: &[f32],
    x: &[f32],
    rows: usize,
    cols: usize,
) {
    match strategy {
        MatVecStrategy::Serial => ops::matvec(out, w, x, rows, cols),
        MatVecStrategy::Parallel { threads } => {
            crate::parallel::par_matvec(out, w, x, rows, cols, threads.max(1));
        }
    }
}

/// Dispatches a batched dense matmul according to the chosen strategy.
/// Serial and parallel kernels compute every element with the same
/// [`ops::dot`], so the choice affects wall-clock only, never values.
fn run_matmul(
    strategy: MatVecStrategy,
    out: &mut [f32],
    w: &[f32],
    xs: &[f32],
    rows: usize,
    cols: usize,
    batch: usize,
) {
    match strategy {
        MatVecStrategy::Serial => ops::matmul(out, w, xs, rows, cols, batch),
        MatVecStrategy::Parallel { threads } => {
            crate::parallel::par_matmul(out, w, xs, rows, cols, batch, threads.max(1));
        }
    }
}

/// A transformer with its weights, KV cache, and scratch state: everything
/// needed to decode token-by-token.
pub struct Transformer {
    weights: TransformerWeights,
    state: RunState,
    /// Batched-decode scratch, allocated on first batched call and grown
    /// to the largest batch width seen since.
    batch: Option<BatchState>,
    kv: KvCache,
    strategy: MatVecStrategy,
}

impl Transformer {
    /// Wraps loaded or synthetic weights.
    #[must_use]
    pub fn new(weights: TransformerWeights) -> Self {
        let state = RunState::new(&weights.config);
        let kv = KvCache::new(&weights.config);
        Self {
            weights,
            state,
            batch: None,
            kv,
            strategy: MatVecStrategy::Serial,
        }
    }

    /// Selects the matvec execution strategy.
    pub fn set_strategy(&mut self, strategy: MatVecStrategy) {
        self.strategy = strategy;
    }

    /// The architecture config.
    #[must_use]
    pub fn config(&self) -> &ModelConfig {
        &self.weights.config
    }

    /// Borrow of the underlying weights.
    #[must_use]
    pub fn weights(&self) -> &TransformerWeights {
        &self.weights
    }

    /// Current context length (positions already decoded).
    #[must_use]
    pub fn context_len(&self) -> usize {
        self.kv.len()
    }

    /// Clears the KV cache to start a fresh sequence.
    pub fn reset(&mut self) {
        self.kv.reset();
    }

    /// Runs one decode step: processes `token` at position `pos` and
    /// returns the logits over the vocabulary.
    ///
    /// # Panics
    /// Panics if `pos` is outside the model's context window or `token` is
    /// out of vocabulary.
    pub fn forward(&mut self, token: u32, pos: usize) -> &[f32] {
        Self::forward_into(
            &self.weights,
            &mut self.state,
            &mut self.kv,
            self.strategy,
            token,
            pos,
        );
        &self.state.logits
    }

    /// Runs one decode step against an **external** KV cache instead of the
    /// transformer's own — the multi-tenant entry point. A server holds one
    /// `Transformer` (weights + scratch) and a pool of caches, one per
    /// in-flight sequence; the internal cache is untouched, so single-tenant
    /// callers are unaffected.
    ///
    /// Bit-identical to [`Transformer::forward`]: both run the same serial
    /// kernels in the same order, so a sequence decoded through a pooled
    /// cache reproduces the single-tenant token stream exactly.
    ///
    /// # Panics
    /// Panics if `pos` is outside the context window, `token` is out of
    /// vocabulary, or `kv` was not sized for this model's config.
    pub fn forward_with_cache(&mut self, kv: &mut KvCache, token: u32, pos: usize) -> &[f32] {
        self.forward_with_kv(kv, token, pos)
    }

    /// Like [`Transformer::forward_with_cache`] but over any [`KvStore`]
    /// implementation — in particular a paged block-table view, where the
    /// logical position → physical row mapping goes through a per-sequence
    /// block table instead of assuming contiguity. The kernels and their
    /// execution order are identical, so paged and contiguous caches
    /// produce bit-identical logits.
    pub fn forward_with_kv<K: KvStore + ?Sized>(
        &mut self,
        kv: &mut K,
        token: u32,
        pos: usize,
    ) -> &[f32] {
        assert_eq!(
            kv.kv_capacity(),
            self.weights.config.seq_len,
            "kv cache sized for a different context window"
        );
        Self::forward_into(
            &self.weights,
            &mut self.state,
            kv,
            self.strategy,
            token,
            pos,
        );
        &self.state.logits
    }

    /// Runs one decode step for a whole **batch** of independent sequences
    /// in a single walk over the layers: `tokens[i]` extends sequence `i`
    /// (whose context lives at index `i` of `kv`) at `positions[i]`.
    /// Returns the logits sequence-major — sequence `i`'s vocabulary
    /// distribution is `out[i * vocab..(i + 1) * vocab]`.
    ///
    /// The point is **weight reuse**: every dense projection runs as one
    /// [`ops::matmul`] over all B activation columns, so each weight
    /// matrix is streamed from memory once per step instead of once per
    /// sequence. Decode is bandwidth-bound, which is why serve throughput
    /// scales with batch width under this entry point (DESIGN.md §13).
    ///
    /// **Bit-identical** to calling [`Transformer::forward_with_kv`] once
    /// per sequence: the batched kernels compute every element with the
    /// same `dot` over the same operands in the same order, the
    /// per-sequence kernels (rmsnorm, RoPE, attention, SwiGLU) run on
    /// sequence-major slices identical to the sequential scratch, and
    /// sequences share no state, so the layer-interleaved schedule cannot
    /// change any value.
    ///
    /// # Panics
    /// Panics on an empty batch, mismatched `tokens`/`positions`/batch
    /// lengths, a position outside the context window, an out-of-vocab
    /// token, or a store sized for a different context window.
    pub fn forward_batch_with_kv<B: KvBatch + ?Sized>(
        &mut self,
        kv: &mut B,
        tokens: &[u32],
        positions: &[usize],
    ) -> &[f32] {
        let c = self.weights.config;
        let n = tokens.len();
        assert!(n >= 1, "empty batch");
        assert_eq!(n, positions.len(), "one position per token");
        assert_eq!(n, kv.batch_len(), "one KV store per token");
        for i in 0..n {
            assert_eq!(
                kv.kv_capacity(i),
                c.seq_len,
                "kv store {i} sized for a different context window"
            );
        }
        if self.batch.as_ref().map_or(true, |b| b.capacity < n) {
            self.batch = Some(BatchState::new(&c, n));
        }
        let bs = self.batch.as_mut().expect("batch state just ensured");
        Self::forward_batch_into(&self.weights, bs, kv, self.strategy, tokens, positions);
        &bs.logits[..n * c.vocab_size]
    }

    /// The batched forward pass over explicit parts (the batched twin of
    /// [`Transformer::forward_into`]): same layer walk, but each dense
    /// projection is one GEMM over the whole batch, and everything
    /// per-sequence runs on that sequence's slice of the sequence-major
    /// scratch.
    fn forward_batch_into<B: KvBatch + ?Sized>(
        weights: &TransformerWeights,
        bs: &mut BatchState,
        kv: &mut B,
        strategy: MatVecStrategy,
        tokens: &[u32],
        positions: &[usize],
    ) {
        let c = weights.config;
        let n = tokens.len();
        let dim = c.dim;
        let kv_dim = c.kv_dim();
        let head_dim = c.head_dim();
        let gqa = c.gqa_group();
        let hid = c.hidden_dim;
        for (&tok, &pos) in tokens.iter().zip(positions) {
            assert!(
                pos < c.seq_len,
                "pos {pos} outside context window {}",
                c.seq_len
            );
            assert!((tok as usize) < c.vocab_size, "token {tok} out of vocab");
        }

        let _fwd = tel::span("cpu", "forward_batch").arg("batch", n as i64);
        if tel::enabled() {
            // One batched step streams the GEMM weights once for all n
            // tokens; `gemm_weight_bytes / gemm_tokens` is bytes-per-token.
            tel::metrics::counter_add("cpu.gemm_weight_bytes", c.gemm_weight_bytes() as u64);
            tel::metrics::counter_add("cpu.gemm_tokens", n as u64);
            tel::metrics::gauge_set("cpu.gemm_batch_width", n as f64);
        }

        // Gather: token embeddings -> per-sequence residual streams.
        for (b, &tok) in tokens.iter().enumerate() {
            bs.x[b * dim..(b + 1) * dim].copy_from_slice(weights.embedding_row(tok as usize));
        }

        for layer in 0..c.n_layers {
            let lw = &weights.layers[layer];

            // ---- Attention block ----
            {
                let _att = tel::span("cpu", "attention_batch").arg("layer", layer as i64);
                for b in 0..n {
                    ops::rmsnorm(
                        &mut bs.xb[b * dim..(b + 1) * dim],
                        &bs.x[b * dim..(b + 1) * dim],
                        &lw.rms_att,
                    );
                }
                {
                    let _qkv = tel::span("cpu", "qkv_batch").arg("layer", layer as i64);
                    run_matmul(
                        strategy,
                        &mut bs.gemm[..dim * n],
                        &lw.wq,
                        &bs.xb[..n * dim],
                        dim,
                        dim,
                        n,
                    );
                    scatter_to_seq(&mut bs.q[..n * dim], &bs.gemm[..dim * n], dim, n);
                    run_matmul(
                        strategy,
                        &mut bs.gemm[..kv_dim * n],
                        &lw.wk,
                        &bs.xb[..n * dim],
                        kv_dim,
                        dim,
                        n,
                    );
                    scatter_to_seq(&mut bs.k[..n * kv_dim], &bs.gemm[..kv_dim * n], kv_dim, n);
                    run_matmul(
                        strategy,
                        &mut bs.gemm[..kv_dim * n],
                        &lw.wv,
                        &bs.xb[..n * dim],
                        kv_dim,
                        dim,
                        n,
                    );
                    scatter_to_seq(&mut bs.v[..n * kv_dim], &bs.gemm[..kv_dim * n], kv_dim, n);
                }

                for b in 0..n {
                    let pos = positions[b];
                    ops::rope_inplace(
                        &mut bs.q[b * dim..(b + 1) * dim],
                        pos,
                        head_dim,
                        ops::ROPE_THETA,
                    );
                    ops::rope_inplace(
                        &mut bs.k[b * kv_dim..(b + 1) * kv_dim],
                        pos,
                        head_dim,
                        ops::ROPE_THETA,
                    );
                    kv.store(
                        b,
                        layer,
                        pos,
                        &bs.k[b * kv_dim..(b + 1) * kv_dim],
                        &bs.v[b * kv_dim..(b + 1) * kv_dim],
                    );
                }

                {
                    let _mha = tel::span("cpu", "mha_batch").arg("layer", layer as i64);
                    for b in 0..n {
                        let pos = positions[b];
                        for h in 0..c.n_heads {
                            let kv_head = h / gqa;
                            let q = &bs.q[b * dim + h * head_dim..b * dim + (h + 1) * head_dim];
                            let att = &mut bs.att[..pos + 1];
                            ops::attention_scores(
                                att,
                                q,
                                |t| kv.key_head(b, layer, t, kv_head),
                                pos,
                            );
                            ops::softmax(att);
                            let out =
                                &mut bs.xb[b * dim + h * head_dim..b * dim + (h + 1) * head_dim];
                            ops::attention_mix(
                                out,
                                att,
                                |t| kv.value_head(b, layer, t, kv_head),
                                pos,
                            );
                        }
                    }
                }

                run_matmul(
                    strategy,
                    &mut bs.gemm[..dim * n],
                    &lw.wo,
                    &bs.xb[..n * dim],
                    dim,
                    dim,
                    n,
                );
                scatter_to_seq(&mut bs.xb2[..n * dim], &bs.gemm[..dim * n], dim, n);
                for b in 0..n {
                    ops::add_inplace(
                        &mut bs.x[b * dim..(b + 1) * dim],
                        &bs.xb2[b * dim..(b + 1) * dim],
                    );
                }
            }

            // ---- FFN block (SwiGLU) ----
            {
                let _ffn = tel::span("cpu", "ffn_batch").arg("layer", layer as i64);
                for b in 0..n {
                    ops::rmsnorm(
                        &mut bs.xb[b * dim..(b + 1) * dim],
                        &bs.x[b * dim..(b + 1) * dim],
                        &lw.rms_ffn,
                    );
                }
                run_matmul(
                    strategy,
                    &mut bs.gemm[..hid * n],
                    &lw.w1,
                    &bs.xb[..n * dim],
                    hid,
                    dim,
                    n,
                );
                scatter_to_seq(&mut bs.hb[..n * hid], &bs.gemm[..hid * n], hid, n);
                run_matmul(
                    strategy,
                    &mut bs.gemm[..hid * n],
                    &lw.w3,
                    &bs.xb[..n * dim],
                    hid,
                    dim,
                    n,
                );
                scatter_to_seq(&mut bs.hb2[..n * hid], &bs.gemm[..hid * n], hid, n);
                for b in 0..n {
                    ops::swiglu(
                        &mut bs.hb[b * hid..(b + 1) * hid],
                        &bs.hb2[b * hid..(b + 1) * hid],
                    );
                }
                run_matmul(
                    strategy,
                    &mut bs.gemm[..dim * n],
                    &lw.w2,
                    &bs.hb[..n * hid],
                    dim,
                    hid,
                    n,
                );
                scatter_to_seq(&mut bs.xb2[..n * dim], &bs.gemm[..dim * n], dim, n);
                for b in 0..n {
                    ops::add_inplace(
                        &mut bs.x[b * dim..(b + 1) * dim],
                        &bs.xb2[b * dim..(b + 1) * dim],
                    );
                }
            }
        }

        // Final norm + classifier.
        let _cls = tel::span("cpu", "classifier_batch").arg("batch", n as i64);
        for b in 0..n {
            ops::rmsnorm_inplace(&mut bs.x[b * dim..(b + 1) * dim], &weights.rms_final);
        }
        run_matmul(
            strategy,
            &mut bs.gemm[..c.vocab_size * n],
            weights.classifier(),
            &bs.x[..n * dim],
            c.vocab_size,
            dim,
            n,
        );
        scatter_to_seq(
            &mut bs.logits[..n * c.vocab_size],
            &bs.gemm[..c.vocab_size * n],
            c.vocab_size,
            n,
        );
    }

    /// The forward pass over explicit parts, so callers can substitute the
    /// KV cache while reusing the shared scratch state.
    fn forward_into<K: KvStore + ?Sized>(
        weights: &TransformerWeights,
        state: &mut RunState,
        kv: &mut K,
        strategy: MatVecStrategy,
        token: u32,
        pos: usize,
    ) {
        let c = weights.config;
        assert!(
            pos < c.seq_len,
            "pos {pos} outside context window {}",
            c.seq_len
        );
        assert!(
            (token as usize) < c.vocab_size,
            "token {token} out of vocab"
        );
        let dim = c.dim;
        let kv_dim = c.kv_dim();
        let head_dim = c.head_dim();
        let gqa = c.gqa_group();

        let _fwd = tel::span("cpu", "forward").arg("pos", pos as i64);
        if tel::enabled() {
            // The sequential path streams the GEMM weights once per token —
            // the baseline the batched counters are compared against.
            tel::metrics::counter_add("cpu.gemm_weight_bytes", c.gemm_weight_bytes() as u64);
            tel::metrics::counter_add("cpu.gemm_tokens", 1);
            tel::metrics::gauge_set("cpu.gemm_batch_width", 1.0);
        }

        // Token embedding -> residual stream.
        state
            .x
            .copy_from_slice(weights.embedding_row(token as usize));

        for layer in 0..c.n_layers {
            let st = &mut *state;
            let lw = &weights.layers[layer];

            // ---- Attention block ----
            {
                let _att = tel::span("cpu", "attention").arg("layer", layer as i64);
                ops::rmsnorm(&mut st.xb, &st.x, &lw.rms_att);
                {
                    let _qkv = tel::span("cpu", "qkv").arg("layer", layer as i64);
                    run_matvec(strategy, &mut st.q, &lw.wq, &st.xb, dim, dim);
                    run_matvec(strategy, &mut st.k, &lw.wk, &st.xb, kv_dim, dim);
                    run_matvec(strategy, &mut st.v, &lw.wv, &st.xb, kv_dim, dim);
                }

                // Rotary embeddings on q (all heads) and k (kv heads).
                ops::rope_inplace(&mut st.q, pos, head_dim, ops::ROPE_THETA);
                ops::rope_inplace(&mut st.k, pos, head_dim, ops::ROPE_THETA);
                // Cache this position's K/V.
                kv.store(layer, pos, &st.k, &st.v);

                // Multi-head attention with grouped-query sharing.
                {
                    let _mha = tel::span("cpu", "mha").arg("layer", layer as i64);
                    for h in 0..c.n_heads {
                        let kv_head = h / gqa;
                        let q = &st.q[h * head_dim..(h + 1) * head_dim];
                        let att = &mut st.att[..pos + 1];
                        ops::attention_scores(att, q, |t| kv.key_head(layer, t, kv_head), pos);
                        ops::softmax(att);
                        let out = &mut st.xb[h * head_dim..(h + 1) * head_dim];
                        ops::attention_mix(out, att, |t| kv.value_head(layer, t, kv_head), pos);
                    }
                }

                // Output projection + residual.
                run_matvec(strategy, &mut st.xb2, &lw.wo, &st.xb, dim, dim);
                ops::add_inplace(&mut st.x, &st.xb2);
            }

            // ---- FFN block (SwiGLU) ----
            {
                let _ffn = tel::span("cpu", "ffn").arg("layer", layer as i64);
                ops::rmsnorm(&mut st.xb, &st.x, &lw.rms_ffn);
                run_matvec(strategy, &mut st.hb, &lw.w1, &st.xb, c.hidden_dim, dim);
                run_matvec(strategy, &mut st.hb2, &lw.w3, &st.xb, c.hidden_dim, dim);
                ops::swiglu(&mut st.hb, &st.hb2);
                run_matvec(strategy, &mut st.xb2, &lw.w2, &st.hb, dim, c.hidden_dim);
                ops::add_inplace(&mut st.x, &st.xb2);
            }
        }

        // Final norm + classifier.
        let _cls = tel::span("cpu", "classifier").arg("pos", pos as i64);
        ops::rmsnorm_inplace(&mut state.x, &weights.rms_final);
        run_matvec(
            strategy,
            &mut state.logits,
            weights.classifier(),
            &state.x,
            c.vocab_size,
            dim,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::TransformerWeights;

    fn model() -> Transformer {
        Transformer::new(TransformerWeights::synthetic(ModelConfig::test_tiny(), 42))
    }

    #[test]
    fn forward_produces_finite_logits() {
        let mut t = model();
        let logits = t.forward(5, 0);
        assert_eq!(logits.len(), 64);
        assert!(logits.iter().all(|x| x.is_finite()));
        assert!(logits.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn forward_is_deterministic() {
        let mut a = model();
        let mut b = model();
        for pos in 0..4 {
            let la = a.forward(pos as u32 + 1, pos).to_vec();
            let lb = b.forward(pos as u32 + 1, pos).to_vec();
            assert_eq!(la, lb);
        }
    }

    #[test]
    fn logits_depend_on_history() {
        // Same token at pos 1 after different pos-0 tokens must differ.
        let mut a = model();
        let mut b = model();
        a.forward(1, 0);
        b.forward(2, 0);
        let la = a.forward(3, 1).to_vec();
        let lb = b.forward(3, 1).to_vec();
        assert_ne!(la, lb);
    }

    #[test]
    fn reset_restores_initial_behavior() {
        let mut t = model();
        let first = t.forward(7, 0).to_vec();
        t.forward(9, 1);
        t.reset();
        let again = t.forward(7, 0).to_vec();
        assert_eq!(first, again);
    }

    #[test]
    fn parallel_strategy_matches_serial() {
        let weights = TransformerWeights::synthetic(ModelConfig::stories260k(), 3);
        let mut serial = Transformer::new(weights.clone());
        let mut par = Transformer::new(weights);
        par.set_strategy(MatVecStrategy::Parallel { threads: 4 });
        for pos in 0..3 {
            let a = serial.forward(10 + pos as u32, pos).to_vec();
            let b = par.forward(10 + pos as u32, pos).to_vec();
            let max_diff = a
                .iter()
                .zip(&b)
                .fold(0.0f32, |m, (x, y)| m.max((x - y).abs()));
            assert!(max_diff < 1e-4, "parallel diverged: {max_diff}");
        }
    }

    #[test]
    fn batched_forward_is_bit_identical_to_sequential() {
        use crate::kv_cache::KvCache;
        let cfg = ModelConfig::test_tiny();
        for strategy in [
            MatVecStrategy::Serial,
            MatVecStrategy::Parallel { threads: 3 },
        ] {
            for n in [1usize, 2, 5] {
                let weights = TransformerWeights::synthetic(cfg, 7);
                let mut batched = Transformer::new(weights.clone());
                batched.set_strategy(strategy);
                let mut oracle = Transformer::new(weights);
                oracle.set_strategy(strategy);

                let mut kvs_b: Vec<KvCache> = (0..n).map(|_| KvCache::new(&cfg)).collect();
                let mut kvs_s: Vec<KvCache> = (0..n).map(|_| KvCache::new(&cfg)).collect();
                // Stagger contexts so the batch composition is heterogeneous.
                for (i, kv) in kvs_s.iter_mut().enumerate() {
                    for p in 0..i {
                        oracle.forward_with_kv(kv, (i + p) as u32 % 64, p);
                    }
                }
                for (i, kv) in kvs_b.iter_mut().enumerate() {
                    for p in 0..i {
                        oracle.forward_with_kv(kv, (i + p) as u32 % 64, p);
                    }
                }

                for step in 0..3 {
                    let tokens: Vec<u32> = (0..n).map(|i| ((7 * i + step) % 64) as u32).collect();
                    let positions: Vec<usize> = kvs_b.iter().map(KvCache::len).collect();
                    let mut refs: Vec<&mut KvCache> = kvs_b.iter_mut().collect();
                    let got = batched
                        .forward_batch_with_kv(refs.as_mut_slice(), &tokens, &positions)
                        .to_vec();
                    for (i, kv) in kvs_s.iter_mut().enumerate() {
                        let want = oracle.forward_with_kv(kv, tokens[i], positions[i]);
                        assert_eq!(
                            &got[i * cfg.vocab_size..(i + 1) * cfg.vocab_size],
                            want,
                            "batch {n} seq {i} step {step} diverged"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn batch_scratch_grows_and_shrinks_transparently() {
        use crate::kv_cache::KvCache;
        let cfg = ModelConfig::test_tiny();
        let mut t = model();
        let mut oracle = model();
        // Wide batch first, then a narrower one reusing the larger scratch.
        for n in [4usize, 2, 6, 1] {
            let mut kvs: Vec<KvCache> = (0..n).map(|_| KvCache::new(&cfg)).collect();
            let tokens: Vec<u32> = (0..n as u32).map(|i| 3 + i).collect();
            let positions = vec![0usize; n];
            let mut refs: Vec<&mut KvCache> = kvs.iter_mut().collect();
            let got = t
                .forward_batch_with_kv(refs.as_mut_slice(), &tokens, &positions)
                .to_vec();
            for (i, &tok) in tokens.iter().enumerate() {
                let mut kv = KvCache::new(&cfg);
                let want = oracle.forward_with_kv(&mut kv, tok, 0);
                assert_eq!(&got[i * cfg.vocab_size..(i + 1) * cfg.vocab_size], want);
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_panics() {
        use crate::kv_cache::KvCache;
        let mut t = model();
        let mut refs: Vec<&mut KvCache> = Vec::new();
        t.forward_batch_with_kv(refs.as_mut_slice(), &[], &[]);
    }

    #[test]
    #[should_panic(expected = "outside context window")]
    fn pos_overflow_panics() {
        let mut t = model();
        t.forward(0, 32);
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn bad_token_panics() {
        let mut t = model();
        t.forward(64, 0);
    }

    #[test]
    fn context_len_advances() {
        let mut t = model();
        assert_eq!(t.context_len(), 0);
        t.forward(1, 0);
        assert_eq!(t.context_len(), 1);
        t.forward(2, 1);
        assert_eq!(t.context_len(), 2);
    }
}
