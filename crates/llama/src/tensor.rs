//! Minimal dense tensor type.
//!
//! The inference substrate only needs rank-1/2/3 row-major `f32` storage
//! with shape checking; anything fancier (broadcasting, autograd, strides)
//! would be dead weight. [`Tensor`] owns its buffer; kernels in
//! [`crate::ops`] operate on plain slices so they can be reused by the
//! accelerator engine on tile views.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Row-major, owned, `f32` tensor with a small fixed-rank shape.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// Allocates a zero-filled tensor of the given shape.
    ///
    /// # Panics
    /// Panics if the shape is empty or its element product overflows.
    #[must_use]
    pub fn zeros(shape: &[usize]) -> Self {
        assert!(!shape.is_empty(), "tensor rank must be >= 1");
        let len = shape
            .iter()
            .copied()
            .try_fold(1usize, usize::checked_mul)
            .expect("shape product overflows usize");
        Self {
            data: vec![0.0; len],
            shape: shape.to_vec(),
        }
    }

    /// Wraps an existing buffer. `data.len()` must equal the shape product.
    #[must_use]
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let expect: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            expect,
            "buffer length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Self {
            data,
            shape: shape.to_vec(),
        }
    }

    /// The tensor's shape.
    #[must_use]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements (only possible with a zero
    /// dimension in the shape).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    #[must_use]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Row `r` of a rank-2 tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not rank-2 or `r` is out of bounds.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f32] {
        assert_eq!(
            self.shape.len(),
            2,
            "row() requires rank-2, got {:?}",
            self.shape
        );
        let cols = self.shape[1];
        &self.data[r * cols..(r + 1) * cols]
    }

    /// Mutable row `r` of a rank-2 tensor.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert_eq!(
            self.shape.len(),
            2,
            "row_mut() requires rank-2, got {:?}",
            self.shape
        );
        let cols = self.shape[1];
        &mut self.data[r * cols..(r + 1) * cols]
    }

    /// Reshapes in place; the element count must be preserved.
    pub fn reshape(&mut self, shape: &[usize]) {
        let expect: usize = shape.iter().product();
        assert_eq!(
            expect,
            self.data.len(),
            "reshape to {shape:?} changes length"
        );
        self.shape = shape.to_vec();
    }

    /// Largest absolute element (0 for an empty tensor).
    #[must_use]
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Maximum absolute difference against another tensor of identical
    /// shape.
    #[must_use]
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "shape mismatch in max_abs_diff");
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0f32, |m, (&a, &b)| m.max((a - b).abs()))
    }
}

impl Index<usize> for Tensor {
    type Output = f32;
    fn index(&self, i: usize) -> &f32 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Tensor {
    fn index_mut(&mut self, i: usize) -> &mut f32 {
        &mut self.data[i]
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}[", self.shape)?;
        let n = self.data.len().min(8);
        for (i, v) in self.data[..n].iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.data.len() > n {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_len_and_shape() {
        let t = Tensor::zeros(&[3, 4]);
        assert_eq!(t.len(), 12);
        assert_eq!(t.shape(), &[3, 4]);
        assert!(t.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_checks_len() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(t.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_bad_len() {
        let _ = Tensor::from_vec(vec![1.0; 3], &[2, 2]);
    }

    #[test]
    fn row_mut_writes_through() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.row_mut(1).copy_from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(t.as_slice(), &[0.0, 0.0, 0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let mut t = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]);
        t.reshape(&[3, 2]);
        assert_eq!(t.row(2), &[4.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "changes length")]
    fn reshape_rejects_len_change() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.reshape(&[4, 2]);
    }

    #[test]
    fn abs_max_and_diff() {
        let a = Tensor::from_vec(vec![1.0, -5.0, 2.0], &[3]);
        let b = Tensor::from_vec(vec![1.5, -5.0, 0.0], &[3]);
        assert_eq!(a.abs_max(), 5.0);
        assert_eq!(a.max_abs_diff(&b), 2.0);
    }

    #[test]
    fn indexing_is_row_major() {
        let t = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]);
        assert_eq!(t[4], 4.0);
    }

    #[test]
    fn debug_formats_without_panicking() {
        let t = Tensor::zeros(&[100]);
        let s = format!("{t:?}");
        assert!(s.contains("Tensor[100]"));
    }

    #[test]
    fn zero_dim_shape_gives_empty() {
        let t = Tensor::zeros(&[0, 5]);
        assert!(t.is_empty());
        assert_eq!(t.abs_max(), 0.0);
    }
}
