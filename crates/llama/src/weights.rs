//! Transformer weights: in-memory layout, llama2.c-compatible binary I/O,
//! and seeded synthetic initialization.
//!
//! The on-disk format is the **legacy llama2.c checkpoint** (the format of
//! `stories15M.bin` that the paper deploys): a 7-field `i32` header followed
//! by little-endian `f32` tensors in a fixed order. A real checkpoint
//! downloaded from the llama2.c project loads unchanged; when none is
//! available, [`TransformerWeights::synthetic`] produces a
//! structurally-identical model with seeded Gaussian weights (see DESIGN.md
//! §2 — dense-inference *performance* does not depend on weight values).

use std::io::{self, Read, Write};
use std::path::Path;

use crate::config::ModelConfig;
use crate::rng::Xoshiro256;

/// Weights for a single transformer layer, each stored row-major as
/// `[rows = out_features, cols = in_features]`.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerWeights {
    /// RMSNorm gain before attention, `[dim]`.
    pub rms_att: Vec<f32>,
    /// Query projection, `[dim, dim]`.
    pub wq: Vec<f32>,
    /// Key projection, `[kv_dim, dim]`.
    pub wk: Vec<f32>,
    /// Value projection, `[kv_dim, dim]`.
    pub wv: Vec<f32>,
    /// Output projection, `[dim, dim]`.
    pub wo: Vec<f32>,
    /// RMSNorm gain before the FFN, `[dim]`.
    pub rms_ffn: Vec<f32>,
    /// FFN gate projection, `[hidden_dim, dim]`.
    pub w1: Vec<f32>,
    /// FFN down projection, `[dim, hidden_dim]`.
    pub w2: Vec<f32>,
    /// FFN up projection, `[hidden_dim, dim]`.
    pub w3: Vec<f32>,
}

/// All model weights plus the owning [`ModelConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct TransformerWeights {
    /// Architecture the shapes below were sized for.
    pub config: ModelConfig,
    /// Token embedding table, `[vocab_size, dim]`.
    pub token_embedding: Vec<f32>,
    /// Per-layer projection weights.
    pub layers: Vec<LayerWeights>,
    /// Final RMSNorm gain, `[dim]`.
    pub rms_final: Vec<f32>,
    /// Output classifier, `[vocab_size, dim]`; `None` when tied to the
    /// embedding table.
    pub wcls: Option<Vec<f32>>,
}

/// Errors raised while loading a checkpoint.
#[derive(Debug)]
pub enum WeightsError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Header fields describe an invalid architecture.
    BadConfig(crate::config::ConfigError),
    /// File ended before all tensors were read.
    #[allow(missing_docs)]
    Truncated { expected: usize, got: usize },
}

impl std::fmt::Display for WeightsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeightsError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            WeightsError::BadConfig(e) => write!(f, "checkpoint header invalid: {e}"),
            WeightsError::Truncated { expected, got } => {
                write!(
                    f,
                    "checkpoint truncated: expected {expected} floats, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for WeightsError {}

impl From<io::Error> for WeightsError {
    fn from(e: io::Error) -> Self {
        WeightsError::Io(e)
    }
}

impl TransformerWeights {
    /// Builds a model with seeded Gaussian weights (`std = 0.02`, with the
    /// GPT-2-style `1/sqrt(2·n_layers)` scaling on residual-output
    /// projections so deep configs stay numerically tame).
    #[must_use]
    pub fn synthetic(config: ModelConfig, seed: u64) -> Self {
        config.validate().expect("invalid config");
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let d = config.dim;
        let h = config.hidden_dim;
        let kv = config.kv_dim();
        let std = 0.02f32;
        let res_std = std / (2.0 * config.n_layers as f32).sqrt();

        let mut normal = |n: usize, s: f32| {
            let mut v = vec![0.0f32; n];
            rng.fill_normal(&mut v, s);
            v
        };

        let token_embedding = normal(config.vocab_size * d, std);
        let mut layers = Vec::with_capacity(config.n_layers);
        for _ in 0..config.n_layers {
            layers.push(LayerWeights {
                rms_att: vec![1.0; d],
                wq: normal(d * d, std),
                wk: normal(kv * d, std),
                wv: normal(kv * d, std),
                wo: normal(d * d, res_std),
                rms_ffn: vec![1.0; d],
                w1: normal(h * d, std),
                w2: normal(d * h, res_std),
                w3: normal(h * d, std),
            });
        }
        let wcls = if config.shared_classifier {
            None
        } else {
            Some(normal(config.vocab_size * d, std))
        };
        Self {
            config,
            token_embedding,
            layers,
            rms_final: vec![1.0; d],
            wcls,
        }
    }

    /// The classifier matrix: `wcls` when untied, otherwise the embedding
    /// table.
    #[must_use]
    pub fn classifier(&self) -> &[f32] {
        self.wcls.as_deref().unwrap_or(&self.token_embedding)
    }

    /// The embedding row for `token`.
    #[must_use]
    pub fn embedding_row(&self, token: usize) -> &[f32] {
        let d = self.config.dim;
        &self.token_embedding[token * d..(token + 1) * d]
    }

    /// Total number of stored parameters.
    #[must_use]
    pub fn param_count(&self) -> usize {
        let layer: usize = self
            .layers
            .iter()
            .map(|l| {
                l.rms_att.len()
                    + l.wq.len()
                    + l.wk.len()
                    + l.wv.len()
                    + l.wo.len()
                    + l.rms_ffn.len()
                    + l.w1.len()
                    + l.w2.len()
                    + l.w3.len()
            })
            .sum();
        self.token_embedding.len()
            + layer
            + self.rms_final.len()
            + self.wcls.as_ref().map_or(0, Vec::len)
    }

    /// Serializes in the legacy llama2.c checkpoint format.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let file = std::fs::File::create(path)?;
        let mut w = io::BufWriter::new(file);
        self.write_to(&mut w)?;
        w.flush()
    }

    /// Writes the checkpoint to an arbitrary sink (legacy llama2.c layout).
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let c = &self.config;
        // Legacy header: negative vocab_size encodes an untied classifier.
        let vocab_field = if c.shared_classifier {
            c.vocab_size as i32
        } else {
            -(c.vocab_size as i32)
        };
        for v in [
            c.dim as i32,
            c.hidden_dim as i32,
            c.n_layers as i32,
            c.n_heads as i32,
            c.n_kv_heads as i32,
            vocab_field,
            c.seq_len as i32,
        ] {
            w.write_all(&v.to_le_bytes())?;
        }
        let dump = |w: &mut dyn Write, data: &[f32]| -> io::Result<()> {
            let mut buf = Vec::with_capacity(data.len() * 4);
            for &x in data {
                buf.extend_from_slice(&x.to_le_bytes());
            }
            w.write_all(&buf)
        };
        dump(w, &self.token_embedding)?;
        for l in &self.layers {
            dump(w, &l.rms_att)?;
        }
        for l in &self.layers {
            dump(w, &l.wq)?;
        }
        for l in &self.layers {
            dump(w, &l.wk)?;
        }
        for l in &self.layers {
            dump(w, &l.wv)?;
        }
        for l in &self.layers {
            dump(w, &l.wo)?;
        }
        for l in &self.layers {
            dump(w, &l.rms_ffn)?;
        }
        for l in &self.layers {
            dump(w, &l.w1)?;
        }
        for l in &self.layers {
            dump(w, &l.w2)?;
        }
        for l in &self.layers {
            dump(w, &l.w3)?;
        }
        dump(w, &self.rms_final)?;
        // Legacy freq_cis_{real,imag}: 2 * seq_len * head_dim/2 floats of
        // precomputed RoPE tables that modern loaders ignore; we write
        // zeros for byte-compatibility.
        let freq_len = c.seq_len * c.head_dim() / 2;
        dump(w, &vec![0.0f32; 2 * freq_len])?;
        if let Some(wcls) = &self.wcls {
            dump(w, wcls)?;
        }
        Ok(())
    }

    /// Loads a legacy llama2.c checkpoint (e.g. `stories15M.bin`).
    pub fn load(path: &Path) -> Result<Self, WeightsError> {
        let file = std::fs::File::open(path)?;
        let mut r = io::BufReader::new(file);
        Self::read_from(&mut r)
    }

    /// Reads a checkpoint from an arbitrary source (legacy llama2.c layout).
    pub fn read_from(r: &mut impl Read) -> Result<Self, WeightsError> {
        let mut header = [0u8; 28];
        r.read_exact(&mut header)?;
        let field = |i: usize| i32::from_le_bytes(header[i * 4..i * 4 + 4].try_into().unwrap());
        // Every field except vocab (whose sign encodes classifier tying)
        // must be positive; garbage headers otherwise wrap to absurd usize
        // values and produce confusing errors downstream.
        for (i, name) in ["dim", "hidden_dim", "n_layers", "n_heads", "n_kv_heads"]
            .iter()
            .enumerate()
        {
            if field(i) <= 0 {
                return Err(WeightsError::BadConfig(
                    crate::config::ConfigError::ZeroField(match *name {
                        "dim" => "dim",
                        "hidden_dim" => "hidden_dim",
                        "n_layers" => "n_layers",
                        "n_heads" => "n_heads",
                        _ => "n_kv_heads",
                    }),
                ));
            }
        }
        if field(6) <= 0 {
            return Err(WeightsError::BadConfig(
                crate::config::ConfigError::ZeroField("seq_len"),
            ));
        }
        let vocab_field = field(5);
        let config = ModelConfig {
            dim: field(0) as usize,
            hidden_dim: field(1) as usize,
            n_layers: field(2) as usize,
            n_heads: field(3) as usize,
            n_kv_heads: field(4) as usize,
            vocab_size: vocab_field.unsigned_abs() as usize,
            seq_len: field(6) as usize,
            shared_classifier: vocab_field > 0,
        };
        config.validate().map_err(WeightsError::BadConfig)?;

        let read_f32s = |r: &mut dyn Read, n: usize| -> Result<Vec<f32>, WeightsError> {
            let mut bytes = vec![0u8; n * 4];
            let mut filled = 0;
            while filled < bytes.len() {
                let got = r.read(&mut bytes[filled..])?;
                if got == 0 {
                    return Err(WeightsError::Truncated {
                        expected: n,
                        got: filled / 4,
                    });
                }
                filled += got;
            }
            Ok(bytes
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                .collect())
        };

        let d = config.dim;
        let h = config.hidden_dim;
        let kv = config.kv_dim();
        let nl = config.n_layers;

        let token_embedding = read_f32s(r, config.vocab_size * d)?;
        let mut layers: Vec<LayerWeights> = (0..nl)
            .map(|_| LayerWeights {
                rms_att: Vec::new(),
                wq: Vec::new(),
                wk: Vec::new(),
                wv: Vec::new(),
                wo: Vec::new(),
                rms_ffn: Vec::new(),
                w1: Vec::new(),
                w2: Vec::new(),
                w3: Vec::new(),
            })
            .collect();
        for l in layers.iter_mut() {
            l.rms_att = read_f32s(r, d)?;
        }
        for l in layers.iter_mut() {
            l.wq = read_f32s(r, d * d)?;
        }
        for l in layers.iter_mut() {
            l.wk = read_f32s(r, kv * d)?;
        }
        for l in layers.iter_mut() {
            l.wv = read_f32s(r, kv * d)?;
        }
        for l in layers.iter_mut() {
            l.wo = read_f32s(r, d * d)?;
        }
        for l in layers.iter_mut() {
            l.rms_ffn = read_f32s(r, d)?;
        }
        for l in layers.iter_mut() {
            l.w1 = read_f32s(r, h * d)?;
        }
        for l in layers.iter_mut() {
            l.w2 = read_f32s(r, d * h)?;
        }
        for l in layers.iter_mut() {
            l.w3 = read_f32s(r, h * d)?;
        }
        let rms_final = read_f32s(r, d)?;
        // Skip the legacy RoPE tables.
        let freq_len = config.seq_len * config.head_dim() / 2;
        let _ = read_f32s(r, 2 * freq_len)?;
        let wcls = if config.shared_classifier {
            None
        } else {
            Some(read_f32s(r, config.vocab_size * d)?)
        };
        Ok(Self {
            config,
            token_embedding,
            layers,
            rms_final,
            wcls,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_matches_config_param_count() {
        let cfg = ModelConfig::test_tiny();
        let w = TransformerWeights::synthetic(cfg, 1);
        assert_eq!(w.param_count(), cfg.param_count());
    }

    #[test]
    fn synthetic_is_deterministic() {
        let cfg = ModelConfig::test_tiny();
        let a = TransformerWeights::synthetic(cfg, 99);
        let b = TransformerWeights::synthetic(cfg, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = ModelConfig::test_tiny();
        let a = TransformerWeights::synthetic(cfg, 1);
        let b = TransformerWeights::synthetic(cfg, 2);
        assert_ne!(a.token_embedding, b.token_embedding);
    }

    #[test]
    fn classifier_tied_and_untied() {
        let tied = TransformerWeights::synthetic(ModelConfig::test_tiny(), 3);
        assert_eq!(tied.classifier().as_ptr(), tied.token_embedding.as_ptr());
        let cfg = ModelConfig {
            shared_classifier: false,
            ..ModelConfig::test_tiny()
        };
        let untied = TransformerWeights::synthetic(cfg, 3);
        assert!(untied.wcls.is_some());
        assert_ne!(
            untied.classifier().as_ptr(),
            untied.token_embedding.as_ptr()
        );
    }

    #[test]
    fn roundtrip_through_memory() {
        let cfg = ModelConfig::test_tiny();
        let w = TransformerWeights::synthetic(cfg, 42);
        let mut buf = Vec::new();
        w.write_to(&mut buf).unwrap();
        let r = TransformerWeights::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(w, r);
    }

    #[test]
    fn roundtrip_untied_classifier() {
        let cfg = ModelConfig {
            shared_classifier: false,
            ..ModelConfig::test_tiny()
        };
        let w = TransformerWeights::synthetic(cfg, 5);
        let mut buf = Vec::new();
        w.write_to(&mut buf).unwrap();
        let r = TransformerWeights::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(w, r);
        assert!(!r.config.shared_classifier);
    }

    #[test]
    fn truncated_file_is_rejected() {
        let cfg = ModelConfig::test_tiny();
        let w = TransformerWeights::synthetic(cfg, 7);
        let mut buf = Vec::new();
        w.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        let err = TransformerWeights::read_from(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(
            err,
            WeightsError::Truncated { .. } | WeightsError::Io(_)
        ));
    }

    #[test]
    fn bad_header_is_rejected() {
        // All-zero header: every field zero -> ZeroField.
        let buf = vec![0u8; 28];
        let err = TransformerWeights::read_from(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, WeightsError::BadConfig(_)));
    }

    #[test]
    fn header_byte_layout_matches_llama2c() {
        let cfg = ModelConfig::test_tiny();
        let w = TransformerWeights::synthetic(cfg, 11);
        let mut buf = Vec::new();
        w.write_to(&mut buf).unwrap();
        let field = |i: usize| i32::from_le_bytes(buf[i * 4..i * 4 + 4].try_into().unwrap());
        assert_eq!(field(0), cfg.dim as i32);
        assert_eq!(field(1), cfg.hidden_dim as i32);
        assert_eq!(field(2), cfg.n_layers as i32);
        assert_eq!(field(3), cfg.n_heads as i32);
        assert_eq!(field(4), cfg.n_kv_heads as i32);
        assert_eq!(field(5), cfg.vocab_size as i32); // positive = tied
        assert_eq!(field(6), cfg.seq_len as i32);
    }

    #[test]
    fn file_size_matches_formula() {
        let cfg = ModelConfig::test_tiny();
        let w = TransformerWeights::synthetic(cfg, 13);
        let mut buf = Vec::new();
        w.write_to(&mut buf).unwrap();
        let freq = 2 * cfg.seq_len * cfg.head_dim() / 2;
        let expected = 28 + 4 * (cfg.param_count() + freq);
        assert_eq!(buf.len(), expected);
    }

    #[test]
    fn roundtrip_through_disk() {
        let cfg = ModelConfig::test_tiny();
        let w = TransformerWeights::synthetic(cfg, 21);
        let path = std::env::temp_dir().join("speedllm_weights_roundtrip.bin");
        w.save(&path).unwrap();
        let r = TransformerWeights::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(w, r);
    }
}
