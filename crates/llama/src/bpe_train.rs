//! Byte-pair-encoding vocabulary training.
//!
//! The paper's workload uses `tokenizer.bin` vocabularies *trained* on
//! TinyStories with SentencePiece-style BPE. This module closes that loop:
//! given any corpus, it learns merges by the classic BPE procedure (count
//! adjacent pairs, merge the most frequent, repeat) and emits a
//! [`Tokenizer`]-compatible vocabulary — specials first, the 256-entry
//! byte-fallback block, then single bytes seen in the corpus, then learned
//! merges with scores in merge order (earlier merges score higher, as in
//! SentencePiece, so the greedy encoder replays them faithfully).

use std::collections::HashMap;

use crate::tokenizer::Tokenizer;

/// Settings for a training run.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Total vocabulary size to produce (≥ 259: specials + byte block).
    pub vocab_size: usize,
    /// Ignore pairs occurring fewer times than this.
    pub min_pair_count: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            vocab_size: 512,
            min_pair_count: 2,
        }
    }
}

/// Trains a BPE vocabulary on `corpus` and returns the tokenizer.
///
/// # Panics
/// Panics if `vocab_size < 259` (specials + byte fallback must fit).
#[must_use]
pub fn train(corpus: &str, config: TrainConfig) -> Tokenizer {
    assert!(
        config.vocab_size >= 259,
        "vocab must hold specials + byte block"
    );

    // Seed vocabulary: specials + byte-fallback block.
    let mut vocab: Vec<Vec<u8>> = Vec::with_capacity(config.vocab_size);
    vocab.push(b"<unk>".to_vec());
    vocab.push(b"<s>".to_vec());
    vocab.push(b"</s>".to_vec());
    for b in 0u16..256 {
        vocab.push(format!("<0x{b:02X}>").into_bytes());
    }
    let base = vocab.len();

    // Work at the byte level: the corpus as a sequence of token ids into a
    // growing piece table. Start with one piece per distinct byte.
    let mut piece_of_byte: HashMap<u8, u32> = HashMap::new();
    let mut pieces: Vec<Vec<u8>> = Vec::new(); // learned pieces, ids base..
    let mut seq: Vec<u32> = Vec::with_capacity(corpus.len());
    for &b in corpus.as_bytes() {
        let id = *piece_of_byte.entry(b).or_insert_with(|| {
            pieces.push(vec![b]);
            (base + pieces.len() - 1) as u32
        });
        seq.push(id);
    }

    // Iteratively merge the most frequent adjacent pair.
    while base + pieces.len() < config.vocab_size {
        let mut counts: HashMap<(u32, u32), usize> = HashMap::new();
        for w in seq.windows(2) {
            // Do not merge across whitespace-led boundaries twice over;
            // plain BPE merges anything, which matches llama2.c's greedy
            // decoder.
            *counts.entry((w[0], w[1])).or_insert(0) += 1;
        }
        // Deterministic arg-max: highest count, then lowest ids.
        let best = counts
            .into_iter()
            .filter(|&(_, c)| c >= config.min_pair_count)
            .min_by_key(|&((a, b), c)| (usize::MAX - c, a, b));
        let Some(((a, b), _)) = best else {
            break; // corpus exhausted: no pair frequent enough
        };
        let mut merged = piece_bytes(&vocab, &pieces, base, a).to_vec();
        merged.extend_from_slice(piece_bytes(&vocab, &pieces, base, b));
        pieces.push(merged);
        let new_id = (base + pieces.len() - 1) as u32;

        // Replace occurrences in the working sequence.
        let mut out = Vec::with_capacity(seq.len());
        let mut i = 0;
        while i < seq.len() {
            if i + 1 < seq.len() && seq[i] == a && seq[i + 1] == b {
                out.push(new_id);
                i += 2;
            } else {
                out.push(seq[i]);
                i += 1;
            }
        }
        seq = out;
    }

    for p in &pieces {
        vocab.push(p.clone());
    }
    // Pad with unused sentinel tokens if the corpus was too small to fill
    // the request (kept distinct so lookups stay unambiguous).
    let mut pad = 0usize;
    while vocab.len() < config.vocab_size {
        vocab.push(format!("<pad{pad}>").into_bytes());
        pad += 1;
    }

    // Scores: earlier merges (longer-standing pieces) score higher; the
    // byte block and specials get the floor.
    let scores: Vec<f32> = (0..vocab.len())
        .map(|i| {
            if i < base {
                -1e9 // specials/bytes never win a merge
            } else {
                // Single-byte pieces act like characters; learned merges
                // rank by recency: later merges are *compositions* of
                // earlier ones, so they must apply after their parts —
                // SentencePiece gives earlier merges higher scores but the
                // greedy llama2.c loop needs the *longest* (latest)
                // matching merge to win, so rank by length then recency.
                let len = vocab[i].len() as f32;
                len * 1000.0 - i as f32 * 1e-3
            }
        })
        .collect();
    Tokenizer::from_vocab(vocab, scores)
}

fn piece_bytes<'a>(vocab: &'a [Vec<u8>], pieces: &'a [Vec<u8>], base: usize, id: u32) -> &'a [u8] {
    let id = id as usize;
    if id >= base {
        &pieces[id - base]
    } else {
        &vocab[id]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CORPUS: &str = "once upon a time there was a little dog named tim. \
        tim liked to play in the park. one day tim saw a big red ball. \
        the ball was very big and very red. tim wanted to play with the ball. \
        once upon a time there was a little cat named lily. lily liked the park too.";

    fn trained(vocab_size: usize) -> Tokenizer {
        train(
            CORPUS,
            TrainConfig {
                vocab_size,
                min_pair_count: 2,
            },
        )
    }

    #[test]
    fn produces_requested_vocab_size() {
        let t = trained(300);
        assert_eq!(t.vocab_size(), 300);
        let t = trained(600);
        assert_eq!(t.vocab_size(), 600);
    }

    #[test]
    fn roundtrips_corpus_like_text() {
        let t = trained(400);
        for text in ["once upon a time", "tim saw the ball", "a little dog"] {
            let ids = t.encode(text, true, false);
            assert_eq!(t.decode(&ids), text);
        }
    }

    #[test]
    fn learned_merges_compress_the_corpus_domain() {
        let t = trained(450);
        let text = "once upon a time there was a little dog";
        let ids = t.encode(text, false, false);
        // Learned vocabulary should encode familiar text in far fewer
        // tokens than bytes.
        assert!(
            ids.len() * 2 < text.len(),
            "{} tokens for {} bytes",
            ids.len(),
            text.len()
        );
    }

    #[test]
    fn trained_beats_untrained_synthetic_on_domain_text() {
        let trained_tok = trained(512);
        let synthetic = Tokenizer::synthetic(512, 42);
        let text = "tim liked to play in the park";
        let a = trained_tok.encode(text, false, false).len();
        let b = synthetic.encode(text, false, false).len();
        assert!(a <= b, "trained {a} tokens vs synthetic {b}");
    }

    #[test]
    fn training_is_deterministic() {
        let a = trained(350);
        let b = trained(350);
        for i in 0..350 {
            assert_eq!(a.token_bytes(i), b.token_bytes(i), "token {i} differs");
        }
    }

    #[test]
    fn roundtrips_unseen_text_via_byte_fallback() {
        let t = trained(300);
        let text = "zebra-Xylophone 42!";
        let ids = t.encode(text, true, false);
        assert_eq!(t.decode(&ids), text);
    }

    #[test]
    fn tiny_corpus_pads_vocab() {
        let t = train(
            "ab",
            TrainConfig {
                vocab_size: 280,
                min_pair_count: 2,
            },
        );
        assert_eq!(t.vocab_size(), 280);
        assert_eq!(t.decode(&t.encode("ab", true, false)), "ab");
    }

    #[test]
    #[should_panic(expected = "specials + byte block")]
    fn undersized_vocab_rejected() {
        let _ = train(
            "hello",
            TrainConfig {
                vocab_size: 100,
                min_pair_count: 2,
            },
        );
    }

    #[test]
    fn saved_trained_tokenizer_roundtrips() {
        let t = trained(320);
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let r = Tokenizer::read_from(&mut buf.as_slice(), t.vocab_size()).unwrap();
        let text = "the park was big";
        assert_eq!(r.encode(text, true, false), t.encode(text, true, false));
    }
}
