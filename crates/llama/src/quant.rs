//! Group-wise weight quantization: Q8_0 (int8) and Q4_0 (packed int4).
//!
//! The paper motivates FPGAs partly by their native support for
//! mixed-precision arithmetic; the accelerator's MPE has int8/int4 modes
//! and the serve decode hot path is HBM weight traffic. This module
//! provides the reference formats backing both:
//!
//! - **Q8_0** — groups of [`GROUP`] weights share one `f32` scale, each
//!   weight stored as a signed byte (`w ≈ scale · q`), identical to
//!   llama2.c's quantized runtime.
//! - **Q4_0** — same group-scale layout with weights narrowed to 4 bits,
//!   two per byte (`q ∈ [-7, 7]`, stored biased by +8 so a packed nibble
//!   is always a valid unsigned value).
//!
//! [`QuantMatrix`] stores a row-major matrix in a flat group-scale layout
//! (payload bytes + one scale per row-group) so the fused dequant-GEMM
//! kernels in [`crate::qgemm`] can stream it group-at-a-time, and
//! [`QuantWeights`] quantizes every GEMM operand of a transformer for the
//! serve-path [`crate::forward`] weight store.

use crate::weights::TransformerWeights;

/// Number of weights sharing a scale factor.
pub const GROUP: usize = 32;

/// Bias added to an int4 value before nibble packing (`q + 8 ∈ [0, 15]`).
pub const INT4_BIAS: i8 = 8;

/// Storage kind of a quantized weight payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuantKind {
    /// 8-bit signed weights, one byte per element.
    Int8,
    /// 4-bit weights packed two per byte, biased by [`INT4_BIAS`].
    Int4,
}

impl QuantKind {
    /// Bits per stored weight element.
    #[must_use]
    pub fn bits(self) -> usize {
        match self {
            Self::Int8 => 8,
            Self::Int4 => 4,
        }
    }

    /// Payload bytes of one full [`GROUP`]-wide group.
    #[must_use]
    pub fn group_bytes(self) -> usize {
        GROUP * self.bits() / 8
    }

    /// Largest representable magnitude (`scale = absmax / max_q`).
    #[must_use]
    pub fn max_q(self) -> f32 {
        match self {
            Self::Int8 => 127.0,
            Self::Int4 => 7.0,
        }
    }

    /// Lower-case display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Int8 => "int8",
            Self::Int4 => "int4",
        }
    }
}

/// Serve-facing weight precision selection: full precision or one of the
/// quantized kinds. This is what `--quant f32|int8|int4` parses into.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum QuantMode {
    /// Stream the original f32 weights (the pre-quantization hot path).
    #[default]
    F32,
    /// Q8_0 group-quantized weights.
    Int8,
    /// Q4_0 nibble-packed weights.
    Int4,
}

impl QuantMode {
    /// Parses `"f32" | "int8" | "int4"`.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "f32" | "fp32" => Some(Self::F32),
            "int8" | "i8" => Some(Self::Int8),
            "int4" | "i4" => Some(Self::Int4),
            _ => None,
        }
    }

    /// Lower-case display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::F32 => "f32",
            Self::Int8 => "int8",
            Self::Int4 => "int4",
        }
    }

    /// The quantized storage kind, if any.
    #[must_use]
    pub fn kind(self) -> Option<QuantKind> {
        match self {
            Self::F32 => None,
            Self::Int8 => Some(QuantKind::Int8),
            Self::Int4 => Some(QuantKind::Int4),
        }
    }
}

/// Packs int4 values (`q ∈ [-8, 7]`) two per byte: even index in the low
/// nibble, odd index in the high nibble, each biased by [`INT4_BIAS`]. An
/// odd-length slice pads the final high nibble with a biased zero.
#[must_use]
pub fn pack_nibbles(vals: &[i8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len().div_ceil(2));
    for pair in vals.chunks(2) {
        debug_assert!((-8..=7).contains(&pair[0]));
        let lo = (pair[0] + INT4_BIAS) as u8;
        let hi = if pair.len() == 2 {
            debug_assert!((-8..=7).contains(&pair[1]));
            (pair[1] + INT4_BIAS) as u8
        } else {
            INT4_BIAS as u8
        };
        out.push(lo | (hi << 4));
    }
    out
}

/// Inverse of [`pack_nibbles`]: recovers `len` signed int4 values.
#[must_use]
pub fn unpack_nibbles(bytes: &[u8], len: usize) -> Vec<i8> {
    assert!(bytes.len() * 2 >= len, "short nibble payload");
    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        let b = bytes[i / 2];
        let nib = if i % 2 == 0 { b & 0x0F } else { b >> 4 };
        out.push(nib as i8 - INT4_BIAS);
    }
    out
}

/// A Q8_0-quantized tensor: `q.len() == groups * GROUP`,
/// `scales.len() == groups`. Trailing partial groups are zero-padded.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantTensor {
    /// Signed 8-bit quantized values.
    pub q: Vec<i8>,
    /// One scale per [`GROUP`]-wide group.
    pub scales: Vec<f32>,
    /// Logical (unpadded) element count.
    pub len: usize,
}

impl QuantTensor {
    /// Quantizes `data` with symmetric per-group absmax scaling.
    #[must_use]
    pub fn quantize(data: &[f32]) -> Self {
        let groups = data.len().div_ceil(GROUP);
        let mut q = vec![0i8; groups * GROUP];
        let mut scales = vec![0.0f32; groups];
        for (g, scale_slot) in scales.iter_mut().enumerate() {
            let start = g * GROUP;
            let end = (start + GROUP).min(data.len());
            let chunk = &data[start..end];
            let absmax = chunk.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
            let scale = if absmax == 0.0 { 0.0 } else { absmax / 127.0 };
            *scale_slot = scale;
            if scale > 0.0 {
                for (i, &x) in chunk.iter().enumerate() {
                    q[start + i] = (x / scale).round().clamp(-127.0, 127.0) as i8;
                }
            }
        }
        Self {
            q,
            scales,
            len: data.len(),
        }
    }

    /// Reconstructs the `f32` values (padding excluded).
    #[must_use]
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.len);
        for (i, &qv) in self.q.iter().take(self.len).enumerate() {
            out.push(qv as f32 * self.scales[i / GROUP]);
        }
        out
    }

    /// Worst-case absolute reconstruction error bound: half a quantization
    /// step per group (`scale / 2`), maximized over groups.
    #[must_use]
    pub fn error_bound(&self) -> f32 {
        self.scales.iter().fold(0.0f32, |m, &s| m.max(s)) * 0.5
    }

    /// Payload bytes (int8 values + f32 scales) — what the accelerator
    /// streams from HBM in int8 mode.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.q.len() + self.scales.len() * 4
    }
}

/// A group-quantized row-major matrix in a flat group-scale layout.
///
/// Rows are quantized independently so row tiles stay group-aligned: each
/// row holds `groups_per_row = cols.div_ceil(GROUP)` groups, and the
/// payload for group `(r, g)` sits at `(r * groups_per_row + g) *
/// kind.group_bytes()`. Trailing partial groups are zero-padded so every
/// stored group is exactly [`GROUP`] wide.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantMatrix {
    kind: QuantKind,
    rows: usize,
    cols: usize,
    groups_per_row: usize,
    /// Packed payload: int8 stores one byte per element; int4 packs two
    /// elements per byte ([`pack_nibbles`] layout).
    data: Vec<u8>,
    /// `scales[r * groups_per_row + g]`.
    scales: Vec<f32>,
}

impl QuantMatrix {
    /// Quantizes a row-major `rows × cols` matrix as Q8_0 (the historic
    /// default; see [`Self::quantize_with`] for int4).
    #[must_use]
    pub fn quantize(w: &[f32], rows: usize, cols: usize) -> Self {
        Self::quantize_with(w, rows, cols, QuantKind::Int8)
    }

    /// Quantizes a row-major `rows × cols` matrix with per-row-group
    /// symmetric absmax scaling in the requested storage kind.
    #[must_use]
    pub fn quantize_with(w: &[f32], rows: usize, cols: usize, kind: QuantKind) -> Self {
        assert_eq!(w.len(), rows * cols, "matrix shape mismatch");
        let groups_per_row = cols.div_ceil(GROUP);
        let gbytes = kind.group_bytes();
        let mut data = vec![0u8; rows * groups_per_row * gbytes];
        let mut scales = vec![0.0f32; rows * groups_per_row];
        for r in 0..rows {
            let row = &w[r * cols..(r + 1) * cols];
            for g in 0..groups_per_row {
                let start = g * GROUP;
                let end = (start + GROUP).min(cols);
                let chunk = &row[start..end];
                let absmax = chunk.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
                let scale = if absmax == 0.0 {
                    0.0
                } else {
                    absmax / kind.max_q()
                };
                scales[r * groups_per_row + g] = scale;
                let mut qbuf = [0i8; GROUP];
                if scale > 0.0 {
                    let max_q = kind.max_q();
                    for (slot, &x) in qbuf.iter_mut().zip(chunk) {
                        *slot = (x / scale).round().clamp(-max_q, max_q) as i8;
                    }
                }
                let dst = &mut data[(r * groups_per_row + g) * gbytes..][..gbytes];
                match kind {
                    QuantKind::Int8 => {
                        for (d, &q) in dst.iter_mut().zip(&qbuf) {
                            *d = q as u8;
                        }
                    }
                    QuantKind::Int4 => dst.copy_from_slice(&pack_nibbles(&qbuf)),
                }
            }
        }
        Self {
            kind,
            rows,
            cols,
            groups_per_row,
            data,
            scales,
        }
    }

    /// Storage kind.
    #[must_use]
    pub fn kind(&self) -> QuantKind {
        self.kind
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Groups per row (`cols.div_ceil(GROUP)`).
    #[must_use]
    pub fn groups_per_row(&self) -> usize {
        self.groups_per_row
    }

    /// Per-group scales, indexed `[r * groups_per_row + g]`.
    #[must_use]
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Logical streamed payload bytes: packed weight elements plus one
    /// f32 scale per group. Zero-padding of trailing partial groups is
    /// storage slack, not stream traffic, so it is excluded — this is the
    /// number the `gemm_weight_bytes` telemetry reports.
    #[must_use]
    pub fn bytes(&self) -> usize {
        let payload = match self.kind {
            QuantKind::Int8 => self.cols,
            QuantKind::Int4 => self.cols.div_ceil(2),
        };
        self.rows * (payload + self.groups_per_row * 4)
    }

    /// Worst-case absolute reconstruction error bound: half a quantization
    /// step per group, maximized over groups.
    #[must_use]
    pub fn error_bound(&self) -> f32 {
        self.scales.iter().fold(0.0f32, |m, &s| m.max(s)) * 0.5
    }

    /// Dequantizes group `g` of row `r` into a register-resident block —
    /// the fused-kernel primitive: each weight group is expanded once and
    /// then applied across every batch column.
    #[inline]
    pub fn dequant_group_into(&self, r: usize, g: usize, out: &mut [f32; GROUP]) {
        debug_assert!(r < self.rows && g < self.groups_per_row);
        let idx = r * self.groups_per_row + g;
        let scale = self.scales[idx];
        let gbytes = self.kind.group_bytes();
        let src = &self.data[idx * gbytes..][..gbytes];
        match self.kind {
            QuantKind::Int8 => {
                for (o, &b) in out.iter_mut().zip(src) {
                    *o = (b as i8) as f32 * scale;
                }
            }
            QuantKind::Int4 => {
                for (pair, &b) in out.chunks_exact_mut(2).zip(src) {
                    pair[0] = ((b & 0x0F) as i8 - INT4_BIAS) as f32 * scale;
                    pair[1] = ((b >> 4) as i8 - INT4_BIAS) as f32 * scale;
                }
            }
        }
    }

    /// Reconstructs row `r` as f32 (padding excluded).
    #[must_use]
    pub fn dequantize_row(&self, r: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        let mut group = [0.0f32; GROUP];
        for g in 0..self.groups_per_row {
            self.dequant_group_into(r, g, &mut group);
            let start = g * GROUP;
            let end = (start + GROUP).min(self.cols);
            out[start..end].copy_from_slice(&group[..end - start]);
        }
        out
    }

    /// Reconstructs the full matrix as row-major f32.
    #[must_use]
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.rows * self.cols);
        for r in 0..self.rows {
            out.extend_from_slice(&self.dequantize_row(r));
        }
        out
    }

    /// Fused dequant matvec: weights are dequantized group-at-a-time into
    /// registers and accumulated in f32 (weight-only quantization — the
    /// activations stay full precision). Delegates to the kernel module so
    /// the serve path and this entry point share one accumulation order.
    pub fn matvec(&self, out: &mut [f32], x: &[f32]) {
        crate::qgemm::qmatvec(out, self, x);
    }
}

/// One transformer layer's GEMM operands, quantized.
#[derive(Debug, Clone)]
pub struct QuantLayer {
    /// Query projection, `dim × dim`.
    pub wq: QuantMatrix,
    /// Key projection, `kv_dim × dim`.
    pub wk: QuantMatrix,
    /// Value projection, `kv_dim × dim`.
    pub wv: QuantMatrix,
    /// Attention output projection, `dim × dim`.
    pub wo: QuantMatrix,
    /// FFN gate projection, `hidden × dim`.
    pub w1: QuantMatrix,
    /// FFN down projection, `dim × hidden`.
    pub w2: QuantMatrix,
    /// FFN up projection, `hidden × dim`.
    pub w3: QuantMatrix,
}

/// Every GEMM operand of a transformer, group-quantized — the compressed
/// weight stream the serve hot path reads instead of the f32 tensors.
/// Norm weights and the embedding lookup stay f32 (they are O(dim), not
/// O(dim²), and never ride the GEMM stream).
#[derive(Debug, Clone)]
pub struct QuantWeights {
    kind: QuantKind,
    /// Per-layer quantized projections.
    pub layers: Vec<QuantLayer>,
    /// Classifier head, `vocab × dim` (shared embedding or `wcls`).
    pub classifier: QuantMatrix,
}

impl QuantWeights {
    /// Quantizes every GEMM operand of `w`.
    #[must_use]
    pub fn quantize(w: &TransformerWeights, kind: QuantKind) -> Self {
        let c = &w.config;
        let (dim, kv_dim, hid) = (c.dim, c.kv_dim(), c.hidden_dim);
        let layers = w
            .layers
            .iter()
            .map(|lw| QuantLayer {
                wq: QuantMatrix::quantize_with(&lw.wq, dim, dim, kind),
                wk: QuantMatrix::quantize_with(&lw.wk, kv_dim, dim, kind),
                wv: QuantMatrix::quantize_with(&lw.wv, kv_dim, dim, kind),
                wo: QuantMatrix::quantize_with(&lw.wo, dim, dim, kind),
                w1: QuantMatrix::quantize_with(&lw.w1, hid, dim, kind),
                w2: QuantMatrix::quantize_with(&lw.w2, dim, hid, kind),
                w3: QuantMatrix::quantize_with(&lw.w3, hid, dim, kind),
            })
            .collect();
        let classifier = QuantMatrix::quantize_with(w.classifier(), c.vocab_size, dim, kind);
        Self {
            kind,
            layers,
            classifier,
        }
    }

    /// Storage kind.
    #[must_use]
    pub fn kind(&self) -> QuantKind {
        self.kind
    }

    /// Compressed bytes one decode tick streams when every GEMM operand is
    /// read once — the quantized counterpart of
    /// [`crate::config::ModelConfig::gemm_weight_bytes`].
    #[must_use]
    pub fn gemm_weight_bytes(&self) -> usize {
        let per_layer: usize = self
            .layers
            .iter()
            .map(|l| {
                l.wq.bytes()
                    + l.wk.bytes()
                    + l.wv.bytes()
                    + l.wo.bytes()
                    + l.w1.bytes()
                    + l.w2.bytes()
                    + l.w3.bytes()
            })
            .sum();
        per_layer + self.classifier.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    #[test]
    fn quantize_dequantize_small_error() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let mut data = vec![0.0f32; 1000];
        rng.fill_normal(&mut data, 0.5);
        let qt = QuantTensor::quantize(&data);
        let back = qt.dequantize();
        assert_eq!(back.len(), data.len());
        let bound = qt.error_bound() + 1e-7;
        for (a, b) in data.iter().zip(&back) {
            assert!((a - b).abs() <= bound, "{a} vs {b}, bound {bound}");
        }
    }

    #[test]
    fn zero_tensor_quantizes_to_zero() {
        let qt = QuantTensor::quantize(&[0.0; 40]);
        assert!(qt.q.iter().all(|&q| q == 0));
        assert!(qt.dequantize().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn partial_group_is_handled() {
        let data: Vec<f32> = (0..37).map(|i| i as f32 / 10.0).collect();
        let qt = QuantTensor::quantize(&data);
        assert_eq!(qt.scales.len(), 2);
        assert_eq!(qt.q.len(), 64);
        assert_eq!(qt.dequantize().len(), 37);
    }

    #[test]
    fn absmax_element_is_exact() {
        // The absmax element maps to ±127 exactly, so reconstruction error
        // there is at most scale * 0.5 (rounding of 127.0 is exact).
        let data = [0.1f32, -2.54, 0.3];
        let qt = QuantTensor::quantize(&data);
        let back = qt.dequantize();
        assert!((back[1] - data[1]).abs() < 1e-6, "absmax should round-trip");
    }

    #[test]
    fn payload_bytes_formula() {
        let qt = QuantTensor::quantize(&[1.0; 64]);
        assert_eq!(qt.bytes(), 64 + 2 * 4);
    }

    #[test]
    fn nibble_pack_unpack_round_trips() {
        let vals: Vec<i8> = (-8..=7).collect();
        let packed = pack_nibbles(&vals);
        assert_eq!(packed.len(), 8);
        assert_eq!(unpack_nibbles(&packed, vals.len()), vals);
        // Odd length pads the final high nibble with zero.
        let odd = [3i8, -5, 7];
        let packed = pack_nibbles(&odd);
        assert_eq!(packed.len(), 2);
        assert_eq!(unpack_nibbles(&packed, 3), odd);
        assert_eq!(packed[1] >> 4, INT4_BIAS as u8);
    }

    #[test]
    fn matrix_round_trip_is_within_error_bound() {
        for kind in [QuantKind::Int8, QuantKind::Int4] {
            let mut rng = Xoshiro256::seed_from_u64(7);
            let (rows, cols) = (12, 70); // partial trailing group
            let mut w = vec![0.0f32; rows * cols];
            rng.fill_normal(&mut w, 0.3);
            let qm = QuantMatrix::quantize_with(&w, rows, cols, kind);
            let back = qm.dequantize();
            let bound = qm.error_bound() + 1e-7;
            for (a, b) in w.iter().zip(&back) {
                assert!((a - b).abs() <= bound, "{kind:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn quant_matvec_tracks_f32_matvec() {
        let rows = 24;
        let cols = 96;
        let mut rng = Xoshiro256::seed_from_u64(9);
        let mut w = vec![0.0f32; rows * cols];
        let mut x = vec![0.0f32; cols];
        rng.fill_normal(&mut w, 0.1);
        rng.fill_normal(&mut x, 1.0);
        let mut exact = vec![0.0f32; rows];
        crate::ops::matvec(&mut exact, &w, &x, rows, cols);
        let qm = QuantMatrix::quantize(&w, rows, cols);
        let mut approx = vec![0.0f32; rows];
        qm.matvec(&mut approx, &x);
        for (e, a) in exact.iter().zip(&approx) {
            // Weight-only int8: well under the old W8A8 tolerance.
            assert!((e - a).abs() < 0.08, "{e} vs {a}");
        }
    }

    #[test]
    fn quant_matrix_is_smaller_than_f32() {
        let w = vec![0.5f32; 128 * 128];
        let qm = QuantMatrix::quantize(&w, 128, 128);
        assert!(qm.bytes() < 128 * 128 * 4 / 3, "got {}", qm.bytes());
        assert_eq!(qm.rows(), 128);
        assert_eq!(qm.cols(), 128);
        let q4 = QuantMatrix::quantize_with(&w, 128, 128, QuantKind::Int4);
        assert!(q4.bytes() < qm.bytes(), "int4 must beat int8");
    }

    #[test]
    fn logical_bytes_exclude_group_padding() {
        // 16 cols → one half-full group per row: stream 16 B + 1 scale,
        // not the 32 B the padded storage holds.
        let w = vec![1.0f32; 4 * 16];
        let qm = QuantMatrix::quantize(&w, 4, 16);
        assert_eq!(qm.bytes(), 4 * (16 + 4));
        let q4 = QuantMatrix::quantize_with(&w, 4, 16, QuantKind::Int4);
        assert_eq!(q4.bytes(), 4 * (8 + 4));
    }

    #[test]
    fn identity_like_matrix_quant_matvec() {
        // Scaled identity: output must match input within quant error.
        let n = 32;
        let mut w = vec![0.0f32; n * n];
        for i in 0..n {
            w[i * n + i] = 2.0;
        }
        let qm = QuantMatrix::quantize(&w, n, n);
        let x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.2).cos()).collect();
        let mut out = vec![0.0f32; n];
        qm.matvec(&mut out, &x);
        for (o, xi) in out.iter().zip(&x) {
            assert!((o - 2.0 * xi).abs() < 0.05, "{o} vs {}", 2.0 * xi);
        }
    }

    #[test]
    fn quant_weights_compress_the_gemm_stream() {
        let config = crate::config::ModelConfig::test_tiny();
        let weights = TransformerWeights::synthetic(config, 3);
        let f32_bytes = config.gemm_weight_bytes();
        let q8 = QuantWeights::quantize(&weights, QuantKind::Int8);
        let q4 = QuantWeights::quantize(&weights, QuantKind::Int4);
        assert!(
            q8.gemm_weight_bytes() * 3 < f32_bytes,
            "int8 {} vs f32 {f32_bytes}",
            q8.gemm_weight_bytes()
        );
        assert!(q4.gemm_weight_bytes() < q8.gemm_weight_bytes());
        assert_eq!(q8.layers.len(), config.n_layers);
        assert_eq!(q8.classifier.rows(), config.vocab_size);
    }
}
