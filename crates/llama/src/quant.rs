//! Q8_0 group quantization.
//!
//! The paper motivates FPGAs partly by their native support for
//! mixed-precision arithmetic; the accelerator's MPE therefore has an int8
//! mode. This module provides the reference quantization scheme backing it:
//! **Q8_0** — groups of `GROUP` weights share one `f32` scale, each weight
//! stored as a signed byte (`w ≈ scale · q`), identical to llama2.c's
//! quantized runtime.

/// Number of weights sharing a scale factor.
pub const GROUP: usize = 32;

/// A Q8_0-quantized tensor: `q.len() == groups * GROUP`,
/// `scales.len() == groups`. Trailing partial groups are zero-padded.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantTensor {
    /// Signed 8-bit quantized values.
    pub q: Vec<i8>,
    /// One scale per [`GROUP`]-wide group.
    pub scales: Vec<f32>,
    /// Logical (unpadded) element count.
    pub len: usize,
}

impl QuantTensor {
    /// Quantizes `data` with symmetric per-group absmax scaling.
    #[must_use]
    pub fn quantize(data: &[f32]) -> Self {
        let groups = data.len().div_ceil(GROUP);
        let mut q = vec![0i8; groups * GROUP];
        let mut scales = vec![0.0f32; groups];
        for (g, scale_slot) in scales.iter_mut().enumerate() {
            let start = g * GROUP;
            let end = (start + GROUP).min(data.len());
            let chunk = &data[start..end];
            let absmax = chunk.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
            let scale = if absmax == 0.0 { 0.0 } else { absmax / 127.0 };
            *scale_slot = scale;
            if scale > 0.0 {
                for (i, &x) in chunk.iter().enumerate() {
                    q[start + i] = (x / scale).round().clamp(-127.0, 127.0) as i8;
                }
            }
        }
        Self {
            q,
            scales,
            len: data.len(),
        }
    }

    /// Reconstructs the `f32` values (padding excluded).
    #[must_use]
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.len);
        for (i, &qv) in self.q.iter().take(self.len).enumerate() {
            out.push(qv as f32 * self.scales[i / GROUP]);
        }
        out
    }

    /// Worst-case absolute reconstruction error bound: half a quantization
    /// step per group (`scale / 2`), maximized over groups.
    #[must_use]
    pub fn error_bound(&self) -> f32 {
        self.scales.iter().fold(0.0f32, |m, &s| m.max(s)) * 0.5
    }

    /// Payload bytes (int8 values + f32 scales) — what the accelerator
    /// streams from HBM in int8 mode.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.q.len() + self.scales.len() * 4
    }
}

/// A Q8_0-quantized row-major matrix for quantized matvec.
#[derive(Debug, Clone)]
pub struct QuantMatrix {
    rows: usize,
    cols: usize,
    /// Each row quantized independently so row tiles stay group-aligned.
    row_data: Vec<QuantTensor>,
}

impl QuantMatrix {
    /// Quantizes a row-major `rows × cols` matrix, one [`QuantTensor`] per
    /// row.
    #[must_use]
    pub fn quantize(w: &[f32], rows: usize, cols: usize) -> Self {
        assert_eq!(w.len(), rows * cols);
        let row_data = (0..rows)
            .map(|r| QuantTensor::quantize(&w[r * cols..(r + 1) * cols]))
            .collect();
        Self {
            rows,
            cols,
            row_data,
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total payload bytes.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.row_data.iter().map(QuantTensor::bytes).sum()
    }

    /// Quantized matvec: the activation vector is quantized per-group on
    /// the fly (as llama2.c's runtime does), then integer dot products are
    /// accumulated in i32 and rescaled — the exact arithmetic an int8 MPE
    /// performs.
    pub fn matvec(&self, out: &mut [f32], x: &[f32]) {
        assert_eq!(out.len(), self.rows);
        assert_eq!(x.len(), self.cols);
        let xq = QuantTensor::quantize(x);
        for (o, row) in out.iter_mut().zip(&self.row_data) {
            let mut acc = 0.0f32;
            let groups = row.scales.len();
            for g in 0..groups {
                let start = g * GROUP;
                let end = ((g + 1) * GROUP).min(self.cols);
                let mut isum = 0i32;
                for i in start..end {
                    isum += row.q[i] as i32 * xq.q[i] as i32;
                }
                acc += isum as f32 * row.scales[g] * xq.scales[g];
            }
            *o = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    #[test]
    fn quantize_dequantize_small_error() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let mut data = vec![0.0f32; 1000];
        rng.fill_normal(&mut data, 0.5);
        let qt = QuantTensor::quantize(&data);
        let back = qt.dequantize();
        assert_eq!(back.len(), data.len());
        let bound = qt.error_bound() + 1e-7;
        for (a, b) in data.iter().zip(&back) {
            assert!((a - b).abs() <= bound, "{a} vs {b}, bound {bound}");
        }
    }

    #[test]
    fn zero_tensor_quantizes_to_zero() {
        let qt = QuantTensor::quantize(&[0.0; 40]);
        assert!(qt.q.iter().all(|&q| q == 0));
        assert!(qt.dequantize().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn partial_group_is_handled() {
        let data: Vec<f32> = (0..37).map(|i| i as f32 / 10.0).collect();
        let qt = QuantTensor::quantize(&data);
        assert_eq!(qt.scales.len(), 2);
        assert_eq!(qt.q.len(), 64);
        assert_eq!(qt.dequantize().len(), 37);
    }

    #[test]
    fn absmax_element_is_exact() {
        // The absmax element maps to ±127 exactly, so reconstruction error
        // there is at most scale * 0.5 (rounding of 127.0 is exact).
        let data = [0.1f32, -2.54, 0.3];
        let qt = QuantTensor::quantize(&data);
        let back = qt.dequantize();
        assert!((back[1] - data[1]).abs() < 1e-6, "absmax should round-trip");
    }

    #[test]
    fn payload_bytes_formula() {
        let qt = QuantTensor::quantize(&[1.0; 64]);
        assert_eq!(qt.bytes(), 64 + 2 * 4);
    }

    #[test]
    fn quant_matvec_tracks_f32_matvec() {
        let rows = 24;
        let cols = 96;
        let mut rng = Xoshiro256::seed_from_u64(9);
        let mut w = vec![0.0f32; rows * cols];
        let mut x = vec![0.0f32; cols];
        rng.fill_normal(&mut w, 0.1);
        rng.fill_normal(&mut x, 1.0);
        let mut exact = vec![0.0f32; rows];
        crate::ops::matvec(&mut exact, &w, &x, rows, cols);
        let qm = QuantMatrix::quantize(&w, rows, cols);
        let mut approx = vec![0.0f32; rows];
        qm.matvec(&mut approx, &x);
        for (e, a) in exact.iter().zip(&approx) {
            // int8 weights and activations: expect ~1% relative scale error
            // against activations of unit magnitude.
            assert!((e - a).abs() < 0.08, "{e} vs {a}");
        }
    }

    #[test]
    fn quant_matrix_is_smaller_than_f32() {
        let w = vec![0.5f32; 128 * 128];
        let qm = QuantMatrix::quantize(&w, 128, 128);
        assert!(qm.bytes() < 128 * 128 * 4 / 3, "got {}", qm.bytes());
        assert_eq!(qm.rows(), 128);
        assert_eq!(qm.cols(), 128);
    }

    #[test]
    fn identity_like_matrix_quant_matvec() {
        // Scaled identity: output must match input within quant error.
        let n = 32;
        let mut w = vec![0.0f32; n * n];
        for i in 0..n {
            w[i * n + i] = 2.0;
        }
        let qm = QuantMatrix::quantize(&w, n, n);
        let x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.2).cos()).collect();
        let mut out = vec![0.0f32; n];
        qm.matvec(&mut out, &x);
        for (o, xi) in out.iter().zip(&x) {
            assert!((o - 2.0 * xi).abs() < 0.05, "{o} vs {}", 2.0 * xi);
        }
    }
}
