//! End-to-end text generation on the CPU reference model, with the same
//! latency/throughput accounting the paper's host program performs (total
//! inference time; decode throughput = generated tokens / decode time).

use std::time::{Duration, Instant};

use speedllm_telemetry as tel;

use crate::forward::Transformer;
use crate::kv_cache::KvStore;
use crate::sampler::Sampler;
use crate::tokenizer::{Tokenizer, TOKEN_BOS, TOKEN_EOS};

/// Limits and termination policy for a generation run.
#[derive(Debug, Clone, Copy)]
pub struct GenerateOptions {
    /// Maximum number of *new* tokens to produce.
    pub max_new_tokens: usize,
    /// Stop early if EOS is produced.
    pub stop_at_eos: bool,
}

impl Default for GenerateOptions {
    fn default() -> Self {
        Self {
            max_new_tokens: 64,
            stop_at_eos: true,
        }
    }
}

/// Result of a generation run, including the paper's two headline metrics.
#[derive(Debug, Clone)]
pub struct GenerateOutput {
    /// Prompt token ids (BOS included).
    pub prompt_tokens: Vec<u32>,
    /// Newly generated token ids (EOS excluded).
    pub generated_tokens: Vec<u32>,
    /// Decoded generated text.
    pub text: String,
    /// Wall-clock time of the prefill stage.
    pub prefill_time: Duration,
    /// Wall-clock time of the decode stage.
    pub decode_time: Duration,
}

impl GenerateOutput {
    /// Total inference latency (prefill + decode), the paper's latency
    /// metric.
    #[must_use]
    pub fn total_latency(&self) -> Duration {
        self.prefill_time + self.decode_time
    }

    /// Decode throughput in tokens per second, the paper's throughput
    /// metric. Zero-token and zero-duration runs report `0.0` rather than
    /// NaN/inf (see [`safe_rate`]).
    #[must_use]
    pub fn decode_tokens_per_sec(&self) -> f64 {
        safe_rate(
            self.generated_tokens.len() as f64,
            self.decode_time.as_secs_f64(),
        )
    }
}

/// `count / secs` with every degenerate case pinned to `0.0`: a run that
/// produced no tokens, took no measurable time (`0/0` would be NaN), or
/// whose clock misbehaved (negative or non-finite denominator) must never
/// leak NaN/inf into aggregated reports — serving-layer percentiles and
/// the serve-bench summary both feed from this.
#[must_use]
pub fn safe_rate(count: f64, secs: f64) -> f64 {
    if count <= 0.0 || secs <= 0.0 || !secs.is_finite() || !count.is_finite() {
        return 0.0;
    }
    count / secs
}

/// Stepwise decoding over a [`Transformer`]: prefill once at
/// construction, then pull one token per [`DecodeSession::step`] call.
///
/// This is `generate()`'s engine, exposed so a scheduler can interleave
/// decode steps from many sequences (continuous batching) instead of
/// running each request to completion. The per-step ordering — sample
/// from the previous logits, check EOS *before* emitting, then run the
/// forward pass — is exactly the loop `generate()` always ran, so a
/// session stepped to exhaustion reproduces `generate()` bit-for-bit.
pub struct DecodeSession<'m> {
    model: &'m mut Transformer,
    /// `None` decodes through the model's internal cache; `Some` routes
    /// every read/write through an external [`KvStore`] — e.g. a paged
    /// block-table view, where logical positions resolve to physical
    /// blocks.
    kv: Option<&'m mut dyn KvStore>,
    prompt_len: usize,
    /// Next position to decode into.
    pos: usize,
    /// One past the last position the budget/context allows.
    end_pos: usize,
    logits: Vec<f32>,
    stop_at_eos: bool,
    finished: bool,
}

impl<'m> DecodeSession<'m> {
    /// Resets the model, prefills `prompt_tokens`, and leaves the session
    /// ready to decode.
    ///
    /// # Panics
    /// Panics if the prompt is empty or exceeds the context window.
    pub fn begin(
        model: &'m mut Transformer,
        prompt_tokens: &[u32],
        options: GenerateOptions,
    ) -> Self {
        model.reset();
        Self::start(model, None, prompt_tokens, options)
    }

    /// Like [`DecodeSession::begin`], but decoding through an external
    /// [`KvStore`] (the model's internal cache is untouched). Positions
    /// the store already holds (`kv_len()`) are treated as a prefilled
    /// prefix of the prompt and skipped — the prefix-cache entry point:
    /// a store carrying shared blocks resumes at the divergence point.
    ///
    /// # Panics
    /// Panics if the prompt is empty or exceeds the context window, or if
    /// the store's prefilled prefix covers the whole prompt (at least one
    /// prompt token must run to produce logits).
    pub fn begin_with_kv(
        model: &'m mut Transformer,
        kv: &'m mut dyn KvStore,
        prompt_tokens: &[u32],
        options: GenerateOptions,
    ) -> Self {
        Self::start(model, Some(kv), prompt_tokens, options)
    }

    fn start(
        model: &'m mut Transformer,
        mut kv: Option<&'m mut dyn KvStore>,
        prompt_tokens: &[u32],
        options: GenerateOptions,
    ) -> Self {
        let seq_len = model.config().seq_len;
        assert!(!prompt_tokens.is_empty(), "prompt must not be empty");
        assert!(
            prompt_tokens.len() <= seq_len,
            "prompt of {} tokens exceeds context window {}",
            prompt_tokens.len(),
            seq_len
        );
        let start = kv.as_deref().map_or(0, KvStore::kv_len);
        assert!(
            start < prompt_tokens.len(),
            "prefilled prefix ({start}) must leave at least one prompt token"
        );

        // Prefill: feed every (not already cached) prompt token; only the
        // last logits matter.
        let mut logits: Vec<f32> = Vec::new();
        for (pos, &tok) in prompt_tokens.iter().enumerate().skip(start) {
            let _g = tel::span("host", "prefill_token").arg("pos", pos as i64);
            let t0 = tel::enabled().then(Instant::now);
            logits = match &mut kv {
                Some(kv) => model.forward_with_kv(&mut **kv, tok, pos).to_vec(),
                None => model.forward(tok, pos).to_vec(),
            };
            if let Some(t0) = t0 {
                tel::metrics::observe("llama.prefill_token_ns", t0.elapsed().as_nanos() as u64);
            }
        }

        let prompt_len = prompt_tokens.len();
        Self {
            model,
            kv,
            prompt_len,
            pos: prompt_len,
            end_pos: (prompt_len + options.max_new_tokens).min(seq_len),
            logits,
            stop_at_eos: options.stop_at_eos,
            finished: false,
        }
    }

    /// Samples and commits one token, returning it — or `None` once the
    /// budget/context is exhausted or EOS was sampled (EOS is never
    /// emitted).
    pub fn step(&mut self, sampler: &mut Sampler) -> Option<u32> {
        if self.finished || self.pos >= self.end_pos {
            self.finished = true;
            return None;
        }
        let next = sampler.sample(&self.logits);
        if self.stop_at_eos && (next == TOKEN_EOS || next == TOKEN_BOS) {
            self.finished = true;
            return None;
        }
        let _g = tel::span("host", "decode_token").arg("pos", self.pos as i64);
        let t0 = tel::enabled().then(Instant::now);
        self.logits = match &mut self.kv {
            Some(kv) => self
                .model
                .forward_with_kv(&mut **kv, next, self.pos)
                .to_vec(),
            None => self.model.forward(next, self.pos).to_vec(),
        };
        if let Some(t0) = t0 {
            tel::metrics::observe("llama.decode_token_ns", t0.elapsed().as_nanos() as u64);
        }
        self.pos += 1;
        Some(next)
    }

    /// Logits from the most recent forward pass.
    #[must_use]
    pub fn logits(&self) -> &[f32] {
        &self.logits
    }

    /// Prompt length in tokens (positions consumed by prefill).
    #[must_use]
    pub fn prompt_len(&self) -> usize {
        self.prompt_len
    }

    /// True once `step` has returned `None` for any reason.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Decode steps still allowed by the token budget / context window.
    #[must_use]
    pub fn remaining_budget(&self) -> usize {
        if self.finished {
            0
        } else {
            self.end_pos - self.pos
        }
    }
}

/// Tokenizes `prompt`, prefills, then decodes up to
/// `options.max_new_tokens` tokens with `sampler`.
///
/// The transformer is reset first, so each call is an independent sequence.
///
/// # Panics
/// Panics if the prompt alone exceeds the model's context window.
pub fn generate(
    model: &mut Transformer,
    tokenizer: &Tokenizer,
    sampler: &mut Sampler,
    prompt: &str,
    options: GenerateOptions,
) -> GenerateOutput {
    let prompt_tokens = tokenizer.encode(prompt, true, false);

    let prefill_start = Instant::now();
    let mut session = DecodeSession::begin(model, &prompt_tokens, options);
    let prefill_time = prefill_start.elapsed();

    let decode_start = Instant::now();
    let mut generated = Vec::with_capacity(options.max_new_tokens);
    while let Some(next) = session.step(sampler) {
        generated.push(next);
    }
    let decode_time = decode_start.elapsed();
    tel::metrics::counter_add("llama.tokens_generated", generated.len() as u64);

    let text = tokenizer.decode(&generated);
    GenerateOutput {
        prompt_tokens,
        generated_tokens: generated,
        text,
        prefill_time,
        decode_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::weights::TransformerWeights;

    fn setup() -> (Transformer, Tokenizer) {
        let cfg = ModelConfig::test_tiny();
        let model = Transformer::new(TransformerWeights::synthetic(cfg, 42));
        let tokenizer = Tokenizer::synthetic(cfg.vocab_size, 42);
        (model, tokenizer)
    }

    #[test]
    fn generates_up_to_limit() {
        let (mut model, tok) = setup();
        let mut sampler = Sampler::argmax();
        let opts = GenerateOptions {
            max_new_tokens: 8,
            stop_at_eos: false,
        };
        let out = generate(&mut model, &tok, &mut sampler, "ab", opts);
        assert!(!out.prompt_tokens.is_empty());
        assert!(out.generated_tokens.len() <= 8);
        assert!(!out.generated_tokens.is_empty());
    }

    #[test]
    fn generation_is_deterministic_with_seeded_sampler() {
        let (mut m1, tok) = setup();
        let (mut m2, _) = setup();
        let opts = GenerateOptions {
            max_new_tokens: 10,
            stop_at_eos: false,
        };
        let mut s1 = Sampler::new(crate::sampler::SamplerKind::Temperature(1.0), 5);
        let mut s2 = Sampler::new(crate::sampler::SamplerKind::Temperature(1.0), 5);
        let a = generate(&mut m1, &tok, &mut s1, "hi", opts);
        let b = generate(&mut m2, &tok, &mut s2, "hi", opts);
        assert_eq!(a.generated_tokens, b.generated_tokens);
        assert_eq!(a.text, b.text);
    }

    #[test]
    fn respects_context_window() {
        let (mut model, tok) = setup();
        let mut sampler = Sampler::argmax();
        // Prompt close to the window; generation must stop at seq_len.
        let opts = GenerateOptions {
            max_new_tokens: 1000,
            stop_at_eos: false,
        };
        let out = generate(&mut model, &tok, &mut sampler, "aaaa bbbb cccc", opts);
        assert!(out.prompt_tokens.len() + out.generated_tokens.len() <= 32);
    }

    #[test]
    fn consecutive_calls_reset_state() {
        let (mut model, tok) = setup();
        let mut sampler = Sampler::argmax();
        let opts = GenerateOptions {
            max_new_tokens: 5,
            stop_at_eos: false,
        };
        let a = generate(&mut model, &tok, &mut sampler, "xy", opts);
        let b = generate(&mut model, &tok, &mut sampler, "xy", opts);
        assert_eq!(a.generated_tokens, b.generated_tokens);
    }

    #[test]
    fn safe_rate_pins_degenerate_cases_to_zero() {
        assert_eq!(safe_rate(0.0, 1.0), 0.0);
        assert_eq!(safe_rate(5.0, 0.0), 0.0);
        assert_eq!(safe_rate(0.0, 0.0), 0.0);
        assert_eq!(safe_rate(5.0, -1.0), 0.0);
        assert_eq!(safe_rate(5.0, f64::NAN), 0.0);
        assert_eq!(safe_rate(5.0, f64::INFINITY), 0.0);
        assert_eq!(safe_rate(f64::NAN, 1.0), 0.0);
        assert_eq!(safe_rate(10.0, 2.0), 5.0);
    }

    #[test]
    fn zero_token_output_reports_zero_throughput() {
        let out = GenerateOutput {
            prompt_tokens: vec![1],
            generated_tokens: vec![],
            text: String::new(),
            prefill_time: Duration::from_millis(3),
            decode_time: Duration::ZERO,
        };
        let rate = out.decode_tokens_per_sec();
        assert_eq!(rate, 0.0);
        assert!(rate.is_finite());
    }

    #[test]
    fn decode_session_matches_generate() {
        let (mut m1, tok) = setup();
        let (mut m2, _) = setup();
        let opts = GenerateOptions {
            max_new_tokens: 12,
            stop_at_eos: true,
        };
        let mut s1 = Sampler::new(crate::sampler::SamplerKind::Temperature(0.9), 11);
        let mut s2 = Sampler::new(crate::sampler::SamplerKind::Temperature(0.9), 11);
        let oracle = generate(&mut m1, &tok, &mut s1, "hello", opts);

        let prompt_tokens = tok.encode("hello", true, false);
        let mut session = DecodeSession::begin(&mut m2, &prompt_tokens, opts);
        let mut stepped = Vec::new();
        while let Some(next) = session.step(&mut s2) {
            stepped.push(next);
        }
        assert_eq!(stepped, oracle.generated_tokens);
        assert!(session.is_finished());
        assert_eq!(session.prompt_len(), oracle.prompt_tokens.len());
    }

    #[test]
    fn decode_session_budget_tracks_steps() {
        let (mut model, tok) = setup();
        let prompt = tok.encode("ab", true, false);
        let opts = GenerateOptions {
            max_new_tokens: 3,
            stop_at_eos: false,
        };
        let mut session = DecodeSession::begin(&mut model, &prompt, opts);
        assert_eq!(session.remaining_budget(), 3);
        let mut sampler = Sampler::argmax();
        assert!(session.step(&mut sampler).is_some());
        assert_eq!(session.remaining_budget(), 2);
        assert!(session.step(&mut sampler).is_some());
        assert!(session.step(&mut sampler).is_some());
        assert_eq!(session.remaining_budget(), 0);
        assert!(session.step(&mut sampler).is_none());
        assert!(session.is_finished());
        assert_eq!(session.logits().len(), 64);
    }

    #[test]
    fn decode_session_with_external_kv_matches_internal() {
        let (mut m1, tok) = setup();
        let (mut m2, _) = setup();
        let opts = GenerateOptions {
            max_new_tokens: 10,
            stop_at_eos: true,
        };
        let prompt = tok.encode("the quick", true, false);
        let mut s1 = Sampler::new(crate::sampler::SamplerKind::Temperature(0.8), 3);
        let mut s2 = Sampler::new(crate::sampler::SamplerKind::Temperature(0.8), 3);

        let mut oracle = Vec::new();
        let mut session = DecodeSession::begin(&mut m1, &prompt, opts);
        while let Some(t) = session.step(&mut s1) {
            oracle.push(t);
        }

        let mut kv = crate::kv_cache::KvCache::new(&ModelConfig::test_tiny());
        let mut external = Vec::new();
        let mut session = DecodeSession::begin_with_kv(&mut m2, &mut kv, &prompt, opts);
        while let Some(t) = session.step(&mut s2) {
            external.push(t);
        }
        assert_eq!(external, oracle);
    }

    #[test]
    fn prefilled_prefix_is_skipped_and_streams_match() {
        let (mut m1, tok) = setup();
        let (mut m2, _) = setup();
        let opts = GenerateOptions {
            max_new_tokens: 8,
            stop_at_eos: false,
        };
        let prompt = tok.encode("hello world", true, false);
        assert!(prompt.len() >= 3, "need a multi-token prompt");
        let mut s1 = Sampler::argmax();
        let mut s2 = Sampler::argmax();

        let mut cold_kv = crate::kv_cache::KvCache::new(&ModelConfig::test_tiny());
        let mut cold = Vec::new();
        let mut session = DecodeSession::begin_with_kv(&mut m1, &mut cold_kv, &prompt, opts);
        while let Some(t) = session.step(&mut s1) {
            cold.push(t);
        }

        // Warm store: prefill the first prompt tokens out-of-band, then
        // resume — begin_with_kv must skip the cached prefix and land on
        // the identical stream.
        let mut warm_kv = crate::kv_cache::KvCache::new(&ModelConfig::test_tiny());
        for (pos, &t) in prompt.iter().take(prompt.len() - 1).enumerate() {
            m2.forward_with_kv(&mut warm_kv, t, pos);
        }
        assert_eq!(warm_kv.len(), prompt.len() - 1);
        let mut warm = Vec::new();
        let mut session = DecodeSession::begin_with_kv(&mut m2, &mut warm_kv, &prompt, opts);
        while let Some(t) = session.step(&mut s2) {
            warm.push(t);
        }
        assert_eq!(warm, cold, "prefix resume changed the stream");
    }

    #[test]
    fn throughput_metric_is_positive() {
        let (mut model, tok) = setup();
        let mut sampler = Sampler::argmax();
        let opts = GenerateOptions {
            max_new_tokens: 6,
            stop_at_eos: false,
        };
        let out = generate(&mut model, &tok, &mut sampler, "q", opts);
        assert!(out.decode_tokens_per_sec() > 0.0);
        assert!(out.total_latency() >= out.decode_time);
    }
}
