//! End-to-end text generation on the CPU reference model, with the same
//! latency/throughput accounting the paper's host program performs (total
//! inference time; decode throughput = generated tokens / decode time).

use std::time::{Duration, Instant};

use speedllm_telemetry as tel;

use crate::forward::Transformer;
use crate::sampler::Sampler;
use crate::tokenizer::{Tokenizer, TOKEN_BOS, TOKEN_EOS};

/// Limits and termination policy for a generation run.
#[derive(Debug, Clone, Copy)]
pub struct GenerateOptions {
    /// Maximum number of *new* tokens to produce.
    pub max_new_tokens: usize,
    /// Stop early if EOS is produced.
    pub stop_at_eos: bool,
}

impl Default for GenerateOptions {
    fn default() -> Self {
        Self {
            max_new_tokens: 64,
            stop_at_eos: true,
        }
    }
}

/// Result of a generation run, including the paper's two headline metrics.
#[derive(Debug, Clone)]
pub struct GenerateOutput {
    /// Prompt token ids (BOS included).
    pub prompt_tokens: Vec<u32>,
    /// Newly generated token ids (EOS excluded).
    pub generated_tokens: Vec<u32>,
    /// Decoded generated text.
    pub text: String,
    /// Wall-clock time of the prefill stage.
    pub prefill_time: Duration,
    /// Wall-clock time of the decode stage.
    pub decode_time: Duration,
}

impl GenerateOutput {
    /// Total inference latency (prefill + decode), the paper's latency
    /// metric.
    #[must_use]
    pub fn total_latency(&self) -> Duration {
        self.prefill_time + self.decode_time
    }

    /// Decode throughput in tokens per second, the paper's throughput
    /// metric.
    #[must_use]
    pub fn decode_tokens_per_sec(&self) -> f64 {
        let secs = self.decode_time.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.generated_tokens.len() as f64 / secs
    }
}

/// Tokenizes `prompt`, prefills, then decodes up to
/// `options.max_new_tokens` tokens with `sampler`.
///
/// The transformer is reset first, so each call is an independent sequence.
///
/// # Panics
/// Panics if the prompt alone exceeds the model's context window.
pub fn generate(
    model: &mut Transformer,
    tokenizer: &Tokenizer,
    sampler: &mut Sampler,
    prompt: &str,
    options: GenerateOptions,
) -> GenerateOutput {
    model.reset();
    let prompt_tokens = tokenizer.encode(prompt, true, false);
    let seq_len = model.config().seq_len;
    assert!(
        prompt_tokens.len() <= seq_len,
        "prompt of {} tokens exceeds context window {}",
        prompt_tokens.len(),
        seq_len
    );

    // Prefill: feed every prompt token; only the last logits matter.
    let prefill_start = Instant::now();
    let mut logits: Vec<f32> = Vec::new();
    for (pos, &tok) in prompt_tokens.iter().enumerate() {
        let _g = tel::span("host", "prefill_token").arg("pos", pos as i64);
        let t0 = tel::enabled().then(Instant::now);
        logits = model.forward(tok, pos).to_vec();
        if let Some(t0) = t0 {
            tel::metrics::observe("llama.prefill_token_ns", t0.elapsed().as_nanos() as u64);
        }
    }
    let prefill_time = prefill_start.elapsed();

    // Decode: sample, feed back, repeat.
    let decode_start = Instant::now();
    let mut generated = Vec::with_capacity(options.max_new_tokens);
    let start = prompt_tokens.len();
    for pos in start..(start + options.max_new_tokens).min(seq_len) {
        let next = sampler.sample(&logits);
        if options.stop_at_eos && (next == TOKEN_EOS || next == TOKEN_BOS) {
            break;
        }
        generated.push(next);
        let _g = tel::span("host", "decode_token").arg("pos", pos as i64);
        let t0 = tel::enabled().then(Instant::now);
        logits = model.forward(next, pos).to_vec();
        if let Some(t0) = t0 {
            tel::metrics::observe("llama.decode_token_ns", t0.elapsed().as_nanos() as u64);
        }
    }
    let decode_time = decode_start.elapsed();
    tel::metrics::counter_add("llama.tokens_generated", generated.len() as u64);

    let text = tokenizer.decode(&generated);
    GenerateOutput {
        prompt_tokens,
        generated_tokens: generated,
        text,
        prefill_time,
        decode_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::weights::TransformerWeights;

    fn setup() -> (Transformer, Tokenizer) {
        let cfg = ModelConfig::test_tiny();
        let model = Transformer::new(TransformerWeights::synthetic(cfg, 42));
        let tokenizer = Tokenizer::synthetic(cfg.vocab_size, 42);
        (model, tokenizer)
    }

    #[test]
    fn generates_up_to_limit() {
        let (mut model, tok) = setup();
        let mut sampler = Sampler::argmax();
        let opts = GenerateOptions {
            max_new_tokens: 8,
            stop_at_eos: false,
        };
        let out = generate(&mut model, &tok, &mut sampler, "ab", opts);
        assert!(!out.prompt_tokens.is_empty());
        assert!(out.generated_tokens.len() <= 8);
        assert!(!out.generated_tokens.is_empty());
    }

    #[test]
    fn generation_is_deterministic_with_seeded_sampler() {
        let (mut m1, tok) = setup();
        let (mut m2, _) = setup();
        let opts = GenerateOptions {
            max_new_tokens: 10,
            stop_at_eos: false,
        };
        let mut s1 = Sampler::new(crate::sampler::SamplerKind::Temperature(1.0), 5);
        let mut s2 = Sampler::new(crate::sampler::SamplerKind::Temperature(1.0), 5);
        let a = generate(&mut m1, &tok, &mut s1, "hi", opts);
        let b = generate(&mut m2, &tok, &mut s2, "hi", opts);
        assert_eq!(a.generated_tokens, b.generated_tokens);
        assert_eq!(a.text, b.text);
    }

    #[test]
    fn respects_context_window() {
        let (mut model, tok) = setup();
        let mut sampler = Sampler::argmax();
        // Prompt close to the window; generation must stop at seq_len.
        let opts = GenerateOptions {
            max_new_tokens: 1000,
            stop_at_eos: false,
        };
        let out = generate(&mut model, &tok, &mut sampler, "aaaa bbbb cccc", opts);
        assert!(out.prompt_tokens.len() + out.generated_tokens.len() <= 32);
    }

    #[test]
    fn consecutive_calls_reset_state() {
        let (mut model, tok) = setup();
        let mut sampler = Sampler::argmax();
        let opts = GenerateOptions {
            max_new_tokens: 5,
            stop_at_eos: false,
        };
        let a = generate(&mut model, &tok, &mut sampler, "xy", opts);
        let b = generate(&mut model, &tok, &mut sampler, "xy", opts);
        assert_eq!(a.generated_tokens, b.generated_tokens);
    }

    #[test]
    fn throughput_metric_is_positive() {
        let (mut model, tok) = setup();
        let mut sampler = Sampler::argmax();
        let opts = GenerateOptions {
            max_new_tokens: 6,
            stop_at_eos: false,
        };
        let out = generate(&mut model, &tok, &mut sampler, "q", opts);
        assert!(out.decode_tokens_per_sec() > 0.0);
        assert!(out.total_latency() >= out.decode_time);
    }
}
