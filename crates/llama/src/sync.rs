//! Std-only channels for the data-stream pipeline and the worker pool.
//!
//! The simulator's concurrency needs are small: a bounded hand-off queue
//! with backpressure (the double-buffering constraint of the streamed
//! pipeline) and an unbounded multi-consumer job queue (the thread pool).
//! Rather than depend on an external crate for those two shapes, this
//! module implements one MPMC channel on `std::sync::{Mutex, Condvar}`:
//!
//! * [`bounded`] — capacity-limited; `send` blocks while the queue is full,
//!   which is exactly the backpressure the `depth`-deep double-buffering
//!   model relies on (a producer can run at most `cap` items ahead).
//! * [`unbounded`] — `send` never blocks; used where the queue is drained
//!   by long-lived workers and submission must not stall.
//!
//! Both senders and receivers are cloneable (MPMC). Disconnection follows
//! the usual contract: `send` fails once every receiver is gone, `recv`
//! fails once every sender is gone *and* the queue is drained.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Error returned by [`Sender::send`] when every receiver has been
/// dropped; the unsent value is handed back.
#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

// Manual impl: senders often carry non-Debug payloads (boxed closures),
// and `.expect()` on a send requires the error to be Debug regardless.
impl<T> std::fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SendError(..)")
    }
}

/// Error returned by [`Receiver::recv`] when the queue is empty and every
/// sender has been dropped.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`] when no item is ready.
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// The queue is momentarily empty but senders remain; retry later.
    Empty,
    /// The queue is drained and every sender has been dropped.
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    cap: usize,
    state: Mutex<State<T>>,
    /// Signalled when an item is pushed or the last sender leaves.
    not_empty: Condvar,
    /// Signalled when an item is popped or the last receiver leaves.
    not_full: Condvar,
}

/// The sending half of a channel. Cloneable; the channel disconnects for
/// receivers when the last clone is dropped.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel. Cloneable (workers may share one
/// queue); the channel disconnects for senders when the last clone drops.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a channel that holds at most `cap` in-flight items (≥ 1);
/// `send` blocks while the channel is full.
#[must_use]
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap >= 1, "channel capacity must be >= 1");
    channel(cap)
}

/// Creates a channel with no capacity limit; `send` never blocks.
#[must_use]
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(usize::MAX)
}

fn channel<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        cap,
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueues `value`, blocking while the channel is at capacity.
    /// Fails (returning the value) once every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            if state.queue.len() < self.shared.cap {
                state.queue.push_back(value);
                drop(state);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = self
                .shared
                .not_full
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl<T> Receiver<T> {
    /// Dequeues the next item, blocking while the channel is empty.
    /// Fails once the queue is drained and every sender has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self
                .shared
                .not_empty
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Dequeues the next item without blocking. Distinguishes a
    /// momentarily empty queue ([`TryRecvError::Empty`]) from a drained,
    /// sender-less channel ([`TryRecvError::Disconnected`]) — a polling
    /// scheduler keeps batching on the former and shuts down on the
    /// latter.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(value) = state.queue.pop_front() {
            drop(state);
            self.shared.not_full.notify_one();
            return Ok(value);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// A blocking iterator over received items; ends on disconnect.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        std::iter::from_fn(move || self.recv().ok())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.senders += 1;
        drop(state);
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.receivers += 1;
        drop(state);
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.senders -= 1;
        let disconnected = state.senders == 0;
        drop(state);
        if disconnected {
            // Wake receivers blocked on an empty queue so they observe it.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.receivers -= 1;
        let disconnected = state.receivers == 0;
        drop(state);
        if disconnected {
            // Wake senders blocked on a full queue so they observe it.
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_within_one_producer() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn recv_fails_after_senders_drop() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_receivers_drop() {
        let (tx, rx) = bounded::<u32>(2);
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn bounded_send_blocks_until_recv() {
        let (tx, rx) = bounded(1);
        tx.send(0u32).unwrap();
        let unblocked = Arc::new(AtomicUsize::new(0));
        let u2 = Arc::clone(&unblocked);
        std::thread::scope(|s| {
            s.spawn(move || {
                tx.send(1).unwrap(); // must block: capacity 1, queue full
                u2.store(1, Ordering::SeqCst);
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert_eq!(
                unblocked.load(Ordering::SeqCst),
                0,
                "send did not backpressure"
            );
            assert_eq!(rx.recv(), Ok(0));
            assert_eq!(rx.recv(), Ok(1));
        });
        assert_eq!(unblocked.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn unbounded_send_never_blocks() {
        let (tx, rx) = unbounded();
        for i in 0..10_000 {
            tx.send(i).unwrap();
        }
        drop(tx); // disconnect so the draining iterator terminates
        assert_eq!(rx.iter().count(), 10_000);
    }

    #[test]
    fn multiple_consumers_partition_the_stream() {
        let (tx, rx) = unbounded::<usize>();
        let seen = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let rx = rx.clone();
                let seen = Arc::clone(&seen);
                s.spawn(move || {
                    while rx.recv().is_ok() {
                        seen.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
            drop(rx);
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
            drop(tx);
        });
        assert_eq!(seen.load(Ordering::SeqCst), 1000);
    }

    #[test]
    fn try_recv_distinguishes_empty_from_disconnected() {
        let (tx, rx) = bounded::<u32>(2);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(7).unwrap();
        assert_eq!(rx.try_recv(), Ok(7));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(8).unwrap();
        drop(tx);
        // Queued items drain before disconnection is reported.
        assert_eq!(rx.try_recv(), Ok(8));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn try_recv_releases_backpressure() {
        let (tx, rx) = bounded(1);
        tx.send(1u32).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        // The pop must have freed capacity for a non-blocking send.
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(2));
    }

    #[test]
    fn iter_drains_then_ends() {
        let (tx, rx) = bounded(8);
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }
}
