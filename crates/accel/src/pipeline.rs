//! The customized data pipeline: multi-level read–compute–write iteration.
//!
//! Each kernel's work is decomposed into tiles, and each tile into a READ
//! (HBM → on-chip via the read DMA), a COMPUTE (MPE or SFU), and a WRITE
//! (on-chip → HBM via the write DMA). Two scheduling disciplines exist:
//!
//! * **Sequential** (the unoptimized iteration): stages of every tile are
//!   chained — `read; compute; write; read; …` — so the kernel time is the
//!   *sum* of all stage durations, and the host pays a full kernel-launch
//!   overhead before anything moves.
//! * **Streamed** (the paper's data-stream parallelism): stages run on
//!   dedicated resources with `depth`-deep double buffering, so tile `i`'s
//!   read overlaps tile `i−1`'s compute and tile `i−2`'s write; kernel time
//!   converges to the *max* stage total plus fill/drain, and launches are
//!   pipelined (enqueue-ahead), shrinking their exposed cost.
//!
//! [`schedule_kernel`] implements both against a shared
//! [`Timeline`], so per-resource busy cycles (for gated power) and optional
//! trace events fall out of the same recurrence. The [`dataflow`] module is
//! a *real* three-stage thread pipeline over the in-repo bounded channels
//! ([`speedllm_llama::sync`]), used by the functional engine demo and tests
//! to show the overlap is achievable in software, not just in the cost
//! model.

use speedllm_fpga_sim::cycles::Cycles;
use speedllm_fpga_sim::event::{ResourceId, Span, Timeline};
use speedllm_fpga_sim::trace::TraceBuffer;

/// Timeline resource: host kernel dispatch.
pub const R_HOST: ResourceId = ResourceId(0);
/// Timeline resource: read DMA engine.
pub const R_DMA_RD: ResourceId = ResourceId(1);
/// Timeline resource: Matrix Processing Engine.
pub const R_MPE: ResourceId = ResourceId(2);
/// Timeline resource: Special Function Unit.
pub const R_SFU: ResourceId = ResourceId(3);
/// Timeline resource: write DMA engine.
pub const R_DMA_WR: ResourceId = ResourceId(4);
/// Number of timeline resources.
pub const N_RESOURCES: usize = 5;

/// Which compute unit a tile occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Dense MAC array.
    Mpe,
    /// Special function datapath.
    Sfu,
}

impl Unit {
    /// The timeline resource for this unit.
    #[must_use]
    pub fn resource(&self) -> ResourceId {
        match self {
            Unit::Mpe => R_MPE,
            Unit::Sfu => R_SFU,
        }
    }
}

/// Stage durations of one tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileCost {
    /// READ stage (HBM → on-chip) duration.
    pub read: Cycles,
    /// COMPUTE stage duration.
    pub compute: Cycles,
    /// WRITE stage (on-chip → HBM) duration.
    pub write: Cycles,
    /// Compute unit occupied.
    pub unit: Unit,
}

/// How a kernel is scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Streamed (overlapping) vs sequential iteration.
    pub streamed: bool,
    /// Double-buffer depth: how many tiles may be in flight (≥ 1).
    /// Depth 1 degenerates to sequential-per-tile even when streamed.
    pub depth: usize,
    /// Host launch overhead for a sequential kernel.
    pub launch: Cycles,
    /// Exposed launch overhead when launches are pipelined (streamed).
    pub streamed_launch: Cycles,
}

/// The scheduling outcome of one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelTiming {
    /// Full kernel span (launch start → last stage end).
    pub span: Span,
    /// When the kernel's outputs are available to consumers.
    pub outputs_ready: Cycles,
}

/// Schedules one kernel's tiles.
///
/// * `host_ready` — earliest time the host may dispatch this kernel. A
///   naive host-driven loop passes the previous kernel's end (strict
///   serialization); a streaming runtime passes zero (enqueue-ahead).
/// * `read_ready` — earliest time the first READ may start (weight streams
///   depend only on the launch; activation reads additionally wait for
///   producer kernels).
/// * `compute_ready` — earliest time any COMPUTE may start (input
///   activations resident on-chip).
#[allow(clippy::too_many_arguments)] // a scheduling entry point: every arg is load-bearing
pub fn schedule_kernel(
    tl: &mut Timeline,
    mut trace: Option<&mut TraceBuffer>,
    cfg: &PipelineConfig,
    host_ready: Cycles,
    read_ready: Cycles,
    compute_ready: Cycles,
    tiles: &[TileCost],
    label: &str,
) -> KernelTiming {
    assert!(cfg.depth >= 1, "pipeline depth must be >= 1");
    let launch_cost = if cfg.streamed {
        cfg.streamed_launch
    } else {
        cfg.launch
    };
    let launch = tl.schedule(R_HOST, host_ready, launch_cost);
    if let Some(t) = trace.as_deref_mut() {
        t.record("HOST", launch, format!("{label}:launch"));
    }
    let start = launch.start;
    let read_ready = read_ready.max(launch.end);
    let compute_ready = compute_ready.max(launch.end);

    // Double-buffering applies to the *staging buffers* that weight/data
    // reads land in, so only tiles that actually read participate in the
    // reuse chain; pure-compute (SFU epilogue) tiles never hold a buffer.
    let mut staged_compute_ends: Vec<Cycles> = Vec::with_capacity(tiles.len());
    let mut end = launch.end;
    let mut seq_cursor = launch.end.max(read_ready);

    for (i, tile) in tiles.iter().enumerate() {
        let (r_start, c_start_min) = if cfg.streamed {
            // Buffer constraint: this read reuses the buffer freed by the
            // compute of the `depth`-th previous *reading* tile.
            let buffer_free = if tile.read > Cycles::ZERO && staged_compute_ends.len() >= cfg.depth
            {
                staged_compute_ends[staged_compute_ends.len() - cfg.depth]
            } else {
                Cycles::ZERO
            };
            (read_ready.max(buffer_free), compute_ready)
        } else {
            (seq_cursor.max(read_ready), seq_cursor)
        };
        let r = tl.schedule(R_DMA_RD, r_start, tile.read);
        let c = tl.schedule(
            tile.unit.resource(),
            r.end.max(c_start_min).max(compute_ready),
            tile.compute,
        );
        if tile.read > Cycles::ZERO {
            staged_compute_ends.push(c.end);
        }
        let w = tl.schedule(R_DMA_WR, c.end, tile.write);
        if let Some(t) = trace.as_deref_mut() {
            t.record("DMA-RD", r, format!("{label}:t{i}.read"));
            let unit_name = match tile.unit {
                Unit::Mpe => "MPE",
                Unit::Sfu => "SFU",
            };
            t.record(unit_name, c, format!("{label}:t{i}.compute"));
            t.record("DMA-WR", w, format!("{label}:t{i}.write"));
        }
        let tile_end = c.end.max(w.end);
        end = end.max(tile_end);
        if !cfg.streamed {
            seq_cursor = tile_end;
        }
    }

    KernelTiming {
        span: Span { start, end },
        outputs_ready: end,
    }
}

/// A genuinely concurrent three-stage tile pipeline over std-only bounded
/// channels: `read` produces tile inputs, `compute` transforms them,
/// `write` commits results in order. Bounded channels of `depth` implement
/// the same double-buffering constraint the cost model charges for.
pub mod dataflow {
    use speedllm_llama::sync::bounded;
    use speedllm_telemetry as tel;

    /// Runs `n_tiles` through read → compute → write with `depth`-bounded
    /// hand-off queues. `read` and `compute` run on their own threads;
    /// `write` runs on the caller's thread. Tiles arrive at `write` in
    /// index order.
    ///
    /// Each stage records a wall-time telemetry span per tile (tracks
    /// `dataflow.read` / `dataflow.compute` / `dataflow.write`), so an
    /// instrumented run shows the three stages genuinely overlapping in
    /// the trace viewer — the software counterpart of the cost model's
    /// streamed discipline.
    pub fn run<T, R>(
        n_tiles: usize,
        depth: usize,
        read: impl Fn(usize) -> T + Send,
        compute: impl Fn(usize, T) -> R + Send,
        mut write: impl FnMut(usize, R),
    ) where
        T: Send,
        R: Send,
    {
        assert!(depth >= 1, "queue depth must be >= 1");
        if n_tiles == 0 {
            return;
        }
        let (tx_rc, rx_rc) = bounded::<(usize, T)>(depth);
        let (tx_cw, rx_cw) = bounded::<(usize, R)>(depth);
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..n_tiles {
                    let _g = tel::span("dataflow.read", "tile").arg("i", i as i64);
                    if tx_rc.send((i, read(i))).is_err() {
                        return; // downstream panicked; unwind quietly
                    }
                }
            });
            s.spawn(move || {
                while let Ok((i, t)) = rx_rc.recv() {
                    let _g = tel::span("dataflow.compute", "tile").arg("i", i as i64);
                    if tx_cw.send((i, compute(i, t))).is_err() {
                        return;
                    }
                }
            });
            for (i, r) in rx_cw.iter() {
                let _g = tel::span("dataflow.write", "tile").arg("i", i as i64);
                write(i, r);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mpe_tile(read: u64, compute: u64, write: u64) -> TileCost {
        TileCost {
            read: Cycles(read),
            compute: Cycles(compute),
            write: Cycles(write),
            unit: Unit::Mpe,
        }
    }

    fn cfg(streamed: bool) -> PipelineConfig {
        PipelineConfig {
            streamed,
            depth: 2,
            launch: Cycles(100),
            streamed_launch: Cycles(10),
        }
    }

    #[test]
    fn sequential_is_sum_of_stages_plus_launch() {
        let mut tl = Timeline::new(N_RESOURCES);
        let tiles = vec![mpe_tile(10, 20, 5); 4];
        let t = schedule_kernel(
            &mut tl,
            None,
            &cfg(false),
            Cycles::ZERO,
            Cycles::ZERO,
            Cycles::ZERO,
            &tiles,
            "k",
        );
        // 100 launch + 4 * (10+20+5).
        assert_eq!(t.span.end, Cycles(100 + 4 * 35));
    }

    #[test]
    fn streamed_approaches_max_stage_total() {
        let mut tl = Timeline::new(N_RESOURCES);
        let tiles = vec![mpe_tile(10, 20, 5); 8];
        let t = schedule_kernel(
            &mut tl,
            None,
            &cfg(true),
            Cycles::ZERO,
            Cycles::ZERO,
            Cycles::ZERO,
            &tiles,
            "k",
        );
        // Steady state: one compute (20) per tile; fill = launch 10 + first
        // read 10; drain = last write 5. 10 + 10 + 8*20 + 5 = 185.
        assert_eq!(t.span.end, Cycles(185));
        // Far below the sequential 100 + 280 = 380.
    }

    #[test]
    fn streamed_read_bound_kernel() {
        let mut tl = Timeline::new(N_RESOURCES);
        // Reads dominate: steady state is one read per tile.
        let tiles = vec![mpe_tile(30, 10, 0); 5];
        let t = schedule_kernel(
            &mut tl,
            None,
            &cfg(true),
            Cycles::ZERO,
            Cycles::ZERO,
            Cycles::ZERO,
            &tiles,
            "k",
        );
        // launch 10 + 5 reads * 30 + last compute 10 = 170.
        assert_eq!(t.span.end, Cycles(170));
    }

    #[test]
    fn depth_one_streamed_cannot_overlap_reads_with_compute() {
        let mut tl = Timeline::new(N_RESOURCES);
        let mut c = cfg(true);
        c.depth = 1;
        let tiles = vec![mpe_tile(10, 10, 0); 4];
        let t = schedule_kernel(
            &mut tl,
            None,
            &c,
            Cycles::ZERO,
            Cycles::ZERO,
            Cycles::ZERO,
            &tiles,
            "k",
        );
        // Each read waits for the previous compute: launch 10 + 10 + 4*10
        // computes + 3*10 reads (after the first) = 10 + 10+10 + ... exact:
        // r0@10..20, c0@20..30, r1@30..40 (buffer frees at c0), c1@40..50,
        // r2@50..60, c2@60..70, r3@70..80, c3@80..90.
        assert_eq!(t.span.end, Cycles(90));
    }

    #[test]
    fn deeper_buffers_help_irregular_tiles() {
        let tiles: Vec<TileCost> = (0..12)
            .map(|i| {
                if i % 3 == 0 {
                    mpe_tile(40, 10, 0) // read-heavy
                } else {
                    mpe_tile(5, 30, 0) // compute-heavy
                }
            })
            .collect();
        let mut end2 = Cycles::ZERO;
        let mut end4 = Cycles::ZERO;
        for (depth, out) in [(2usize, &mut end2), (4usize, &mut end4)] {
            let mut tl = Timeline::new(N_RESOURCES);
            let mut c = cfg(true);
            c.depth = depth;
            *out = schedule_kernel(
                &mut tl,
                None,
                &c,
                Cycles::ZERO,
                Cycles::ZERO,
                Cycles::ZERO,
                &tiles,
                "k",
            )
            .span
            .end;
        }
        assert!(
            end4 <= end2,
            "deeper buffering cannot be slower: {end4:?} vs {end2:?}"
        );
    }

    #[test]
    fn ready_times_are_respected() {
        let mut tl = Timeline::new(N_RESOURCES);
        let tiles = vec![mpe_tile(10, 10, 0)];
        let t = schedule_kernel(
            &mut tl,
            None,
            &cfg(true),
            Cycles::ZERO,
            Cycles(500),
            Cycles(800),
            &tiles,
            "k",
        );
        // Read starts at 500, done 510; compute waits for 800.
        assert_eq!(t.span.end, Cycles(810));
    }

    #[test]
    fn sfu_and_mpe_tiles_use_distinct_resources() {
        let mut tl = Timeline::new(N_RESOURCES);
        let tiles = vec![
            TileCost {
                read: Cycles(0),
                compute: Cycles(50),
                write: Cycles(0),
                unit: Unit::Mpe,
            },
            TileCost {
                read: Cycles(0),
                compute: Cycles(50),
                write: Cycles(0),
                unit: Unit::Sfu,
            },
        ];
        schedule_kernel(
            &mut tl,
            None,
            &cfg(true),
            Cycles::ZERO,
            Cycles::ZERO,
            Cycles::ZERO,
            &tiles,
            "k",
        );
        assert_eq!(tl.busy(R_MPE), Cycles(50));
        assert_eq!(tl.busy(R_SFU), Cycles(50));
    }

    #[test]
    fn consecutive_kernels_serialize_on_resources() {
        let mut tl = Timeline::new(N_RESOURCES);
        let tiles = vec![mpe_tile(10, 10, 10); 2];
        let t1 = schedule_kernel(
            &mut tl,
            None,
            &cfg(true),
            Cycles::ZERO,
            Cycles::ZERO,
            Cycles::ZERO,
            &tiles,
            "k1",
        );
        // Second kernel's reads may prefetch (read_ready = 0 via its own
        // launch), but the MPE is still busy with k1.
        let t2 = schedule_kernel(
            &mut tl,
            None,
            &cfg(true),
            Cycles::ZERO,
            Cycles::ZERO,
            t1.outputs_ready,
            &tiles,
            "k2",
        );
        assert!(t2.span.end > t1.span.end);
        // DMA-RD busy equals total read time (4 tiles).
        assert_eq!(tl.busy(R_DMA_RD), Cycles(40));
    }

    #[test]
    fn trace_records_stage_segments() {
        let mut tl = Timeline::new(N_RESOURCES);
        let mut trace = speedllm_fpga_sim::trace::TraceBuffer::new(64);
        let tiles = vec![mpe_tile(10, 20, 5); 2];
        schedule_kernel(
            &mut tl,
            Some(&mut trace),
            &cfg(true),
            Cycles::ZERO,
            Cycles::ZERO,
            Cycles::ZERO,
            &tiles,
            "k",
        );
        let resources: std::collections::HashSet<&str> =
            trace.events().iter().map(|e| e.resource).collect();
        assert!(resources.contains("HOST"));
        assert!(resources.contains("DMA-RD"));
        assert!(resources.contains("MPE"));
        assert!(resources.contains("DMA-WR"));
    }

    #[test]
    fn empty_tile_list_costs_only_launch() {
        let mut tl = Timeline::new(N_RESOURCES);
        let t = schedule_kernel(
            &mut tl,
            None,
            &cfg(false),
            Cycles::ZERO,
            Cycles::ZERO,
            Cycles::ZERO,
            &[],
            "k",
        );
        assert_eq!(t.span.duration(), Cycles(100));
    }

    mod dataflow_tests {
        use super::super::dataflow;
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn results_match_serial_in_order() {
            let mut out = Vec::new();
            dataflow::run(100, 4, |i| i * 2, |_, x| x + 1, |i, r| out.push((i, r)));
            assert_eq!(out.len(), 100);
            for (idx, &(i, r)) in out.iter().enumerate() {
                assert_eq!(i, idx, "tiles must arrive in order");
                assert_eq!(r, idx * 2 + 1);
            }
        }

        #[test]
        fn zero_tiles_is_a_noop() {
            dataflow::run(0, 2, |_| (), |_, ()| (), |_, ()| panic!("no tiles"));
        }

        #[test]
        fn stages_actually_overlap() {
            // Track maximum concurrent stages via an in-flight counter: the
            // read of tile i+1 should run while compute of tile i runs.
            static IN_FLIGHT: AtomicUsize = AtomicUsize::new(0);
            static MAX_SEEN: AtomicUsize = AtomicUsize::new(0);
            let bump = || {
                let now = IN_FLIGHT.fetch_add(1, Ordering::SeqCst) + 1;
                MAX_SEEN.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(2));
                IN_FLIGHT.fetch_sub(1, Ordering::SeqCst);
            };
            dataflow::run(
                32,
                4,
                move |i| {
                    bump();
                    i
                },
                move |_, x| {
                    bump();
                    x
                },
                |_, _| {},
            );
            assert!(
                MAX_SEEN.load(Ordering::SeqCst) >= 2,
                "read and compute stages never overlapped"
            );
        }

        #[test]
        fn bounded_depth_limits_read_ahead() {
            // With depth 1 the reader can be at most ~2 tiles ahead of the
            // writer (one in each channel slot).
            let reads = std::sync::Arc::new(AtomicUsize::new(0));
            let writes = std::sync::Arc::new(AtomicUsize::new(0));
            let r2 = std::sync::Arc::clone(&reads);
            let w2 = std::sync::Arc::clone(&writes);
            let max_gap = std::sync::Arc::new(AtomicUsize::new(0));
            let g2 = std::sync::Arc::clone(&max_gap);
            dataflow::run(
                64,
                1,
                move |i| {
                    r2.fetch_add(1, Ordering::SeqCst);
                    i
                },
                |_, x| x,
                move |_, _| {
                    let w = w2.fetch_add(1, Ordering::SeqCst) + 1;
                    let r = reads.load(Ordering::SeqCst);
                    g2.fetch_max(r.saturating_sub(w), Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_micros(200));
                },
            );
            assert_eq!(writes.load(Ordering::SeqCst), 64);
            assert!(
                max_gap.load(Ordering::SeqCst) <= 4,
                "reader ran away: gap {}",
                max_gap.load(Ordering::SeqCst)
            );
        }
    }
}
