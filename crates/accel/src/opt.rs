//! The paper's three co-design optimizations as a toggleable configuration.
//!
//! [`OptConfig`] selects which of SpeedLLM's optimizations are active; the
//! four named presets are exactly the variants Fig. 2 compares:
//!
//! | preset | stream parallel | memory reuse | operator fusion |
//! |---|---|---|---|
//! | [`OptConfig::full`] (ours) | ✓ | ✓ | ✓ |
//! | [`OptConfig::no_parallel`] | ✗ | ✓ | ✓ |
//! | [`OptConfig::no_fuse`] | ✓ | ✓ | ✗ |
//! | [`OptConfig::unoptimized`] | ✗ | ✗ | ✗ |

use speedllm_fpga_sim::mpe::Precision;

/// Which SpeedLLM optimizations are enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OptConfig {
    /// Customized data pipeline: double-buffered read–compute–write tiles
    /// on dedicated DMA/compute resources, with wide multi-channel
    /// streaming and pipelined kernel enqueue.
    pub stream_parallel: bool,
    /// Memory-allocation reuse: liveness-driven cyclic recycling of
    /// on-chip buffer segments; off disables it, forcing every intermediate
    /// through a freshly allocated HBM buffer with an allocation stall.
    pub memory_reuse: bool,
    /// Llama-2 operator fusion: composite kernels that keep chain
    /// intermediates in on-fabric streams.
    pub operator_fusion: bool,
    /// Arithmetic precision of the Matrix Processing Engine.
    pub precision: Precision,
}

impl OptConfig {
    /// SpeedLLM with all three optimizations (the paper's "ours").
    #[must_use]
    pub fn full() -> Self {
        Self {
            stream_parallel: true,
            memory_reuse: true,
            operator_fusion: true,
            precision: Precision::Fp32,
        }
    }

    /// Fig 2(b)'s "none parallel tech" variant.
    #[must_use]
    pub fn no_parallel() -> Self {
        Self {
            stream_parallel: false,
            ..Self::full()
        }
    }

    /// Fig 2(b)'s "none fused" variant.
    #[must_use]
    pub fn no_fuse() -> Self {
        Self {
            operator_fusion: false,
            ..Self::full()
        }
    }

    /// The memory-reuse ablation (not a paper headline variant, used by the
    /// ablation benches).
    #[must_use]
    pub fn no_reuse() -> Self {
        Self {
            memory_reuse: false,
            ..Self::full()
        }
    }

    /// The unoptimized baseline accelerator Fig 2(a) compares against.
    #[must_use]
    pub fn unoptimized() -> Self {
        Self {
            stream_parallel: false,
            memory_reuse: false,
            operator_fusion: false,
            precision: Precision::Fp32,
        }
    }

    /// SpeedLLM with the int8 MPE design point (quantized weights).
    #[must_use]
    pub fn full_int8() -> Self {
        Self {
            precision: Precision::Int8,
            ..Self::full()
        }
    }

    /// SpeedLLM with the int4 MPE design point (nibble-packed weights).
    #[must_use]
    pub fn full_int4() -> Self {
        Self {
            precision: Precision::Int4,
            ..Self::full()
        }
    }

    /// The four variants of Fig. 2, in presentation order.
    #[must_use]
    pub fn paper_variants() -> [(&'static str, OptConfig); 4] {
        [
            ("SpeedLLM (ours)", Self::full()),
            ("no-fuse", Self::no_fuse()),
            ("no-parallel", Self::no_parallel()),
            ("unoptimized", Self::unoptimized()),
        ]
    }

    /// All eight corners of the optimization cube (for the ablation sweep
    /// example), fp32.
    #[must_use]
    pub fn all_corners() -> Vec<(String, OptConfig)> {
        let mut out = Vec::with_capacity(8);
        for bits in 0u8..8 {
            let cfg = OptConfig {
                stream_parallel: bits & 4 != 0,
                memory_reuse: bits & 2 != 0,
                operator_fusion: bits & 1 != 0,
                precision: Precision::Fp32,
            };
            out.push((cfg.short_name(), cfg));
        }
        out
    }

    /// Compact name like `P+R+F`, `p+r+f` (capital = enabled).
    #[must_use]
    pub fn short_name(&self) -> String {
        format!(
            "{}{}{}{}",
            if self.stream_parallel { 'P' } else { 'p' },
            if self.memory_reuse { 'R' } else { 'r' },
            if self.operator_fusion { 'F' } else { 'f' },
            match self.precision {
                Precision::Fp32 => "",
                Precision::Int8 => "/i8",
                Precision::Int4 => "/i4",
            }
        )
    }
}

impl Default for OptConfig {
    fn default() -> Self {
        Self::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_toggles() {
        let f = OptConfig::full();
        assert!(f.stream_parallel && f.memory_reuse && f.operator_fusion);
        let u = OptConfig::unoptimized();
        assert!(!u.stream_parallel && !u.memory_reuse && !u.operator_fusion);
        assert!(!OptConfig::no_parallel().stream_parallel);
        assert!(OptConfig::no_parallel().operator_fusion);
        assert!(!OptConfig::no_fuse().operator_fusion);
        assert!(OptConfig::no_fuse().stream_parallel);
        assert!(!OptConfig::no_reuse().memory_reuse);
    }

    #[test]
    fn paper_variants_are_distinct() {
        let v = OptConfig::paper_variants();
        for i in 0..v.len() {
            for j in i + 1..v.len() {
                assert_ne!(v[i].1, v[j].1, "{} vs {}", v[i].0, v[j].0);
            }
        }
    }

    #[test]
    fn all_corners_covers_the_cube() {
        let corners = OptConfig::all_corners();
        assert_eq!(corners.len(), 8);
        let unique: std::collections::HashSet<_> = corners.iter().map(|(_, c)| *c).collect();
        assert_eq!(unique.len(), 8);
    }

    #[test]
    fn short_names_encode_toggles() {
        assert_eq!(OptConfig::full().short_name(), "PRF");
        assert_eq!(OptConfig::unoptimized().short_name(), "prf");
        assert_eq!(OptConfig::full_int8().short_name(), "PRF/i8");
        assert_eq!(OptConfig::full_int4().short_name(), "PRF/i4");
    }
}
