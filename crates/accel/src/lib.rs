//! # speedllm-accel
//!
//! The paper's primary contribution: the SpeedLLM accelerator, mapped onto
//! the [`speedllm_fpga_sim`] device model and executing real
//! [`speedllm_llama`] inference.
//!
//! Pipeline from model to metrics:
//!
//! 1. [`ir`] builds the SSA decode graph of one Llama-2 token step.
//! 2. [`fusion`] groups ops into composite kernels (toggleable — the
//!    paper's *operator fusion*).
//! 3. [`memplan`] places every materialized value: recycled on-chip
//!    segment (the paper's *memory-allocation reuse*) or fresh HBM buffer.
//! 4. [`pipeline`] schedules each kernel's read–compute–write tiles,
//!    sequential or double-buffered/streamed (the paper's *data-stream
//!    parallelism*).
//! 5. [`engine`] runs both the functional math and the timing model;
//!    [`runtime`] wraps it in the host loop and produces
//!    [`runtime::InferenceReport`]s with the paper's metrics.
//!
//! The four Fig. 2 variants are presets on [`opt::OptConfig`].

#![warn(missing_docs)]

pub mod engine;
pub mod fusion;
pub mod ir;
pub mod memplan;
pub mod opt;
pub mod pipeline;
pub mod report;
pub mod roofline;
pub mod runtime;
pub mod speculative;

pub use engine::{AccelConfig, Engine, StepResult};
pub use opt::OptConfig;
pub use runtime::{AcceleratedLlm, InferenceReport, Session};
