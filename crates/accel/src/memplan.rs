//! Memory-allocation reuse planning.
//!
//! Every value a schedule materializes needs a home. The planner assigns
//! one of:
//!
//! * [`Placement::Internal`] — fused away inside a kernel (free);
//! * [`Placement::Ocm`] — a segment of the on-chip URAM pool, allocated at
//!   the producing kernel and recycled the moment the last consumer
//!   finishes. This is the paper's *cyclic / loop-back reuse*: liveness is
//!   tracked per kernel step and freed segments are immediately available
//!   to later values, so the pool's high-water mark stays near the width of
//!   the widest live set instead of growing with the graph.
//! * [`Placement::Hbm`] — a fresh off-chip buffer (the naive baseline):
//!   each one costs an allocation stall and makes its consumers pay HBM
//!   round-trip traffic.
//!
//! With `memory_reuse == false` every materialized value goes to HBM; with
//! it on, values go to the pool first-fit and only overflow to HBM if the
//! pool is exhausted (which never happens for the shipped workloads — the
//! tests assert it).

use speedllm_fpga_sim::cycles::Cycles;
use speedllm_fpga_sim::ocm::{OcmConfig, OcmKind, OcmPool, Segment};

use crate::fusion::Schedule;
use crate::ir::{Graph, ValueId};

/// How the on-chip pool picks a free segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocStrategy {
    /// First free block that fits (the shipped policy — cheap and, for
    /// Llama's highly cyclic lifetimes, as tight as best-fit).
    #[default]
    FirstFit,
    /// Smallest free block that fits (fragmentation-averse).
    BestFit,
}

/// Where a value lives during execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Never materialized (streams inside a fused kernel).
    Internal,
    /// On-chip segment (URAM pool), recycled after last use.
    Ocm(Segment),
    /// Fresh HBM buffer with an allocation stall.
    Hbm,
}

/// The planner's output.
#[derive(Debug, Clone)]
pub struct MemoryPlan {
    /// Placement per [`ValueId`] index.
    pub placements: Vec<Placement>,
    /// Peak bytes simultaneously allocated in the on-chip pool.
    pub ocm_high_water: u64,
    /// Pool allocations performed (reuse events ≈ allocs − high-water/size).
    pub ocm_allocs: u64,
    /// Values that had to fall back to HBM despite reuse being enabled.
    pub overflowed: usize,
    /// Total bytes of activations placed in HBM.
    pub hbm_activation_bytes: u64,
    /// Pool capacity used for planning.
    pub pool_bytes: u64,
}

impl MemoryPlan {
    /// Placement of a value.
    #[must_use]
    pub fn placement(&self, v: ValueId) -> Placement {
        self.placements[v.0]
    }

    /// Number of values in HBM (activation round-trips).
    #[must_use]
    pub fn hbm_values(&self) -> usize {
        self.placements
            .iter()
            .filter(|p| matches!(p, Placement::Hbm))
            .count()
    }

    /// Number of values in the on-chip pool.
    #[must_use]
    pub fn ocm_values(&self) -> usize {
        self.placements
            .iter()
            .filter(|p| matches!(p, Placement::Ocm(_)))
            .count()
    }
}

/// Computes, per materialized value, the kernel index after which it is
/// dead (its last consumer; the graph output lives to the end).
fn last_use_kernel(graph: &Graph, schedule: &Schedule, v: ValueId) -> usize {
    let output = graph.output();
    if v == output {
        return schedule.kernels.len() - 1;
    }
    graph
        .consumers(v)
        .into_iter()
        .map(|oi| schedule.kernel_of(oi))
        .max()
        .expect("materialized value must have consumers")
}

/// Plans placements for `graph` under `schedule` with the default
/// first-fit pool policy.
///
/// `pool_bytes` is the URAM budget dedicated to activation recycling
/// (weights and KV stay in HBM regardless).
#[must_use]
pub fn plan(graph: &Graph, schedule: &Schedule, memory_reuse: bool, pool_bytes: u64) -> MemoryPlan {
    plan_with_strategy(
        graph,
        schedule,
        memory_reuse,
        pool_bytes,
        AllocStrategy::FirstFit,
    )
}

/// [`plan`] with an explicit segment-selection policy (for ablations).
#[must_use]
pub fn plan_with_strategy(
    graph: &Graph,
    schedule: &Schedule,
    memory_reuse: bool,
    pool_bytes: u64,
    strategy: AllocStrategy,
) -> MemoryPlan {
    let classes = schedule.classify(graph);
    let mut placements = vec![Placement::Internal; graph.values.len()];
    let mut hbm_activation_bytes = 0u64;
    let mut overflowed = 0usize;

    if !memory_reuse {
        for &(v, _) in &classes.materialized {
            placements[v.0] = Placement::Hbm;
            hbm_activation_bytes += graph.values[v.0].bytes();
        }
        return MemoryPlan {
            placements,
            ocm_high_water: 0,
            ocm_allocs: 0,
            overflowed: 0,
            hbm_activation_bytes,
            pool_bytes,
        };
    }

    // Liveness-driven pool simulation over kernel steps.
    let mut pool = OcmPool::new(
        OcmKind::Uram,
        OcmConfig {
            capacity_bytes: pool_bytes,
            bytes_per_cycle: 128.0,
            access_latency: Cycles(3),
        },
    );
    let n_kernels = schedule.kernels.len();
    // Values to free after each kernel step.
    let mut death_row: Vec<Vec<ValueId>> = vec![Vec::new(); n_kernels];
    for &(v, _) in &classes.materialized {
        death_row[last_use_kernel(graph, schedule, v)].push(v);
    }
    // Values born at each kernel step.
    let mut births: Vec<Vec<ValueId>> = vec![Vec::new(); n_kernels];
    for &(v, producer_k) in &classes.materialized {
        births[producer_k].push(v);
    }

    for k in 0..n_kernels {
        for &v in &births[k] {
            let bytes = graph.values[v.0].bytes();
            let alloc = match strategy {
                AllocStrategy::FirstFit => pool.alloc(bytes),
                AllocStrategy::BestFit => pool.alloc_best_fit(bytes),
            };
            match alloc {
                Ok(seg) => placements[v.0] = Placement::Ocm(seg),
                Err(_) => {
                    placements[v.0] = Placement::Hbm;
                    hbm_activation_bytes += bytes;
                    overflowed += 1;
                }
            }
        }
        for &v in &death_row[k] {
            if let Placement::Ocm(seg) = placements[v.0] {
                pool.free(seg);
            }
        }
    }

    MemoryPlan {
        placements,
        ocm_high_water: pool.high_water(),
        ocm_allocs: pool.alloc_count(),
        overflowed,
        hbm_activation_bytes,
        pool_bytes,
    }
}

/// Soundness checker used by tests: replays the kernel sequence and
/// asserts no two *simultaneously live* OCM values overlap and that live
/// bytes never exceed the pool. Returns the observed peak.
pub fn verify_plan(graph: &Graph, schedule: &Schedule, plan: &MemoryPlan) -> Result<u64, String> {
    let classes = schedule.classify(graph);
    let n_kernels = schedule.kernels.len();
    let mut live: Vec<(ValueId, Segment)> = Vec::new();
    let mut peak = 0u64;
    for k in 0..n_kernels {
        // Births first.
        for &(v, producer_k) in &classes.materialized {
            if producer_k != k {
                continue;
            }
            if let Placement::Ocm(seg) = plan.placement(v) {
                for &(other, oseg) in &live {
                    let disjoint =
                        seg.offset + seg.len <= oseg.offset || oseg.offset + oseg.len <= seg.offset;
                    if !disjoint {
                        return Err(format!(
                            "values {v:?} and {other:?} overlap in OCM at kernel {k}"
                        ));
                    }
                }
                live.push((v, seg));
            }
        }
        let live_bytes: u64 = live.iter().map(|(_, s)| s.len).sum();
        peak = peak.max(live_bytes);
        if live_bytes > plan.pool_bytes {
            return Err(format!(
                "live bytes {live_bytes} exceed pool {}",
                plan.pool_bytes
            ));
        }
        // Deaths after the kernel executes.
        live.retain(|&(v, _)| last_use_kernel(graph, schedule, v) != k);
    }
    Ok(peak)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fusion::fuse;
    use crate::ir::build_decode_graph;
    use speedllm_llama::config::ModelConfig;

    const POOL: u64 = 2 << 20;

    fn setup(fused: bool) -> (Graph, Schedule) {
        let g = build_decode_graph(&ModelConfig::test_tiny());
        let s = fuse(&g, fused);
        (g, s)
    }

    #[test]
    fn naive_plan_puts_everything_in_hbm() {
        let (g, s) = setup(false);
        let p = plan(&g, &s, false, POOL);
        assert_eq!(p.ocm_values(), 0);
        assert_eq!(p.hbm_values(), g.values.len());
        assert!(p.hbm_activation_bytes > 0);
    }

    #[test]
    fn reuse_plan_fits_on_chip() {
        let (g, s) = setup(true);
        let p = plan(&g, &s, true, POOL);
        assert_eq!(p.overflowed, 0);
        assert_eq!(p.hbm_values(), 0);
        assert!(p.ocm_values() > 0);
        verify_plan(&g, &s, &p).unwrap();
    }

    #[test]
    fn reuse_high_water_is_far_below_total_bytes() {
        let (g, s) = setup(true);
        let p = plan(&g, &s, true, POOL);
        let total: u64 = g.values.iter().map(|v| v.bytes()).sum();
        assert!(
            p.ocm_high_water * 3 < total,
            "cyclic reuse should keep peak ({}) well under total ({total})",
            p.ocm_high_water
        );
    }

    #[test]
    fn reuse_recycles_segments() {
        let (g, s) = setup(true);
        let p = plan(&g, &s, true, POOL);
        // More allocations than peak-bytes/smallest-value implies recycling:
        // allocations must exceed the number of values that could fit the
        // high-water region at once.
        assert!(p.ocm_allocs as usize > 2 * ModelConfig::test_tiny().n_layers);
        // Distinct values may share the same offset (over time).
        let mut offsets = std::collections::HashMap::new();
        let mut shared = 0;
        for pl in &p.placements {
            if let Placement::Ocm(seg) = pl {
                *offsets.entry(seg.offset).or_insert(0usize) += 1;
                if offsets[&seg.offset] > 1 {
                    shared += 1;
                }
            }
        }
        assert!(shared > 0, "no segment was ever reused");
    }

    #[test]
    fn tiny_pool_overflows_to_hbm() {
        let (g, s) = setup(true);
        let p = plan(&g, &s, true, 64); // 64 bytes: almost nothing fits
        assert!(p.overflowed > 0);
        assert!(p.hbm_activation_bytes > 0);
        verify_plan(&g, &s, &p).unwrap();
    }

    #[test]
    fn unfused_reuse_also_sound() {
        let (g, s) = setup(false);
        let p = plan(&g, &s, true, POOL);
        verify_plan(&g, &s, &p).unwrap();
        assert_eq!(p.overflowed, 0);
    }

    #[test]
    fn stories15m_activations_fit_default_pool() {
        let g = build_decode_graph(&ModelConfig::stories15m());
        let s = fuse(&g, true);
        let p = plan(&g, &s, true, POOL);
        assert_eq!(
            p.overflowed, 0,
            "stories15M activations must fit 2 MiB URAM pool"
        );
        verify_plan(&g, &s, &p).unwrap();
    }

    #[test]
    fn fused_plan_has_fewer_materialized_values() {
        let (g, s_fused) = setup(true);
        let s_unfused = fuse(&g, false);
        let pf = plan(&g, &s_fused, true, POOL);
        let pu = plan(&g, &s_unfused, true, POOL);
        assert!(pf.ocm_values() < pu.ocm_values());
    }

    #[test]
    fn best_fit_plans_are_sound_and_comparable() {
        let (g, s) = setup(true);
        let ff = plan_with_strategy(&g, &s, true, POOL, AllocStrategy::FirstFit);
        let bf = plan_with_strategy(&g, &s, true, POOL, AllocStrategy::BestFit);
        verify_plan(&g, &s, &bf).unwrap();
        assert_eq!(bf.overflowed, 0);
        // For Llama's cyclic lifetimes both policies recycle equally well;
        // best-fit must never need *more* peak space.
        assert!(bf.ocm_high_water <= ff.ocm_high_water + 64);
    }

    #[test]
    fn best_fit_survives_tiny_pools() {
        let (g, s) = setup(true);
        let p = plan_with_strategy(&g, &s, true, 300, AllocStrategy::BestFit);
        verify_plan(&g, &s, &p).unwrap();
        assert!(p.overflowed > 0);
    }

    #[test]
    fn verifier_catches_forged_overlap() {
        let (g, s) = setup(true);
        let mut p = plan(&g, &s, true, POOL);
        // Forge: force two early long-lived values onto the same segment.
        let classes = s.classify(&g);
        let mut picked: Vec<ValueId> = Vec::new();
        for &(v, _) in &classes.materialized {
            // Two values alive at the same time: the residual input x0
            // (lives until L0.res_att) and L0.q_rot (crosses into the
            // attention kernel while x0 is still live).
            if g.values[v.0].name == "L0.q_rot" || g.values[v.0].name == "x0" {
                picked.push(v);
            }
        }
        if picked.len() == 2 {
            let seg = Segment {
                offset: 0,
                len: graph_bytes(&g, picked[0]),
            };
            p.placements[picked[0].0] = Placement::Ocm(seg);
            p.placements[picked[1].0] = Placement::Ocm(seg);
            assert!(verify_plan(&g, &s, &p).is_err());
        } else {
            panic!("expected both x0 and L0.q_rot to be materialized");
        }
    }

    fn graph_bytes(g: &Graph, v: ValueId) -> u64 {
        g.values[v.0].bytes()
    }
}
