//! Operator definitions.

use super::ValueId;

/// A reference into [`speedllm_llama::weights::TransformerWeights`],
/// resolved by the engine at execution time. Weights are permanent HBM
/// residents; the reference also determines the streamed byte volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WeightRef {
    /// One row of the token embedding table (gathered by token id).
    TokenEmbeddingRow,
    /// Pre-attention RMSNorm gain of a layer.
    RmsAtt(usize),
    /// Query projection of a layer.
    Wq(usize),
    /// Key projection of a layer.
    Wk(usize),
    /// Value projection of a layer.
    Wv(usize),
    /// Output projection of a layer.
    Wo(usize),
    /// Pre-FFN RMSNorm gain of a layer.
    RmsFfn(usize),
    /// FFN gate projection of a layer.
    W1(usize),
    /// FFN down projection of a layer.
    W2(usize),
    /// FFN up projection of a layer.
    W3(usize),
    /// Final RMSNorm gain.
    RmsFinal,
    /// Output classifier (embedding table when tied).
    Classifier,
}

impl WeightRef {
    /// True for the large matmul matrices (streamed tile-by-tile); false
    /// for the small norm gains (broadcast once).
    #[must_use]
    pub fn is_matrix(&self) -> bool {
        !matches!(
            self,
            WeightRef::TokenEmbeddingRow
                | WeightRef::RmsAtt(_)
                | WeightRef::RmsFfn(_)
                | WeightRef::RmsFinal
        )
    }
}

/// The operator kinds of the Llama-2 decode graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Gather the current token's embedding row into a fresh value.
    Embed,
    /// RMS normalization with a gain weight.
    RmsNorm,
    /// Dense `rows × cols` matrix–vector product.
    MatMul {
        /// Output rows.
        rows: usize,
        /// Input columns.
        cols: usize,
    },
    /// Rotary position embedding over heads of `head_dim`.
    Rope {
        /// Per-head width.
        head_dim: usize,
    },
    /// Append the current position's K and V rows to the HBM-resident KV
    /// cache (no output value).
    KvAppend {
        /// Owning transformer layer.
        layer: usize,
    },
    /// Full single-position attention: scores, softmax, and value mix over
    /// the cached context.
    Attention {
        /// Owning transformer layer.
        layer: usize,
        /// Query heads.
        n_heads: usize,
        /// KV heads (GQA when smaller).
        n_kv_heads: usize,
        /// Per-head width.
        head_dim: usize,
    },
    /// SiLU activation (element-wise).
    Silu,
    /// Element-wise product of two values.
    ElemMul,
    /// Element-wise sum of two values (residual connection).
    Add,
}

impl OpKind {
    /// Short mnemonic for labels and traces.
    #[must_use]
    pub fn mnemonic(&self) -> &'static str {
        match self {
            OpKind::Embed => "embed",
            OpKind::RmsNorm => "rmsnorm",
            OpKind::MatMul { .. } => "matmul",
            OpKind::Rope { .. } => "rope",
            OpKind::KvAppend { .. } => "kv_append",
            OpKind::Attention { .. } => "attention",
            OpKind::Silu => "silu",
            OpKind::ElemMul => "mul",
            OpKind::Add => "add",
        }
    }

    /// True if the op runs on the Matrix Processing Engine (dense MACs);
    /// false for Special Function Unit ops.
    #[must_use]
    pub fn uses_mpe(&self) -> bool {
        matches!(self, OpKind::MatMul { .. } | OpKind::Attention { .. })
    }
}

/// One operator instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Op {
    /// Operator kind with static shape parameters.
    pub kind: OpKind,
    /// Weight operand, if any.
    pub weight: Option<WeightRef>,
    /// Input values (read).
    pub inputs: Vec<ValueId>,
    /// Output values (written). Empty only for [`OpKind::KvAppend`].
    pub outputs: Vec<ValueId>,
    /// Display label, e.g. `"L3.w1"`.
    pub label: String,
}

impl Op {
    /// The op's single output, panicking if it has none or several.
    #[must_use]
    pub fn output(&self) -> ValueId {
        assert_eq!(
            self.outputs.len(),
            1,
            "{} has {} outputs",
            self.label,
            self.outputs.len()
        );
        self.outputs[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_matrix_classification() {
        assert!(WeightRef::Wq(0).is_matrix());
        assert!(WeightRef::Classifier.is_matrix());
        assert!(!WeightRef::RmsAtt(3).is_matrix());
        assert!(!WeightRef::TokenEmbeddingRow.is_matrix());
    }

    #[test]
    fn mpe_vs_sfu_classification() {
        assert!(OpKind::MatMul { rows: 1, cols: 1 }.uses_mpe());
        assert!(OpKind::Attention {
            layer: 0,
            n_heads: 1,
            n_kv_heads: 1,
            head_dim: 2
        }
        .uses_mpe());
        assert!(!OpKind::RmsNorm.uses_mpe());
        assert!(!OpKind::Silu.uses_mpe());
    }

    #[test]
    fn mnemonics_are_stable() {
        assert_eq!(OpKind::Embed.mnemonic(), "embed");
        assert_eq!(OpKind::KvAppend { layer: 0 }.mnemonic(), "kv_append");
    }

    #[test]
    #[should_panic(expected = "has 0 outputs")]
    fn output_panics_without_output() {
        let op = Op {
            kind: OpKind::KvAppend { layer: 0 },
            weight: None,
            inputs: vec![ValueId(0), ValueId(1)],
            outputs: vec![],
            label: "kv".into(),
        };
        let _ = op.output();
    }
}
