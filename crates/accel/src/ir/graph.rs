//! Decode-step graph construction and validation.

use speedllm_llama::config::ModelConfig;

use super::op::{Op, OpKind, WeightRef};
use super::{ValueId, ValueInfo};

/// A topologically ordered operator graph for one decode step.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    /// Architecture the graph was built for.
    pub config: ModelConfig,
    /// SSA values, indexed by [`ValueId`].
    pub values: Vec<ValueInfo>,
    /// Ops in execution order.
    pub ops: Vec<Op>,
}

/// Structural errors detected by [`Graph::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A value is read before any op produced it.
    UseBeforeDef {
        /// The offending op's label.
        op: String,
        /// The value read too early.
        value: ValueId,
    },
    /// Two ops write the same value (SSA violation).
    MultipleWriters {
        /// The value with more than one producer.
        value: ValueId,
    },
    /// An op's operand element counts are inconsistent with its kind.
    ShapeMismatch {
        /// The offending op's label.
        op: String,
        /// Explanation of the mismatch.
        detail: String,
    },
    /// A value is produced but never read and is not the graph output.
    DeadValue {
        /// The unused value.
        value: ValueId,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::UseBeforeDef { op, value } => {
                write!(f, "op {op} reads value {value:?} before it is defined")
            }
            GraphError::MultipleWriters { value } => {
                write!(f, "value {value:?} has multiple writers")
            }
            GraphError::ShapeMismatch { op, detail } => {
                write!(f, "op {op} shape mismatch: {detail}")
            }
            GraphError::DeadValue { value } => write!(f, "value {value:?} is never consumed"),
        }
    }
}

impl std::error::Error for GraphError {}

impl Graph {
    /// The graph's final output value (the logits), by convention the
    /// output of the last op.
    #[must_use]
    pub fn output(&self) -> ValueId {
        self.ops.last().expect("empty graph").output()
    }

    /// Element count of a value.
    #[must_use]
    pub fn elems(&self, v: ValueId) -> usize {
        self.values[v.0].elems
    }

    /// Index of the op producing `v`, if any.
    #[must_use]
    pub fn producer(&self, v: ValueId) -> Option<usize> {
        self.ops.iter().position(|op| op.outputs.contains(&v))
    }

    /// Indices of ops reading `v`.
    #[must_use]
    pub fn consumers(&self, v: ValueId) -> Vec<usize> {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, op)| op.inputs.contains(&v))
            .map(|(i, _)| i)
            .collect()
    }

    /// Checks SSA discipline, topological order, shape consistency, and
    /// absence of dead values.
    pub fn validate(&self) -> Result<(), GraphError> {
        let mut defined = vec![false; self.values.len()];
        for op in &self.ops {
            for &inp in &op.inputs {
                if !defined[inp.0] {
                    return Err(GraphError::UseBeforeDef {
                        op: op.label.clone(),
                        value: inp,
                    });
                }
            }
            for &out in &op.outputs {
                if defined[out.0] {
                    return Err(GraphError::MultipleWriters { value: out });
                }
                defined[out.0] = true;
            }
            self.check_shapes(op)?;
        }
        // Every defined value except the graph output must be consumed.
        let output = self.output();
        let mut used = vec![false; self.values.len()];
        for op in &self.ops {
            for &inp in &op.inputs {
                used[inp.0] = true;
            }
        }
        for (i, (&d, &u)) in defined.iter().zip(&used).enumerate() {
            if d && !u && ValueId(i) != output {
                return Err(GraphError::DeadValue { value: ValueId(i) });
            }
        }
        Ok(())
    }

    fn check_shapes(&self, op: &Op) -> Result<(), GraphError> {
        let err = |detail: String| {
            Err(GraphError::ShapeMismatch {
                op: op.label.clone(),
                detail,
            })
        };
        match op.kind {
            OpKind::MatMul { rows, cols } => {
                let x = self.elems(op.inputs[0]);
                let y = self.elems(op.outputs[0]);
                if x != cols {
                    return err(format!("input has {x} elems, expected cols={cols}"));
                }
                if y != rows {
                    return err(format!("output has {y} elems, expected rows={rows}"));
                }
            }
            OpKind::RmsNorm | OpKind::Silu => {
                if self.elems(op.inputs[0]) != self.elems(op.outputs[0]) {
                    return err("elementwise op changes length".into());
                }
            }
            OpKind::ElemMul | OpKind::Add => {
                let a = self.elems(op.inputs[0]);
                let b = self.elems(op.inputs[1]);
                let o = self.elems(op.outputs[0]);
                if a != b || a != o {
                    return err(format!("operand lengths {a}/{b}/{o} differ"));
                }
            }
            OpKind::Rope { head_dim } => {
                let n = self.elems(op.inputs[0]);
                if !n.is_multiple_of(head_dim) || head_dim % 2 != 0 {
                    return err(format!("{n} elems not whole even heads of {head_dim}"));
                }
            }
            OpKind::Attention {
                n_heads, head_dim, ..
            } => {
                let q = self.elems(op.inputs[0]);
                if q != n_heads * head_dim {
                    return err(format!("q has {q} elems, expected {}", n_heads * head_dim));
                }
            }
            OpKind::Embed | OpKind::KvAppend { .. } => {}
        }
        Ok(())
    }

    /// Total ops of each MPE/SFU class (for quick sanity checks).
    #[must_use]
    pub fn op_census(&self) -> (usize, usize) {
        let mpe = self.ops.iter().filter(|o| o.kind.uses_mpe()).count();
        (mpe, self.ops.len() - mpe)
    }
}

/// Builder carrying naming and value bookkeeping.
struct Builder {
    values: Vec<ValueInfo>,
    ops: Vec<Op>,
}

impl Builder {
    fn value(&mut self, name: String, elems: usize) -> ValueId {
        let id = ValueId(self.values.len());
        self.values.push(ValueInfo { id, name, elems });
        id
    }

    fn push(&mut self, op: Op) -> Option<ValueId> {
        let out = op.outputs.first().copied();
        self.ops.push(op);
        out
    }
}

/// Builds the SSA decode graph for one token of a Llama-2 network: the
/// exact llama2.c dataflow (RMSNorm → QKV → RoPE → KV append → attention →
/// output projection → residual → RMSNorm → SwiGLU FFN → residual, then
/// final norm and classifier).
#[must_use]
pub fn build_decode_graph(config: &ModelConfig) -> Graph {
    config.validate().expect("invalid model config");
    let d = config.dim;
    let kv = config.kv_dim();
    let h = config.hidden_dim;
    let hd = config.head_dim();
    let mut b = Builder {
        values: Vec::new(),
        ops: Vec::new(),
    };

    // Embedding gather.
    let mut x = b.value("x0".into(), d);
    b.push(Op {
        kind: OpKind::Embed,
        weight: Some(WeightRef::TokenEmbeddingRow),
        inputs: vec![],
        outputs: vec![x],
        label: "embed".into(),
    });

    for l in 0..config.n_layers {
        let tag = |s: &str| format!("L{l}.{s}");
        // ---- Attention block ----
        let xb = b.value(tag("xb"), d);
        b.push(Op {
            kind: OpKind::RmsNorm,
            weight: Some(WeightRef::RmsAtt(l)),
            inputs: vec![x],
            outputs: vec![xb],
            label: tag("rms_att"),
        });
        let q = b.value(tag("q"), d);
        b.push(Op {
            kind: OpKind::MatMul { rows: d, cols: d },
            weight: Some(WeightRef::Wq(l)),
            inputs: vec![xb],
            outputs: vec![q],
            label: tag("wq"),
        });
        let k = b.value(tag("k"), kv);
        b.push(Op {
            kind: OpKind::MatMul { rows: kv, cols: d },
            weight: Some(WeightRef::Wk(l)),
            inputs: vec![xb],
            outputs: vec![k],
            label: tag("wk"),
        });
        let v = b.value(tag("v"), kv);
        b.push(Op {
            kind: OpKind::MatMul { rows: kv, cols: d },
            weight: Some(WeightRef::Wv(l)),
            inputs: vec![xb],
            outputs: vec![v],
            label: tag("wv"),
        });
        let q_rot = b.value(tag("q_rot"), d);
        b.push(Op {
            kind: OpKind::Rope { head_dim: hd },
            weight: None,
            inputs: vec![q],
            outputs: vec![q_rot],
            label: tag("rope_q"),
        });
        let k_rot = b.value(tag("k_rot"), kv);
        b.push(Op {
            kind: OpKind::Rope { head_dim: hd },
            weight: None,
            inputs: vec![k],
            outputs: vec![k_rot],
            label: tag("rope_k"),
        });
        b.push(Op {
            kind: OpKind::KvAppend { layer: l },
            weight: None,
            inputs: vec![k_rot, v],
            outputs: vec![],
            label: tag("kv_append"),
        });
        let att = b.value(tag("att"), d);
        b.push(Op {
            kind: OpKind::Attention {
                layer: l,
                n_heads: config.n_heads,
                n_kv_heads: config.n_kv_heads,
                head_dim: hd,
            },
            weight: None,
            inputs: vec![q_rot],
            outputs: vec![att],
            label: tag("attention"),
        });
        let proj = b.value(tag("proj"), d);
        b.push(Op {
            kind: OpKind::MatMul { rows: d, cols: d },
            weight: Some(WeightRef::Wo(l)),
            inputs: vec![att],
            outputs: vec![proj],
            label: tag("wo"),
        });
        let x_att = b.value(tag("x_att"), d);
        b.push(Op {
            kind: OpKind::Add,
            weight: None,
            inputs: vec![x, proj],
            outputs: vec![x_att],
            label: tag("res_att"),
        });

        // ---- FFN block ----
        let xb2 = b.value(tag("xb2"), d);
        b.push(Op {
            kind: OpKind::RmsNorm,
            weight: Some(WeightRef::RmsFfn(l)),
            inputs: vec![x_att],
            outputs: vec![xb2],
            label: tag("rms_ffn"),
        });
        let h1 = b.value(tag("h1"), h);
        b.push(Op {
            kind: OpKind::MatMul { rows: h, cols: d },
            weight: Some(WeightRef::W1(l)),
            inputs: vec![xb2],
            outputs: vec![h1],
            label: tag("w1"),
        });
        let h3 = b.value(tag("h3"), h);
        b.push(Op {
            kind: OpKind::MatMul { rows: h, cols: d },
            weight: Some(WeightRef::W3(l)),
            inputs: vec![xb2],
            outputs: vec![h3],
            label: tag("w3"),
        });
        let h1s = b.value(tag("h1_silu"), h);
        b.push(Op {
            kind: OpKind::Silu,
            weight: None,
            inputs: vec![h1],
            outputs: vec![h1s],
            label: tag("silu"),
        });
        let hg = b.value(tag("h_gated"), h);
        b.push(Op {
            kind: OpKind::ElemMul,
            weight: None,
            inputs: vec![h1s, h3],
            outputs: vec![hg],
            label: tag("swiglu_mul"),
        });
        let down = b.value(tag("down"), d);
        b.push(Op {
            kind: OpKind::MatMul { rows: d, cols: h },
            weight: Some(WeightRef::W2(l)),
            inputs: vec![hg],
            outputs: vec![down],
            label: tag("w2"),
        });
        let x_ffn = b.value(tag("x_ffn"), d);
        b.push(Op {
            kind: OpKind::Add,
            weight: None,
            inputs: vec![x_att, down],
            outputs: vec![x_ffn],
            label: tag("res_ffn"),
        });
        x = x_ffn;
    }

    // Final norm + classifier.
    let x_final = b.value("x_final".into(), d);
    b.push(Op {
        kind: OpKind::RmsNorm,
        weight: Some(WeightRef::RmsFinal),
        inputs: vec![x],
        outputs: vec![x_final],
        label: "rms_final".into(),
    });
    let logits = b.value("logits".into(), config.vocab_size);
    b.push(Op {
        kind: OpKind::MatMul {
            rows: config.vocab_size,
            cols: d,
        },
        weight: Some(WeightRef::Classifier),
        inputs: vec![x_final],
        outputs: vec![logits],
        label: "classifier".into(),
    });

    let graph = Graph {
        config: *config,
        values: b.values,
        ops: b.ops,
    };
    debug_assert_eq!(graph.validate(), Ok(()));
    graph
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_graph_validates() {
        for cfg in [ModelConfig::test_tiny(), ModelConfig::stories15m()] {
            let g = build_decode_graph(&cfg);
            g.validate().expect("graph must validate");
        }
    }

    #[test]
    fn op_count_matches_structure() {
        let cfg = ModelConfig::test_tiny();
        let g = build_decode_graph(&cfg);
        // 1 embed + 17 per layer (norm, 3 matmuls, 2 ropes, kv-append,
        // attention, wo, add, norm, w1, w3, silu, mul, w2, add) + 2 final.
        assert_eq!(g.ops.len(), 1 + 17 * cfg.n_layers + 2);
        let (mpe, sfu) = g.op_census();
        // Per layer: 7 matmuls + attention = 8 MPE ops; plus classifier.
        assert_eq!(mpe, 8 * cfg.n_layers + 1);
        assert_eq!(sfu, g.ops.len() - mpe);
    }

    #[test]
    fn output_is_logits_sized() {
        let cfg = ModelConfig::test_tiny();
        let g = build_decode_graph(&cfg);
        assert_eq!(g.elems(g.output()), cfg.vocab_size);
    }

    #[test]
    fn producer_consumer_relations() {
        let cfg = ModelConfig::test_tiny();
        let g = build_decode_graph(&cfg);
        // The first rmsnorm output (xb of layer 0) feeds exactly wq, wk, wv.
        let xb = g.ops[1].output();
        assert_eq!(g.producer(xb), Some(1));
        assert_eq!(g.consumers(xb).len(), 3);
        // x0 feeds rmsnorm and the first residual add.
        let x0 = g.ops[0].output();
        assert_eq!(g.consumers(x0).len(), 2);
    }

    #[test]
    fn use_before_def_detected() {
        let cfg = ModelConfig::test_tiny();
        let mut g = build_decode_graph(&cfg);
        g.ops.swap(1, 2); // wq before its rmsnorm input
        assert!(matches!(g.validate(), Err(GraphError::UseBeforeDef { .. })));
    }

    #[test]
    fn multiple_writers_detected() {
        let cfg = ModelConfig::test_tiny();
        let mut g = build_decode_graph(&cfg);
        let out = g.ops[1].output();
        g.ops[2].outputs = vec![out];
        assert!(matches!(
            g.validate(),
            Err(GraphError::MultipleWriters { .. })
        ));
    }

    #[test]
    fn shape_mismatch_detected() {
        let cfg = ModelConfig::test_tiny();
        let mut g = build_decode_graph(&cfg);
        if let OpKind::MatMul { rows, .. } = &mut g.ops[2].kind {
            *rows += 1;
        }
        assert!(matches!(
            g.validate(),
            Err(GraphError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn dead_value_detected() {
        let cfg = ModelConfig::test_tiny();
        let mut g = build_decode_graph(&cfg);
        // Make an op's output dead by redirecting its consumer to another
        // input of the right size: point silu at h3 instead of h1.
        let h1 = g.ops.iter().position(|o| o.label == "L0.w1").unwrap();
        let h3 = g.ops.iter().position(|o| o.label == "L0.w3").unwrap();
        let h1_out = g.ops[h1].output();
        let h3_out = g.ops[h3].output();
        let silu = g.ops.iter().position(|o| o.label == "L0.silu").unwrap();
        g.ops[silu].inputs = vec![h3_out];
        let _ = h1_out;
        assert!(matches!(g.validate(), Err(GraphError::DeadValue { .. })));
    }

    #[test]
    fn kv_append_has_no_output() {
        let cfg = ModelConfig::test_tiny();
        let g = build_decode_graph(&cfg);
        let kv_ops: Vec<&Op> = g
            .ops
            .iter()
            .filter(|o| matches!(o.kind, OpKind::KvAppend { .. }))
            .collect();
        assert_eq!(kv_ops.len(), cfg.n_layers);
        assert!(kv_ops.iter().all(|o| o.outputs.is_empty()));
    }

    #[test]
    fn graphs_are_deterministic() {
        let cfg = ModelConfig::stories260k();
        assert_eq!(build_decode_graph(&cfg), build_decode_graph(&cfg));
    }
}
