//! Operator-graph intermediate representation.
//!
//! One decode step of the Llama-2 network is represented as a topologically
//! ordered list of [`Op`]s over SSA-style *values* ([`ValueId`]): every op
//! produces fresh values, so buffer lifetimes are explicit and the memory
//! planner can choose — per value — between a recycled on-chip segment, a
//! fresh HBM buffer (the naive baseline), or nothing at all when fusion
//! keeps the value inside a composite kernel's on-fabric streams.
//!
//! The IR is *shape-complete* (every value knows its element count and
//! every matmul its dimensions) but *position-parametric*: attention cost
//! depends on the decode position, which the engine supplies at execution
//! time.

pub mod dot;
pub mod graph;
pub mod op;

pub use graph::{build_decode_graph, Graph, GraphError};
pub use op::{Op, OpKind, WeightRef};

/// Identifies an SSA value (a logical activation tensor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub usize);

/// Metadata of one SSA value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueInfo {
    /// The value's id (its index in [`Graph::values`]).
    pub id: ValueId,
    /// Human-readable name, e.g. `"L2.q_rot"`.
    pub name: String,
    /// Element count (`f32` elements; activations stay f32 in all MPE
    /// precisions).
    pub elems: usize,
}

impl ValueInfo {
    /// Size in bytes when materialized.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        (self.elems * std::mem::size_of::<f32>()) as u64
    }
}
