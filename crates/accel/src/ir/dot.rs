//! Graphviz (DOT) export of the decode graph, the fused schedule, and the
//! memory plan — the debugging/documentation view of the whole co-design.
//!
//! Ops are nodes (MPE ops as boxes, SFU ops as ellipses), SSA values are
//! edges, fused kernels are clusters, and edge colors encode the memory
//! plan: green = on-chip recycled segment, red = HBM round-trip,
//! dashed gray = fused away (never materialized).

use std::fmt::Write as _;

use crate::fusion::Schedule;
use crate::memplan::{MemoryPlan, Placement};

use super::{Graph, ValueId};

/// Renders the graph alone (no fusion clusters, no placement colors).
#[must_use]
pub fn graph_to_dot(graph: &Graph) -> String {
    render(graph, None, None)
}

/// Renders the graph with fused-kernel clusters and (optionally) memory
/// placements on the edges.
#[must_use]
pub fn schedule_to_dot(graph: &Graph, schedule: &Schedule, plan: Option<&MemoryPlan>) -> String {
    render(graph, Some(schedule), plan)
}

fn esc(s: &str) -> String {
    s.replace('"', "\\\"")
}

fn render(graph: &Graph, schedule: Option<&Schedule>, plan: Option<&MemoryPlan>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph speedllm {{");
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [fontsize=10, fontname=\"monospace\"];");

    let node = |oi: usize| format!("op{oi}");
    let emit_node = |out: &mut String, oi: usize| {
        let op = &graph.ops[oi];
        let shape = if op.kind.uses_mpe() { "box" } else { "ellipse" };
        let _ = writeln!(
            out,
            "    {} [label=\"{}\\n{}\", shape={shape}];",
            node(oi),
            esc(&op.label),
            op.kind.mnemonic()
        );
    };

    match schedule {
        Some(s) => {
            for (ki, kernel) in s.kernels.iter().enumerate() {
                let _ = writeln!(out, "  subgraph cluster_k{ki} {{");
                let _ = writeln!(out, "    label=\"K{ki}: {}\";", esc(&kernel.label));
                let _ = writeln!(out, "    style=rounded; color=gray;");
                for &oi in &kernel.ops {
                    emit_node(&mut out, oi);
                }
                let _ = writeln!(out, "  }}");
            }
        }
        None => {
            for oi in 0..graph.ops.len() {
                emit_node(&mut out, oi);
            }
        }
    }

    // Edges: producer -> each consumer, labelled by the value.
    for (oi, op) in graph.ops.iter().enumerate() {
        for &outv in &op.outputs {
            for ci in graph.consumers(outv) {
                let (color, style) = edge_style(plan, outv);
                let _ = writeln!(
                    out,
                    "  {} -> {} [label=\"{}\", fontsize=8, color={color}, style={style}];",
                    node(oi),
                    node(ci),
                    esc(&graph.values[outv.0].name)
                );
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

fn edge_style(plan: Option<&MemoryPlan>, v: ValueId) -> (&'static str, &'static str) {
    match plan.map(|p| p.placement(v)) {
        Some(Placement::Internal) => ("gray", "dashed"),
        Some(Placement::Ocm(_)) => ("darkgreen", "solid"),
        Some(Placement::Hbm) => ("red", "bold"),
        None => ("black", "solid"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fusion::fuse;
    use crate::ir::build_decode_graph;
    use crate::memplan::plan;
    use speedllm_llama::config::ModelConfig;

    fn graph() -> Graph {
        build_decode_graph(&ModelConfig::test_tiny())
    }

    #[test]
    fn plain_dot_contains_every_op() {
        let g = graph();
        let dot = graph_to_dot(&g);
        assert!(dot.starts_with("digraph speedllm {"));
        assert!(dot.trim_end().ends_with('}'));
        for op in &g.ops {
            assert!(dot.contains(&op.label), "missing {}", op.label);
        }
    }

    #[test]
    fn clustered_dot_has_one_cluster_per_kernel() {
        let g = graph();
        let s = fuse(&g, true);
        let dot = schedule_to_dot(&g, &s, None);
        let clusters = dot.matches("subgraph cluster_").count();
        assert_eq!(clusters, s.kernels.len());
    }

    #[test]
    fn placement_colors_appear() {
        let g = graph();
        let s = fuse(&g, true);
        let p = plan(&g, &s, true, 2 << 20);
        let dot = schedule_to_dot(&g, &s, Some(&p));
        assert!(dot.contains("darkgreen"), "OCM edges expected");
        assert!(dot.contains("dashed"), "internal edges expected");
        // With reuse on and a big pool there are no HBM activations.
        assert!(!dot.contains("color=red"));
        // Naive plan: red everywhere, nothing dashed-gray except none.
        let naive = crate::memplan::plan(&g, &s, false, 2 << 20);
        let dot2 = schedule_to_dot(&g, &s, Some(&naive));
        assert!(dot2.contains("color=red"));
    }

    #[test]
    fn edge_count_matches_consumer_relations() {
        let g = graph();
        let dot = graph_to_dot(&g);
        let expected: usize = g
            .ops
            .iter()
            .flat_map(|op| op.outputs.iter())
            .map(|&v| g.consumers(v).len())
            .sum();
        assert_eq!(dot.matches(" -> ").count(), expected);
    }

    #[test]
    fn labels_are_escaped() {
        // No raw double quotes may leak out of label strings.
        let g = graph();
        let dot = graph_to_dot(&g);
        for line in dot.lines() {
            let quotes = line.matches('"').count();
            assert!(quotes % 2 == 0, "unbalanced quotes in {line}");
        }
    }
}
