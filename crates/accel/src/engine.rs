//! The accelerator engine: executes the decode graph on the device model.
//!
//! Each [`Engine::decode_step`] does two things in lock-step, kernel by
//! kernel:
//!
//! * **Functional execution** — the same scalar kernels as the CPU
//!   reference run over an SSA value store, so the engine produces real
//!   logits. Fusion, placement, and pipelining only change *timing*;
//!   integration tests assert the logits match the reference.
//! * **Timing execution** — every kernel is decomposed into read/compute/
//!   write tiles (weight streaming per MPE row-wave, KV paging for
//!   attention, activation round-trips for HBM-placed values) and scheduled
//!   on the shared resource timeline by [`crate::pipeline::schedule_kernel`]
//!   under the active [`OptConfig`] discipline. Device counters (HBM bytes,
//!   MACs, SFU elements, DMA busy, launches, allocation stalls) accumulate
//!   into a per-step [`SimStats`] for the power model.

use std::collections::HashMap;
use std::sync::Arc;

use speedllm_telemetry as tel;

use speedllm_fpga_sim::cycles::Cycles;
use speedllm_fpga_sim::dma::{Direction, DmaConfig, DmaEngine};
use speedllm_fpga_sim::event::Timeline;
use speedllm_fpga_sim::hbm::{Hbm, HbmConfig};
use speedllm_fpga_sim::mpe::{Mpe, MpeConfig, Precision};
use speedllm_fpga_sim::power::PowerModel;
use speedllm_fpga_sim::resources::{
    check_fit, estimate_buffers, estimate_dma, estimate_mpe, estimate_sfu, OverBudget, Resources,
};
use speedllm_fpga_sim::sfu::{Sfu, SfuKind};
use speedllm_fpga_sim::stats::SimStats;
use speedllm_fpga_sim::trace::TraceBuffer;
use speedllm_llama::kv_cache::KvCache;
use speedllm_llama::ops;
use speedllm_llama::quant::{QuantKind, QuantMatrix};
use speedllm_llama::weights::TransformerWeights;
use speedllm_pagedkv::{BlockConfig, BlockId, BlockTable, PagedKvArena};

use crate::fusion::{fuse_with_limit, Schedule};
use crate::ir::{build_decode_graph, Graph, OpKind, ValueId, WeightRef};
use crate::memplan::{plan, MemoryPlan, Placement};
use crate::opt::OptConfig;
use crate::pipeline::{schedule_kernel, PipelineConfig, TileCost, Unit, N_RESOURCES};

/// Device/design parameters of an accelerator instance. Derived from an
/// [`OptConfig`] by [`AccelConfig::for_opt`]; individually overridable for
/// ablation studies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccelConfig {
    /// Matrix engine design point.
    pub mpe: MpeConfig,
    /// HBM stack parameters.
    pub hbm: HbmConfig,
    /// Read-side DMA engine.
    pub read_dma: DmaConfig,
    /// Write-side DMA engine.
    pub write_dma: DmaConfig,
    /// Host kernel-launch overhead (sequential dispatch).
    pub launch_overhead: Cycles,
    /// Exposed launch overhead with pipelined enqueue (streamed).
    pub streamed_launch_overhead: Cycles,
    /// Stall per fresh HBM buffer allocation (naive memory management).
    pub alloc_stall: Cycles,
    /// Tile double-buffer depth in streamed mode.
    pub double_buffer_depth: usize,
    /// URAM bytes dedicated to the activation-recycling pool.
    pub activation_pool_bytes: u64,
    /// KV pages of this many positions per attention read tile.
    pub kv_page_positions: usize,
    /// Storage precision of the HBM-resident KV cache (extension beyond
    /// the paper). Int8 stores Q8_0 rows — 4x less attention traffic at a
    /// small, perplexity-tested accuracy cost; values are dequantized on
    /// read, exactly as the hardware would.
    pub kv_precision: Precision,
    /// Composite-kernel depth limit handed to the fusion pass.
    pub fusion_max_ops: usize,
    /// Prompt tokens processed per device pass during prefill (chunked
    /// prefill, an extension beyond the paper). 1 = paper-faithful
    /// token-at-a-time prefill; larger values amortize weight streaming
    /// across the chunk. Capped at 64 by the on-chip staging limit.
    pub prefill_chunk: usize,
    /// Run the *functional* matmul math through the real three-stage
    /// thread pipeline ([`crate::pipeline::dataflow`]) instead of the
    /// serial kernel. Numerically identical (disjoint row tiles); it
    /// demonstrates on the host CPU the same read–compute–write overlap
    /// the timing model charges for.
    pub functional_dataflow: bool,
    /// Energy model.
    pub power: PowerModel,
}

impl AccelConfig {
    /// The shipped design point for an optimization selection.
    ///
    /// The data-stream co-design also widens the DMA striping: a streamed
    /// design instantiates separate wide read/write engines (24 + 8
    /// pseudo-channels), while the naive baseline is a single-port-style
    /// design on 6 channels — the footprint a first-pass HLS implementation
    /// actually has.
    #[must_use]
    pub fn for_opt(opt: &OptConfig) -> Self {
        let mpe = match opt.precision {
            Precision::Fp32 => MpeConfig::u280_fp32(),
            Precision::Int8 => MpeConfig::u280_int8(),
            Precision::Int4 => MpeConfig::u280_int4(),
        };
        let mut hbm = HbmConfig::u280();
        if opt.precision != Precision::Fp32 {
            // Quantized weight streams move in group-sized transfers (32 B
            // Q8_0 / 16 B Q4_0 payloads), so the design point narrows the
            // burst to halve padding waste on those small reads.
            hbm.burst_bytes = 32;
        }
        let (rd_ch, wr_ch) = if opt.stream_parallel { (24, 8) } else { (8, 8) };
        let pipelined = opt.stream_parallel;
        Self {
            mpe,
            hbm,
            read_dma: DmaConfig {
                channels: rd_ch,
                setup_cycles: 16,
                pipelined,
            },
            write_dma: DmaConfig {
                channels: wr_ch,
                setup_cycles: 16,
                pipelined,
            },
            launch_overhead: Cycles(240),
            streamed_launch_overhead: Cycles(40),
            alloc_stall: Cycles(320),
            double_buffer_depth: 2,
            activation_pool_bytes: 2 << 20,
            kv_page_positions: 32,
            kv_precision: Precision::Fp32,
            fusion_max_ops: crate::fusion::MAX_OPS_PER_KERNEL,
            prefill_chunk: 1,
            functional_dataflow: false,
            power: PowerModel::u280(),
        }
    }

    /// Fabric cost estimate of this design point.
    #[must_use]
    pub fn resource_usage(&self) -> Resources {
        let mut total = estimate_mpe(&self.mpe)
            .plus(estimate_dma(self.read_dma.channels))
            .plus(estimate_dma(self.write_dma.channels));
        for kind in SfuKind::ALL {
            total = total.plus(estimate_sfu(kind));
        }
        // Tile double buffers in BRAM + activation pool in URAM.
        let tile_buf_bytes = (self.double_buffer_depth as u64 + 1) * 256 * 1024;
        total.plus(estimate_buffers(tile_buf_bytes, self.activation_pool_bytes))
    }

    /// Checks the design fits the U280.
    pub fn validate(&self) -> Result<(), OverBudget> {
        check_fit(&self.resource_usage(), &Resources::u280_budget())
    }
}

/// Computes a matvec through the three-stage dataflow pipeline: the READ
/// stage slices a row-wave of the weight matrix, COMPUTE runs the dot
/// products, WRITE commits the rows — the software twin of the device's
/// streamed iteration. Row tiles are disjoint, so the result is bit-equal
/// to the serial kernel.
fn dataflow_matvec(out: &mut [f32], w: &[f32], x: &[f32], rows: usize, cols: usize, wave: usize) {
    let wave = wave.max(1);
    let n_tiles = rows.div_ceil(wave);
    crate::pipeline::dataflow::run(
        n_tiles,
        2,
        |i| {
            let r0 = i * wave;
            let r1 = (r0 + wave).min(rows);
            (r0, &w[r0 * cols..r1 * cols])
        },
        |_, (r0, wslice)| {
            let n = wslice.len() / cols;
            let mut part = vec![0.0f32; n];
            speedllm_llama::ops::matvec(&mut part, wslice, x, n, cols);
            (r0, part)
        },
        |_, (r0, part)| {
            out[r0..r0 + part.len()].copy_from_slice(&part);
        },
    );
}

/// Where one sequence's K/V rows live: a private contiguous cache, or a
/// per-sequence block table over the engine's shared [`PagedKvArena`].
/// The indirection is functional-only — the timing model already charges
/// page-granular KV traffic either way, so paged and flat sequences cost
/// the same cycles and produce bit-identical logits.
pub enum SeqKv {
    /// Contiguous per-sequence cache (single-tenant and slot-pool serving).
    Flat(KvCache),
    /// Logical position → physical block mapping into the engine's arena
    /// (paged serving with prefix sharing).
    Paged(BlockTable),
}

/// Per-sequence functional state: the KV storage and the SSA value store.
/// One [`Engine`] owns a default sequence (used by [`Engine::decode_step`]);
/// additional sequences can be created for batched serving via
/// [`Engine::new_sequence`] + [`Engine::decode_batch`].
pub struct SequenceState {
    kv: SeqKv,
    values: Vec<Option<Vec<f32>>>,
}

impl SequenceState {
    fn new(config: &speedllm_llama::config::ModelConfig, n_values: usize) -> Self {
        Self {
            kv: SeqKv::Flat(KvCache::new(config)),
            values: vec![None; n_values],
        }
    }

    fn new_paged(block_size: usize, n_values: usize) -> Self {
        Self {
            kv: SeqKv::Paged(BlockTable::new(block_size)),
            values: vec![None; n_values],
        }
    }

    /// Number of positions already decoded into this sequence.
    #[must_use]
    pub fn context_len(&self) -> usize {
        match &self.kv {
            SeqKv::Flat(kv) => kv.len(),
            SeqKv::Paged(table) => table.len(),
        }
    }

    /// Clears the sequence for reuse. A paged sequence must have had its
    /// block chain stripped (released back to the allocator) first.
    pub fn reset(&mut self) {
        match &mut self.kv {
            SeqKv::Flat(kv) => kv.reset(),
            SeqKv::Paged(table) => table.reset(),
        }
    }

    /// Rolls the sequence back to `len` positions (no-op past the current
    /// context). Flat storage truncates in place; paged storage pops the
    /// whole blocks past the keep point and returns them for the owner to
    /// release — the allocator decides whether a popped block actually
    /// frees (it may still be CoW-shared with another sequence).
    /// Speculative decoding uses this to discard rejected draft rows.
    pub fn truncate(&mut self, len: usize) -> Vec<BlockId> {
        match &mut self.kv {
            SeqKv::Flat(kv) => {
                kv.truncate(len);
                Vec::new()
            }
            SeqKv::Paged(table) => table.rollback(len),
        }
    }

    /// The block table of a paged sequence (`None` for flat sequences).
    #[must_use]
    pub fn block_table(&self) -> Option<&BlockTable> {
        match &self.kv {
            SeqKv::Flat(_) => None,
            SeqKv::Paged(table) => Some(table),
        }
    }

    /// Mutable block table of a paged sequence.
    pub fn block_table_mut(&mut self) -> Option<&mut BlockTable> {
        match &mut self.kv {
            SeqKv::Flat(_) => None,
            SeqKv::Paged(table) => Some(table),
        }
    }

    fn value(&self, v: ValueId) -> &[f32] {
        self.values[v.0]
            .as_deref()
            .unwrap_or_else(|| panic!("value {v:?} not yet computed"))
    }
}

impl speedllm_llama::kv_cache::PoolSlot for SequenceState {
    fn reset_slot(&mut self) {
        self.reset();
        // Drop cached SSA values too: a recycled slot must not leak the
        // previous tenant's activations to a stale-value read.
        for v in &mut self.values {
            *v = None;
        }
    }

    fn slot_len(&self) -> usize {
        self.context_len()
    }

    fn poison_slot(&mut self) {
        // Paged storage is poisoned block-by-block as blocks are freed
        // (the arena owns the rows, and shared blocks may still be live).
        if let SeqKv::Flat(kv) = &mut self.kv {
            kv.poison();
        }
    }
}

/// Read view over either KV storage for the attention kernels.
enum KvCtx<'a> {
    Flat(&'a KvCache),
    Paged(&'a PagedKvArena, &'a BlockTable),
}

impl KvCtx<'_> {
    #[inline]
    fn key_head(&self, layer: usize, t: usize, kv_head: usize) -> &[f32] {
        match self {
            KvCtx::Flat(kv) => kv.key_head(layer, t, kv_head),
            KvCtx::Paged(arena, table) => {
                let (b, s) = table.locate(t);
                arena.key_head_at(layer, b, s, kv_head)
            }
        }
    }

    #[inline]
    fn value_head(&self, layer: usize, t: usize, kv_head: usize) -> &[f32] {
        match self {
            KvCtx::Flat(kv) => kv.value_head(layer, t, kv_head),
            KvCtx::Paged(arena, table) => {
                let (b, s) = table.locate(t);
                arena.value_head_at(layer, b, s, kv_head)
            }
        }
    }
}

/// Result of one decode step.
#[derive(Debug, Clone)]
pub struct StepResult {
    /// Logits over the vocabulary.
    pub logits: Vec<f32>,
    /// Makespan of the step.
    pub cycles: Cycles,
    /// Device activity of the step.
    pub stats: SimStats,
}

/// Construction errors.
#[derive(Debug)]
pub enum EngineError {
    /// The design point does not fit the device.
    OverBudget(OverBudget),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::OverBudget(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// The simulated SpeedLLM accelerator bound to one model.
pub struct Engine {
    weights: Arc<TransformerWeights>,
    opt: OptConfig,
    cfg: AccelConfig,
    graph: Graph,
    schedule: Schedule,
    plan: MemoryPlan,
    // Device component models (counters accumulate across steps).
    hbm: Hbm,
    mpe: Mpe,
    sfu: Sfu,
    dma_rd: DmaEngine,
    dma_wr: DmaEngine,
    launches: u64,
    stalls: u64,
    // Functional state of the default (single-session) sequence.
    seq: SequenceState,
    /// Shared physical KV store for paged sequences; `None` until
    /// [`Engine::enable_paged_kv`]. The default sequence stays flat.
    paged: Option<PagedKvArena>,
    quant: HashMap<WeightRef, QuantMatrix>,
    // Optional capture of the next step's timeline.
    trace: Option<TraceBuffer>,
}

impl Engine {
    /// Builds an engine for `weights` under `opt`, using the shipped
    /// design point.
    pub fn new(weights: Arc<TransformerWeights>, opt: OptConfig) -> Result<Self, EngineError> {
        Self::with_config(weights, opt, AccelConfig::for_opt(&opt))
    }

    /// Builds an engine with an explicit design point (ablations).
    pub fn with_config(
        weights: Arc<TransformerWeights>,
        opt: OptConfig,
        cfg: AccelConfig,
    ) -> Result<Self, EngineError> {
        cfg.validate().map_err(EngineError::OverBudget)?;
        let graph = build_decode_graph(&weights.config);
        let schedule = fuse_with_limit(&graph, opt.operator_fusion, cfg.fusion_max_ops);
        let plan = plan(
            &graph,
            &schedule,
            opt.memory_reuse,
            cfg.activation_pool_bytes,
        );
        if tel::enabled() {
            let rep = schedule.report(&graph);
            tel::metrics::gauge_set("accel.schedule_kernels", rep.kernels as f64);
            tel::metrics::gauge_set("accel.fused_values", rep.internal_values as f64);
            tel::metrics::gauge_set("accel.memplan_ocm_values", plan.ocm_values() as f64);
            tel::metrics::gauge_set("accel.memplan_hbm_values", plan.hbm_values() as f64);
        }
        let seq = SequenceState::new(&weights.config, graph.values.len());
        Ok(Self {
            weights,
            opt,
            cfg,
            graph,
            schedule,
            plan,
            hbm: Hbm::new(cfg.hbm),
            mpe: Mpe::new(cfg.mpe),
            sfu: Sfu::new(),
            dma_rd: DmaEngine::new(cfg.read_dma, Direction::Read),
            dma_wr: DmaEngine::new(cfg.write_dma, Direction::Write),
            launches: 0,
            stalls: 0,
            seq,
            paged: None,
            quant: HashMap::new(),
            trace: None,
        })
    }

    /// The active optimization selection.
    #[must_use]
    pub fn opt(&self) -> &OptConfig {
        &self.opt
    }

    /// The design point.
    #[must_use]
    pub fn config(&self) -> &AccelConfig {
        &self.cfg
    }

    /// The decode graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The fused schedule.
    #[must_use]
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The memory plan.
    #[must_use]
    pub fn memory_plan(&self) -> &MemoryPlan {
        &self.plan
    }

    /// The power model in use.
    #[must_use]
    pub fn power_model(&self) -> &PowerModel {
        &self.cfg.power
    }

    /// Starts capturing the next decode step's timeline into a trace
    /// buffer of `capacity` events.
    pub fn capture_trace(&mut self, capacity: usize) {
        self.trace = Some(TraceBuffer::new(capacity));
    }

    /// Takes the captured trace, if any.
    pub fn take_trace(&mut self) -> Option<TraceBuffer> {
        self.trace.take()
    }

    /// Clears the default sequence's KV cache.
    pub fn reset(&mut self) {
        self.seq.reset();
    }

    /// Context length of the default sequence.
    #[must_use]
    pub fn context_len(&self) -> usize {
        self.seq.context_len()
    }

    /// Creates an empty sequence for batched serving: paged when
    /// [`Engine::enable_paged_kv`] has been called, flat otherwise.
    #[must_use]
    pub fn new_sequence(&self) -> SequenceState {
        match &self.paged {
            Some(arena) => SequenceState::new_paged(arena.block_size(), self.graph.values.len()),
            None => SequenceState::new(&self.graph.config, self.graph.values.len()),
        }
    }

    /// Switches serving sequences to paged KV storage: allocates the
    /// shared physical arena and makes every subsequent
    /// [`Engine::new_sequence`] a block-table sequence. The scheduler owns
    /// the block allocator and installs chains into each table; the engine
    /// only resolves the indirection. The default (single-tenant) sequence
    /// stays flat.
    pub fn enable_paged_kv(&mut self, blocks: BlockConfig) {
        self.paged = Some(PagedKvArena::new(&self.graph.config, blocks));
    }

    /// Geometry of the paged arena, when enabled.
    #[must_use]
    pub fn paged_block_config(&self) -> Option<BlockConfig> {
        self.paged.as_ref().map(PagedKvArena::block_config)
    }

    /// NaN-poisons freed blocks' arena rows (debug reuse hygiene; no-op
    /// without a paged arena).
    pub fn poison_blocks(&mut self, blocks: &[BlockId]) {
        if let Some(arena) = &mut self.paged {
            arena.poison_blocks(blocks);
        }
    }

    /// Weight bytes streamed per element in the active precision
    /// (including group-scale overhead for the quantized kinds).
    fn matrix_bytes(&self, rows: usize, cols: usize) -> u64 {
        match self.opt.precision {
            Precision::Fp32 => (rows * cols * 4) as u64,
            // int8 payload + one f32 scale per 32-wide group per row.
            Precision::Int8 => (rows * cols + rows * cols.div_ceil(32) * 4) as u64,
            // two int4 elements per byte + the same per-group scales.
            Precision::Int4 => (rows * cols.div_ceil(2) + rows * cols.div_ceil(32) * 4) as u64,
        }
    }

    /// Bytes one device pass streams for the dense GEMM operands under the
    /// active weight precision — the compressed counterpart of
    /// `ModelConfig::gemm_weight_bytes`, and what the
    /// `accel.gemm_weight_bytes` telemetry adds per batched tick.
    fn gemm_stream_bytes(&self) -> u64 {
        let c = &self.graph.config;
        let (d, kv, h) = (c.dim, c.kv_dim(), c.hidden_dim);
        let per_layer = self.matrix_bytes(d, d) * 2 // wq, wo
            + self.matrix_bytes(kv, d) * 2 // wk, wv
            + self.matrix_bytes(h, d) * 2 // w1, w3
            + self.matrix_bytes(d, h); // w2
        per_layer * c.n_layers as u64 + self.matrix_bytes(c.vocab_size, d)
    }

    /// Bytes one K or V row of `kv_dim` elements occupies in HBM under the
    /// configured KV precision (quantized payload + group scales).
    fn kv_row_bytes(&self) -> u64 {
        let kv_dim = self.graph.config.kv_dim();
        match self.cfg.kv_precision {
            Precision::Fp32 => (kv_dim * 4) as u64,
            Precision::Int8 => (kv_dim + kv_dim.div_ceil(32) * 4) as u64,
            Precision::Int4 => (kv_dim.div_ceil(2) + kv_dim.div_ceil(32) * 4) as u64,
        }
    }

    fn resolve_matrix(w: &TransformerWeights, r: WeightRef) -> (&[f32], usize, usize) {
        let c = &w.config;
        let d = c.dim;
        let kv = c.kv_dim();
        let h = c.hidden_dim;
        match r {
            WeightRef::Wq(l) => (&w.layers[l].wq, d, d),
            WeightRef::Wk(l) => (&w.layers[l].wk, kv, d),
            WeightRef::Wv(l) => (&w.layers[l].wv, kv, d),
            WeightRef::Wo(l) => (&w.layers[l].wo, d, d),
            WeightRef::W1(l) => (&w.layers[l].w1, h, d),
            WeightRef::W2(l) => (&w.layers[l].w2, d, h),
            WeightRef::W3(l) => (&w.layers[l].w3, h, d),
            WeightRef::Classifier => (w.classifier(), c.vocab_size, d),
            _ => panic!("{r:?} is not a matrix weight"),
        }
    }

    fn resolve_gain(w: &TransformerWeights, r: WeightRef) -> &[f32] {
        match r {
            WeightRef::RmsAtt(l) => &w.layers[l].rms_att,
            WeightRef::RmsFfn(l) => &w.layers[l].rms_ffn,
            WeightRef::RmsFinal => &w.rms_final,
            _ => panic!("{r:?} is not a norm gain"),
        }
    }

    /// Functionally executes one op into a sequence's value store.
    /// `arena` is the shared paged store; required iff `seq` is paged.
    #[allow(clippy::too_many_arguments)]
    fn exec_op(
        graph: &Graph,
        weights: &TransformerWeights,
        quant: &mut HashMap<WeightRef, QuantMatrix>,
        cfg: &AccelConfig,
        opt: &OptConfig,
        seq: &mut SequenceState,
        arena: Option<&mut PagedKvArena>,
        op_idx: usize,
        token: u32,
        pos: usize,
    ) {
        let op = graph.ops[op_idx].clone();
        match op.kind {
            OpKind::Embed => {
                let row = weights.embedding_row(token as usize).to_vec();
                seq.values[op.output().0] = Some(row);
            }
            OpKind::RmsNorm => {
                let gain = Self::resolve_gain(weights, op.weight.expect("norm weight"));
                let x = seq.value(op.inputs[0]);
                let mut out = vec![0.0f32; x.len()];
                ops::rmsnorm(&mut out, x, gain);
                seq.values[op.output().0] = Some(out);
            }
            OpKind::MatMul { rows, cols } => {
                let wref = op.weight.expect("matmul weight");
                let x = seq.value(op.inputs[0]).to_vec();
                let mut out = vec![0.0f32; rows];
                match opt.precision {
                    Precision::Fp32 => {
                        let (w, r, c) = Self::resolve_matrix(weights, wref);
                        debug_assert_eq!((r, c), (rows, cols));
                        if cfg.functional_dataflow && rows >= 4 * cfg.mpe.lanes {
                            dataflow_matvec(&mut out, w, &x, rows, cols, cfg.mpe.lanes);
                        } else {
                            ops::matvec(&mut out, w, &x, rows, cols);
                        }
                    }
                    Precision::Int8 | Precision::Int4 => {
                        let kind = if opt.precision == Precision::Int8 {
                            QuantKind::Int8
                        } else {
                            QuantKind::Int4
                        };
                        let qm = quant.entry(wref).or_insert_with(|| {
                            let (w, r, c) = Self::resolve_matrix(weights, wref);
                            QuantMatrix::quantize_with(w, r, c, kind)
                        });
                        qm.matvec(&mut out, &x);
                    }
                }
                seq.values[op.output().0] = Some(out);
            }
            OpKind::Rope { head_dim } => {
                let mut v = seq.value(op.inputs[0]).to_vec();
                ops::rope_inplace(&mut v, pos, head_dim, ops::ROPE_THETA);
                seq.values[op.output().0] = Some(v);
            }
            OpKind::KvAppend { layer } => {
                let mut k = seq.value(op.inputs[0]).to_vec();
                let mut v = seq.value(op.inputs[1]).to_vec();
                if cfg.kv_precision == Precision::Int8 {
                    // The device stores Q8_0 rows and dequantizes on read;
                    // the functional mirror applies the same round-trip so
                    // the accuracy effect is faithful.
                    k = speedllm_llama::quant::QuantTensor::quantize(&k).dequantize();
                    v = speedllm_llama::quant::QuantTensor::quantize(&v).dequantize();
                }
                match &mut seq.kv {
                    SeqKv::Flat(kv) => kv.store(layer, pos, &k, &v),
                    SeqKv::Paged(table) => {
                        let arena = arena.expect("paged sequence without a paged arena");
                        let (b, s) = table.locate(pos);
                        arena.store_at(layer, b, s, &k, &v);
                        if layer == graph.config.n_layers - 1 {
                            table.note_stored(pos);
                        }
                    }
                }
            }
            OpKind::Attention {
                layer,
                n_heads,
                n_kv_heads,
                head_dim,
            } => {
                let q = seq.value(op.inputs[0]).to_vec();
                let gqa = n_heads / n_kv_heads;
                let mut out = vec![0.0f32; n_heads * head_dim];
                let mut scores = vec![0.0f32; pos + 1];
                let ctx = match (&seq.kv, arena.as_deref()) {
                    (SeqKv::Flat(kv), _) => KvCtx::Flat(kv),
                    (SeqKv::Paged(table), Some(arena)) => KvCtx::Paged(arena, table),
                    (SeqKv::Paged(_), None) => {
                        panic!("paged sequence without a paged arena")
                    }
                };
                for h in 0..n_heads {
                    let kv_head = h / gqa;
                    let qh = &q[h * head_dim..(h + 1) * head_dim];
                    ops::attention_scores(
                        &mut scores,
                        qh,
                        |t| ctx.key_head(layer, t, kv_head),
                        pos,
                    );
                    ops::softmax(&mut scores[..pos + 1]);
                    ops::attention_mix(
                        &mut out[h * head_dim..(h + 1) * head_dim],
                        &scores,
                        |t| ctx.value_head(layer, t, kv_head),
                        pos,
                    );
                }
                drop(ctx);
                seq.values[op.output().0] = Some(out);
            }
            OpKind::Silu => {
                let mut v = seq.value(op.inputs[0]).to_vec();
                for x in &mut v {
                    *x = ops::silu(*x);
                }
                seq.values[op.output().0] = Some(v);
            }
            OpKind::ElemMul => {
                let mut a = seq.value(op.inputs[0]).to_vec();
                let b = seq.value(op.inputs[1]);
                for (x, &y) in a.iter_mut().zip(b) {
                    *x *= y;
                }
                seq.values[op.output().0] = Some(a);
            }
            OpKind::Add => {
                let mut a = seq.value(op.inputs[0]).to_vec();
                let b = seq.value(op.inputs[1]);
                ops::add_inplace(&mut a, b);
                seq.values[op.output().0] = Some(a);
            }
        }
    }

    /// Builds the timing tiles of one op for a chunk of `positions`
    /// processed back-to-back.
    ///
    /// Batching is where chunked prefill wins: matrix weights are streamed
    /// from HBM **once** per tile and applied to every position in the
    /// chunk, so the read cost is amortized while compute scales with the
    /// chunk length. Per-position work (SFU ops, KV paging) scales
    /// linearly.
    fn op_tiles(&mut self, op_idx: usize, positions: &[usize], tiles: &mut Vec<TileCost>) {
        let op = &self.graph.ops[op_idx];
        let batch = positions.len().max(1);
        // Sums SFU cost over the chunk (counters accumulate per call).
        let sfu_batched = |sfu: &mut Sfu, kind: SfuKind, n: usize| -> Cycles {
            let mut total = Cycles::ZERO;
            for _ in 0..batch {
                total += sfu.run(kind, n);
            }
            total
        };
        match op.kind {
            OpKind::Embed => {
                let bytes = (batch * self.graph.config.dim * 4) as u64;
                let read = self.dma_rd.transfer(&mut self.hbm, bytes);
                tiles.push(TileCost {
                    read,
                    compute: Cycles::ZERO,
                    write: Cycles::ZERO,
                    unit: Unit::Sfu,
                });
            }
            OpKind::RmsNorm => {
                // Gain vector is tiny; stream it once with the op.
                let n = self.graph.elems(op.inputs[0]);
                let read = self.dma_rd.transfer(&mut self.hbm, (n * 4) as u64);
                let compute = sfu_batched(&mut self.sfu, SfuKind::RmsNorm, n);
                tiles.push(TileCost {
                    read,
                    compute,
                    write: Cycles::ZERO,
                    unit: Unit::Sfu,
                });
            }
            OpKind::MatMul { rows, cols } => {
                // Stream weights one row-wave at a time; each wave is
                // applied to every position in the chunk.
                let wave = self.cfg.mpe.lanes;
                let mut r = 0usize;
                while r < rows {
                    let take = wave.min(rows - r);
                    let bytes = self.matrix_bytes(take, cols);
                    let read = self.dma_rd.transfer(&mut self.hbm, bytes);
                    let mut compute = Cycles::ZERO;
                    for _ in 0..batch {
                        compute += self.mpe.run_tile(take, cols);
                    }
                    tiles.push(TileCost {
                        read,
                        compute,
                        write: Cycles::ZERO,
                        unit: Unit::Mpe,
                    });
                    r += take;
                }
            }
            OpKind::Rope { .. } => {
                let n = self.graph.elems(op.inputs[0]);
                let compute = sfu_batched(&mut self.sfu, SfuKind::Rope, n);
                tiles.push(TileCost {
                    read: Cycles::ZERO,
                    compute,
                    write: Cycles::ZERO,
                    unit: Unit::Sfu,
                });
            }
            OpKind::KvAppend { .. } => {
                let bytes = batch as u64 * 2 * self.kv_row_bytes();
                let write = self.dma_wr.transfer(&mut self.hbm, bytes);
                tiles.push(TileCost {
                    read: Cycles::ZERO,
                    compute: Cycles::ZERO,
                    write,
                    unit: Unit::Sfu,
                });
            }
            OpKind::Attention {
                n_heads, head_dim, ..
            } => {
                // Page the cached context in from HBM; compute scores+mix
                // per page on the MPE, softmax on the SFU at the end. Each
                // chunk position attends to its own (causal) context; pages
                // already resident for earlier positions are re-read —
                // a deliberate simplification that under-states the chunk
                // benefit rather than overstating it.
                let page = self.cfg.kv_page_positions.max(1);
                let mut softmax_elems = 0usize;
                for &pos in positions {
                    let ctx = pos + 1;
                    let mut t = 0usize;
                    while t < ctx {
                        let take = page.min(ctx - t);
                        let bytes = 2 * take as u64 * self.kv_row_bytes();
                        let read = self.dma_rd.transfer(&mut self.hbm, bytes);
                        // Scores (q·k) and mix (p·v) for every query head
                        // over this page: 2 dot-product sets.
                        let compute = self.mpe.run_tile(2 * n_heads * take, head_dim);
                        tiles.push(TileCost {
                            read,
                            compute,
                            write: Cycles::ZERO,
                            unit: Unit::Mpe,
                        });
                        t += take;
                    }
                    softmax_elems += n_heads * ctx;
                }
                let softmax = self.sfu.run(SfuKind::Softmax, softmax_elems);
                tiles.push(TileCost {
                    read: Cycles::ZERO,
                    compute: softmax,
                    write: Cycles::ZERO,
                    unit: Unit::Sfu,
                });
            }
            OpKind::Silu => {
                let n = self.graph.elems(op.inputs[0]);
                let compute = sfu_batched(&mut self.sfu, SfuKind::Silu, n);
                tiles.push(TileCost {
                    read: Cycles::ZERO,
                    compute,
                    write: Cycles::ZERO,
                    unit: Unit::Sfu,
                });
            }
            OpKind::ElemMul => {
                let n = self.graph.elems(op.inputs[0]);
                let compute = sfu_batched(&mut self.sfu, SfuKind::Mul, n);
                tiles.push(TileCost {
                    read: Cycles::ZERO,
                    compute,
                    write: Cycles::ZERO,
                    unit: Unit::Sfu,
                });
            }
            OpKind::Add => {
                let n = self.graph.elems(op.inputs[0]);
                let compute = sfu_batched(&mut self.sfu, SfuKind::Add, n);
                tiles.push(TileCost {
                    read: Cycles::ZERO,
                    compute,
                    write: Cycles::ZERO,
                    unit: Unit::Sfu,
                });
            }
        }
    }

    /// Snapshot of the device counters, for per-step deltas.
    fn counters_snapshot(&self) -> SimStats {
        SimStats {
            total_cycles: Cycles::ZERO,
            hbm: *self.hbm.counters(),
            ocm_read_bytes: 0,
            ocm_write_bytes: 0,
            mpe: *self.mpe.counters(),
            sfu: *self.sfu.counters(),
            dma_busy_cycles: self.dma_rd.counters().busy_cycles * self.cfg.read_dma.channels as u64
                + self.dma_wr.counters().busy_cycles * self.cfg.write_dma.channels as u64,
            kernel_launches: self.launches,
            alloc_stalls: self.stalls,
        }
    }

    /// Runs one decode step for `token` at `pos`.
    pub fn decode_step(&mut self, token: u32, pos: usize) -> StepResult {
        self.run_chunk(&[token], pos)
    }

    /// Processes a chunk of consecutive prompt tokens starting at
    /// `start_pos` in one device pass (chunked prefill — an extension
    /// beyond the paper; see DESIGN.md). Weight streams are amortized over
    /// the chunk, so prefill cost grows sub-linearly in chunk length.
    /// Returns the logits after the **last** token of the chunk.
    pub fn prefill_chunk(&mut self, tokens: &[u32], start_pos: usize) -> StepResult {
        self.run_chunk(tokens, start_pos)
    }

    /// Schedules every kernel for a pass over `positions` (a contiguous
    /// prefill chunk or one position per batched sequence) and returns the
    /// makespan plus on-chip read/write byte counts.
    fn timing_pass(&mut self, positions: &[usize]) -> (Cycles, u64, u64) {
        let _g = tel::span("engine", "timing_pass").arg("batch", positions.len() as i64);
        let batch = positions.len() as u64;
        let mut ocm_read = 0u64;
        let mut ocm_write = 0u64;
        // Batched locally so the registry lock is taken once per pass.
        let mut fusion_hits = 0u64;
        let mut ocm_hits = 0u64;
        let mut tl = Timeline::new(N_RESOURCES);
        let pipe = PipelineConfig {
            streamed: self.opt.stream_parallel,
            depth: self.cfg.double_buffer_depth,
            launch: self.cfg.launch_overhead,
            streamed_launch: self.cfg.streamed_launch_overhead,
        };
        // When each materialized value becomes available.
        let mut avail: Vec<Cycles> = vec![Cycles::ZERO; self.graph.values.len()];
        // In the naive host loop every kernel strictly follows its
        // predecessor; the streaming runtime enqueues ahead.
        let mut prev_kernel_end = Cycles::ZERO;

        let kernels = self.schedule.kernels.clone();
        for kernel in &kernels {
            self.launches += 1;
            if kernel.ops.len() > 1 {
                fusion_hits += 1;
            }
            // External activation inputs: availability + load cost (one
            // activation instance per chunk position).
            let mut compute_ready = Cycles::ZERO;
            let mut extra_read = Cycles::ZERO; // HBM activation loads
            let mut read_ready = Cycles::ZERO;
            let produced_here: std::collections::HashSet<ValueId> = kernel
                .ops
                .iter()
                .flat_map(|&oi| self.graph.ops[oi].outputs.iter().copied())
                .collect();
            let mut external_inputs: Vec<ValueId> = Vec::new();
            for &oi in &kernel.ops {
                for &inp in &self.graph.ops[oi].inputs {
                    if !produced_here.contains(&inp) && !external_inputs.contains(&inp) {
                        external_inputs.push(inp);
                    }
                }
            }
            for &inp in &external_inputs {
                compute_ready = compute_ready.max(avail[inp.0]);
                let bytes = self.graph.values[inp.0].bytes() * batch;
                match self.plan.placement(inp) {
                    Placement::Hbm => {
                        extra_read += self.dma_rd.transfer(&mut self.hbm, bytes);
                        read_ready = read_ready.max(avail[inp.0]);
                    }
                    Placement::Ocm(_) => {
                        ocm_read += bytes;
                        ocm_hits += 1;
                    }
                    Placement::Internal => {}
                }
            }

            // Tiles for the member ops.
            let mut tiles: Vec<TileCost> = Vec::new();
            if extra_read > Cycles::ZERO {
                tiles.push(TileCost {
                    read: extra_read,
                    compute: Cycles::ZERO,
                    write: Cycles::ZERO,
                    unit: Unit::Sfu,
                });
            }
            for &oi in &kernel.ops {
                self.op_tiles(oi, positions, &mut tiles);
            }

            // Materialized outputs: placement costs.
            let mut out_write = Cycles::ZERO;
            for &oi in &kernel.ops {
                for &out in &self.graph.ops[oi].outputs {
                    let bytes = self.graph.values[out.0].bytes() * batch;
                    match self.plan.placement(out) {
                        Placement::Hbm => {
                            out_write += self.dma_wr.transfer(&mut self.hbm, bytes);
                            if !self.opt.memory_reuse {
                                self.stalls += 1;
                                // Allocation bookkeeping stalls the host
                                // before the transfer can be enqueued.
                                out_write += self.cfg.alloc_stall;
                            }
                        }
                        Placement::Ocm(_) => {
                            ocm_write += bytes;
                        }
                        Placement::Internal => {}
                    }
                }
            }
            if out_write > Cycles::ZERO {
                tiles.push(TileCost {
                    read: Cycles::ZERO,
                    compute: Cycles::ZERO,
                    write: out_write,
                    unit: Unit::Sfu,
                });
            }

            let host_ready = if self.opt.stream_parallel {
                Cycles::ZERO
            } else {
                prev_kernel_end
            };
            let timing = schedule_kernel(
                &mut tl,
                self.trace.as_mut(),
                &pipe,
                host_ready,
                read_ready,
                compute_ready,
                &tiles,
                &kernel.label,
            );
            prev_kernel_end = timing.outputs_ready;
            for &oi in &kernel.ops {
                for &out in &self.graph.ops[oi].outputs {
                    avail[out.0] = timing.outputs_ready;
                }
            }
        }
        tel::metrics::counter_add("accel.fusion_kernel_hits", fusion_hits);
        tel::metrics::counter_add("accel.memplan_ocm_hits", ocm_hits);
        (tl.makespan(), ocm_read, ocm_write)
    }

    /// Builds the per-step [`SimStats`] from a counter snapshot taken
    /// before the step.
    fn step_stats(
        &self,
        before: &SimStats,
        cycles: Cycles,
        ocm_read: u64,
        ocm_write: u64,
    ) -> SimStats {
        let after = self.counters_snapshot();
        SimStats {
            total_cycles: cycles,
            hbm: speedllm_fpga_sim::hbm::HbmCounters {
                read_bytes: after.hbm.read_bytes - before.hbm.read_bytes,
                write_bytes: after.hbm.write_bytes - before.hbm.write_bytes,
                read_transfers: after.hbm.read_transfers - before.hbm.read_transfers,
                write_transfers: after.hbm.write_transfers - before.hbm.write_transfers,
            },
            ocm_read_bytes: ocm_read,
            ocm_write_bytes: ocm_write,
            mpe: speedllm_fpga_sim::mpe::MpeCounters {
                macs: after.mpe.macs - before.mpe.macs,
                busy_cycles: after.mpe.busy_cycles - before.mpe.busy_cycles,
                tiles: after.mpe.tiles - before.mpe.tiles,
            },
            sfu: speedllm_fpga_sim::sfu::SfuCounters {
                elements: after.sfu.elements - before.sfu.elements,
                busy_cycles: after.sfu.busy_cycles - before.sfu.busy_cycles,
                ops: after.sfu.ops - before.sfu.ops,
            },
            dma_busy_cycles: after.dma_busy_cycles - before.dma_busy_cycles,
            kernel_launches: after.kernel_launches - before.kernel_launches,
            alloc_stalls: after.alloc_stalls - before.alloc_stalls,
        }
    }

    /// Decodes one token for each of several **independent sequences** in a
    /// single device pass (batched serving — an extension beyond the
    /// paper). Weight streams are shared across the batch exactly as in
    /// chunked prefill; each sequence attends to its own context. Returns
    /// one logit vector per sequence, in order.
    ///
    /// # Panics
    /// Panics on an empty batch, a batch larger than the staging limit
    /// (64), mismatched lengths, or any sequence at its context limit.
    pub fn decode_batch(
        &mut self,
        seqs: &mut [&mut SequenceState],
        tokens: &[u32],
    ) -> (Vec<Vec<f32>>, StepResult) {
        let c = self.graph.config;
        assert!(!seqs.is_empty(), "empty batch");
        assert_eq!(seqs.len(), tokens.len(), "one token per sequence");
        assert!(
            seqs.len() <= 64,
            "batch of {} exceeds the staging limit (64)",
            seqs.len()
        );
        let positions: Vec<usize> = seqs.iter().map(|s| s.context_len()).collect();
        for (&pos, &tok) in positions.iter().zip(tokens) {
            assert!(pos < c.seq_len, "sequence at context limit {pos}");
            assert!((tok as usize) < c.vocab_size, "token {tok} out of vocab");
        }
        let before = self.counters_snapshot();

        // Functional pass, sequence by sequence.
        let mut all_logits = Vec::with_capacity(seqs.len());
        for (i, seq) in seqs.iter_mut().enumerate() {
            for v in &mut seq.values {
                *v = None;
            }
            for oi in 0..self.graph.ops.len() {
                Self::exec_op(
                    &self.graph,
                    &self.weights,
                    &mut self.quant,
                    &self.cfg,
                    &self.opt,
                    seq,
                    self.paged.as_mut(),
                    oi,
                    tokens[i],
                    positions[i],
                );
            }
            all_logits.push(seq.value(self.graph.output()).to_vec());
        }

        // Timing pass over the whole batch (weights streamed once).
        let (cycles, ocm_read, ocm_write) = self.timing_pass(&positions);
        let stats = self.step_stats(&before, cycles, ocm_read, ocm_write);
        if tel::enabled() {
            // Same batched-GEMM accounting as the CPU path (`cpu.gemm_*`):
            // one device pass streams the dense weights once for the whole
            // batch, so bytes-per-token falls with the batch width.
            tel::metrics::counter_add("accel.gemm_weight_bytes", self.gemm_stream_bytes());
            tel::metrics::counter_add("accel.gemm_tokens", seqs.len() as u64);
            tel::metrics::gauge_set("accel.gemm_batch_width", seqs.len() as f64);
        }
        let logits = all_logits.last().cloned().unwrap_or_default();
        (
            all_logits,
            StepResult {
                logits,
                cycles,
                stats,
            },
        )
    }

    /// One **mixed** device pass over several independent sequences, each
    /// contributing a *run* of one or more consecutive tokens: a decode
    /// step is a run of length 1, a prefill chunk a run of its chunk
    /// length (Sarathi-style unified batching — see DESIGN.md §14).
    /// Weight streams are shared across every row of every run in the
    /// timing model, exactly as in [`Engine::decode_batch`]; the
    /// functional pass stays token-sequential per sequence, so logits are
    /// bit-identical to running each run through
    /// [`Engine::prefill_chunk_seq`] / [`Engine::decode_batch`] alone.
    /// Returns the logits after the **last** token of each run, in order.
    ///
    /// # Panics
    /// Panics on an empty batch, an empty run, total rows above the
    /// staging limit (64), a run that does not extend its sequence
    /// contiguously, positions outside the context window, or tokens out
    /// of vocabulary.
    pub fn forward_mixed(
        &mut self,
        seqs: &mut [&mut SequenceState],
        runs: &[&[u32]],
    ) -> (Vec<Vec<f32>>, StepResult) {
        let c = self.graph.config;
        assert!(!seqs.is_empty(), "empty batch");
        assert_eq!(seqs.len(), runs.len(), "one token run per sequence");
        let rows: usize = runs.iter().map(|r| r.len()).sum();
        assert!(
            rows <= 64,
            "mixed batch of {rows} rows exceeds the staging limit (64)"
        );
        let mut positions = Vec::with_capacity(rows);
        for (seq, run) in seqs.iter().zip(runs) {
            assert!(!run.is_empty(), "empty run");
            let start = seq.context_len();
            let last = start + run.len() - 1;
            assert!(
                last < c.seq_len,
                "pos {last} outside context window {}",
                c.seq_len
            );
            for &t in *run {
                assert!((t as usize) < c.vocab_size, "token {t} out of vocab");
            }
            positions.extend(start..=last);
        }
        let before = self.counters_snapshot();

        // Functional pass, sequence by sequence, token-sequential inside
        // each run (causally exact through KvAppend program order).
        let mut all_logits = Vec::with_capacity(seqs.len());
        for (seq, run) in seqs.iter_mut().zip(runs) {
            let start = seq.context_len();
            all_logits.push(Self::exec_chunk(
                &self.graph,
                &self.weights,
                &mut self.quant,
                &self.cfg,
                &self.opt,
                seq,
                self.paged.as_mut(),
                run,
                start,
            ));
        }

        // One timing pass over every row of every run: the device streams
        // the dense weights once for the whole mixed tick.
        let (cycles, ocm_read, ocm_write) = self.timing_pass(&positions);
        let stats = self.step_stats(&before, cycles, ocm_read, ocm_write);
        if tel::enabled() {
            tel::metrics::counter_add("accel.gemm_weight_bytes", self.gemm_stream_bytes());
            tel::metrics::counter_add("accel.gemm_tokens", rows as u64);
            tel::metrics::gauge_set("accel.gemm_batch_width", rows as f64);
        }
        let logits = all_logits.last().cloned().unwrap_or_default();
        (
            all_logits,
            StepResult {
                logits,
                cycles,
                stats,
            },
        )
    }

    /// The speculative **verification** pass: like
    /// [`Engine::forward_mixed`], one device pass carries every run row,
    /// but the logits of **every** token are collected — sequence `i`'s
    /// entry is row-major `[runs[i].len() * vocab]`. One verify pass over
    /// a pending token plus K draft proposals streams the dense weights
    /// once where K+1 sequential decode steps would stream them K+1
    /// times; the single [`Engine::timing_pass`] over all rows is what
    /// models that ~K× weight-traffic cut per accepted run.
    ///
    /// Functionally token-sequential per sequence, so each row's logits
    /// are bit-identical to decoding that prefix through
    /// [`Engine::decode_batch`] — the property the speculative
    /// equivalence suite pins.
    ///
    /// # Panics
    /// Same conditions as [`Engine::forward_mixed`].
    pub fn verify_batch(
        &mut self,
        seqs: &mut [&mut SequenceState],
        runs: &[&[u32]],
    ) -> (Vec<Vec<f32>>, StepResult) {
        let c = self.graph.config;
        assert!(!seqs.is_empty(), "empty batch");
        assert_eq!(seqs.len(), runs.len(), "one token run per sequence");
        let rows: usize = runs.iter().map(|r| r.len()).sum();
        assert!(
            rows <= 64,
            "mixed batch of {rows} rows exceeds the staging limit (64)"
        );
        let mut positions = Vec::with_capacity(rows);
        for (seq, run) in seqs.iter().zip(runs) {
            assert!(!run.is_empty(), "empty run");
            let start = seq.context_len();
            let last = start + run.len() - 1;
            assert!(
                last < c.seq_len,
                "pos {last} outside context window {}",
                c.seq_len
            );
            for &t in *run {
                assert!((t as usize) < c.vocab_size, "token {t} out of vocab");
            }
            positions.extend(start..=last);
        }
        let before = self.counters_snapshot();

        // Functional pass: token-sequential per sequence (causally exact
        // through KvAppend program order), keeping every row's logits.
        let mut all_logits = Vec::with_capacity(seqs.len());
        for (seq, run) in seqs.iter_mut().zip(runs) {
            let start = seq.context_len();
            let mut seq_logits = Vec::with_capacity(run.len() * c.vocab_size);
            for (i, &tok) in run.iter().enumerate() {
                for v in &mut seq.values {
                    *v = None;
                }
                for oi in 0..self.graph.ops.len() {
                    Self::exec_op(
                        &self.graph,
                        &self.weights,
                        &mut self.quant,
                        &self.cfg,
                        &self.opt,
                        seq,
                        self.paged.as_mut(),
                        oi,
                        tok,
                        start + i,
                    );
                }
                seq_logits.extend_from_slice(seq.value(self.graph.output()));
            }
            all_logits.push(seq_logits);
        }

        // One timing pass over every row: the device streams the dense
        // weights once for the whole verify tick.
        let (cycles, ocm_read, ocm_write) = self.timing_pass(&positions);
        let stats = self.step_stats(&before, cycles, ocm_read, ocm_write);
        if tel::enabled() {
            tel::metrics::counter_add("accel.gemm_weight_bytes", self.gemm_stream_bytes());
            tel::metrics::counter_add("accel.gemm_tokens", rows as u64);
            tel::metrics::gauge_set("accel.gemm_batch_width", rows as f64);
        }
        let logits = all_logits
            .last()
            .map(|l| l[l.len() - c.vocab_size..].to_vec())
            .unwrap_or_default();
        (
            all_logits,
            StepResult {
                logits,
                cycles,
                stats,
            },
        )
    }

    /// Validates a chunk against the staging limit, context window, and
    /// vocabulary; returns the positions the chunk occupies.
    fn check_chunk(
        c: &speedllm_llama::config::ModelConfig,
        tokens: &[u32],
        start_pos: usize,
    ) -> Vec<usize> {
        assert!(!tokens.is_empty(), "empty chunk");
        assert!(
            tokens.len() <= 64,
            "chunk of {} exceeds the on-chip staging limit (64)",
            tokens.len()
        );
        let last_pos = start_pos + tokens.len() - 1;
        assert!(
            last_pos < c.seq_len,
            "pos {last_pos} outside context window {}",
            c.seq_len
        );
        for &t in tokens {
            assert!((t as usize) < c.vocab_size, "token {t} out of vocab");
        }
        (start_pos..=last_pos).collect()
    }

    /// Functional pass over a chunk: token-sequential, op order (causally
    /// exact; within a chunk later tokens attend to earlier ones through
    /// the KV cache, which KvAppend updates in program order). Returns the
    /// logits after the last token.
    #[allow(clippy::too_many_arguments)]
    fn exec_chunk(
        graph: &Graph,
        weights: &TransformerWeights,
        quant: &mut HashMap<WeightRef, QuantMatrix>,
        cfg: &AccelConfig,
        opt: &OptConfig,
        seq: &mut SequenceState,
        mut arena: Option<&mut PagedKvArena>,
        tokens: &[u32],
        start_pos: usize,
    ) -> Vec<f32> {
        for (i, &tok) in tokens.iter().enumerate() {
            for v in &mut seq.values {
                *v = None;
            }
            for oi in 0..graph.ops.len() {
                Self::exec_op(
                    graph,
                    weights,
                    quant,
                    cfg,
                    opt,
                    seq,
                    arena.as_deref_mut(),
                    oi,
                    tok,
                    start_pos + i,
                );
            }
        }
        seq.value(graph.output()).to_vec()
    }

    /// [`Engine::prefill_chunk`] against an **external** sequence — the
    /// batched-serving entry point. A scheduler that owns a pool of
    /// [`SequenceState`]s prefills each newly admitted request through
    /// here, then interleaves them with [`Engine::decode_batch`]. The
    /// functional pass is identical to the default-sequence path, so the
    /// logits (and any tokens sampled from them) match a single-tenant run
    /// exactly.
    ///
    /// # Panics
    /// Same conditions as [`Engine::prefill_chunk`], plus a sequence whose
    /// context length does not equal `start_pos` (the chunk must extend the
    /// sequence contiguously).
    pub fn prefill_chunk_seq(
        &mut self,
        seq: &mut SequenceState,
        tokens: &[u32],
        start_pos: usize,
    ) -> StepResult {
        assert_eq!(
            seq.context_len(),
            start_pos,
            "chunk must extend the sequence contiguously"
        );
        let positions = Self::check_chunk(&self.graph.config, tokens, start_pos);
        let before = self.counters_snapshot();
        let logits = Self::exec_chunk(
            &self.graph,
            &self.weights,
            &mut self.quant,
            &self.cfg,
            &self.opt,
            seq,
            self.paged.as_mut(),
            tokens,
            start_pos,
        );
        let (cycles, ocm_read, ocm_write) = self.timing_pass(&positions);
        let stats = self.step_stats(&before, cycles, ocm_read, ocm_write);
        StepResult {
            logits,
            cycles,
            stats,
        }
    }

    fn run_chunk(&mut self, tokens: &[u32], start_pos: usize) -> StepResult {
        let positions = Self::check_chunk(&self.graph.config, tokens, start_pos);
        let before = self.counters_snapshot();
        let logits = Self::exec_chunk(
            &self.graph,
            &self.weights,
            &mut self.quant,
            &self.cfg,
            &self.opt,
            &mut self.seq,
            self.paged.as_mut(),
            tokens,
            start_pos,
        );
        let (cycles, ocm_read, ocm_write) = self.timing_pass(&positions);
        let stats = self.step_stats(&before, cycles, ocm_read, ocm_write);
        StepResult {
            logits,
            cycles,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use speedllm_llama::config::ModelConfig;
    use speedllm_llama::forward::Transformer;

    fn engine(opt: OptConfig) -> Engine {
        let w = Arc::new(TransformerWeights::synthetic(ModelConfig::test_tiny(), 42));
        Engine::new(w, opt).expect("engine must build")
    }

    fn max_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .fold(0.0f32, |m, (x, y)| m.max((x - y).abs()))
    }

    #[test]
    fn all_paper_variants_fit_the_device() {
        for (_, opt) in OptConfig::paper_variants() {
            AccelConfig::for_opt(&opt)
                .validate()
                .expect("must fit U280");
        }
    }

    #[test]
    fn logits_match_reference_for_every_variant() {
        let weights = TransformerWeights::synthetic(ModelConfig::test_tiny(), 42);
        let mut reference = Transformer::new(weights.clone());
        let mut engines: Vec<Engine> = OptConfig::paper_variants()
            .into_iter()
            .map(|(_, opt)| Engine::new(Arc::new(weights.clone()), opt).unwrap())
            .collect();
        for pos in 0..5 {
            let token = (pos * 7 + 3) as u32;
            let expected = reference.forward(token, pos).to_vec();
            for e in &mut engines {
                let got = e.decode_step(token, pos);
                assert!(
                    max_diff(&expected, &got.logits) < 1e-4,
                    "{} diverged at pos {pos}",
                    e.opt().short_name()
                );
            }
        }
    }

    #[test]
    fn int8_logits_are_close_to_reference() {
        let weights = TransformerWeights::synthetic(ModelConfig::test_tiny(), 42);
        let mut reference = Transformer::new(weights.clone());
        let mut e = Engine::new(Arc::new(weights), OptConfig::full_int8()).unwrap();
        let expected = reference.forward(3, 0).to_vec();
        let got = e.decode_step(3, 0);
        // Quantized arithmetic: looser tolerance, but same ballpark.
        assert!(max_diff(&expected, &got.logits) < 0.15);
    }

    #[test]
    fn int4_logits_are_close_to_reference_and_cpu_int4() {
        let weights = TransformerWeights::synthetic(ModelConfig::test_tiny(), 42);
        let mut reference = Transformer::new(weights.clone());
        let mut e = Engine::new(Arc::new(weights.clone()), OptConfig::full_int4()).unwrap();
        let expected = reference.forward(3, 0).to_vec();
        let got = e.decode_step(3, 0);
        // 4-bit weights: looser still, but same ballpark.
        assert!(max_diff(&expected, &got.logits) < 0.6);
        // And bit-identical to the CPU fused dequant path — both stream the
        // same Q4_0 payload through the same accumulation order.
        let mut cpu = Transformer::new(weights);
        cpu.set_quant_mode(speedllm_llama::quant::QuantMode::Int4);
        assert_eq!(cpu.forward(3, 0).to_vec(), got.logits);
    }

    #[test]
    fn quantized_weight_traffic_is_compressed() {
        let mut f32e = engine(OptConfig::full());
        let mut i8e = engine(OptConfig::full_int8());
        let mut i4e = engine(OptConfig::full_int4());
        let rf = f32e.decode_step(0, 0).stats.hbm.read_bytes;
        let r8 = i8e.decode_step(0, 0).stats.hbm.read_bytes;
        let r4 = i4e.decode_step(0, 0).stats.hbm.read_bytes;
        // Weight reads dominate a decode step; int8 should cut the stream
        // to well under ⅓ of f32, and int4 below int8.
        assert!(r8 * 3 < rf, "int8 {r8} vs f32 {rf}");
        assert!(r4 < r8, "int4 {r4} vs int8 {r8}");
    }

    #[test]
    fn full_is_substantially_faster_than_unoptimized() {
        let mut full = engine(OptConfig::full());
        let mut unopt = engine(OptConfig::unoptimized());
        let cf = full.decode_step(1, 0).cycles;
        let cu = unopt.decode_step(1, 0).cycles;
        assert!(
            cu.0 > 2 * cf.0,
            "expected a large speedup, got full={cf} unopt={cu}"
        );
    }

    #[test]
    fn weight_traffic_matches_model_size() {
        let cfg = ModelConfig::test_tiny();
        let mut e = engine(OptConfig::full());
        let r = e.decode_step(0, 0);
        // Every matmul weight is streamed once per token; embeddings and
        // norms are small. HBM reads should be within 30% of param bytes
        // (the vocab-sized classifier dominates tiny configs).
        let weight_bytes = cfg.weight_bytes(4) as f64;
        let read = r.stats.hbm.read_bytes as f64;
        assert!(
            read > 0.6 * weight_bytes && read < 1.6 * weight_bytes,
            "read {read} vs weights {weight_bytes}"
        );
    }

    #[test]
    fn alloc_stalls_only_without_reuse() {
        let mut with = engine(OptConfig::full());
        let mut without = engine(OptConfig::no_reuse());
        assert_eq!(with.decode_step(0, 0).stats.alloc_stalls, 0);
        assert!(without.decode_step(0, 0).stats.alloc_stalls > 0);
    }

    #[test]
    fn launches_shrink_with_fusion() {
        let mut fused = engine(OptConfig::full());
        let mut unfused = engine(OptConfig::no_fuse());
        let lf = fused.decode_step(0, 0).stats.kernel_launches;
        let lu = unfused.decode_step(0, 0).stats.kernel_launches;
        assert!(lf * 2 < lu, "fused {lf} vs unfused {lu}");
    }

    #[test]
    fn attention_cost_grows_with_position() {
        let mut e = engine(OptConfig::full());
        let c0 = e.decode_step(1, 0).cycles;
        for pos in 1..8 {
            e.decode_step(1, pos);
        }
        let c8 = e.decode_step(1, 8).cycles;
        assert!(c8 >= c0, "KV paging must not shrink: {c0} -> {c8}");
        // And HBM read traffic grows with context.
        let mut e2 = engine(OptConfig::full());
        let r0 = e2.decode_step(1, 0).stats.hbm.read_bytes;
        let r1 = e2.decode_step(1, 1).stats.hbm.read_bytes;
        assert!(r1 > r0);
    }

    #[test]
    fn hbm_activation_traffic_only_without_reuse() {
        let mut with = engine(OptConfig::full());
        let mut without = engine(OptConfig::no_reuse());
        let sw = with.decode_step(0, 0).stats;
        let so = without.decode_step(0, 0).stats;
        // Without reuse, extra HBM writes appear (activations round-trip).
        assert!(so.hbm.write_bytes > sw.hbm.write_bytes);
        // With reuse, on-chip traffic appears instead.
        assert!(sw.ocm_read_bytes > 0 && sw.ocm_write_bytes > 0);
    }

    #[test]
    fn energy_is_positive_and_unopt_less_efficient() {
        let mut full = engine(OptConfig::full());
        let mut unopt = engine(OptConfig::unoptimized());
        let rf = full.decode_step(1, 0);
        let ru = unopt.decode_step(1, 0);
        let ef = full.power_model().energy(&rf.stats).total_j();
        let eu = unopt.power_model().energy(&ru.stats).total_j();
        assert!(ef > 0.0 && eu > ef, "full {ef} J vs unopt {eu} J");
    }

    #[test]
    fn trace_capture_roundtrip() {
        let mut e = engine(OptConfig::full());
        e.capture_trace(256);
        e.decode_step(0, 0);
        let trace = e.take_trace().expect("trace captured");
        assert!(!trace.events().is_empty());
        assert!(e.take_trace().is_none());
    }

    #[test]
    fn reset_allows_replay() {
        let mut e = engine(OptConfig::full());
        let a = e.decode_step(5, 0);
        e.reset();
        let b = e.decode_step(5, 0);
        assert_eq!(a.logits, b.logits);
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    #[should_panic(expected = "outside context window")]
    fn pos_overflow_panics() {
        let mut e = engine(OptConfig::full());
        e.decode_step(0, 1000);
    }

    #[test]
    fn chunked_prefill_matches_token_at_a_time_logits() {
        let weights = Arc::new(TransformerWeights::synthetic(ModelConfig::test_tiny(), 42));
        let tokens: Vec<u32> = vec![3, 9, 14, 27, 5, 61, 2, 40];
        let mut one = Engine::new(Arc::clone(&weights), OptConfig::full()).unwrap();
        let mut last = Vec::new();
        for (pos, &t) in tokens.iter().enumerate() {
            last = one.decode_step(t, pos).logits;
        }
        let mut chunked = Engine::new(weights, OptConfig::full()).unwrap();
        let r = chunked.prefill_chunk(&tokens, 0);
        let d = last
            .iter()
            .zip(&r.logits)
            .fold(0.0f32, |m, (a, b)| m.max((a - b).abs()));
        assert!(d < 1e-5, "chunked prefill diverged by {d}");
        // And the KV cache is equally advanced.
        assert_eq!(chunked.context_len(), tokens.len());
    }

    #[test]
    fn chunked_prefill_is_faster_and_reads_less() {
        let weights = Arc::new(TransformerWeights::synthetic(ModelConfig::stories260k(), 7));
        let tokens: Vec<u32> = (0..16).map(|i| 10 + i).collect();
        let mut one = Engine::new(Arc::clone(&weights), OptConfig::full()).unwrap();
        let mut cycles_one = 0u64;
        let mut read_one = 0u64;
        for (pos, &t) in tokens.iter().enumerate() {
            let r = one.decode_step(t, pos);
            cycles_one += r.cycles.0;
            read_one += r.stats.hbm.read_bytes;
        }
        let mut chunked = Engine::new(weights, OptConfig::full()).unwrap();
        let r = chunked.prefill_chunk(&tokens, 0);
        // stories260K is compute-bound, so the wall-clock win is modest —
        // the weight-stream amortization is the strong claim (reads drop
        // nearly 16x for a 16-token chunk; only KV paging still scales).
        assert!(
            (r.cycles.0 as f64) < 0.8 * cycles_one as f64,
            "chunked {} vs token-at-a-time {}",
            r.cycles.0,
            cycles_one
        );
        assert!(
            r.stats.hbm.read_bytes * 5 < read_one,
            "weight stream must be amortized: {} vs {}",
            r.stats.hbm.read_bytes,
            read_one
        );
    }

    #[test]
    #[should_panic(expected = "empty chunk")]
    fn empty_chunk_panics() {
        let mut e = engine(OptConfig::full());
        e.prefill_chunk(&[], 0);
    }

    #[test]
    fn functional_dataflow_is_bit_identical() {
        let weights = Arc::new(TransformerWeights::synthetic(ModelConfig::stories260k(), 3));
        let mut serial = Engine::new(Arc::clone(&weights), OptConfig::full()).unwrap();
        let mut cfg = AccelConfig::for_opt(&OptConfig::full());
        cfg.functional_dataflow = true;
        let mut threaded = Engine::with_config(weights, OptConfig::full(), cfg).unwrap();
        for pos in 0..3 {
            let a = serial.decode_step(11, pos);
            let b = threaded.decode_step(11, pos);
            assert_eq!(a.logits, b.logits, "dataflow must be bit-identical");
            assert_eq!(a.cycles, b.cycles, "timing model is unaffected");
        }
    }

    #[test]
    fn decode_batch_matches_independent_sequences() {
        let weights = Arc::new(TransformerWeights::synthetic(ModelConfig::test_tiny(), 42));
        // Reference: three independent engines decoding different histories.
        let mut refs: Vec<Engine> = (0..3)
            .map(|_| Engine::new(Arc::clone(&weights), OptConfig::full()).unwrap())
            .collect();
        let histories: [&[u32]; 3] = [&[1, 5], &[9], &[3, 7, 11]];
        let mut expected = Vec::new();
        for (e, h) in refs.iter_mut().zip(histories) {
            let mut last = Vec::new();
            for (pos, &t) in h.iter().enumerate() {
                last = e.decode_step(t, pos).logits;
            }
            expected.push(last);
        }

        // Batched: one engine, three sequences, advanced in lock-step where
        // possible (ragged histories decoded up-front).
        let mut batch_engine = Engine::new(weights, OptConfig::full()).unwrap();
        let mut s0 = batch_engine.new_sequence();
        let mut s1 = batch_engine.new_sequence();
        let mut s2 = batch_engine.new_sequence();
        // Bring each sequence to one-before-the-end of its history.
        {
            let mut seqs: Vec<(&mut SequenceState, &[u32])> = vec![
                (&mut s0, histories[0]),
                (&mut s1, histories[1]),
                (&mut s2, histories[2]),
            ];
            for (seq, h) in seqs.iter_mut() {
                for (pos, &t) in h[..h.len() - 1].iter().enumerate() {
                    let mut solo = [&mut **seq];
                    batch_engine.decode_batch(&mut solo, &[t]);
                    let _ = pos;
                }
            }
        }
        // Final tokens together, as one batch.
        let finals = [histories[0][1], histories[1][0], histories[2][2]];
        let mut seqs = [&mut s0, &mut s1, &mut s2];
        let (logits, step) = batch_engine.decode_batch(&mut seqs, &finals);
        assert_eq!(logits.len(), 3);
        for (want, got) in expected.iter().zip(&logits) {
            let d = want
                .iter()
                .zip(got)
                .fold(0.0f32, |m, (a, b)| m.max((a - b).abs()));
            assert!(d < 1e-5, "batched sequence diverged by {d}");
        }
        assert!(step.cycles > Cycles::ZERO);
    }

    #[test]
    fn decode_batch_amortizes_weight_reads() {
        let weights = Arc::new(TransformerWeights::synthetic(ModelConfig::stories260k(), 7));
        let mut e = Engine::new(weights, OptConfig::full()).unwrap();
        // Eight fresh sequences, one decode each — batched.
        let mut seqs: Vec<SequenceState> = (0..8).map(|_| e.new_sequence()).collect();
        let mut refs: Vec<&mut SequenceState> = seqs.iter_mut().collect();
        let tokens = [1u32, 2, 3, 4, 5, 6, 7, 8];
        let (_, batched) = e.decode_batch(&mut refs, &tokens);

        // Same eight decodes, one at a time.
        let mut single_cycles = 0u64;
        let mut single_reads = 0u64;
        for &t in &tokens {
            let mut seq = e.new_sequence();
            let mut solo = [&mut seq];
            let (_, r) = e.decode_batch(&mut solo, &[t]);
            single_cycles += r.cycles.0;
            single_reads += r.stats.hbm.read_bytes;
        }
        assert!(
            batched.cycles.0 < single_cycles,
            "batching must win wall-clock"
        );
        assert!(
            batched.stats.hbm.read_bytes * 4 < single_reads,
            "weight stream must be shared: {} vs {}",
            batched.stats.hbm.read_bytes,
            single_reads
        );
    }

    #[test]
    fn int8_kv_cache_reduces_traffic_and_tracks_reference() {
        let weights = Arc::new(TransformerWeights::synthetic(ModelConfig::test_tiny(), 42));
        let mut f32kv = Engine::new(Arc::clone(&weights), OptConfig::full()).unwrap();
        let mut cfg = AccelConfig::for_opt(&OptConfig::full());
        cfg.kv_precision = Precision::Int8;
        let mut i8kv = Engine::with_config(weights, OptConfig::full(), cfg).unwrap();
        let mut read_f32 = 0u64;
        let mut read_i8 = 0u64;
        for pos in 0..8 {
            let a = f32kv.decode_step(5, pos);
            let b = i8kv.decode_step(5, pos);
            read_f32 += a.stats.hbm.read_bytes;
            read_i8 += b.stats.hbm.read_bytes;
            let d = a
                .logits
                .iter()
                .zip(&b.logits)
                .fold(0.0f32, |m, (x, y)| m.max((x - y).abs()));
            assert!(d < 0.05, "int8 KV diverged by {d} at pos {pos}");
        }
        assert!(
            read_i8 < read_f32,
            "int8 KV must read less: {read_i8} vs {read_f32}"
        );
    }

    #[test]
    fn int8_kv_write_traffic_is_quarter() {
        // test_tiny's 8-wide KV rows vanish inside one 64 B burst; use the
        // 32-wide stories260K rows so the precision difference survives
        // padding.
        let weights = Arc::new(TransformerWeights::synthetic(
            ModelConfig::stories260k(),
            42,
        ));
        let mut cfg = AccelConfig::for_opt(&OptConfig::full());
        cfg.kv_precision = Precision::Int8;
        let mut i8kv = Engine::with_config(Arc::clone(&weights), OptConfig::full(), cfg).unwrap();
        let mut f32kv = Engine::new(weights, OptConfig::full()).unwrap();
        let wa = f32kv.decode_step(1, 0).stats.hbm.write_bytes;
        let wb = i8kv.decode_step(1, 0).stats.hbm.write_bytes;
        // KV rows dominate writes under full reuse; Q8_0 is ~0.28x the f32
        // bytes before burst padding, so expect a clear reduction.
        assert!(wb < wa, "int8 KV writes {wb} !< f32 {wa}");
    }

    #[test]
    fn prefill_chunk_seq_matches_default_sequence() {
        let weights = Arc::new(TransformerWeights::synthetic(ModelConfig::test_tiny(), 42));
        let tokens: Vec<u32> = vec![3, 9, 14, 27, 5];
        let mut a = Engine::new(Arc::clone(&weights), OptConfig::full()).unwrap();
        let ra = a.prefill_chunk(&tokens, 0);
        let mut b = Engine::new(weights, OptConfig::full()).unwrap();
        let mut seq = b.new_sequence();
        let rb = b.prefill_chunk_seq(&mut seq, &tokens, 0);
        assert_eq!(ra.logits, rb.logits, "external-sequence prefill diverged");
        assert_eq!(
            ra.cycles, rb.cycles,
            "timing model must not care whose KV it is"
        );
        assert_eq!(seq.context_len(), tokens.len());
        // And the engine's own default sequence was not disturbed.
        assert_eq!(b.context_len(), 0);
    }

    #[test]
    #[should_panic(expected = "contiguously")]
    fn prefill_chunk_seq_rejects_position_gap() {
        let weights = Arc::new(TransformerWeights::synthetic(ModelConfig::test_tiny(), 42));
        let mut e = Engine::new(weights, OptConfig::full()).unwrap();
        let mut seq = e.new_sequence();
        e.prefill_chunk_seq(&mut seq, &[1, 2], 3);
    }

    #[test]
    fn sequence_state_works_as_pool_slot() {
        use speedllm_llama::kv_cache::{KvCachePool, PoolSlot};
        let weights = Arc::new(TransformerWeights::synthetic(ModelConfig::test_tiny(), 42));
        let mut e = Engine::new(Arc::clone(&weights), OptConfig::full()).unwrap();
        let mut pool = KvCachePool::new(2, || e.new_sequence());
        let mut slot = pool.acquire().expect("slot free");
        e.prefill_chunk_seq(slot.state_mut(), &[3, 9], 0);
        assert_eq!(slot.state().slot_len(), 2);
        pool.release(slot);
        // Reused slot must behave exactly like a fresh sequence.
        let mut again = pool.acquire().expect("slot free");
        assert_eq!(again.state().slot_len(), 0);
        let r = e.prefill_chunk_seq(again.state_mut(), &[3, 9], 0);
        let fresh = e.prefill_chunk_seq(&mut e.new_sequence(), &[3, 9], 0);
        assert_eq!(r.logits, fresh.logits, "recycled slot leaked state");
        pool.release(again);
        assert!(pool.all_free());
        assert_eq!(pool.reuse_count(), 1);
    }

    #[test]
    fn paged_sequences_match_flat_bit_for_bit() {
        use speedllm_pagedkv::BlockAllocator;
        let weights = Arc::new(TransformerWeights::synthetic(ModelConfig::test_tiny(), 42));
        let prompt: Vec<u32> = vec![3, 9, 14, 27, 5, 61];
        let decode: Vec<u32> = vec![8, 12, 19];

        // Flat reference.
        let mut flat = Engine::new(Arc::clone(&weights), OptConfig::full()).unwrap();
        let mut fseq = flat.new_sequence();
        let mut flat_logits = vec![flat.prefill_chunk_seq(&mut fseq, &prompt, 0).logits];
        for &t in &decode {
            let (l, _) = flat.decode_batch(&mut [&mut fseq], &[t]);
            flat_logits.push(l.into_iter().next().unwrap());
        }

        // Paged twin: same weights, block-table indirection.
        let bc = BlockConfig {
            block_size: 4,
            n_blocks: 8,
        };
        let mut paged = Engine::new(weights, OptConfig::full()).unwrap();
        paged.enable_paged_kv(bc);
        assert_eq!(paged.paged_block_config(), Some(bc));
        let mut alloc = BlockAllocator::new(bc);
        let mut pseq = paged.new_sequence();
        {
            let table = pseq.block_table_mut().expect("paged sequence");
            let need = (prompt.len() + decode.len()).div_ceil(bc.block_size);
            for _ in 0..need {
                table.push_block(alloc.alloc().unwrap());
            }
        }
        let mut paged_logits = vec![paged.prefill_chunk_seq(&mut pseq, &prompt, 0).logits];
        for &t in &decode {
            let (l, _) = paged.decode_batch(&mut [&mut pseq], &[t]);
            paged_logits.push(l.into_iter().next().unwrap());
        }
        assert_eq!(paged_logits, flat_logits, "block indirection changed math");
        assert_eq!(pseq.context_len(), prompt.len() + decode.len());

        // A second sequence sharing the first full prompt block resumes at
        // the divergence point and still matches a from-scratch flat run.
        let shared_tokens = bc.block_size; // one full block
        let tail: Vec<u32> = vec![40, 22];
        let mut full2: Vec<u32> = prompt[..shared_tokens].to_vec();
        full2.extend(&tail);
        let mut f2 = flat.new_sequence();
        let flat2 = flat.prefill_chunk_seq(&mut f2, &full2, 0).logits;

        let mut p2 = paged.new_sequence();
        {
            let shared_block = pseq.block_table().unwrap().blocks()[0];
            alloc.retain(shared_block);
            let table = p2.block_table_mut().unwrap();
            table.push_block(shared_block);
            table.push_block(alloc.alloc().unwrap());
            table.set_len(shared_tokens); // prefix-hit credit
        }
        assert_eq!(p2.context_len(), shared_tokens);
        let paged2 = paged
            .prefill_chunk_seq(&mut p2, &full2[shared_tokens..], shared_tokens)
            .logits;
        assert_eq!(paged2, flat2, "prefix sharing changed math");
    }

    #[test]
    #[should_panic(expected = "one token per sequence")]
    fn decode_batch_length_mismatch_panics() {
        let weights = Arc::new(TransformerWeights::synthetic(ModelConfig::test_tiny(), 1));
        let mut e = Engine::new(weights, OptConfig::full()).unwrap();
        let mut s0 = e.new_sequence();
        let mut seqs = [&mut s0];
        e.decode_batch(&mut seqs, &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "staging limit")]
    fn oversized_chunk_panics() {
        let weights = Arc::new(TransformerWeights::synthetic(ModelConfig::stories260k(), 7));
        let mut e = Engine::new(weights, OptConfig::full()).unwrap();
        let tokens = vec![1u32; 65];
        e.prefill_chunk(&tokens, 0);
    }
}
