//! Roofline analysis of the accelerator.
//!
//! For a design point, computes the two ceilings — peak MAC throughput and
//! HBM-bandwidth-limited throughput — and places a workload's measured
//! operational intensity on the plot. The decode workload sits far left of
//! the ridge (weights are touched once per token), which is the analytic
//! justification for the paper's focus on memory-side optimizations, and
//! chunked prefill is visible as a rightward shift in intensity.

use speedllm_fpga_sim::cycles::ClockDomain;
use speedllm_fpga_sim::stats::SimStats;

use crate::engine::AccelConfig;

/// The two ceilings of a design point, in MACs/s at a given clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Roofline {
    /// Peak compute throughput, MACs/s.
    pub peak_macs_per_s: f64,
    /// Peak HBM read bandwidth available to the design, bytes/s.
    pub peak_bytes_per_s: f64,
}

impl Roofline {
    /// Builds the roofline for a design point at the given clock.
    #[must_use]
    pub fn of(cfg: &AccelConfig, clock: &ClockDomain) -> Self {
        let peak_macs_per_s = cfg.mpe.macs_per_cycle() as f64 * clock.freq_hz();
        let ch = cfg.read_dma.channels.min(cfg.hbm.channels) as f64;
        let peak_bytes_per_s = ch * cfg.hbm.channel_bytes_per_cycle * clock.freq_hz();
        Self {
            peak_macs_per_s,
            peak_bytes_per_s,
        }
    }

    /// The ridge point: operational intensity (MACs/byte) above which the
    /// design is compute-bound.
    #[must_use]
    pub fn ridge_intensity(&self) -> f64 {
        self.peak_macs_per_s / self.peak_bytes_per_s
    }

    /// Attainable MACs/s at a given operational intensity.
    #[must_use]
    pub fn attainable(&self, intensity: f64) -> f64 {
        (intensity * self.peak_bytes_per_s).min(self.peak_macs_per_s)
    }

    /// Classifies a measured run: its intensity, attainable throughput,
    /// achieved throughput, and whether it is memory-bound.
    #[must_use]
    pub fn place(&self, stats: &SimStats, clock: &ClockDomain) -> RooflinePoint {
        let secs = clock.to_seconds(stats.total_cycles);
        let intensity = stats.arithmetic_intensity();
        let achieved = if secs > 0.0 {
            stats.mpe.macs as f64 / secs
        } else {
            0.0
        };
        RooflinePoint {
            intensity,
            attainable_macs_per_s: self.attainable(intensity),
            achieved_macs_per_s: achieved,
            memory_bound: intensity < self.ridge_intensity(),
        }
    }
}

/// A workload placed on the roofline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RooflinePoint {
    /// Operational intensity, MACs per HBM byte.
    pub intensity: f64,
    /// Attainable throughput at that intensity, MACs/s.
    pub attainable_macs_per_s: f64,
    /// Throughput the run actually achieved, MACs/s.
    pub achieved_macs_per_s: f64,
    /// True when the workload sits left of the ridge.
    pub memory_bound: bool,
}

impl RooflinePoint {
    /// Fraction of the attainable ceiling reached (≤ ~1; scheduling
    /// overheads keep it below 1).
    #[must_use]
    pub fn efficiency(&self) -> f64 {
        if self.attainable_macs_per_s == 0.0 {
            return 0.0;
        }
        self.achieved_macs_per_s / self.attainable_macs_per_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt::OptConfig;
    use crate::runtime::AcceleratedLlm;
    use speedllm_llama::config::ModelConfig;
    use speedllm_llama::sampler::SamplerKind;

    fn clock() -> ClockDomain {
        ClockDomain::U280_KERNEL
    }

    #[test]
    fn ridge_matches_hardware_ratio() {
        let cfg = AccelConfig::for_opt(&OptConfig::full());
        let r = Roofline::of(&cfg, &clock());
        // 512 MACs/cycle over 24ch × 48 B/cycle = 1152 B/cycle.
        let expect = 512.0 / 1152.0;
        assert!((r.ridge_intensity() - expect).abs() < 1e-9);
    }

    #[test]
    fn attainable_is_min_of_ceilings() {
        let cfg = AccelConfig::for_opt(&OptConfig::full());
        let r = Roofline::of(&cfg, &clock());
        assert!(r.attainable(0.01) < r.peak_macs_per_s);
        assert!((r.attainable(1000.0) - r.peak_macs_per_s).abs() < 1.0);
        // Monotone.
        assert!(r.attainable(0.1) <= r.attainable(0.2));
    }

    #[test]
    fn decode_is_memory_bound_and_prefill_chunk_raises_intensity() {
        let cfg = ModelConfig::stories260k();
        let sys = AcceleratedLlm::synthetic(cfg, 42, OptConfig::full()).unwrap();
        let accel = *sys.accel_config();
        let roof = Roofline::of(&accel, &clock());

        // Single-token decode: far left of the ridge.
        let mut s = sys.session(SamplerKind::Argmax, 0);
        let one = s.step(1, 0);
        let p1 = roof.place(&one.stats, &clock());
        assert!(p1.memory_bound, "decode must be memory-bound: {p1:?}");

        // A 16-token chunk raises intensity by ~16x (same weights, 16x
        // MACs).
        let mut s2 = sys.session(SamplerKind::Argmax, 0);
        let tokens: Vec<u32> = (0..16).collect();
        let chunk = s2.engine_mut().prefill_chunk(&tokens, 0);
        let p16 = roof.place(&chunk.stats, &clock());
        assert!(
            p16.intensity > 8.0 * p1.intensity,
            "chunking must raise intensity: {} vs {}",
            p16.intensity,
            p1.intensity
        );
    }

    #[test]
    fn efficiency_is_sane() {
        let cfg = ModelConfig::stories260k();
        let sys = AcceleratedLlm::synthetic(cfg, 42, OptConfig::full()).unwrap();
        let roof = Roofline::of(sys.accel_config(), &clock());
        let mut s = sys.session(SamplerKind::Argmax, 0);
        let step = s.step(1, 0);
        let p = roof.place(&step.stats, &clock());
        assert!(p.efficiency() > 0.05, "efficiency {}", p.efficiency());
        assert!(p.efficiency() < 1.5, "efficiency {}", p.efficiency());
    }
}
