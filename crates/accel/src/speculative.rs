//! Speculative-decoding verification on the simulated accelerator: an
//! [`AccelVerifier`] adapts [`Engine::verify_batch`] to the
//! [`VerifyTarget`] trait, so the same `llama::speculative::SpecSession`
//! that drives the CPU reference drives the device sim — and the
//! equivalence suite can assert both backends emit the identical stream.
//!
//! Timing: each `verify_into` issues **one** mixed device pass over the
//! pending token plus the K draft rows, streaming the dense weights once
//! where sequential decode would stream them K+1 times. The verifier
//! accumulates those [`StepResult`] cycles so callers can convert
//! accepted tokens per cycle into the speculative speedup.

use speedllm_llama::config::ModelConfig;
use speedllm_llama::speculative::VerifyTarget;
use speedllm_pagedkv::BlockAllocator;

use crate::engine::{Engine, SequenceState};
use crate::StepResult;

/// [`VerifyTarget`] over the accelerator sim: one engine, one sequence,
/// and (for paged sequences) the block allocator that owns the arena's
/// free list — rollback releases popped blocks through it, honoring
/// copy-on-write sharing, and NaN-poisons rows that actually freed.
pub struct AccelVerifier<'a> {
    engine: &'a mut Engine,
    seq: &'a mut SequenceState,
    alloc: Option<&'a mut BlockAllocator>,
    /// Device cycles spent in verify passes so far.
    cycles: u64,
    /// Verify passes issued.
    passes: u64,
}

impl<'a> AccelVerifier<'a> {
    /// Verifier for a flat (contiguous-KV) sequence.
    pub fn new(engine: &'a mut Engine, seq: &'a mut SequenceState) -> Self {
        Self {
            engine,
            seq,
            alloc: None,
            cycles: 0,
            passes: 0,
        }
    }

    /// Verifier for a paged sequence: `alloc` receives the blocks a
    /// rollback pops so the free list stays conserved.
    pub fn new_paged(
        engine: &'a mut Engine,
        seq: &'a mut SequenceState,
        alloc: &'a mut BlockAllocator,
    ) -> Self {
        Self {
            engine,
            seq,
            alloc: Some(alloc),
            cycles: 0,
            passes: 0,
        }
    }

    /// Device cycles accumulated across all verify passes.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Number of verify passes issued.
    #[must_use]
    pub fn passes(&self) -> u64 {
        self.passes
    }

    /// Records a pass result from outside the trait path (e.g. a prefill
    /// the caller ran through the engine directly).
    pub fn charge(&mut self, step: &StepResult) {
        self.cycles += step.cycles.0;
    }
}

impl VerifyTarget for AccelVerifier<'_> {
    fn config(&self) -> ModelConfig {
        self.engine.graph().config
    }

    fn context_len(&self) -> usize {
        self.seq.context_len()
    }

    fn verify_into(&mut self, tokens: &[u32], start: usize, out: &mut Vec<f32>) {
        debug_assert_eq!(self.seq.context_len(), start, "run must extend context");
        let mut seqs = [&mut *self.seq];
        let (mut all, step) = self.engine.verify_batch(&mut seqs, &[tokens]);
        self.cycles += step.cycles.0;
        self.passes += 1;
        out.clear();
        *out = all.pop().expect("one sequence in, one logits run out");
    }

    fn truncate(&mut self, len: usize) {
        let popped = self.seq.truncate(len);
        if let Some(alloc) = &mut self.alloc {
            let freed: Vec<_> = popped.into_iter().filter(|&b| alloc.release(b)).collect();
            self.engine.poison_blocks(&freed);
        } else {
            debug_assert!(popped.is_empty(), "flat rollback returns no blocks");
        }
    }
}
