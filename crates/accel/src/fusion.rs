//! Llama-2 operator fusion.
//!
//! Fusion groups the decode graph's ops into **composite kernels**: a
//! kernel is launched once and its member ops stream data to each other
//! through on-fabric FIFOs, so every value produced *and fully consumed
//! inside* one kernel is never materialized in any memory — the
//! "minimizes the intermediate data writes/read between operations" effect
//! the paper claims.
//!
//! The pass is a single forward walk with three boundary rules tuned to the
//! Llama-2 structure (and validated by the tests below):
//!
//! 1. `RmsNorm` starts a new kernel — norms begin the two natural
//!    composites (`norm→QKV→RoPE→KV-append` and `norm→SwiGLU-FFN`).
//! 2. `Attention` is always a kernel of its own (its cost is
//!    context-length dependent and it reads the HBM-resident KV cache).
//! 3. A `MatMul` whose activation input was not produced inside the
//!    current kernel starts a new one (it would otherwise stall the
//!    stream waiting for an external buffer).
//!
//! A kernel also closes when it reaches `max_ops` members (composite
//! datapath depth is bounded on real fabric).

use std::collections::HashSet;

use crate::ir::{Graph, OpKind, ValueId};

/// A composite kernel: indices into [`Graph::ops`], in execution order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Kernel {
    /// Member op indices (contiguous, increasing).
    pub ops: Vec<usize>,
    /// Display label (first member's label, with member count).
    pub label: String,
}

/// A fused (or trivially per-op) execution schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Kernels in launch order.
    pub kernels: Vec<Kernel>,
}

/// Per-value materialization classes induced by a schedule.
#[derive(Debug, Clone)]
pub struct ValueClasses {
    /// Values that live entirely inside one kernel (never materialized).
    pub internal: HashSet<ValueId>,
    /// Values crossing kernel boundaries (must be placed by the memory
    /// planner), with their producing kernel index.
    pub materialized: Vec<(ValueId, usize)>,
}

/// Summary statistics of a fusion outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusionReport {
    /// Kernels in the schedule.
    pub kernels: usize,
    /// Total ops (unchanged by fusion).
    pub ops: usize,
    /// Values eliminated (kept in on-fabric streams).
    pub internal_values: usize,
    /// Values still materialized between kernels.
    pub materialized_values: usize,
}

/// Maximum ops per composite kernel on the shipped design.
pub const MAX_OPS_PER_KERNEL: usize = 8;

/// Builds the execution schedule. With `enabled == false` every op gets
/// its own kernel (the paper's "none fused" variant).
#[must_use]
pub fn fuse(graph: &Graph, enabled: bool) -> Schedule {
    fuse_with_limit(graph, enabled, MAX_OPS_PER_KERNEL)
}

/// [`fuse`] with an explicit composite-depth limit (for ablations).
#[must_use]
pub fn fuse_with_limit(graph: &Graph, enabled: bool, max_ops: usize) -> Schedule {
    assert!(max_ops >= 1, "kernel must hold at least one op");
    if !enabled {
        let kernels = graph
            .ops
            .iter()
            .enumerate()
            .map(|(i, op)| Kernel {
                ops: vec![i],
                label: op.label.clone(),
            })
            .collect();
        return Schedule { kernels };
    }

    let mut kernels: Vec<Kernel> = Vec::new();
    let mut current: Vec<usize> = Vec::new();
    // Values produced by ops already in `current`.
    let mut produced_here: HashSet<ValueId> = HashSet::new();

    let flush =
        |current: &mut Vec<usize>, produced: &mut HashSet<ValueId>, kernels: &mut Vec<Kernel>| {
            if current.is_empty() {
                return;
            }
            let first = &graph.ops[current[0]];
            let label = if current.len() == 1 {
                first.label.clone()
            } else {
                format!("{}+{}", first.label, current.len() - 1)
            };
            kernels.push(Kernel {
                ops: std::mem::take(current),
                label,
            });
            produced.clear();
        };

    for (i, op) in graph.ops.iter().enumerate() {
        let starts_new = match op.kind {
            OpKind::RmsNorm | OpKind::Attention { .. } => true,
            OpKind::MatMul { .. } => !op.inputs.iter().all(|v| produced_here.contains(v)),
            _ => false,
        } || current.len() >= max_ops;
        if starts_new {
            flush(&mut current, &mut produced_here, &mut kernels);
        }
        current.push(i);
        produced_here.extend(op.outputs.iter().copied());
        // Attention never accepts co-tenants after it either.
        if matches!(op.kind, OpKind::Attention { .. }) {
            flush(&mut current, &mut produced_here, &mut kernels);
        }
    }
    flush(&mut current, &mut produced_here, &mut kernels);
    Schedule { kernels }
}

impl Schedule {
    /// Total ops across kernels.
    #[must_use]
    pub fn op_count(&self) -> usize {
        self.kernels.iter().map(|k| k.ops.len()).sum()
    }

    /// Index of the kernel containing op `op_idx`.
    #[must_use]
    pub fn kernel_of(&self, op_idx: usize) -> usize {
        self.kernels
            .iter()
            .position(|k| k.ops.contains(&op_idx))
            .expect("op not in any kernel")
    }

    /// Classifies every value as internal (fused away) or materialized.
    #[must_use]
    pub fn classify(&self, graph: &Graph) -> ValueClasses {
        // kernel index per op.
        let mut op_kernel = vec![0usize; graph.ops.len()];
        for (ki, k) in self.kernels.iter().enumerate() {
            for &oi in &k.ops {
                op_kernel[oi] = ki;
            }
        }
        let output = graph.output();
        let mut internal = HashSet::new();
        let mut materialized = Vec::new();
        for (oi, op) in graph.ops.iter().enumerate() {
            for &out in &op.outputs {
                let producer_k = op_kernel[oi];
                let consumers = graph.consumers(out);
                let crosses =
                    out == output || consumers.iter().any(|&ci| op_kernel[ci] != producer_k);
                if crosses {
                    materialized.push((out, producer_k));
                } else {
                    internal.insert(out);
                }
            }
        }
        ValueClasses {
            internal,
            materialized,
        }
    }

    /// Summary report.
    #[must_use]
    pub fn report(&self, graph: &Graph) -> FusionReport {
        let classes = self.classify(graph);
        FusionReport {
            kernels: self.kernels.len(),
            ops: self.op_count(),
            internal_values: classes.internal.len(),
            materialized_values: classes.materialized.len(),
        }
    }

    /// Checks that the kernels partition `0..graph.ops.len()` in order.
    pub fn validate(&self, graph: &Graph) -> Result<(), String> {
        let mut expected = 0usize;
        for k in &self.kernels {
            if k.ops.is_empty() {
                return Err("empty kernel".into());
            }
            for &oi in &k.ops {
                if oi != expected {
                    return Err(format!("op {oi} out of order (expected {expected})"));
                }
                expected += 1;
            }
        }
        if expected != graph.ops.len() {
            return Err(format!(
                "schedule covers {expected} of {} ops",
                graph.ops.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::build_decode_graph;
    use speedllm_llama::config::ModelConfig;

    fn graph() -> Graph {
        build_decode_graph(&ModelConfig::test_tiny())
    }

    #[test]
    fn unfused_schedule_is_one_op_per_kernel() {
        let g = graph();
        let s = fuse(&g, false);
        assert_eq!(s.kernels.len(), g.ops.len());
        s.validate(&g).unwrap();
        // Nothing is internal without fusion.
        assert!(s.classify(&g).internal.is_empty());
    }

    #[test]
    fn fused_schedule_partitions_all_ops() {
        let g = graph();
        let s = fuse(&g, true);
        s.validate(&g).unwrap();
        assert_eq!(s.op_count(), g.ops.len());
        assert!(
            s.kernels.len() < g.ops.len() / 2,
            "fusion should merge aggressively"
        );
    }

    #[test]
    fn expected_kernel_structure_per_layer() {
        // test_tiny has 2 layers, 16 ops each + embed + 2 final ops.
        // Expected kernels: embed | per layer: [norm+qkv+rope2+kvappend]
        // [attention] [wo+add] [norm+w1+w3+silu+mul+w2+add] | [norm+cls].
        let g = graph();
        let s = fuse(&g, true);
        let cfg = ModelConfig::test_tiny();
        assert_eq!(s.kernels.len(), 1 + 4 * cfg.n_layers + 1);
        // First layer's QKV kernel has 7 members.
        assert_eq!(s.kernels[1].ops.len(), 7);
        // Attention alone.
        assert_eq!(s.kernels[2].ops.len(), 1);
        // wo + residual.
        assert_eq!(s.kernels[3].ops.len(), 2);
        // FFN composite: norm, w1, w3, silu, mul, w2, add = 7.
        assert_eq!(s.kernels[4].ops.len(), 7);
    }

    #[test]
    fn fusion_eliminates_most_intermediates() {
        let g = graph();
        let fused = fuse(&g, true).report(&g);
        let unfused = fuse(&g, false).report(&g);
        assert_eq!(unfused.internal_values, 0);
        assert!(
            fused.internal_values > fused.materialized_values,
            "fused: {fused:?}"
        );
        assert_eq!(
            fused.internal_values + fused.materialized_values,
            unfused.materialized_values,
            "total value count preserved"
        );
    }

    #[test]
    fn graph_output_always_materialized() {
        let g = graph();
        for enabled in [false, true] {
            let classes = fuse(&g, enabled).classify(&g);
            assert!(classes.materialized.iter().any(|(v, _)| *v == g.output()));
        }
    }

    #[test]
    fn max_ops_limit_respected() {
        let g = graph();
        for limit in [1, 2, 3, 5, 8] {
            let s = fuse_with_limit(&g, true, limit);
            s.validate(&g).unwrap();
            assert!(
                s.kernels.iter().all(|k| k.ops.len() <= limit),
                "limit {limit}"
            );
        }
    }

    #[test]
    fn limit_one_equals_unfused_partitioning() {
        let g = graph();
        let s1 = fuse_with_limit(&g, true, 1);
        assert_eq!(s1.kernels.len(), g.ops.len());
    }

    #[test]
    fn kernel_of_maps_back() {
        let g = graph();
        let s = fuse(&g, true);
        for (ki, k) in s.kernels.iter().enumerate() {
            for &oi in &k.ops {
                assert_eq!(s.kernel_of(oi), ki);
            }
        }
    }

    #[test]
    fn attention_is_always_isolated() {
        let g = graph();
        let s = fuse(&g, true);
        for k in &s.kernels {
            let has_attn = k
                .ops
                .iter()
                .any(|&oi| matches!(g.ops[oi].kind, OpKind::Attention { .. }));
            if has_attn {
                assert_eq!(k.ops.len(), 1, "attention kernel must be solo");
            }
        }
    }

    #[test]
    fn fused_internal_values_have_no_external_consumers() {
        let g = graph();
        let s = fuse(&g, true);
        let classes = s.classify(&g);
        for &v in &classes.internal {
            let producer_op = g.producer(v).unwrap();
            let pk = s.kernel_of(producer_op);
            for ci in g.consumers(v) {
                assert_eq!(s.kernel_of(ci), pk, "internal value {v:?} escapes");
            }
        }
    }
}
