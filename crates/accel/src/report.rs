//! Plain-text table and CSV rendering shared by the reproduction binaries
//! and examples.

/// A simple fixed-width table builder with a CSV escape hatch.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; its length must match the headers.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned text table with a header separator.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                // Right-align numeric-looking cells, left-align the rest.
                let numeric = c
                    .chars()
                    .next()
                    .is_some_and(|ch| ch.is_ascii_digit() || ch == '-')
                    && c.chars()
                        .all(|ch| ch.is_ascii_digit() || ".,x%eE+-".contains(ch));
                if numeric {
                    line.push_str(&format!("{c:>w$}", w = widths[i]));
                } else {
                    line.push_str(&format!("{c:<w$}", w = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders RFC-4180-ish CSV (quotes cells containing separators).
    #[must_use]
    pub fn render_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats seconds adaptively (s / ms / µs).
#[must_use]
pub fn fmt_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} us", s * 1e6)
    }
}

/// Formats bytes adaptively (B / KiB / MiB / GiB).
#[must_use]
pub fn fmt_bytes(b: u64) -> String {
    const KIB: f64 = 1024.0;
    let b = b as f64;
    if b >= KIB * KIB * KIB {
        format!("{:.2} GiB", b / (KIB * KIB * KIB))
    } else if b >= KIB * KIB {
        format!("{:.2} MiB", b / (KIB * KIB))
    } else if b >= KIB {
        format!("{:.2} KiB", b / KIB)
    } else {
        format!("{b:.0} B")
    }
}

/// Formats joules adaptively (J / mJ / µJ).
#[must_use]
pub fn fmt_joules(j: f64) -> String {
    if j >= 1.0 {
        format!("{j:.3} J")
    } else if j >= 1e-3 {
        format!("{:.3} mJ", j * 1e3)
    } else {
        format!("{:.1} uJ", j * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(&["name", "tok/s"]);
        t.row(vec!["full".into(), "123.4".into()]);
        t.row(vec!["unoptimized-long".into(), "7.1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].chars().all(|c| c == '-'));
        // All rows the same width.
        assert_eq!(lines[0].len(), lines[1].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x,y".into(), "he said \"hi\"".into()]);
        let csv = t.render_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(fmt_seconds(2.5), "2.500 s");
        assert_eq!(fmt_seconds(0.0025), "2.500 ms");
        assert_eq!(fmt_seconds(2.5e-6), "2.5 us");
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.00 KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.00 MiB");
        assert_eq!(fmt_joules(0.004), "4.000 mJ");
        assert_eq!(fmt_joules(1.5), "1.500 J");
        assert_eq!(fmt_joules(2e-6), "2.0 uJ");
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new(&["h1"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.render().lines().count(), 2);
    }
}
