//! Host runtime: model + tokenizer + accelerator sessions.
//!
//! [`AcceleratedLlm`] owns the immutable assets (weights, tokenizer, the
//! chosen optimization configuration); [`Session`] wraps one engine
//! instance with a sampler and runs the paper's host loop — tokenize,
//! prefill, decode — while collecting the metrics Fig. 2 reports: total
//! inference latency (host timing function), decode throughput (generated
//! tokens over decode-stage time), and energy.

use std::sync::Arc;

use speedllm_telemetry as tel;

use speedllm_fpga_sim::cycles::{ClockDomain, Cycles};
use speedllm_fpga_sim::power::EnergyBreakdown;
use speedllm_fpga_sim::stats::SimStats;
use speedllm_llama::config::ModelConfig;
use speedllm_llama::sampler::{Sampler, SamplerKind};
use speedllm_llama::tokenizer::{Tokenizer, TOKEN_BOS, TOKEN_EOS};
use speedllm_llama::weights::TransformerWeights;

use crate::engine::{AccelConfig, Engine, EngineError};
use crate::opt::OptConfig;

/// Errors surfaced by the runtime.
#[derive(Debug)]
pub enum RuntimeError {
    /// Engine construction failed (design does not fit the device).
    Engine(EngineError),
    /// The prompt does not fit the model's context window.
    PromptTooLong {
        /// Prompt length in tokens.
        tokens: usize,
        /// Context window.
        seq_len: usize,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Engine(e) => write!(f, "{e}"),
            RuntimeError::PromptTooLong { tokens, seq_len } => {
                write!(
                    f,
                    "prompt of {tokens} tokens exceeds context window {seq_len}"
                )
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<EngineError> for RuntimeError {
    fn from(e: EngineError) -> Self {
        RuntimeError::Engine(e)
    }
}

/// An accelerated model: immutable weights + tokenizer + configuration.
pub struct AcceleratedLlm {
    weights: Arc<TransformerWeights>,
    tokenizer: Arc<Tokenizer>,
    opt: OptConfig,
    accel: AccelConfig,
}

impl AcceleratedLlm {
    /// Wraps existing weights and tokenizer.
    pub fn new(
        weights: TransformerWeights,
        tokenizer: Tokenizer,
        opt: OptConfig,
    ) -> Result<Self, RuntimeError> {
        let accel = AccelConfig::for_opt(&opt);
        // Fail fast if the design point does not fit the device.
        accel
            .validate()
            .map_err(|e| RuntimeError::Engine(EngineError::OverBudget(e)))?;
        Ok(Self {
            weights: Arc::new(weights),
            tokenizer: Arc::new(tokenizer),
            opt,
            accel,
        })
    }

    /// Builds a synthetic model of the given architecture (seeded weights
    /// and vocabulary) — the substitution for the real TinyStories
    /// checkpoint (DESIGN.md §2).
    pub fn synthetic(config: ModelConfig, seed: u64, opt: OptConfig) -> Result<Self, RuntimeError> {
        let weights = TransformerWeights::synthetic(config, seed);
        let tokenizer = Tokenizer::synthetic(config.vocab_size, seed ^ 0x5eed);
        Self::new(weights, tokenizer, opt)
    }

    /// The model architecture.
    #[must_use]
    pub fn config(&self) -> &ModelConfig {
        &self.weights.config
    }

    /// The active optimization selection.
    #[must_use]
    pub fn opt(&self) -> &OptConfig {
        &self.opt
    }

    /// The design point.
    #[must_use]
    pub fn accel_config(&self) -> &AccelConfig {
        &self.accel
    }

    /// Sets the chunked-prefill length for sessions opened afterwards
    /// (1 = paper-faithful token-at-a-time; clamped to 1..=64).
    pub fn set_prefill_chunk(&mut self, chunk: usize) {
        self.accel.prefill_chunk = chunk.clamp(1, 64);
    }

    /// The tokenizer.
    #[must_use]
    pub fn tokenizer(&self) -> &Tokenizer {
        &self.tokenizer
    }

    /// Shared handle to the weights.
    #[must_use]
    pub fn weights(&self) -> &Arc<TransformerWeights> {
        &self.weights
    }

    /// Opens an inference session with the given sampling policy.
    #[must_use]
    pub fn session(&self, sampler: SamplerKind, seed: u64) -> Session {
        let engine = Engine::with_config(Arc::clone(&self.weights), self.opt, self.accel)
            .expect("validated at construction");
        Session {
            engine,
            tokenizer: Arc::clone(&self.tokenizer),
            sampler: Sampler::new(sampler, seed),
        }
    }
}

/// Generated tokens and text of one inference.
#[derive(Debug, Clone)]
pub struct GenerationOutput {
    /// Prompt token ids (BOS included).
    pub prompt_tokens: Vec<u32>,
    /// Generated token ids (EOS excluded).
    pub generated_tokens: Vec<u32>,
    /// Decoded text of the generation.
    pub text: String,
}

/// The paper's metrics for one inference run.
#[derive(Debug, Clone)]
pub struct InferenceReport {
    /// What was generated.
    pub output: GenerationOutput,
    /// Kernel clock used for time conversion.
    pub clock: ClockDomain,
    /// Device cycles spent in prefill.
    pub prefill_cycles: Cycles,
    /// Device cycles spent in decode.
    pub decode_cycles: Cycles,
    /// Per-decode-token cycle counts (latency distribution).
    pub per_token_cycles: Vec<Cycles>,
    /// Aggregated device activity (prefill + decode).
    pub stats: SimStats,
    /// Energy breakdown over the whole inference.
    pub energy: EnergyBreakdown,
}

impl InferenceReport {
    /// Total inference latency in seconds (the paper's latency metric).
    #[must_use]
    pub fn total_latency_s(&self) -> f64 {
        self.clock
            .to_seconds(self.prefill_cycles + self.decode_cycles)
    }

    /// Decode throughput in tokens/s (the paper's throughput metric).
    #[must_use]
    pub fn decode_tokens_per_s(&self) -> f64 {
        let secs = self.clock.to_seconds(self.decode_cycles);
        if secs == 0.0 {
            return 0.0;
        }
        self.output.generated_tokens.len() as f64 / secs
    }

    /// Energy efficiency in tokens per joule (Fig 2(b)'s metric).
    #[must_use]
    pub fn tokens_per_joule(&self) -> f64 {
        let j = self.energy.total_j();
        if j == 0.0 {
            return 0.0;
        }
        self.output.generated_tokens.len() as f64 / j
    }

    /// Average power over the run, watts.
    #[must_use]
    pub fn avg_power_w(&self) -> f64 {
        self.energy
            .avg_power_w(&self.clock, self.stats.total_cycles)
    }
}

/// One inference session: engine + sampler state.
pub struct Session {
    engine: Engine,
    tokenizer: Arc<Tokenizer>,
    sampler: Sampler,
}

impl Session {
    /// Mutable access to the engine (trace capture, ablations).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// The engine.
    #[must_use]
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Runs a full inference: tokenize, prefill, decode up to
    /// `max_new_tokens` (stopping at EOS/BOS). Resets the session's
    /// context first; use [`Session::append_generate`] for multi-turn
    /// conversations that keep the KV cache.
    pub fn generate(
        &mut self,
        prompt: &str,
        max_new_tokens: usize,
    ) -> Result<InferenceReport, RuntimeError> {
        self.engine.reset();
        self.run_turn(prompt, max_new_tokens)
    }

    /// Continues the conversation **without resetting the KV cache**: the
    /// new turn's tokens are appended after everything generated so far
    /// (BOS is only added on an empty context), so earlier turns stay
    /// visible to attention — real multi-turn chat, paying prefill only
    /// for the new text.
    pub fn append_generate(
        &mut self,
        prompt: &str,
        max_new_tokens: usize,
    ) -> Result<InferenceReport, RuntimeError> {
        self.run_turn(prompt, max_new_tokens)
    }

    fn run_turn(
        &mut self,
        prompt: &str,
        max_new_tokens: usize,
    ) -> Result<InferenceReport, RuntimeError> {
        let seq_len = self.engine.graph().config.seq_len;
        let start = self.engine.context_len();
        let prompt_tokens = self.tokenizer.encode(prompt, start == 0, false);
        if start + prompt_tokens.len() > seq_len {
            return Err(RuntimeError::PromptTooLong {
                tokens: start + prompt_tokens.len(),
                seq_len,
            });
        }

        let mut stats = SimStats::default();
        let mut prefill_cycles = Cycles::ZERO;
        let mut logits: Vec<f32> = Vec::new();
        let chunk = self.engine.config().prefill_chunk.clamp(1, 64);
        let mut pos0 = start;
        let prompt_end = start + prompt_tokens.len();
        while pos0 < prompt_end {
            let end = (pos0 + chunk).min(prompt_end);
            let _g = tel::span("host", "prefill_chunk")
                .arg("pos", pos0 as i64)
                .arg("tokens", (end - pos0) as i64);
            let step = self
                .engine
                .prefill_chunk(&prompt_tokens[pos0 - start..end - start], pos0);
            tel::metrics::observe("accel.prefill_chunk_cycles", step.cycles.0);
            prefill_cycles += step.cycles;
            stats.accumulate(&step.stats);
            logits = step.logits;
            pos0 = end;
        }

        let mut decode_cycles = Cycles::ZERO;
        let mut per_token_cycles = Vec::new();
        let mut generated = Vec::new();
        let mut pos = prompt_end;
        while generated.len() < max_new_tokens && pos < seq_len {
            let next = self.sampler.sample(&logits);
            if next == TOKEN_EOS || next == TOKEN_BOS {
                break;
            }
            generated.push(next);
            let _g = tel::span("host", "decode_token").arg("pos", pos as i64);
            let step = self.engine.decode_step(next, pos);
            tel::metrics::observe("accel.decode_token_cycles", step.cycles.0);
            decode_cycles += step.cycles;
            per_token_cycles.push(step.cycles);
            stats.accumulate(&step.stats);
            logits = step.logits;
            pos += 1;
        }

        // Bridge the simulator's aggregate activity into the metrics
        // registry, so instrumented runs see device counters next to
        // host-side latencies.
        if tel::enabled() {
            tel::metrics::counter_add("sim.kernel_launches", stats.kernel_launches);
            tel::metrics::counter_add("sim.alloc_stalls", stats.alloc_stalls);
            tel::metrics::counter_add("sim.hbm_read_bytes", stats.hbm.read_bytes);
            tel::metrics::counter_add("sim.hbm_write_bytes", stats.hbm.write_bytes);
            tel::metrics::counter_add("sim.mpe_macs", stats.mpe.macs);
            tel::metrics::counter_add("sim.sfu_elements", stats.sfu.elements);
            tel::metrics::counter_add("sim.total_cycles", stats.total_cycles.0);
        }

        let text = self.tokenizer.decode(&generated);
        let energy = self.engine.power_model().energy(&stats);
        Ok(InferenceReport {
            output: GenerationOutput {
                prompt_tokens,
                generated_tokens: generated,
                text,
            },
            clock: self.engine.power_model().clock,
            prefill_cycles,
            decode_cycles,
            per_token_cycles,
            stats,
            energy,
        })
    }

    /// Runs only the forward pass for `token` at `pos` (low-level access
    /// used by the equivalence tests).
    pub fn step(&mut self, token: u32, pos: usize) -> crate::engine::StepResult {
        self.engine.decode_step(token, pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system(opt: OptConfig) -> AcceleratedLlm {
        AcceleratedLlm::synthetic(ModelConfig::test_tiny(), 42, opt).unwrap()
    }

    #[test]
    fn generate_produces_tokens_and_metrics() {
        let sys = system(OptConfig::full());
        let mut s = sys.session(SamplerKind::Argmax, 0);
        let r = s.generate("hello", 8).unwrap();
        assert!(!r.output.prompt_tokens.is_empty());
        assert!(r.output.generated_tokens.len() <= 8);
        assert!(r.total_latency_s() > 0.0);
        assert!(r.decode_tokens_per_s() > 0.0 || r.output.generated_tokens.is_empty());
        assert!(r.energy.total_j() > 0.0);
        assert!(r.avg_power_w() > 0.0);
    }

    #[test]
    fn generation_is_deterministic() {
        let sys = system(OptConfig::full());
        let mut a = sys.session(SamplerKind::Temperature(0.9), 7);
        let mut b = sys.session(SamplerKind::Temperature(0.9), 7);
        let ra = a.generate("once upon", 10).unwrap();
        let rb = b.generate("once upon", 10).unwrap();
        assert_eq!(ra.output.generated_tokens, rb.output.generated_tokens);
        assert_eq!(ra.decode_cycles, rb.decode_cycles);
    }

    #[test]
    fn variants_generate_identical_tokens() {
        // The co-design is functionally transparent: every fp32 variant
        // must sample the same token sequence.
        let mut outputs = Vec::new();
        for (_, opt) in OptConfig::paper_variants() {
            let sys = system(opt);
            let mut s = sys.session(SamplerKind::Argmax, 0);
            outputs.push(s.generate("abc", 6).unwrap().output.generated_tokens);
        }
        for o in &outputs[1..] {
            assert_eq!(o, &outputs[0]);
        }
    }

    #[test]
    fn full_beats_unoptimized_end_to_end() {
        let full = system(OptConfig::full());
        let unopt = system(OptConfig::unoptimized());
        let rf = full
            .session(SamplerKind::Argmax, 0)
            .generate("speed", 6)
            .unwrap();
        let ru = unopt
            .session(SamplerKind::Argmax, 0)
            .generate("speed", 6)
            .unwrap();
        assert_eq!(rf.output.generated_tokens, ru.output.generated_tokens);
        let speedup = ru.total_latency_s() / rf.total_latency_s();
        assert!(speedup > 2.0, "speedup only {speedup:.2}x");
        // Energy efficiency ordering too.
        assert!(rf.tokens_per_joule() > ru.tokens_per_joule());
    }

    #[test]
    fn prompt_too_long_is_rejected() {
        let sys = system(OptConfig::full());
        let mut s = sys.session(SamplerKind::Argmax, 0);
        let long: String = "word ".repeat(200);
        match s.generate(&long, 1) {
            Err(RuntimeError::PromptTooLong { tokens, seq_len }) => {
                assert!(tokens > seq_len);
            }
            other => panic!(
                "expected PromptTooLong, got {other:?}",
                other = other.map(|r| r.output.text)
            ),
        }
    }

    #[test]
    fn respects_context_window() {
        let sys = system(OptConfig::full());
        let mut s = sys.session(SamplerKind::Argmax, 0);
        let r = s.generate("a b c", 10_000).unwrap();
        assert!(
            r.output.prompt_tokens.len() + r.output.generated_tokens.len() <= sys.config().seq_len
        );
    }

    #[test]
    fn append_generate_keeps_context() {
        let sys = system(OptConfig::full());
        let mut s = sys.session(SamplerKind::Argmax, 0);
        let first = s.generate("hello", 4).unwrap();
        let ctx_after_first = s.engine().context_len();
        assert_eq!(
            ctx_after_first,
            first.output.prompt_tokens.len() + first.output.generated_tokens.len()
        );
        let second = s.append_generate("more", 4).unwrap();
        // Context grew past the first turn instead of resetting.
        assert!(s.engine().context_len() > ctx_after_first);
        // Second turn's prompt has no BOS (context not empty).
        assert_ne!(second.output.prompt_tokens.first(), Some(&1u32));
        // Multi-turn runs are deterministic: replaying the same two turns
        // in a fresh session reproduces both outputs and timings.
        let mut replay = sys.session(SamplerKind::Argmax, 0);
        let first_b = replay.generate("hello", 4).unwrap();
        let second_b = replay.append_generate("more", 4).unwrap();
        assert_eq!(
            first.output.generated_tokens,
            first_b.output.generated_tokens
        );
        assert_eq!(
            second.output.generated_tokens,
            second_b.output.generated_tokens
        );
        assert_eq!(second.decode_cycles, second_b.decode_cycles);
        // The second turn paid prefill only for its own (short) prompt.
        assert!(second.output.prompt_tokens.len() < first.output.prompt_tokens.len() + 4);
    }

    #[test]
    fn append_generate_rejects_context_overflow() {
        let sys = system(OptConfig::full());
        let mut s = sys.session(SamplerKind::Argmax, 0);
        s.generate("a b c d e f", 8).unwrap();
        let mut last = Ok(());
        for _ in 0..20 {
            match s.append_generate("even more words to push the window", 8) {
                Ok(_) => {}
                Err(e) => {
                    last = Err(e);
                    break;
                }
            }
        }
        assert!(matches!(last, Err(RuntimeError::PromptTooLong { .. })));
    }

    #[test]
    fn per_token_cycles_align_with_decode_total() {
        let sys = system(OptConfig::full());
        let mut s = sys.session(SamplerKind::Argmax, 0);
        let r = s.generate("x", 5).unwrap();
        let sum: u64 = r.per_token_cycles.iter().map(|c| c.0).sum();
        assert_eq!(sum, r.decode_cycles.0);
        assert_eq!(r.per_token_cycles.len(), r.output.generated_tokens.len());
    }
}
