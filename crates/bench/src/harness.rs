//! A minimal, dependency-free bench runner (the in-repo replacement for
//! `criterion`, so `cargo bench` works offline).
//!
//! Each benchmark is warmed up, then timed over a fixed number of samples;
//! every sample runs enough iterations to cross a target duration, and the
//! per-iteration time of each sample feeds the summary statistics. Results
//! print as one human-readable line plus one JSON line (JSONL) per
//! benchmark, so downstream tooling can parse `median_ns` / `p95_ns`
//! without a format dependency.
//!
//! Command-line flags (everything unrecognized is ignored, so `cargo
//! bench -- <filter>` keeps working):
//!
//! * `--smoke` — one warmup iteration, three short samples, and
//!   `SPEEDLLM_TINY=1` exported so the figure-series printouts in the
//!   bench mains run on tiny model configs. This is the CI/verify mode.
//! * any bare argument — substring filter on benchmark names.

use std::time::{Duration, Instant};

// One percentile definition repo-wide: the serve report's exact
// nearest-rank rule (this file used to carry a private round-to-index
// variant that disagreed with it on small samples).
use speedllm_serve::report::percentile_f64;

/// True when the current process runs benches in smoke (tiny) mode.
#[must_use]
pub fn is_smoke() -> bool {
    std::env::var_os("SPEEDLLM_TINY").is_some()
}

/// One benchmark's summary statistics.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark name.
    pub name: String,
    /// Median per-iteration time across samples, in nanoseconds.
    pub median_ns: f64,
    /// 95th-percentile per-iteration time across samples, in nanoseconds.
    pub p95_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
    /// Run metadata stamped onto the JSONL row (config name, variant, …)
    /// so trajectory tooling can join results across runs.
    pub meta: Vec<(String, String)>,
    /// Whether the row was produced under `SPEEDLLM_TINY` (smoke mode).
    pub tiny: bool,
    /// Telemetry metrics snapshot (rendered JSON object), when an
    /// instrumented run has recorded any.
    pub metrics_json: Option<String>,
}

impl BenchResult {
    fn json(&self) -> String {
        use speedllm_telemetry::export::json_escape;
        let mut row = format!(
            "{{\"name\":\"{name}\",\"median_ns\":{median:.1},\"p95_ns\":{p95:.1},\
             \"samples\":{samples},\"iters_per_sample\":{iters}",
            name = json_escape(&self.name),
            median = self.median_ns,
            p95 = self.p95_ns,
            samples = self.samples,
            iters = self.iters_per_sample,
        );
        for (k, v) in &self.meta {
            row.push_str(&format!(",\"{}\":\"{}\"", json_escape(k), json_escape(v)));
        }
        row.push_str(&format!(",\"tiny\":{}", self.tiny));
        if let Some(m) = &self.metrics_json {
            row.push_str(&format!(",\"metrics\":{m}"));
        }
        row.push('}');
        row
    }
}

/// The bench runner: collects, times, and reports benchmarks.
pub struct Runner {
    filter: Option<String>,
    smoke: bool,
    sample_size: usize,
    results: Vec<BenchResult>,
    meta: Vec<(String, String)>,
}

impl Default for Runner {
    fn default() -> Self {
        Self {
            filter: None,
            smoke: false,
            sample_size: 20,
            results: Vec::new(),
            meta: Vec::new(),
        }
    }
}

impl Runner {
    /// Builds a runner from the process arguments (see module docs).
    #[must_use]
    pub fn from_env() -> Self {
        let mut r = Self::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--smoke" => r.smoke = true,
                "--bench" | "--test" => {}
                a if a.starts_with('-') => {} // ignore unknown flags
                a => r.filter = Some(a.to_string()),
            }
        }
        if r.smoke {
            // Exported so the figure-series printouts in bench mains (and
            // any child processes) switch to tiny model configs.
            std::env::set_var("SPEEDLLM_TINY", "1");
        }
        // Instrumented bench runs (SPEEDLLM_TRACE=1) embed a metrics
        // snapshot into each JSONL row.
        speedllm_telemetry::init_from_env();
        r
    }

    /// Sets the number of timed samples per benchmark (ignored in smoke
    /// mode, which always uses 3).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets (or replaces) a metadata key stamped onto every subsequent
    /// result row — e.g. `set_meta("config", "stories260k")` or
    /// `set_meta("variant", "no-fuse")`.
    pub fn set_meta(&mut self, key: &str, value: &str) -> &mut Self {
        if let Some(slot) = self.meta.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value.to_string();
        } else {
            self.meta.push((key.to_string(), value.to_string()));
        }
        self
    }

    /// Runs one benchmark unless it is filtered out.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let (samples, warmup, target) = if self.smoke {
            (3usize, Duration::ZERO, Duration::from_micros(200))
        } else {
            (
                self.sample_size,
                Duration::from_millis(150),
                Duration::from_millis(8),
            )
        };
        let mut b = Bencher {
            warmup,
            target,
            samples,
            sample_ns: Vec::new(),
            iters: 1,
        };
        f(&mut b);
        assert!(
            !b.sample_ns.is_empty(),
            "benchmark {name} never called Bencher::iter"
        );
        let mut ns = b.sample_ns;
        ns.sort_by(f64::total_cmp);
        let metrics_json = if speedllm_telemetry::enabled() {
            let snap = speedllm_telemetry::metrics::snapshot();
            (!snap.is_empty()).then(|| speedllm_telemetry::export::snapshot_to_json(&snap))
        } else {
            None
        };
        let result = BenchResult {
            name: name.to_string(),
            median_ns: percentile_f64(&ns, 50.0),
            p95_ns: percentile_f64(&ns, 95.0),
            samples: ns.len(),
            iters_per_sample: b.iters,
            meta: self.meta.clone(),
            tiny: is_smoke(),
            metrics_json,
        };
        println!(
            "bench {name:<44} median {:>12}  p95 {:>12}  ({} samples x {} iters)",
            fmt_ns(result.median_ns),
            fmt_ns(result.p95_ns),
            result.samples,
            result.iters_per_sample,
        );
        println!("{}", result.json());
        self.results.push(result);
        self
    }

    /// Starts a named group; benchmark names are prefixed `group/name`.
    pub fn benchmark_group(&mut self, prefix: &str) -> Group<'_> {
        Group {
            runner: self,
            prefix: prefix.to_string(),
        }
    }

    /// Prints the run summary. Call last in `main`.
    pub fn finish(&mut self) {
        println!(
            "{{\"bench_run_complete\":true,\"benches\":{},\"smoke\":{}}}",
            self.results.len(),
            self.smoke
        );
    }
}

/// A named group of benchmarks (see [`Runner::benchmark_group`]).
pub struct Group<'a> {
    runner: &'a mut Runner,
    prefix: String,
}

impl Group<'_> {
    /// Runs `{prefix}/{name}`.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{name}", self.prefix);
        self.runner.bench_function(&full, f);
        self
    }

    /// Ends the group (kept for call-site symmetry; dropping works too).
    pub fn finish(self) {}
}

/// Passed to the closure given to [`Runner::bench_function`]; call
/// [`Bencher::iter`] with the code under measurement.
pub struct Bencher {
    warmup: Duration,
    target: Duration,
    samples: usize,
    sample_ns: Vec<f64>,
    iters: u64,
}

impl Bencher {
    /// Measures `inner`: warmup, iteration-count calibration, then the
    /// configured number of timed samples.
    pub fn iter<R>(&mut self, mut inner: impl FnMut() -> R) {
        // Warmup doubles the iteration count until the budget is spent,
        // which also calibrates iterations-per-sample.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(inner());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.warmup || elapsed >= self.target {
                let per_iter = elapsed.as_secs_f64() / iters as f64;
                let want = self.target.as_secs_f64() / per_iter.max(1e-9);
                iters = (want.ceil() as u64).clamp(1, 1 << 24);
                break;
            }
            iters = iters.saturating_mul(2);
        }
        self.iters = iters;
        self.sample_ns.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(inner());
            }
            self.sample_ns
                .push(start.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank_not_round_to_index() {
        // Regression for the consolidation onto the serve report's
        // helper: the old private `(n-1)*q` round-to-index rule picked
        // 10.0 as the p95 of a 3-sample distribution ((3-1)*0.95 rounds
        // to index 2... of a sorted [1, 2, 10] that is 10 — but its p50
        // of 4 samples picked index 2 (= upper median) where nearest
        // rank picks rank 2 (= lower median). Pin the nearest-rank
        // answers so a silent re-divergence fails loudly.
        let three = [1.0, 2.0, 10.0];
        assert_eq!(percentile_f64(&three, 50.0), 2.0);
        assert_eq!(percentile_f64(&three, 95.0), 10.0);
        let four = [1.0, 2.0, 3.0, 4.0];
        // Old rule: ((4-1)*0.5).round() = 2 → 3.0. Nearest rank: ceil(2) = rank 2 → 2.0.
        assert_eq!(percentile_f64(&four, 50.0), 2.0);
        assert_eq!(percentile_f64(&four, 95.0), 4.0);
    }

    #[test]
    fn bencher_produces_positive_samples() {
        let mut r = Runner {
            smoke: true,
            ..Runner::default()
        };
        r.bench_function("noop", |b| b.iter(|| 1 + 1));
        assert_eq!(r.results.len(), 1);
        assert!(r.results[0].median_ns >= 0.0);
        assert!(r.results[0].p95_ns >= r.results[0].median_ns);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut r = Runner {
            smoke: true,
            filter: Some("yes".into()),
            ..Runner::default()
        };
        r.bench_function("no/skip", |b| b.iter(|| ()));
        r.bench_function("yes/run", |b| b.iter(|| ()));
        assert_eq!(r.results.len(), 1);
        assert_eq!(r.results[0].name, "yes/run");
    }

    #[test]
    fn groups_prefix_names() {
        let mut r = Runner {
            smoke: true,
            ..Runner::default()
        };
        let mut g = r.benchmark_group("grp");
        g.bench_function("inner", |b| b.iter(|| ()));
        g.finish();
        assert_eq!(r.results[0].name, "grp/inner");
    }

    #[test]
    fn json_lines_are_well_formed() {
        let res = BenchResult {
            name: "a/b".into(),
            median_ns: 12.5,
            p95_ns: 20.0,
            samples: 3,
            iters_per_sample: 7,
            meta: vec![
                ("config".into(), "stories260k".into()),
                ("variant".into(), "full".into()),
            ],
            tiny: true,
            metrics_json: None,
        };
        let j = res.json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"name\":\"a/b\""));
        assert!(j.contains("\"median_ns\":12.5"));
        assert!(j.contains("\"p95_ns\":20.0"));
        assert!(j.contains("\"config\":\"stories260k\""));
        assert!(j.contains("\"variant\":\"full\""));
        assert!(j.contains("\"tiny\":true"));
        assert!(!j.contains("\"metrics\""));
    }

    #[test]
    fn metrics_snapshot_embeds_as_json_object() {
        let res = BenchResult {
            name: "m".into(),
            median_ns: 1.0,
            p95_ns: 1.0,
            samples: 1,
            iters_per_sample: 1,
            meta: Vec::new(),
            tiny: false,
            metrics_json: Some("{\"counters\":{\"c\":1},\"gauges\":{},\"histograms\":{}}".into()),
        };
        let j = res.json();
        assert!(j.contains("\"metrics\":{\"counters\":{\"c\":1}"));
        assert!(j.ends_with("}}"));
    }

    #[test]
    fn set_meta_replaces_existing_key() {
        let mut r = Runner {
            smoke: true,
            ..Runner::default()
        };
        r.set_meta("variant", "full");
        r.set_meta("variant", "no-fuse");
        r.bench_function("x", |b| b.iter(|| ()));
        assert_eq!(
            r.results[0].meta,
            vec![("variant".to_string(), "no-fuse".to_string())]
        );
    }
}
