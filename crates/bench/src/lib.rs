//! # speedllm-bench
//!
//! Workload definitions and the measurement harness behind every table and
//! figure reproduction (see DESIGN.md §4 for the experiment index). The
//! `repro-*` binaries print the paper's rows; the benches under `benches/`
//! wrap the same runners in the in-repo [`harness`] for regression timing
//! of the simulator itself.
//!
//! Setting `SPEEDLLM_TINY=1` (or running benches with `--smoke`) swaps the
//! preset and workload grids for tiny, seconds-scale versions — the mode
//! the repro-binary smoke tests and `scripts/verify.sh` use.

#![warn(missing_docs)]

pub mod harness;

use speedllm_accel::opt::OptConfig;
use speedllm_accel::runtime::{AcceleratedLlm, InferenceReport};
use speedllm_llama::config::ModelConfig;
use speedllm_llama::sampler::SamplerKind;

pub use speedllm_accel::report::{fmt_bytes, fmt_joules, fmt_seconds, Table};

/// A named model preset used in sweeps.
#[derive(Debug, Clone, Copy)]
pub struct ModelPreset {
    /// Display name (the llama2.c checkpoint name).
    pub name: &'static str,
    /// Architecture.
    pub config: ModelConfig,
}

/// True when tiny (smoke) mode is active: `SPEEDLLM_TINY` is set, by hand
/// or by the bench harness's `--smoke` flag.
#[must_use]
pub fn tiny_mode() -> bool {
    std::env::var_os("SPEEDLLM_TINY").is_some()
}

/// The TinyStories model family the paper's workload comes from.
/// `stories15M` is the paper's deployed checkpoint. In tiny mode the sweep
/// shrinks to the two smallest architectures.
#[must_use]
pub fn model_presets() -> Vec<ModelPreset> {
    if tiny_mode() {
        return vec![
            ModelPreset {
                name: "test-tiny",
                config: ModelConfig::test_tiny(),
            },
            ModelPreset {
                name: "stories260K",
                config: ModelConfig::stories260k(),
            },
        ];
    }
    vec![
        ModelPreset {
            name: "stories260K",
            config: ModelConfig::stories260k(),
        },
        ModelPreset {
            name: "stories15M",
            config: ModelConfig::stories15m(),
        },
        ModelPreset {
            name: "stories42M",
            config: ModelConfig::stories42m(),
        },
        ModelPreset {
            name: "stories110M",
            config: ModelConfig::stories110m(),
        },
    ]
}

/// The headline preset (what the paper deploys); `stories260K` in tiny
/// mode.
#[must_use]
pub fn headline_preset() -> ModelPreset {
    if tiny_mode() {
        return ModelPreset {
            name: "stories260K",
            config: ModelConfig::stories260k(),
        };
    }
    ModelPreset {
        name: "stories15M",
        config: ModelConfig::stories15m(),
    }
}

/// One benchmark workload: a prompt and a generation budget.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Display name.
    pub name: &'static str,
    /// Prompt text (tokenized with the model's tokenizer).
    pub prompt: &'static str,
    /// New tokens to generate.
    pub gen_tokens: usize,
}

/// The workload grid used for Fig 2(a): short interactive prompts through
/// longer completions, mirroring the paper's chat / code-completion
/// motivations. Tiny mode keeps the grid shape but shrinks the generation
/// budgets to seconds-scale.
#[must_use]
pub fn fig2a_workloads() -> Vec<Workload> {
    if tiny_mode() {
        return vec![
            Workload {
                name: "chat-short",
                prompt: "Hello there",
                gen_tokens: 4,
            },
            Workload {
                name: "story-8",
                prompt: "Once upon a time",
                gen_tokens: 8,
            },
        ];
    }
    vec![
        Workload {
            name: "chat-short",
            prompt: "Hello there, how are you today?",
            gen_tokens: 16,
        },
        Workload {
            name: "story-64",
            prompt: "Once upon a time there was a little dog named Tim.",
            gen_tokens: 64,
        },
        Workload {
            name: "story-128",
            prompt: "One day a girl named Lily went to the park with her mom and saw a big tree.",
            gen_tokens: 128,
        },
        Workload {
            name: "completion-192",
            prompt: "The little cat wanted to play with the ball but it was up in the tree, so",
            gen_tokens: 192,
        },
    ]
}

/// The fixed workload used for Fig 2(b) (energy) and the cost table.
#[must_use]
pub fn fig2b_workload() -> Workload {
    if tiny_mode() {
        return Workload {
            name: "story-8",
            prompt: "Once upon a time",
            gen_tokens: 8,
        };
    }
    Workload {
        name: "story-128",
        prompt: "Once upon a time there was a little dog named Tim.",
        gen_tokens: 128,
    }
}

/// Deterministic generation settings shared by all measurements: argmax
/// sampling so every variant generates the identical token sequence and
/// measured work is identical across variants.
pub const SAMPLER: SamplerKind = SamplerKind::Argmax;
/// Seed for synthetic weights/vocabulary.
pub const SEED: u64 = 42;

/// One measured data point.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Variant name (e.g. "SpeedLLM (ours)").
    pub variant: &'static str,
    /// Optimization selection measured.
    pub opt: OptConfig,
    /// The full report.
    pub report: InferenceReport,
}

impl Measurement {
    /// Total latency in seconds.
    #[must_use]
    pub fn latency_s(&self) -> f64 {
        self.report.total_latency_s()
    }

    /// Decode throughput in tokens/s.
    #[must_use]
    pub fn tokens_per_s(&self) -> f64 {
        self.report.decode_tokens_per_s()
    }

    /// Energy efficiency in tokens/J.
    #[must_use]
    pub fn tokens_per_joule(&self) -> f64 {
        self.report.tokens_per_joule()
    }
}

/// Builds the accelerated system for a preset and optimization selection.
///
/// # Panics
/// Panics if the design point does not fit the device (all shipped
/// variants do — checked by tests).
#[must_use]
pub fn build_system(preset: &ModelPreset, opt: OptConfig) -> AcceleratedLlm {
    AcceleratedLlm::synthetic(preset.config, SEED, opt)
        .unwrap_or_else(|e| panic!("variant {} failed to build: {e}", opt.short_name()))
}

/// Runs one workload on one variant and returns the measurement.
#[must_use]
pub fn run_variant(
    preset: &ModelPreset,
    workload: &Workload,
    variant: &'static str,
    opt: OptConfig,
) -> Measurement {
    let system = build_system(preset, opt);
    let mut session = system.session(SAMPLER, SEED);
    let report = session
        .generate(workload.prompt, workload.gen_tokens)
        .expect("workload must fit the context window");
    Measurement {
        variant,
        opt,
        report,
    }
}

/// Runs all four paper variants on a workload.
#[must_use]
pub fn run_paper_variants(preset: &ModelPreset, workload: &Workload) -> Vec<Measurement> {
    OptConfig::paper_variants()
        .into_iter()
        .map(|(name, opt)| run_variant(preset, workload, name, opt))
        .collect()
}

/// Looks up a measurement by variant name.
#[must_use]
pub fn find<'m>(ms: &'m [Measurement], variant: &str) -> &'m Measurement {
    ms.iter()
        .find(|m| m.variant == variant)
        .unwrap_or_else(|| panic!("variant {variant} missing"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_preset() -> ModelPreset {
        ModelPreset {
            name: "tiny",
            config: ModelConfig::test_tiny(),
        }
    }

    #[test]
    fn presets_cover_paper_family() {
        let names: Vec<&str> = model_presets().iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec!["stories260K", "stories15M", "stories42M", "stories110M"]
        );
        assert_eq!(headline_preset().name, "stories15M");
    }

    #[test]
    fn run_variant_produces_tokens() {
        let w = Workload {
            name: "t",
            prompt: "ab",
            gen_tokens: 4,
        };
        let m = run_variant(&tiny_preset(), &w, "full", OptConfig::full());
        assert!(!m.report.output.generated_tokens.is_empty());
        assert!(m.latency_s() > 0.0);
        assert!(m.tokens_per_s() > 0.0);
        assert!(m.tokens_per_joule() > 0.0);
    }

    #[test]
    fn paper_variants_agree_on_tokens() {
        let w = Workload {
            name: "t",
            prompt: "xy",
            gen_tokens: 4,
        };
        let ms = run_paper_variants(&tiny_preset(), &w);
        assert_eq!(ms.len(), 4);
        for m in &ms[1..] {
            assert_eq!(
                m.report.output.generated_tokens,
                ms[0].report.output.generated_tokens
            );
        }
        let ours = find(&ms, "SpeedLLM (ours)");
        let unopt = find(&ms, "unoptimized");
        assert!(ours.latency_s() < unopt.latency_s());
    }
}
