//! Regenerates **Fig 2(b)**: energy efficiency of SpeedLLM vs the
//! no-parallel, no-fusion, and unoptimized variants on the stories15M
//! decode workload.
//!
//! Paper claims: "Compared to no fuse accelerator, our method achieves
//! 1.01× energy efficiency" and "ours achieves 1.18× better energy
//! efficiency than an unoptimized accelerator".
//!
//! Run: `cargo run --release -p speedllm-bench --bin repro-fig2b`

use speedllm_bench::{fig2b_workload, fmt_joules, headline_preset, run_paper_variants, Table};

fn main() {
    println!("=== Fig 2(b): energy efficiency across design variants ===\n");
    let preset = headline_preset();
    let w = fig2b_workload();
    println!(
        "workload: {} on {} ({} new tokens)\n",
        w.name, preset.name, w.gen_tokens
    );

    let ms = run_paper_variants(&preset, &w);
    let ours = speedllm_bench::find(&ms, "SpeedLLM (ours)");

    let mut table = Table::new(&[
        "variant",
        "energy",
        "tokens/J",
        "rel. efficiency",
        "avg power",
        "tok/s",
    ]);
    for m in &ms {
        table.row(vec![
            m.variant.into(),
            fmt_joules(m.report.energy.total_j()),
            format!("{:.0}", m.tokens_per_joule()),
            format!("{:.2}x", ours.tokens_per_joule() / m.tokens_per_joule()),
            format!("{:.1} W", m.report.avg_power_w()),
            format!("{:.0}", m.tokens_per_s()),
        ]);
    }
    println!("{}", table.render());

    let no_fuse = speedllm_bench::find(&ms, "no-fuse");
    let unopt = speedllm_bench::find(&ms, "unoptimized");
    println!(
        "ours vs no-fuse:     {:.2}x tokens/J (paper: 1.01x)",
        ours.tokens_per_joule() / no_fuse.tokens_per_joule()
    );
    println!(
        "ours vs unoptimized: {:.2}x tokens/J (paper: 1.18x)",
        ours.tokens_per_joule() / unopt.tokens_per_joule()
    );

    println!("\nenergy breakdown (ours):");
    let e = &ours.report.energy;
    let mut breakdown = Table::new(&["component", "energy", "share"]);
    let total = e.total_j();
    for (name, j) in [
        ("HBM dynamic", e.hbm_j),
        ("OCM dynamic", e.ocm_j),
        ("MPE dynamic", e.mpe_dyn_j),
        ("SFU dynamic", e.sfu_dyn_j),
        ("kernel launches", e.launch_j),
        ("MPE static (gated)", e.mpe_static_j),
        ("DMA static (gated)", e.dma_static_j),
        ("SFU static (gated)", e.sfu_static_j),
        ("baseline", e.baseline_j),
    ] {
        breakdown.row(vec![
            name.into(),
            fmt_joules(j),
            format!("{:.1}%", 100.0 * j / total),
        ]);
    }
    println!("{}", breakdown.render());
}
