//! Runs every reproduction in sequence (Fig 2(a), Fig 2(b), §3.2.2 cost
//! table) — the one-shot artifact-evaluation entry point whose output
//! EXPERIMENTS.md records.
//!
//! Run: `cargo run --release -p speedllm-bench --bin repro-all`

use std::process::Command;

fn main() {
    // Each experiment is its own binary; run them in-process order so the
    // combined output is stable. Falling back to direct invocation keeps
    // this runnable both via cargo and from target/release directly.
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("exe dir");
    for bin in ["repro-fig2a", "repro-fig2b", "repro-cost"] {
        let path = dir.join(bin);
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to run {}: {e}", path.display()));
        assert!(status.success(), "{bin} failed");
        println!();
    }
    println!("all reproductions complete.");
}
