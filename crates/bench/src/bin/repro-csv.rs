//! Emits every figure's data series as CSV files (plot-ready artifacts),
//! mirroring the human-readable `repro-*` binaries.
//!
//! Run: `cargo run --release -p speedllm-bench --bin repro-csv -- [outdir]`
//! (default `./repro-csv-out`).

use std::path::PathBuf;

use speedllm_accel::opt::OptConfig;
use speedllm_bench::{
    fig2a_workloads, fig2b_workload, headline_preset, model_presets, run_paper_variants,
    run_variant, Table,
};
use speedllm_gpu_model::{GpuSpec, U280_PRICE_USD};

fn main() {
    let outdir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("repro-csv-out"));
    std::fs::create_dir_all(&outdir).expect("create output directory");

    // --- Fig 2(a): latency/throughput per workload per variant ---
    let mut fig2a = Table::new(&[
        "workload",
        "gen_tokens",
        "variant",
        "latency_s",
        "decode_tokens_per_s",
        "speedup_vs_unoptimized",
    ]);
    let preset = headline_preset();
    for w in fig2a_workloads() {
        let ms = run_paper_variants(&preset, &w);
        let base = speedllm_bench::find(&ms, "unoptimized").latency_s();
        for m in &ms {
            fig2a.row(vec![
                w.name.into(),
                w.gen_tokens.to_string(),
                m.variant.into(),
                format!("{:.9}", m.latency_s()),
                format!("{:.3}", m.tokens_per_s()),
                format!("{:.4}", base / m.latency_s()),
            ]);
        }
    }
    write(&outdir, "fig2a_latency.csv", &fig2a);

    // --- Fig 2(a) inset: model-size sweep ---
    let mut sweep = Table::new(&["model", "params", "variant", "latency_s", "tokens_per_s"]);
    let w = fig2b_workload();
    for preset in model_presets() {
        for m in run_paper_variants(&preset, &w) {
            sweep.row(vec![
                preset.name.into(),
                preset.config.param_count().to_string(),
                m.variant.into(),
                format!("{:.9}", m.latency_s()),
                format!("{:.3}", m.tokens_per_s()),
            ]);
        }
    }
    write(&outdir, "fig2a_model_sweep.csv", &sweep);

    // --- Fig 2(b): energy ---
    let mut fig2b = Table::new(&[
        "variant",
        "energy_j",
        "tokens_per_joule",
        "avg_power_w",
        "hbm_read_bytes",
        "hbm_write_bytes",
        "kernel_launches",
        "alloc_stalls",
    ]);
    for m in run_paper_variants(&headline_preset(), &fig2b_workload()) {
        fig2b.row(vec![
            m.variant.into(),
            format!("{:.9}", m.report.energy.total_j()),
            format!("{:.3}", m.tokens_per_joule()),
            format!("{:.3}", m.report.avg_power_w()),
            m.report.stats.hbm.read_bytes.to_string(),
            m.report.stats.hbm.write_bytes.to_string(),
            m.report.stats.kernel_launches.to_string(),
            m.report.stats.alloc_stalls.to_string(),
        ]);
    }
    write(&outdir, "fig2b_energy.csv", &fig2b);

    // --- Cost table ---
    let mut cost = Table::new(&[
        "device",
        "tokens_per_s",
        "price_usd",
        "tokens_per_s_per_usd",
    ]);
    let ours = run_variant(
        &headline_preset(),
        &fig2b_workload(),
        "SpeedLLM",
        OptConfig::full(),
    );
    cost.row(vec![
        "SpeedLLM/U280".into(),
        format!("{:.3}", ours.tokens_per_s()),
        format!("{U280_PRICE_USD:.0}"),
        format!("{:.6}", ours.tokens_per_s() / U280_PRICE_USD),
    ]);
    for gpu in GpuSpec::paper_gpus() {
        let t = gpu.decode_tokens_per_s(&headline_preset().config, 72, 2.0);
        cost.row(vec![
            gpu.name.into(),
            format!("{t:.3}"),
            format!("{:.0}", gpu.price_usd),
            format!("{:.6}", t / gpu.price_usd),
        ]);
    }
    write(&outdir, "cost_efficiency.csv", &cost);

    println!("wrote 4 CSV files to {}", outdir.display());
}

fn write(dir: &std::path::Path, name: &str, table: &Table) {
    let path = dir.join(name);
    std::fs::write(&path, table.render_csv()).expect("write csv");
    println!("  {} ({} rows)", path.display(), table.len());
}
