//! Regenerates the **§3.2.2 cost-efficiency comparison**: tokens/s/$ of
//! SpeedLLM on the U280 ($8,000) vs roofline models of the V100S ($12,000)
//! and A100 ($17,000), on the stories15M decode workload.
//!
//! Paper claim: "SpeedLLM on the U280 demonstrates superior average cost
//! effectiveness."
//!
//! Run: `cargo run --release -p speedllm-bench --bin repro-cost`

use speedllm_accel::opt::OptConfig;
use speedllm_bench::{fig2b_workload, headline_preset, run_variant, Table};
use speedllm_gpu_model::{CostRow, GpuSpec, U280_PRICE_USD};

fn main() {
    println!("=== §3.2.2: cost efficiency (tokens/s per dollar) ===\n");
    let preset = headline_preset();
    let w = fig2b_workload();
    // Average decode context over the run.
    let ctx = w.gen_tokens / 2 + 8;

    // Measured FPGA throughput (the full SpeedLLM design).
    let ours = run_variant(&preset, &w, "SpeedLLM (ours)", OptConfig::full());
    let mut rows = vec![CostRow {
        device: "SpeedLLM / U280".into(),
        tokens_per_s: ours.tokens_per_s(),
        price_usd: U280_PRICE_USD,
    }];
    // Roofline GPUs at fp16 weights (their natural precision; favors them).
    for gpu in GpuSpec::paper_gpus() {
        rows.push(CostRow {
            device: gpu.name.into(),
            tokens_per_s: gpu.decode_tokens_per_s(&preset.config, ctx, 2.0),
            price_usd: gpu.price_usd,
        });
    }

    let mut table = Table::new(&["device", "tok/s", "price", "tok/s/$"]);
    for r in &rows {
        table.row(vec![
            r.device.clone(),
            format!("{:.0}", r.tokens_per_s),
            format!("{:.0}", r.price_usd),
            format!("{:.3}", r.tokens_per_s_per_dollar()),
        ]);
    }
    println!("{}", table.render());

    let fpga = rows[0].tokens_per_s_per_dollar();
    let best_gpu = rows[1..]
        .iter()
        .map(CostRow::tokens_per_s_per_dollar)
        .fold(f64::MIN, f64::max);
    println!(
        "U280 cost-efficiency advantage over the best GPU: {:.2}x {}",
        fpga / best_gpu,
        if fpga > best_gpu {
            "(paper: U280 superior — reproduced)"
        } else {
            "(paper claim NOT reproduced)"
        }
    );
    println!(
        "\nnote: GPU numbers are analytical rooflines (memory-bound decode at\n\
         batch 1 with per-token launch overhead); see speedllm-gpu-model docs\n\
         and DESIGN.md section 2 for the substitution argument."
    );
}
