//! Regenerates **Fig 2(a)**: latency and decode throughput of SpeedLLM vs
//! the unoptimized accelerator, across the Fig-2a workload grid on
//! stories15M plus a model-size sweep.
//!
//! Paper claim: "delivering a latency speedup of up to 4.8 times".
//!
//! Run: `cargo run --release -p speedllm-bench --bin repro-fig2a`

use speedllm_bench::{
    fig2a_workloads, fmt_seconds, headline_preset, model_presets, run_paper_variants, Table,
};

fn main() {
    println!("=== Fig 2(a): latency & throughput, SpeedLLM vs unoptimized ===\n");

    let preset = headline_preset();
    println!("workload grid on {} ({}):\n", preset.name, preset.config);
    let mut table = Table::new(&[
        "workload",
        "gen",
        "ours latency",
        "unopt latency",
        "speedup",
        "ours tok/s",
        "unopt tok/s",
    ]);
    let mut max_speedup: f64 = 0.0;
    for w in fig2a_workloads() {
        let ms = run_paper_variants(&preset, &w);
        let ours = speedllm_bench::find(&ms, "SpeedLLM (ours)");
        let unopt = speedllm_bench::find(&ms, "unoptimized");
        let speedup = unopt.latency_s() / ours.latency_s();
        max_speedup = max_speedup.max(speedup);
        table.row(vec![
            w.name.into(),
            format!("{}", w.gen_tokens),
            fmt_seconds(ours.latency_s()),
            fmt_seconds(unopt.latency_s()),
            format!("{speedup:.2}x"),
            format!("{:.0}", ours.tokens_per_s()),
            format!("{:.0}", unopt.tokens_per_s()),
        ]);
    }
    println!("{}", table.render());

    println!("model-size sweep (story-128 workload):\n");
    let w = speedllm_bench::fig2b_workload();
    let mut table = Table::new(&[
        "model",
        "params",
        "ours latency",
        "unopt latency",
        "speedup",
        "ours tok/s",
    ]);
    for preset in model_presets() {
        let ms = run_paper_variants(&preset, &w);
        let ours = speedllm_bench::find(&ms, "SpeedLLM (ours)");
        let unopt = speedllm_bench::find(&ms, "unoptimized");
        let speedup = unopt.latency_s() / ours.latency_s();
        // stories260K is a degenerate, launch-bound regime (the model is
        // smaller than one HBM burst train); it is reported in the sweep
        // but excluded from the headline max, which the paper states for
        // the deployed stories15M workload.
        if preset.config.param_count() > 1_000_000 {
            max_speedup = max_speedup.max(speedup);
        }
        table.row(vec![
            preset.name.into(),
            format!("{:.1}M", preset.config.param_count() as f64 / 1e6),
            fmt_seconds(ours.latency_s()),
            fmt_seconds(unopt.latency_s()),
            format!("{speedup:.2}x"),
            format!("{:.0}", ours.tokens_per_s()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "max latency speedup observed (stories15M+ workloads): {max_speedup:.2}x (paper: up to 4.8x)"
    );
}
