//! Prints the beyond-the-paper extension studies as one artifact:
//! chunked prefill, batched serving, KV-cache precision, and the int8 MPE
//! design point. Complements `repro-all` (which covers only the paper's
//! own figures).
//!
//! Run: `cargo run --release -p speedllm-bench --bin repro-extensions`

use std::sync::Arc;

use speedllm_accel::engine::{AccelConfig, Engine};
use speedllm_accel::opt::OptConfig;
use speedllm_bench::Table;
use speedllm_fpga_sim::cycles::{ClockDomain, Cycles};
use speedllm_fpga_sim::mpe::Precision;
use speedllm_llama::weights::TransformerWeights;

fn main() {
    let clock = ClockDomain::U280_KERNEL;
    // stories15M normally; stories260K under SPEEDLLM_TINY=1 (smoke runs).
    let cfg = speedllm_bench::headline_preset().config;
    let weights = Arc::new(TransformerWeights::synthetic(cfg, 42));
    println!("=== extension studies on {cfg} ===\n");

    // --- Chunked prefill ---
    println!("chunked prefill (32-token prompt):\n");
    let tokens: Vec<u32> = (0..32).map(|i| 100 + i as u32).collect();
    let mut table = Table::new(&["chunk", "prefill cycles", "speedup", "HBM read"]);
    let mut base = 0u64;
    for chunk in [1usize, 4, 8, 16, 32] {
        let mut engine = Engine::new(Arc::clone(&weights), OptConfig::full()).unwrap();
        let mut cycles = 0u64;
        let mut read = 0u64;
        let mut pos = 0usize;
        while pos < tokens.len() {
            let end = (pos + chunk).min(tokens.len());
            let r = engine.prefill_chunk(&tokens[pos..end], pos);
            cycles += r.cycles.0;
            read += r.stats.hbm.read_bytes;
            pos = end;
        }
        if chunk == 1 {
            base = cycles;
        }
        table.row(vec![
            chunk.to_string(),
            cycles.to_string(),
            format!("{:.2}x", base as f64 / cycles as f64),
            format!("{:.1} MiB", read as f64 / (1 << 20) as f64),
        ]);
    }
    println!("{}", table.render());

    // --- Batched serving ---
    println!("batched decode (aggregate throughput):\n");
    let mut table = Table::new(&["precision", "batch", "tok/s aggregate", "latency/token"]);
    for (name, opt) in [
        ("fp32", OptConfig::full()),
        ("int8", OptConfig::full_int8()),
    ] {
        let mut engine = Engine::new(Arc::clone(&weights), opt).unwrap();
        for batch in [1usize, 4, 16] {
            let mut seqs: Vec<_> = (0..batch).map(|_| engine.new_sequence()).collect();
            let toks: Vec<u32> = (0..batch as u32).map(|i| i + 1).collect();
            let mut refs: Vec<&mut _> = seqs.iter_mut().collect();
            let (_, r) = engine.decode_batch(&mut refs, &toks);
            let secs = clock.to_seconds(r.cycles);
            table.row(vec![
                name.into(),
                batch.to_string(),
                format!("{:.0}", batch as f64 / secs),
                format!("{:.0} us", clock.to_micros(r.cycles)),
            ]);
        }
    }
    println!("{}", table.render());

    // --- KV precision ---
    println!("KV-cache precision at long context (pos 255):\n");
    let mut table = Table::new(&["kv", "cycles/token", "HBM read/token", "KV write bytes"]);
    for (name, kv) in [("f32", Precision::Fp32), ("int8", Precision::Int8)] {
        let mut acfg = AccelConfig::for_opt(&OptConfig::full());
        acfg.kv_precision = kv;
        let mut engine =
            Engine::with_config(Arc::clone(&weights), OptConfig::full(), acfg).unwrap();
        let mut last = None;
        for pos in 0..=255 {
            last = Some(engine.decode_step(1 + (pos % 99) as u32, pos));
        }
        let r = last.unwrap();
        table.row(vec![
            name.into(),
            r.cycles.0.to_string(),
            format!(
                "{:.2} MiB",
                r.stats.hbm.read_bytes as f64 / (1 << 20) as f64
            ),
            r.stats.hbm.write_bytes.to_string(),
        ]);
    }
    println!("{}", table.render());

    // --- int8 MPE end-to-end ---
    println!("MPE precision end-to-end (one decode token at pos 0):\n");
    let mut table = Table::new(&["mpe", "cycles", "tok/s", "HBM read", "DSP used"]);
    for (name, opt) in [
        ("fp32", OptConfig::full()),
        ("int8", OptConfig::full_int8()),
    ] {
        let mut engine = Engine::new(Arc::clone(&weights), opt).unwrap();
        let r = engine.decode_step(1, 0);
        table.row(vec![
            name.into(),
            r.cycles.0.to_string(),
            format!("{:.0}", 1.0 / clock.to_seconds(r.cycles)),
            format!(
                "{:.1} MiB",
                r.stats.hbm.read_bytes as f64 / (1 << 20) as f64
            ),
            engine.config().mpe.dsp_count().to_string(),
        ]);
    }
    println!("{}", table.render());
    let _ = Cycles::ZERO;
}
