//! Ablation bench for the **operator-fusion design choice** (DESIGN.md §4):
//! sweeps the composite-kernel depth limit, prints its effect on kernel
//! count and simulated per-token latency, then bench-measures the
//! fusion pass itself.

use speedllm_accel::engine::{AccelConfig, Engine};
use speedllm_accel::fusion::{fuse, fuse_with_limit};
use speedllm_accel::ir::build_decode_graph;
use speedllm_accel::opt::OptConfig;
use speedllm_bench::harness::Runner;
use speedllm_llama::config::ModelConfig;
use speedllm_llama::weights::TransformerWeights;
use std::hint::black_box;
use std::sync::Arc;

fn print_ablation() {
    println!("--- fusion-depth ablation (stories260K engine, 15M graph stats) ---");
    let g15 = build_decode_graph(&ModelConfig::stories15m());
    let weights = Arc::new(TransformerWeights::synthetic(
        ModelConfig::stories260k(),
        42,
    ));
    for limit in [1usize, 2, 4, 8] {
        let report = fuse_with_limit(&g15, true, limit).report(&g15);
        let mut cfg = AccelConfig::for_opt(&OptConfig::full());
        cfg.fusion_max_ops = limit;
        let mut engine = Engine::with_config(Arc::clone(&weights), OptConfig::full(), cfg).unwrap();
        let step = engine.decode_step(1, 0);
        println!(
            "limit {limit}: {:>3} kernels, {:>3} internal values (15M); 260K step = {} cycles",
            report.kernels, report.internal_values, step.cycles.0
        );
    }
    println!("--------------------------------------------------------------------");
}

fn bench_fusion_pass(c: &mut Runner) {
    print_ablation();
    let graph = build_decode_graph(&ModelConfig::stories15m());
    c.bench_function("ablation/fuse_pass_15m", |b| {
        b.iter(|| black_box(fuse(black_box(&graph), true).kernels.len()))
    });
    c.bench_function("ablation/classify_15m", |b| {
        let schedule = fuse(&graph, true);
        b.iter(|| black_box(schedule.classify(&graph).internal.len()))
    });
}

fn main() {
    let mut c = Runner::from_env();
    bench_fusion_pass(&mut c);
    c.finish();
}
